"""Shared benchmark plumbing.

Each benchmark regenerates one paper artefact via the experiment registry,
times it with pytest-benchmark (single round — these are simulations, not
microseconds-level kernels), asserts the experiment's PASS verdict, and
writes the rendered table to ``benchmarks/results/<id>.txt`` so the numbers
behind EXPERIMENTS.md can be re-diffed at any time.

Run everything with:  pytest benchmarks/ --benchmark-only
Full (slow) sizes:    pytest benchmarks/ --benchmark-only --full
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--full",
        action="store_true",
        default=False,
        help="run full-size experiment sweeps instead of quick ones",
    )


@pytest.fixture
def quick(request) -> bool:
    return not request.config.getoption("--full")


@pytest.fixture
def run_experiment(benchmark, quick):
    """Run a registered experiment under the benchmark timer.

    Returns the ExperimentResult; fails the test if the experiment's own
    verdict is FAIL.  The rendered table is persisted under results/.
    """

    def _run(experiment_id: str, **kwargs):
        from repro.experiments import get_experiment

        fn = get_experiment(experiment_id)
        result = benchmark.pedantic(
            lambda: fn(quick=quick, **kwargs), rounds=1, iterations=1
        )
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{experiment_id}.txt"
        path.write_text(result.to_table() + "\n")
        assert result.passed, f"{experiment_id} failed:\n{result.to_table()}"
        return result

    return _run
