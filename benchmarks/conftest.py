"""Shared benchmark plumbing.

Each benchmark regenerates one paper artefact via the experiment registry,
times it with pytest-benchmark (single round — these are simulations, not
microseconds-level kernels), asserts the experiment's PASS verdict, and
writes the rendered table to ``benchmarks/results/<id>.txt`` so the numbers
behind EXPERIMENTS.md can be re-diffed at any time.

Every benchmark additionally appends a tracked performance record to
``benchmarks/results/BENCH_<id>.json`` (see :mod:`repro.util.benchrec`):
workload size ``n``, simulated ``rounds`` per iteration, mean wall-time per
round and the process peak RSS.  Experiment benchmarks record automatically
through :func:`run_experiment`; hand-rolled benchmarks call the
``record_bench`` fixture after the timed section.

Run everything with:  pytest benchmarks/ --benchmark-only
Full (slow) sizes:    pytest benchmarks/ --benchmark-only --full
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.util.benchrec import append_entry, make_entry, recording_enabled

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--full",
        action="store_true",
        default=False,
        help="run full-size experiment sweeps instead of quick ones",
    )


@pytest.fixture
def quick(request) -> bool:
    return not request.config.getoption("--full")


@pytest.fixture
def record_bench(quick):
    """Append one ``BENCH_<id>.json`` entry under ``benchmarks/results/``.

    ``record_bench(benchmark, "my_bench", n=48, rounds=2)`` reads the mean
    iteration time off the pytest-benchmark fixture (call it *after* the
    timed section) and files ``seconds_per_round = mean / rounds``.  ``n``
    is the workload's network size (0 where no single size applies) and
    ``rounds`` the simulated rounds per timed iteration.

    BENCH files are committed history, so nothing is persisted unless the
    run opts in: pass an explicit ``label`` describing the measurement, or
    set ``REPRO_BENCH_RECORD=1`` in the environment (entries then carry the
    mode label ``quick``/``full``).  Plain measurement runs return ``None``.
    """

    def _record(
        benchmark,
        bench_id: str,
        *,
        n: int = 0,
        rounds: int = 1,
        label: str | None = None,
        workers: int | None = None,
        exchange_bytes_pipe: int | None = None,
        exchange_bytes_shm: int | None = None,
    ):
        meta = getattr(benchmark, "stats", None)
        if meta is None:  # --benchmark-disable: nothing was timed
            return None
        if not recording_enabled(label):
            return None
        entry = make_entry(
            n=n,
            rounds=rounds,
            seconds_per_round=meta.stats.mean / max(1, rounds),
            label=label if label is not None else ("quick" if quick else "full"),
            workers=workers,
            exchange_bytes_pipe=exchange_bytes_pipe,
            exchange_bytes_shm=exchange_bytes_shm,
        )
        return append_entry(RESULTS_DIR, bench_id, entry)

    return _record


@pytest.fixture
def run_experiment(benchmark, quick, record_bench):
    """Run a registered experiment under the benchmark timer.

    Returns the ExperimentResult; fails the test if the experiment's own
    verdict is FAIL.  The rendered table is persisted under results/ and a
    BENCH record is appended for the experiment id.
    """

    def _run(experiment_id: str, **kwargs):
        from repro.experiments import get_experiment

        fn = get_experiment(experiment_id)
        result = benchmark.pedantic(
            lambda: fn(quick=quick, **kwargs), rounds=1, iterations=1
        )
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{experiment_id}.txt"
        path.write_text(result.to_table() + "\n")
        record_bench(benchmark, experiment_id)
        assert result.passed, f"{experiment_id} failed:\n{result.to_table()}"
        return result

    return _run
