"""Bench E-L3 / E-L4 — the Section 2 impossibility attacks."""


def test_lemma3_isolation(run_experiment):
    run_experiment("E-L3")


def test_lemma4_join_chain(run_experiment):
    run_experiment("E-L4")
