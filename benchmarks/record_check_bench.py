"""Gate + wall-time record for the four-engine ``repro check`` umbrella.

The umbrella sits on the inner loop (pre-commit, CI gate), so its cost is
a perf budget like any simulation phase and its history is tracked in the
same committed BENCH format that guards the round engine
(``benchmarks/results/BENCH_check_umbrella.json``).  ``n`` is the number
of analysed source files, ``rounds`` is 1 (one whole-tree pass), and
``seconds_per_round`` is the umbrella's wall-time — the cost of lint +
flow + shard-check + proto-check off one shared parse.

Usage::

    PYTHONPATH=src python benchmarks/record_check_bench.py [--label TAG]

The umbrella's exit code is propagated, so this doubles as the gate.
Following :mod:`repro.util.benchrec` convention, the entry is persisted
only on explicit intent — a ``--label`` or ``REPRO_BENCH_RECORD=1`` —
so casual local runs never grow the committed history.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
RESULTS_DIR = Path(__file__).parent / "results"
BENCH_ID = "check_umbrella"


def main(argv: list[str] | None = None) -> int:
    sys.path.insert(0, str(REPO / "src"))
    from repro.analysis.source_cache import collect_py_files
    from repro.util.benchrec import append_entry, make_entry, recording_enabled

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--label",
        default=None,
        help="free-form tag; providing one persists the entry",
    )
    args = parser.parse_args(argv)

    n_files = len(collect_py_files([REPO / "src" / "repro"]))
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "check"],
        cwd=REPO,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )
    elapsed = time.perf_counter() - start

    print(f"repro check: {n_files} files, {elapsed:.2f}s, exit {proc.returncode}")
    if proc.returncode != 0:
        return proc.returncode

    entry = make_entry(
        n=n_files, rounds=1, seconds_per_round=elapsed, label=args.label
    )
    if recording_enabled(args.label):
        path = append_entry(RESULTS_DIR, BENCH_ID, entry)
        print(f"recorded -> {path}")
    else:
        print("not recorded (pass --label or REPRO_BENCH_RECORD=1)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
