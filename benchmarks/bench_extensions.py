"""Bench E-X1 / E-X2 — the transfer and estimation extensions."""


def test_chord_transfer(run_experiment):
    run_experiment("E-X1")


def test_size_estimation(run_experiment):
    result = run_experiment("E-X2")
    # The slack column must be uniformly true.
    assert all(bool(row[5]) for row in result.rows)


def test_dht_durability(run_experiment):
    result = run_experiment("E-X4")
    # The readback row must be all-items-recovered.
    assert any("recovered" in str(row[0]) and bool(row[-1]) for row in result.rows)


def test_content_lateness_threshold(run_experiment):
    run_experiment("E-X5")


def test_period_vs_lateness(run_experiment):
    result = run_experiment("E-X6")
    assert all(bool(row[-1]) for row in result.rows)
