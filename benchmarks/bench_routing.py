"""Bench E-L9 — routing sweep, plus trajectory/forwarding micro-benchmarks."""

from __future__ import annotations

import numpy as np

from repro.config import ProtocolParams
from repro.overlay.trajectory import trajectory
from repro.routing.series import SeriesRouter


def test_lemma9_routing_sweep(run_experiment):
    result = run_experiment("E-L9")
    # Dilation must be exact on every delivered message, at every (n, k).
    for row in result.rows:
        exact, total = map(int, str(row[4]).split("/"))
        assert exact == total


def test_micro_trajectory(benchmark):
    """Definition-7 trajectory computation (the per-message setup cost)."""
    lam = 12
    rng = np.random.default_rng(2)
    pairs = rng.random((2000, 2))

    def build():
        acc = 0.0
        for v, p in pairs:
            acc += trajectory(float(v), float(p), lam)[-2]
        return acc

    benchmark(build)


def test_micro_route_batch(benchmark, quick):
    """End-to-end routing of one message per node, no churn."""
    n = 128 if quick else 256
    params = ProtocolParams(n=n, c=1.5, r=2, seed=3)
    rng = np.random.default_rng(3)
    targets = rng.random(n)

    def run():
        router = SeriesRouter(params, seed=3)
        for v in range(n):
            router.send(v, float(targets[v]))
        router.run_until_quiet()
        return sum(1 for o in router.outcomes.values() if o.delivered)

    delivered = benchmark.pedantic(run, rounds=1, iterations=1)
    assert delivered == n
