"""Soak benchmark — a long Theorem-14 horizon with live audits.

The paper claims routability for ``O(n^k)`` rounds; any finite run samples
that claim.  This soak runs the full protocol under budget-maximal random
churn for many complete reconfiguration cycles, auditing the overlay every
10 rounds and probing continuously.  It is the closest thing to "leave it
running overnight" that fits a benchmark suite.
"""

from __future__ import annotations

import numpy as np

from repro.adversary.oblivious import RandomChurnAdversary
from repro.config import ProtocolParams
from repro.core.runner import MaintenanceSimulation


def test_soak_long_horizon(benchmark, quick):
    rounds = 100 if quick else 600
    params = ProtocolParams(
        n=48, c=1.2, r=2, delta=3, tau=8, seed=41, alpha=0.25, kappa=1.25
    )
    adv = RandomChurnAdversary(params, seed=42)
    sim = MaintenanceSimulation(params, adversary=adv)
    rng = np.random.default_rng(0)
    audits: list[float] = []
    probe_ids: list = []

    def soak():
        chunks = rounds // 10
        for chunk in range(chunks):
            sim.run(10)
            if chunk >= 2:
                probe_ids.extend(sim.send_probes(2, rng))
            audits.append(sim.audit_overlay().edge_coverage)
        sim.run(2 * params.dilation + 4)
        return sim.round

    benchmark.pedantic(soak, rounds=1, iterations=1)

    # Every audited epoch had full Definition-5 coverage.
    assert min(audits) >= 0.999, f"coverage dipped: {min(audits)}"
    # Every probe that landed was delivered to its whole target swarm.
    report = sim.probe_report(probe_ids)
    assert report.delivery_rate == 1.0, report
    # Nobody ever fell out of the overlay.
    assert sim.health_summary()["total_demotions"] == 0
