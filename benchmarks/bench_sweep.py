"""Bench E-SW — the parallel sweep runner.

Times the default grid through the process pool and pins the worker-count
invariance guarantee: the merged table from a multi-worker run must be
bit-for-bit identical to the single-process run.
"""

from __future__ import annotations

from repro.experiments.sweep import DEFAULT_GRID, run_sweep


def test_sweep_experiment(run_experiment):
    run_experiment("E-SW")


def test_parallel_sweep_matches_serial(benchmark, quick, record_bench):
    """Pool fan-out returns the exact serial table (and gets timed)."""
    seeds = (0, 1)
    serial = run_sweep(DEFAULT_GRID, seeds, workers=1, quick=quick)

    parallel = benchmark.pedantic(
        lambda: run_sweep(DEFAULT_GRID, seeds, workers=2, quick=quick),
        rounds=1,
        iterations=1,
    )
    record_bench(benchmark, "sweep_parallel", rounds=len(DEFAULT_GRID) * len(seeds))
    assert parallel.rows == serial.rows
    assert parallel.to_table() == serial.to_table()
    assert parallel.passed
