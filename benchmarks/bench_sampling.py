"""Bench E-L13 — A_SAMPLING uniformity and discard probability."""


def test_lemma13_sampling(run_experiment):
    run_experiment("E-L13")
