"""Bench E-L6 / E-L12 — topology lemmas, plus construction micro-benchmarks."""

from __future__ import annotations

import numpy as np

from repro.config import ProtocolParams
from repro.overlay.lds import LDSGraph
from repro.overlay.positions import PositionIndex


def test_lemma6_swarm_property(run_experiment):
    run_experiment("E-L6")


def test_lemma12_trajectory_census(run_experiment):
    run_experiment("E-L12")


def test_micro_lds_construction(benchmark, quick):
    """Full neighbourhood materialisation of one LDS instance."""
    n = 256 if quick else 1024
    params = ProtocolParams(n=n, seed=0)
    rng = np.random.default_rng(0)

    def build():
        graph = LDSGraph.random(params, rng)
        for v in graph.node_ids:
            graph.neighbors(int(v))
        return graph.edge_count()

    edges = benchmark(build)
    assert edges > 0


def test_micro_swarm_queries(benchmark, quick):
    """Point-swarm range queries on a sorted position index."""
    n = 4096 if quick else 65536
    rng = np.random.default_rng(1)
    index = PositionIndex({i: float(p) for i, p in enumerate(rng.random(n))})
    params = ProtocolParams(n=n, seed=0)
    points = rng.random(2000)

    def query():
        total = 0
        for p in points:
            total += index.ids_within(float(p), params.swarm_radius).size
        return total

    total = benchmark(query)
    # Mean swarm size ~ 2*c*lam at density n.
    assert total / len(points) > params.expected_swarm_size / 2
