"""CI perf regression guard: fresh quick-bench vs committed BENCH history.

Reads a pytest-benchmark ``--benchmark-json`` dump, matches the named tests
against their committed ``benchmarks/results/BENCH_<id>.json`` records, and
fails (exit 1) when a fresh mean seconds-per-round exceeds the *last
committed* entry by more than ``--factor`` (default 1.25x, absorbing normal
runner jitter while catching real regressions).

Usage::

    python benchmarks/perf_guard.py bench.json \
        test_micro_protocol_rounds=micro_protocol_rounds \
        'test_scaling_round_cost[512-1]=scaling@n=512,workers=1' \
        [--factor 1.25]

Each positional check is ``<test name>=<bench id>[@k=v,...]``.  A BENCH
file that holds a whole grid (the scaling curve records one entry per
``(n, workers)`` point) is narrowed with the optional ``@`` filter: the
guard compares against the *last* committed entry whose fields match every
``k=v`` pair (``workers`` absent in an old entry matches ``workers=1``).
The test's simulated rounds-per-iteration are taken from the committed
entry, so both sides compare in seconds per simulated round.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def _find_benchmark(payload: dict, test_name: str) -> dict | None:
    for bench in payload.get("benchmarks", []):
        if bench.get("name", "").split("[")[0] == test_name.split("[")[0]:
            if "[" not in test_name or bench.get("name") == test_name:
                return bench
    return None


def _parse_bench_ref(ref: str) -> tuple[str, dict[str, int]]:
    """Split ``bench_id[@k=v,...]`` into the id and an entry filter."""
    bench_id, at, filter_spec = ref.partition("@")
    fields: dict[str, int] = {}
    if at:
        for pair in filter_spec.split(","):
            key, eq, value = pair.partition("=")
            if not eq or not key:
                raise ValueError(f"bad entry filter {pair!r} (want k=v)")
            fields[key] = int(value)
    return bench_id, fields


def _select_entry(entries: list[dict], fields: dict[str, int]) -> dict | None:
    """The newest committed entry matching every filter field.

    ``workers`` is special-cased: entries recorded before the sharded
    engine carry no workers field and mean workers=1.
    """
    for entry in reversed(entries):
        if all(
            entry.get(key, 1 if key == "workers" else None) == value
            for key, value in fields.items()
        ):
            return entry
    return None


def main(argv: list[str] | None = None) -> int:
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    from repro.util.benchrec import bench_path, validate_bench_file

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_file", help="pytest-benchmark --benchmark-json dump")
    parser.add_argument(
        "checks", nargs="+", metavar="TEST=BENCH_ID", help="tests to guard"
    )
    parser.add_argument(
        "--factor",
        type=float,
        default=1.25,
        help="allowed slowdown vs last committed entry (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    payload = json.loads(Path(args.json_file).read_text())
    failed = False
    for spec in args.checks:
        test_name, sep, bench_ref = spec.partition("=")
        if not sep:
            print(f"bad check spec {spec!r} (want TEST=BENCH_ID[@k=v,...])")
            return 2
        try:
            bench_id, fields = _parse_bench_ref(bench_ref)
        except ValueError as exc:
            print(f"bad check spec {spec!r}: {exc}")
            return 2
        record = validate_bench_file(bench_path(RESULTS_DIR, bench_id))
        committed = _select_entry(record["entries"], fields)
        if committed is None:
            print(f"{bench_id}: no committed entry matches {fields or 'any'}")
            return 2
        bench = _find_benchmark(payload, test_name)
        if bench is None:
            print(f"{test_name}: not found in {args.json_file}")
            failed = True
            continue
        rounds = max(1, committed["rounds"])
        fresh = bench["stats"]["mean"] / rounds
        limit = committed["seconds_per_round"] * args.factor
        verdict = "OK" if fresh <= limit else "REGRESSION"
        print(
            f"{test_name}: fresh {fresh:.4f} s/round vs committed "
            f"{committed['seconds_per_round']:.4f} x {args.factor} "
            f"= {limit:.4f} -> {verdict}"
        )
        if fresh > limit:
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
