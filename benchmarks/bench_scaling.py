"""Bench scaling — steady-state maintenance cost versus network size.

Times steady-state protocol rounds at n in {48, 128, 256, 512}; quick mode
(the CI default) stops at 128 so the smoke job stays fast, ``--full`` runs
the whole curve.  Each measurement appends one entry to
``benchmarks/results/BENCH_scaling.json`` when recording is enabled (see
the ``record_bench`` fixture); ``python -m repro scale`` renders the
recorded curve as a table.
"""

from __future__ import annotations

import pytest

from repro.config import ProtocolParams
from repro.core.runner import MaintenanceSimulation

SIZES = (48, 128, 256, 512)
QUICK_SIZES = (48, 128)


@pytest.mark.parametrize("n", SIZES)
def test_scaling_round_cost(benchmark, quick, record_bench, n):
    """Seconds per steady-state round at network size ``n``."""
    if quick and n not in QUICK_SIZES:
        pytest.skip(f"n={n} runs only with --full")
    params = ProtocolParams(n=n, c=1.2, r=2, delta=3, tau=8, seed=1)
    sim = MaintenanceSimulation(params)
    sim.run(2 * (params.lam + 3))  # reach steady state

    def two_rounds():
        sim.run(2)
        return sim.round

    benchmark.pedantic(two_rounds, rounds=2 if quick else 3, iterations=1)
    record_bench(benchmark, "scaling", n=n, rounds=2)
    assert sim.audit_overlay().edge_coverage == 1.0
