"""Bench scaling — steady-state maintenance cost versus network size.

Times steady-state protocol rounds over the (n, workers) grid with n in
{48, 128, 256, 512, 1024} and workers in {1, 2, 4}; quick mode (the CI
default) runs the single-process n in {48, 128} points so the smoke job
stays fast, ``--full`` runs the whole matrix.  Each measurement appends one
entry to ``benchmarks/results/BENCH_scaling.json`` when recording is
enabled (see the ``record_bench`` fixture); sharded rows additionally
record the per-round exchange byte split (pipe control plane vs
shared-memory slabs — see :mod:`repro.sim.exchange`).  ``python -m repro
scale`` renders the recorded curve — including the per-n speedup of the
sharded rows against the serial ones and the ``exch MB/round`` column —
as a table.

The n=512 serial point also asserts a peak-RSS ceiling: the epoch-slab
copy-on-write splices and the columnar message/hop stores bound the
resident set well below the ~1.1 GB the pre-columnar engine needed, and a
leak that grows the peak past :data:`RSS_LIMIT_KB_N512` fails the bench
rather than silently eating the host.
"""

from __future__ import annotations

import pytest

from repro.config import ProtocolParams
from repro.core.runner import MaintenanceSimulation
from repro.util.benchrec import peak_rss_kb

SIZES = (48, 128, 256, 512, 1024)
WORKER_COUNTS = (1, 2, 4)
QUICK_POINTS = ((48, 1), (128, 1))

#: Peak-RSS budget for the n=512 serial measurement, in KiB.  The committed
#: history peaked around 1.1 GB before the columnar stores; the current
#: engine peaks around 0.83 GB on the dev host (measured identically at the
#: PR 7 tree — the earlier 768 MiB figure undershot the real steady-state
#: peak), so 960 MiB catches a regression of the retained-generation kind
#: while absorbing allocator jitter.
RSS_LIMIT_KB_N512 = 960 * 1024


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("n", SIZES)
def test_scaling_round_cost(benchmark, quick, record_bench, n, workers):
    """Seconds per steady-state round at network size ``n``, ``workers`` shards."""
    if quick and (n, workers) not in QUICK_POINTS:
        pytest.skip(f"(n={n}, workers={workers}) runs only with --full")
    params = ProtocolParams(n=n, c=1.2, r=2, delta=3, tau=8, seed=1)
    with MaintenanceSimulation(params, workers=workers) as sim:
        sim.run(2 * (params.lam + 3))  # reach steady state

        def two_rounds():
            sim.run(2)
            return sim.round

        # Snapshot the cumulative exchange counters before the timed rounds
        # so the recorded bytes are *steady-state* per-round figures — the
        # warmup's slab-regrow fallback rounds ship via the pipe and would
        # otherwise dominate the lifetime average.
        warm = sim.exchange_stats()
        base = (warm.bytes_pipe, warm.bytes_shm, warm.rounds) if warm else None
        benchmark.pedantic(two_rounds, rounds=2 if quick else 3, iterations=1)
        stats = sim.exchange_stats()
        if stats is not None and stats.rounds > base[2]:
            timed = stats.rounds - base[2]
            record_bench(
                benchmark,
                "scaling",
                n=n,
                rounds=2,
                workers=workers,
                exchange_bytes_pipe=(stats.bytes_pipe - base[0]) // timed,
                exchange_bytes_shm=(stats.bytes_shm - base[1]) // timed,
            )
        else:
            record_bench(benchmark, "scaling", n=n, rounds=2, workers=workers)
        assert sim.audit_overlay().edge_coverage == 1.0
        if n == 512 and workers == 1:
            rss = peak_rss_kb()
            assert rss <= RSS_LIMIT_KB_N512, (
                f"peak RSS {rss} KiB exceeds the n=512 budget "
                f"{RSS_LIMIT_KB_N512} KiB — a retained-generation leak?"
            )
