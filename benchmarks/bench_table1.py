"""Bench E-T1 — regenerate Table 1 (adversary-model comparison)."""


def test_table1(run_experiment):
    result = run_experiment("E-T1")
    assert len(result.rows) == 4
