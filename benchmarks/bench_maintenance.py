"""Bench E-L17 / E-L22 — maintenance invariants, plus a protocol-round
micro-benchmark (the simulator's core cost)."""

from __future__ import annotations

from repro.config import ProtocolParams
from repro.core.runner import MaintenanceSimulation


def test_lemma17_good_swarms(run_experiment):
    run_experiment("E-L17")


def test_lemma22_connect_bound(run_experiment):
    run_experiment("E-L22")


def test_micro_protocol_rounds(benchmark, quick, record_bench):
    """Steady-state cost of one maintenance round (n=48, no churn)."""
    params = ProtocolParams(n=48, c=1.2, r=2, delta=3, tau=8, seed=1)
    sim = MaintenanceSimulation(params)
    sim.run(2 * (params.lam + 3))  # reach steady state

    def two_rounds():
        sim.run(2)
        return sim.round

    benchmark.pedantic(two_rounds, rounds=3 if quick else 10, iterations=1)
    record_bench(benchmark, "micro_protocol_rounds", n=params.n, rounds=2)
    assert sim.audit_overlay().edge_coverage == 1.0
