"""Bench E-AB — lateness/reconfiguration, r and c ablations."""


def test_ablations(run_experiment):
    run_experiment("E-AB")
