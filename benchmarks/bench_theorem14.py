"""Bench E-T14 — the main theorem: routability under a 2-late adversary."""


def test_theorem14_maintenance(run_experiment):
    result = run_experiment("E-T14")
    # Every (adversary, n) row must individually pass.
    assert all(bool(row[-1]) for row in result.rows)
