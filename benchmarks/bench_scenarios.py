"""Bench E-SC — the scenario matrix runner.

Times the quick scenario subset through the pool, pins worker-count
invariance of the recovery reports, and embeds each cell's exact
materialized fault plan in the recorded BENCH entry so any measurement can
be replayed bit-for-bit.
"""

from __future__ import annotations

from repro.experiments.e_scenarios import QUICK_NAMES
from repro.scenarios import SCENARIOS, run_matrix, scenario_report, validate_scenario_report


def test_scenario_experiment(run_experiment):
    result = run_experiment("E-SC")
    assert any(row[0] == "calm" for row in result.rows)
    assert any(row[0] != "calm" for row in result.rows)


def test_parallel_matrix_matches_serial(benchmark, quick, record_bench):
    """Pool fan-out returns the exact serial cells (and gets timed)."""
    names = QUICK_NAMES if quick else tuple(sorted(SCENARIOS))
    seeds = (0,)
    serial = run_matrix(names, seeds, workers=1, quick=quick)

    parallel = benchmark.pedantic(
        lambda: run_matrix(names, seeds, workers=2, quick=quick),
        rounds=1,
        iterations=1,
    )
    record_bench(
        benchmark,
        "scenario_matrix",
        n=max(c["n"] for c in serial),
        rounds=sum(c["rounds"] for c in serial),
    )
    assert parallel == serial
    report = scenario_report(parallel)
    validate_scenario_report(report)
    # Every cell record embeds the exact plan it ran under.
    assert all("seed" in cell["plan"] for cell in report["cells"])
