"""Chaos benchmark — the E-CH fault-injection sweep at benchmark sizes.

Regenerates the drop x delay x stall degradation table (routing success and
first-degradation round per cell) and persists it under results/.  Quick
mode runs the sparse screening grid; ``--full`` runs the complete cross
product at n=48.
"""

from __future__ import annotations


def test_chaos_sweep(run_experiment):
    result = run_experiment("E-CH")
    # The sweep always contains the fault-free baseline plus fault cells.
    assert any(row[0] == 0.0 and row[1] == 0.0 and row[2] == 0.0 for row in result.rows)
    assert any(row[0] > 0 or row[1] > 0 or row[2] > 0 for row in result.rows)
