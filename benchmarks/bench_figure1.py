"""Bench E-F1 — regenerate Figure 1 (LDS neighbourhood arcs)."""


def test_figure1(run_experiment):
    result = run_experiment("E-F1")
    # Three arcs per sampled node, all covering and fully connected.
    assert all(row[-1] and row[-2] for row in result.rows)
