"""Bench E-X3 — the routing collapse threshold (fixpoint model vs measured)."""


def test_collapse_threshold(run_experiment):
    run_experiment("E-X3")
