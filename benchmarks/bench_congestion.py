"""Bench E-L24 — O(log^3 n) congestion scaling."""


def test_lemma24_congestion(run_experiment):
    run_experiment("E-L24")
