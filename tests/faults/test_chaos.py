"""End-to-end fault-layer tests: zero overhead, reproducibility, chaos cells."""

from __future__ import annotations

from repro.config import ProtocolParams
from repro.core.runner import MaintenanceSimulation
from repro.experiments.e_chaos import chaos_cell, default_cells
from repro.experiments.registry import all_experiments
from repro.faults.plan import FaultPlan
from repro.faults.health import HealthMonitor
from repro.sim.engine import Engine, NodeContext, NodeProtocol


def small_params(seed=5):
    return ProtocolParams(
        n=24, c=1.2, r=2, delta=3, tau=8, seed=seed, alpha=0.25, kappa=1.25
    )


class ChatterProtocol(NodeProtocol):
    """Deterministic chatter exercising unicast, multicast and the inbox."""

    def __init__(self, node_id: int, services) -> None:
        self.node_id = node_id

    def on_round(self, ctx: NodeContext) -> None:
        n = ctx.params.n
        ctx.send((ctx.node_id + 1) % n, ("tick", ctx.round))
        if ctx.node_id % 3 == 0:
            ctx.send_many([(ctx.node_id + k) % n for k in (2, 3, 4)], "mc")
        for src, _ in ctx.inbox:
            if (ctx.node_id + ctx.round) % 5 == 0:
                ctx.send(src, "ack")


class TestZeroOverheadWhenOff:
    """An all-zero FaultPlan must be byte-identical to no fault layer at all."""

    def test_engine_metrics_identical(self):
        params = ProtocolParams(n=16, seed=1, alpha=0.25)

        def run(**kw):
            eng = Engine(params, lambda v, s: ChatterProtocol(v, s), **kw)
            eng.seed_nodes(range(16))
            eng.run(6)
            return eng

        plain = run()
        gated = run(faults=FaultPlan.none())
        assert gated.metrics.history == plain.metrics.history
        for t in range(6):
            assert gated.trace.edges_at(t) == plain.trace.edges_at(t)
        assert all(m.faults is None for m in gated.metrics.history)
        assert gated.metrics.fault_totals().injected == 0

    def test_maintenance_metrics_identical(self):
        params = small_params()
        plain = MaintenanceSimulation(params)
        gated = MaintenanceSimulation(params, faults=FaultPlan.none())
        rounds = 10
        plain.run(rounds)
        gated.run(rounds)
        assert gated.engine.metrics.history == plain.engine.metrics.history


class TestDeterministicReproducibility:
    """Same seed + non-trivial plan => identical schedules and event streams."""

    def run_once(self):
        params = small_params()
        plan = FaultPlan.simple(
            seed=9, drop_p=0.3, delay_p=0.3, stall_p=0.15, start=4
        )
        monitor = HealthMonitor(params)
        sim = MaintenanceSimulation(params, faults=plan, health=monitor)
        sim.run(16)
        fault_series = [m.faults for m in sim.engine.metrics.history]
        return fault_series, list(monitor.events), sim.engine.metrics.fault_totals()

    def test_two_runs_identical(self):
        series_a, events_a, totals_a = self.run_once()
        series_b, events_b, totals_b = self.run_once()
        assert totals_a.injected > 0  # the plan actually fired
        assert series_a == series_b
        assert events_a == events_b
        assert totals_a == totals_b

    def test_faults_quiet_before_window(self):
        series, _, _ = self.run_once()
        assert all(f is None for f in series[:4])
        assert any(f is not None for f in series[4:])


class TestChaosCells:
    def test_zero_cell_reproduces_paper_guarantees(self):
        cell = chaos_cell(small_params(), 0.0, 0.0, 0.0, seed=5)
        assert cell["faults_injected"] == 0
        assert cell["delivery_rate"] >= 0.95
        assert cell["established_fraction"] >= 0.95
        assert cell["events"] == 0
        assert cell["first_degradation_round"] is None

    def test_harsh_cell_degrades_gracefully(self):
        """Heavy combined faults bend the overlay; the run reports, not dies."""
        cell = chaos_cell(small_params(), 0.4, 0.3, 0.1, seed=5)
        assert cell["faults_injected"] > 0
        assert cell["delivery_rate"] < 1.0
        assert cell["events"] > 0
        assert cell["first_degradation_round"] is not None


class TestExperimentWiring:
    def test_e_chaos_registered(self):
        assert "E-CH" in all_experiments()

    def test_default_cells_include_baseline_and_faults(self):
        for quick in (True, False):
            cells = default_cells(quick)
            assert (0.0, 0.0, 0.0) in cells
            assert any(any(axis > 0 for axis in cell) for cell in cells)
        assert len(default_cells(False)) == 12

    def test_report_order_includes_chaos(self):
        from repro.experiments.report import DEFAULT_ORDER

        assert "E-CH" in DEFAULT_ORDER
