"""Tests for FaultPlan rule validation and composition."""

from __future__ import annotations

import pytest

from repro.faults.plan import (
    AsymmetricPartition,
    FaultPlan,
    LatencyMatrix,
    MessageFaults,
    NodeStall,
    RateCap,
    RingPartition,
)


class TestMessageFaults:
    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            MessageFaults(drop_p=1.5)
        with pytest.raises(ValueError):
            MessageFaults(delay_p=-0.1)
        with pytest.raises(ValueError):
            MessageFaults(duplicate_p=2.0)

    def test_delay_rounds_positive(self):
        with pytest.raises(ValueError):
            MessageFaults(delay_p=0.5, delay_rounds=0)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            MessageFaults(drop_p=0.1, start=-1)
        with pytest.raises(ValueError):
            MessageFaults(drop_p=0.1, start=5, end=5)

    def test_active_window(self):
        rule = MessageFaults(drop_p=0.1, start=3, end=7)
        assert not rule.active(2)
        assert rule.active(3)
        assert rule.active(6)
        assert not rule.active(7)

    def test_open_ended_window(self):
        rule = MessageFaults(drop_p=0.1, start=3)
        assert rule.active(10**9)

    def test_trivial(self):
        assert MessageFaults().is_trivial
        assert not MessageFaults(drop_p=0.01).is_trivial


class TestNodeStall:
    def test_eligibility(self):
        rule = NodeStall(stall_p=1.0, nodes=frozenset({1, 2}))
        assert rule.eligible(1)
        assert not rule.eligible(3)
        assert NodeStall(stall_p=1.0).eligible(3)

    def test_node_ids_coerced(self):
        import numpy as np

        rule = NodeStall(stall_p=1.0, nodes=frozenset({np.int64(4)}))
        assert rule.eligible(4)


class TestRingPartition:
    def test_endpoint_validation(self):
        with pytest.raises(ValueError):
            RingPartition(lo=0.2, hi=1.2)
        with pytest.raises(ValueError):
            RingPartition(lo=0.5, hi=0.5)

    def test_inside_plain_arc(self):
        cut = RingPartition(lo=0.2, hi=0.6)
        assert cut.inside(0.2)
        assert cut.inside(0.4)
        assert not cut.inside(0.6)
        assert not cut.inside(0.9)

    def test_inside_wrapped_arc(self):
        cut = RingPartition(lo=0.8, hi=0.1)
        assert cut.inside(0.9)
        assert cut.inside(0.05)
        assert not cut.inside(0.5)


class TestRateCapRule:
    def test_validation(self):
        with pytest.raises(ValueError):
            RateCap(limit=0)
        with pytest.raises(ValueError):
            RateCap(limit=2, defer_rounds=0)
        with pytest.raises(ValueError):
            RateCap(limit=2, start=5, end=5)

    def test_trivial(self):
        assert RateCap().is_trivial
        assert not RateCap(limit=3).is_trivial

    def test_eligibility(self):
        rule = RateCap(limit=1, nodes=frozenset({1, 2}))
        assert rule.eligible(1)
        assert not rule.eligible(3)
        assert RateCap(limit=1).eligible(3)


class TestLatencyMatrixRule:
    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyMatrix(delays=())
        with pytest.raises(ValueError):
            LatencyMatrix(delays=((0, 1),))  # not square
        with pytest.raises(ValueError):
            LatencyMatrix(delays=((0, -1), (1, 0)))

    def test_band_of(self):
        m = LatencyMatrix(delays=((0, 1), (1, 0)))
        assert m.bands == 2
        assert m.band_of(0.0) == 0
        assert m.band_of(0.49) == 0
        assert m.band_of(0.5) == 1
        assert m.band_of(0.999) == 1

    def test_delay_between(self):
        m = LatencyMatrix(delays=((0, 3), (5, 0)))
        assert m.delay_between(0.1, 0.9) == 3
        assert m.delay_between(0.9, 0.1) == 5
        assert m.delay_between(0.1, 0.2) == 0

    def test_trivial(self):
        assert LatencyMatrix().is_trivial
        assert LatencyMatrix(delays=((0, 0), (0, 0))).is_trivial
        assert not LatencyMatrix(delays=((0, 1), (1, 0))).is_trivial


class TestAsymmetricPartitionRule:
    def test_validation(self):
        with pytest.raises(ValueError):
            AsymmetricPartition(lo=0.2, hi=1.2)
        with pytest.raises(ValueError):
            AsymmetricPartition(lo=0.5, hi=0.5)
        with pytest.raises(ValueError):
            AsymmetricPartition(lo=0.0, hi=0.5, start=3, end=3)

    def test_blocks_one_way_only(self):
        arc = AsymmetricPartition(lo=0.0, hi=0.5)
        assert arc.blocks(0.25, 0.75)
        assert not arc.blocks(0.75, 0.25)
        assert not arc.blocks(0.1, 0.2)
        assert not arc.blocks(0.7, 0.8)

    def test_wrapped_arc(self):
        arc = AsymmetricPartition(lo=0.8, hi=0.1)
        assert arc.blocks(0.9, 0.5)
        assert not arc.blocks(0.5, 0.9)


class TestJsonRoundTrip:
    def full_plan(self):
        return FaultPlan(
            seed=42,
            messages=(MessageFaults(drop_p=0.3, delay_p=0.1, delay_rounds=2),),
            stalls=(NodeStall(stall_p=0.2, nodes=frozenset({3, 1}), start=5),),
            partitions=(RingPartition(lo=0.1, hi=0.6, start=2, end=9),),
            ratecaps=(RateCap(limit=4, defer_rounds=2),),
            latencies=(LatencyMatrix(delays=((0, 1), (1, 0)), start=1),),
            asymmetric=(AsymmetricPartition(lo=0.7, hi=0.2),),
        )

    def test_plan_round_trips(self):
        plan = self.full_plan()
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_json_is_plain_data(self):
        import json

        doc = self.full_plan().to_json()
        assert json.loads(json.dumps(doc)) == doc
        assert doc["stalls"][0]["nodes"] == [1, 3]  # sorted, not a set

    def test_each_rule_round_trips(self):
        for rule in self.full_plan().iter_rules():
            assert type(rule).from_json(rule.to_json()) == rule

    def test_empty_families_omitted(self):
        doc = FaultPlan.simple(seed=1, drop_p=0.2).to_json()
        assert set(doc) == {"seed", "messages"}

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.from_json({"seed": 1, "bogus": []})
        with pytest.raises(ValueError):
            MessageFaults.from_json({"kind": "message", "drop_q": 0.1})

    def test_kind_mismatch_rejected(self):
        with pytest.raises(ValueError):
            NodeStall.from_json({"kind": "message"})

    def test_invalid_values_rejected_on_load(self):
        with pytest.raises(ValueError):
            MessageFaults.from_json({"kind": "message", "drop_p": 1.5})


class TestWindows:
    def test_shifted_moves_every_window(self):
        plan = FaultPlan(
            seed=1,
            messages=(MessageFaults(drop_p=0.5, start=0, end=10),),
            ratecaps=(RateCap(limit=2, start=3),),
        )
        moved = plan.shifted(7)
        assert moved.messages[0].start == 7
        assert moved.messages[0].end == 17
        assert moved.ratecaps[0].start == 10
        assert moved.ratecaps[0].end is None
        assert plan.shifted(0) is plan

    def test_fault_window_trivial(self):
        assert FaultPlan.none().fault_window() == (None, None)

    def test_fault_window_span(self):
        plan = FaultPlan(
            seed=1,
            messages=(MessageFaults(drop_p=0.5, start=4, end=10),),
            partitions=(RingPartition(0.0, 0.5, start=6, end=20),),
        )
        assert plan.fault_window() == (4, 20)

    def test_fault_window_open_ended(self):
        plan = FaultPlan(seed=1, stalls=(NodeStall(stall_p=0.1, start=2),))
        assert plan.fault_window() == (2, None)

    def test_fault_window_ignores_trivial_rules(self):
        plan = FaultPlan(
            seed=1,
            messages=(MessageFaults(drop_p=0.5, start=4, end=8),),
            ratecaps=(RateCap(start=0),),  # trivial: no limit
        )
        assert plan.fault_window() == (4, 8)


class TestFaultPlan:
    def test_trivial_plan(self):
        assert FaultPlan.none().is_trivial
        assert FaultPlan(messages=(MessageFaults(),)).is_trivial
        assert not FaultPlan(messages=(MessageFaults(drop_p=0.1),)).is_trivial
        assert not FaultPlan(partitions=(RingPartition(0.0, 0.5),)).is_trivial

    def test_simple_builder(self):
        plan = FaultPlan.simple(seed=9, drop_p=0.2, stall_p=0.1, start=5)
        assert len(plan.messages) == 1 and len(plan.stalls) == 1
        assert plan.messages[0].drop_p == 0.2
        assert plan.messages[0].start == 5
        assert plan.stalls[0].stall_p == 0.1
        assert plan.seed == 9

    def test_simple_builder_omits_trivial_rules(self):
        plan = FaultPlan.simple(seed=1, drop_p=0.2)
        assert plan.stalls == ()
        assert FaultPlan.simple(seed=1).is_trivial

    def test_rules_coerced_to_tuples(self):
        plan = FaultPlan(messages=[MessageFaults(drop_p=0.1)])
        assert isinstance(plan.messages, tuple)
