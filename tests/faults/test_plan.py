"""Tests for FaultPlan rule validation and composition."""

from __future__ import annotations

import pytest

from repro.faults.plan import FaultPlan, MessageFaults, NodeStall, RingPartition


class TestMessageFaults:
    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            MessageFaults(drop_p=1.5)
        with pytest.raises(ValueError):
            MessageFaults(delay_p=-0.1)
        with pytest.raises(ValueError):
            MessageFaults(duplicate_p=2.0)

    def test_delay_rounds_positive(self):
        with pytest.raises(ValueError):
            MessageFaults(delay_p=0.5, delay_rounds=0)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            MessageFaults(drop_p=0.1, start=-1)
        with pytest.raises(ValueError):
            MessageFaults(drop_p=0.1, start=5, end=5)

    def test_active_window(self):
        rule = MessageFaults(drop_p=0.1, start=3, end=7)
        assert not rule.active(2)
        assert rule.active(3)
        assert rule.active(6)
        assert not rule.active(7)

    def test_open_ended_window(self):
        rule = MessageFaults(drop_p=0.1, start=3)
        assert rule.active(10**9)

    def test_trivial(self):
        assert MessageFaults().is_trivial
        assert not MessageFaults(drop_p=0.01).is_trivial


class TestNodeStall:
    def test_eligibility(self):
        rule = NodeStall(stall_p=1.0, nodes=frozenset({1, 2}))
        assert rule.eligible(1)
        assert not rule.eligible(3)
        assert NodeStall(stall_p=1.0).eligible(3)

    def test_node_ids_coerced(self):
        import numpy as np

        rule = NodeStall(stall_p=1.0, nodes=frozenset({np.int64(4)}))
        assert rule.eligible(4)


class TestRingPartition:
    def test_endpoint_validation(self):
        with pytest.raises(ValueError):
            RingPartition(lo=0.2, hi=1.2)
        with pytest.raises(ValueError):
            RingPartition(lo=0.5, hi=0.5)

    def test_inside_plain_arc(self):
        cut = RingPartition(lo=0.2, hi=0.6)
        assert cut.inside(0.2)
        assert cut.inside(0.4)
        assert not cut.inside(0.6)
        assert not cut.inside(0.9)

    def test_inside_wrapped_arc(self):
        cut = RingPartition(lo=0.8, hi=0.1)
        assert cut.inside(0.9)
        assert cut.inside(0.05)
        assert not cut.inside(0.5)


class TestFaultPlan:
    def test_trivial_plan(self):
        assert FaultPlan.none().is_trivial
        assert FaultPlan(messages=(MessageFaults(),)).is_trivial
        assert not FaultPlan(messages=(MessageFaults(drop_p=0.1),)).is_trivial
        assert not FaultPlan(partitions=(RingPartition(0.0, 0.5),)).is_trivial

    def test_simple_builder(self):
        plan = FaultPlan.simple(seed=9, drop_p=0.2, stall_p=0.1, start=5)
        assert len(plan.messages) == 1 and len(plan.stalls) == 1
        assert plan.messages[0].drop_p == 0.2
        assert plan.messages[0].start == 5
        assert plan.stalls[0].stall_p == 0.1
        assert plan.seed == 9

    def test_simple_builder_omits_trivial_rules(self):
        plan = FaultPlan.simple(seed=1, drop_p=0.2)
        assert plan.stalls == ()
        assert FaultPlan.simple(seed=1).is_trivial

    def test_rules_coerced_to_tuples(self):
        plan = FaultPlan(messages=[MessageFaults(drop_p=0.1)])
        assert isinstance(plan.messages, tuple)
