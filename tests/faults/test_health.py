"""Tests for the HealthMonitor's invariant audits, using toy protocols."""

from __future__ import annotations

import pytest

from repro.config import ProtocolParams
from repro.faults.health import HealthMonitor
from repro.sim.engine import Engine, NodeContext, NodeProtocol


class RingProtocol(NodeProtocol):
    """Every node talks to its ring successor each round (connected graph)."""

    def __init__(self, node_id: int, services) -> None:
        self.node_id = node_id

    def on_round(self, ctx: NodeContext) -> None:
        ctx.send((ctx.node_id + 1) % ctx.params.n, "hb")


class TwoIslandsProtocol(NodeProtocol):
    """Nodes only ever talk within their half — a permanently split graph."""

    def __init__(self, node_id: int, services) -> None:
        self.node_id = node_id

    def on_round(self, ctx: NodeContext) -> None:
        half = ctx.params.n // 2
        base = 0 if ctx.node_id < half else half
        ctx.send(base + (ctx.node_id - base + 1) % half, "hb")


class SilentProtocol(NodeProtocol):
    """Never sends anything."""

    def __init__(self, node_id: int, services) -> None:
        self.node_id = node_id

    def on_round(self, ctx: NodeContext) -> None:
        pass


class OverlayStub(NodeProtocol):
    """Exposes pos/epoch/d_nbrs so the structural audits engage.

    Positions are spread evenly over the ring, neighbourhoods are the
    symmetric ring edges — a healthy overlay by construction.  Class
    attributes let tests break one invariant at a time.
    """

    broken_symmetry = False
    collapse_positions = False

    def __init__(self, node_id: int, services) -> None:
        self.node_id = node_id
        n = services.params.n
        self.pos = 0.0 if self.collapse_positions else node_id / n
        self.epoch = 0
        left, right = (node_id - 1) % n, (node_id + 1) % n
        self.d_nbrs = {left: None, right: None}
        if self.broken_symmetry and node_id == 0:
            self.d_nbrs[n // 2] = None  # node n//2 does not point back

    def on_round(self, ctx: NodeContext) -> None:
        ctx.send((ctx.node_id + 1) % ctx.params.n, "hb")


def run_monitored(protocol_cls, rounds=3, n=16, **monitor_kw):
    params = ProtocolParams(n=n, seed=1, alpha=0.25)
    monitor = HealthMonitor(params, **monitor_kw)
    eng = Engine(params, lambda v, s: protocol_cls(v, s), health=monitor)
    eng.seed_nodes(range(n))
    reports = eng.run(rounds)
    return monitor, reports


class TestValidation:
    def test_sample_points_positive(self):
        with pytest.raises(ValueError):
            HealthMonitor(ProtocolParams(n=16, seed=1), sample_points=0)

    def test_every_positive(self):
        with pytest.raises(ValueError):
            HealthMonitor(ProtocolParams(n=16, seed=1), every=0)


class TestConnectivityAudit:
    def test_connected_graph_no_events(self):
        monitor, _ = run_monitored(RingProtocol)
        assert monitor.events == []
        assert monitor.first_degradation_round is None

    def test_split_graph_reports_disconnected(self):
        monitor, reports = run_monitored(TwoIslandsProtocol)
        kinds = {e.kind for e in monitor.events}
        assert kinds == {"disconnected"}
        assert all(e.severity == "critical" for e in monitor.events)
        assert monitor.first_degradation_round == 0
        # Events also flow through the round reports.
        assert reports[0].health == (monitor.events[0],)

    def test_silent_window_is_not_a_partition(self):
        monitor, _ = run_monitored(SilentProtocol)
        assert monitor.events == []

    def test_every_skips_intermediate_rounds(self):
        monitor, _ = run_monitored(TwoIslandsProtocol, rounds=4, every=2)
        assert [e.round for e in monitor.events] == [0, 2]


class TestStructuralAudits:
    def setup_method(self):
        OverlayStub.broken_symmetry = False
        OverlayStub.collapse_positions = False

    teardown_method = setup_method

    def test_healthy_overlay_no_events(self):
        monitor, _ = run_monitored(OverlayStub, rounds=2)
        assert monitor.events == []

    def test_one_sided_edge_reports_asymmetry(self):
        OverlayStub.broken_symmetry = True
        monitor, _ = run_monitored(OverlayStub, rounds=1)
        kinds = monitor.counts_by_kind()
        assert kinds.get("asymmetric-list") == 1
        assert monitor.events[0].severity == "warn"

    def test_collapsed_positions_report_empty_swarms(self):
        OverlayStub.collapse_positions = True
        monitor, _ = run_monitored(OverlayStub, rounds=1)
        assert "empty-swarm" in monitor.counts_by_kind()
        assert any(e.severity == "critical" for e in monitor.events)

    def test_observing_never_perturbs_the_run(self):
        params = ProtocolParams(n=16, seed=1, alpha=0.25)
        plain = Engine(params, lambda v, s: RingProtocol(v, s))
        plain.seed_nodes(range(16))
        watched = Engine(
            params, lambda v, s: RingProtocol(v, s), health=HealthMonitor(params)
        )
        watched.seed_nodes(range(16))
        m0 = [r.metrics for r in plain.run(4)]
        m1 = [r.metrics for r in watched.run(4)]
        assert m0 == m1


class TestSummaries:
    def test_summary_shape(self):
        monitor, _ = run_monitored(TwoIslandsProtocol, rounds=2)
        s = monitor.summary()
        assert s["events"] == 2
        assert s["first_degradation_round"] == 0
        assert s["events_disconnected"] == 2

    def test_empty_summary(self):
        monitor, _ = run_monitored(RingProtocol, rounds=1)
        assert monitor.summary() == {
            "events": 0,
            "first_degradation_round": None,
            "degraded_round_fraction": 0.0,
            "time_to_recover": None,
        }

    def test_degraded_round_fraction(self):
        monitor, _ = run_monitored(TwoIslandsProtocol, rounds=4)
        assert monitor.rounds_observed == 4
        assert monitor.degraded_round_fraction == 1.0
        healthy, _ = run_monitored(RingProtocol, rounds=4)
        assert healthy.degraded_round_fraction == 0.0

    def test_time_to_recover_none_while_degraded(self):
        monitor, _ = run_monitored(TwoIslandsProtocol, rounds=3)
        # Every audited round is degraded, so the run never recovers.
        assert monitor.summary()["time_to_recover"] is None

    def test_time_to_recover_counts_clean_tail(self):
        params = ProtocolParams(n=16, seed=1, alpha=0.25)
        monitor = HealthMonitor(params)
        eng = Engine(params, lambda v, s: RingProtocol(v, s), health=monitor)
        eng.seed_nodes(range(16))
        eng.run(4)
        # Inject a synthetic event at round 1 and re-derive the summary.
        from repro.faults.health import DegradationEvent

        monitor.events.append(
            DegradationEvent(
                round=1, kind="disconnected", severity="critical", detail="x"
            )
        )
        assert monitor.summary()["time_to_recover"] == 2  # rounds 2..3 clean

    def test_empty_alive_set_skipped(self):
        params = ProtocolParams(n=8, seed=1, alpha=0.25)
        monitor = HealthMonitor(params)
        eng = Engine(params, lambda v, s: RingProtocol(v, s), health=monitor)
        eng.run(2)  # no nodes seeded: alive set is empty every round
        assert monitor.events == []
        assert monitor.rounds_observed == 0
        assert monitor.degraded_round_fraction == 0.0
