"""Tests for the deterministic fault injector (PRF schedules and fates)."""

from __future__ import annotations

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    AsymmetricPartition,
    FaultPlan,
    LatencyMatrix,
    MessageFaults,
    NodeStall,
    RateCap,
    RingPartition,
)
from repro.util.rngs import RngService


def msg_plan(seed=7, **kw):
    return FaultPlan(seed=seed, messages=(MessageFaults(**kw),))


class TestMessageFates:
    def test_clean_without_rules(self):
        inj = FaultInjector(FaultPlan.none())
        inj.begin_round(0)
        assert not inj.message_faults_active
        assert inj.message_fates(0, 1, 2) == (1,)
        assert inj.round_stats() is None

    def test_certain_drop(self):
        inj = FaultInjector(msg_plan(drop_p=1.0))
        inj.begin_round(0)
        for dst in range(2, 10):
            assert inj.message_fates(0, 1, dst) == ()
        assert inj.round_stats().dropped == 8
        assert inj.round_stats().injected == 8

    def test_certain_delay(self):
        inj = FaultInjector(msg_plan(delay_p=1.0, delay_rounds=3))
        inj.begin_round(0)
        assert inj.message_fates(0, 1, 2) == (4,)
        assert inj.round_stats().delayed == 1

    def test_certain_duplicate(self):
        inj = FaultInjector(msg_plan(duplicate_p=1.0))
        inj.begin_round(0)
        assert inj.message_fates(0, 1, 2) == (1, 1)
        assert inj.round_stats().duplicated == 1

    def test_delay_and_duplicate_compose(self):
        inj = FaultInjector(msg_plan(delay_p=1.0, delay_rounds=2, duplicate_p=1.0))
        inj.begin_round(0)
        assert inj.message_fates(0, 1, 2) == (3, 3)

    def test_window_gates_activity(self):
        inj = FaultInjector(msg_plan(drop_p=1.0, start=5, end=7))
        inj.begin_round(4)
        assert not inj.message_faults_active
        assert inj.message_fates(4, 1, 2) == (1,)
        inj.begin_round(5)
        assert inj.message_faults_active
        assert inj.message_fates(5, 1, 2) == ()
        inj.begin_round(7)
        assert not inj.message_faults_active

    def test_counters_reset_each_round(self):
        inj = FaultInjector(msg_plan(drop_p=1.0))
        inj.begin_round(0)
        inj.message_fates(0, 1, 2)
        inj.begin_round(1)
        assert inj.round_stats() is None

    def test_empirical_drop_rate(self):
        inj = FaultInjector(msg_plan(drop_p=0.5))
        inj.begin_round(0)
        dropped = sum(
            inj.message_fates(0, src, dst) == ()
            for src in range(20)
            for dst in range(20)
        )
        assert 0.35 < dropped / 400 < 0.65


class TestPartitions:
    def make(self, lo=0.0, hi=0.5):
        ph = RngService(3).position_hash()
        plan = FaultPlan(seed=1, partitions=(RingPartition(lo=lo, hi=hi),))
        return FaultInjector(plan, position_hash=ph), ph

    def test_requires_position_hash(self):
        plan = FaultPlan(partitions=(RingPartition(0.0, 0.5),))
        with pytest.raises(ValueError):
            FaultInjector(plan)

    def test_crossing_messages_dropped_same_side_clean(self):
        inj, ph = self.make()
        inj.begin_round(0)
        cut = RingPartition(0.0, 0.5)
        inside = [v for v in range(40) if cut.inside(ph.position(v, 0))]
        outside = [v for v in range(40) if not cut.inside(ph.position(v, 0))]
        assert inside and outside
        assert inj.message_fates(0, inside[0], outside[0]) == ()
        assert inj.message_fates(0, outside[0], inside[0]) == ()
        assert inj.message_fates(0, inside[0], inside[1]) == (1,)
        assert inj.message_fates(0, outside[0], outside[1]) == (1,)
        assert inj.round_stats().dropped == 2

    def test_partition_follows_epoch_positions(self):
        """The cut separates ring regions, so its node sets move per epoch."""
        inj, ph = self.make()
        cut = RingPartition(0.0, 0.5)
        # Find a pair that crosses in epoch 0 but not in epoch 2.
        pair = next(
            (u, v)
            for u in range(30)
            for v in range(30)
            if u != v
            and cut.inside(ph.position(u, 0)) != cut.inside(ph.position(v, 0))
            and cut.inside(ph.position(u, 2)) == cut.inside(ph.position(v, 2))
        )
        inj.begin_round(0)
        assert inj.message_fates(0, *pair) == ()
        inj.begin_round(4)  # epoch 2
        assert inj.message_fates(4, *pair) == (1,)


class TestStalls:
    def test_certain_stall(self):
        plan = FaultPlan(seed=2, stalls=(NodeStall(stall_p=1.0),))
        inj = FaultInjector(plan)
        inj.begin_round(0)
        assert all(inj.stalled(0, v) for v in range(8))
        assert inj.round_stats().stalled == 8
        # Stalls alone never touch the message path.
        assert not inj.message_faults_active

    def test_targeted_nodes_only(self):
        plan = FaultPlan(seed=2, stalls=(NodeStall(stall_p=1.0, nodes=frozenset({5})),))
        inj = FaultInjector(plan)
        inj.begin_round(0)
        assert inj.stalled(0, 5)
        assert not inj.stalled(0, 6)

    def test_window(self):
        plan = FaultPlan(seed=2, stalls=(NodeStall(stall_p=1.0, start=3),))
        inj = FaultInjector(plan)
        inj.begin_round(2)
        assert not inj.stalled(2, 1)
        inj.begin_round(3)
        assert inj.stalled(3, 1)

    def test_empirical_stall_rate(self):
        plan = FaultPlan(seed=2, stalls=(NodeStall(stall_p=0.3),))
        inj = FaultInjector(plan)
        hits = 0
        for t in range(20):
            inj.begin_round(t)
            hits += sum(inj.stalled(t, v) for v in range(20))
        assert 0.15 < hits / 400 < 0.45


class TestRateCap:
    def make(self, limit=2, defer_rounds=3, **kw):
        plan = FaultPlan(
            seed=5, ratecaps=(RateCap(limit=limit, defer_rounds=defer_rounds, **kw),)
        )
        inj = FaultInjector(plan)
        inj.begin_round(0)
        return inj

    def test_under_budget_clean(self):
        inj = self.make(limit=3)
        assert inj.message_fates(0, 1, 2) == (1,)
        assert inj.message_fates(0, 1, 3) == (1,)
        assert inj.message_fates(0, 1, 4) == (1,)
        assert inj.round_stats() is None

    def test_overflow_deferred_never_dropped(self):
        """Conservation: every send yields >= 1 copy; overflow is delayed."""
        inj = self.make(limit=2, defer_rounds=3)
        fates = [inj.message_fates(0, 1, dst) for dst in range(2, 9)]
        # 7 sends from node 1: 2 on time, 2 deferred one period, 2 two, 1 three.
        assert all(len(f) == 1 for f in fates)  # nothing lost
        assert fates == [(1,), (1,), (4,), (4,), (7,), (7,), (10,)]
        assert inj.round_stats().deferred == 5
        assert inj.round_stats().dropped == 0

    def test_budget_is_per_source(self):
        inj = self.make(limit=1, defer_rounds=2)
        assert inj.message_fates(0, 1, 9) == (1,)
        assert inj.message_fates(0, 2, 9) == (1,)  # different src, own budget
        assert inj.message_fates(0, 1, 8) == (3,)

    def test_budget_resets_each_round(self):
        inj = self.make(limit=1)
        assert inj.message_fates(0, 1, 2) == (1,)
        assert inj.message_fates(0, 1, 3) != (1,)
        inj.begin_round(1)
        assert inj.message_fates(1, 1, 2) == (1,)

    def test_targeted_nodes_only(self):
        inj = self.make(limit=1, defer_rounds=2, nodes=frozenset({7}))
        assert inj.message_fates(0, 7, 1) == (1,)
        assert inj.message_fates(0, 7, 2) == (3,)
        for dst in range(1, 6):
            assert inj.message_fates(0, 8, dst) == (1,)

    def test_duplicates_consume_budget(self):
        plan = FaultPlan(
            seed=5,
            messages=(MessageFaults(duplicate_p=1.0),),
            ratecaps=(RateCap(limit=1, defer_rounds=2),),
        )
        inj = FaultInjector(plan)
        inj.begin_round(0)
        # One send explodes to two copies: the second is over budget.
        assert inj.message_fates(0, 1, 2) == (1, 3)

    def test_trivial_cap_inactive(self):
        plan = FaultPlan(seed=5, ratecaps=(RateCap(),))
        inj = FaultInjector(plan)
        inj.begin_round(0)
        assert not inj.message_faults_active
        assert inj.message_fates(0, 1, 2) == (1,)


class TestLatencyMatrix:
    def make(self, delays):
        ph = RngService(3).position_hash()
        plan = FaultPlan(seed=1, latencies=(LatencyMatrix(delays=delays),))
        return FaultInjector(plan, position_hash=ph), ph

    def test_requires_position_hash(self):
        plan = FaultPlan(latencies=(LatencyMatrix(delays=((0, 1), (1, 0)),),))
        with pytest.raises(ValueError):
            FaultInjector(plan)

    def test_band_delays_applied(self):
        matrix = LatencyMatrix(delays=((0, 5), (5, 0)))
        inj, ph = self.make(((0, 5), (5, 0)))
        inj.begin_round(0)
        by_band = {0: [], 1: []}
        for v in range(40):
            by_band[matrix.band_of(ph.position(v, 0))].append(v)
        assert by_band[0] and by_band[1]
        same = inj.message_fates(0, by_band[0][0], by_band[0][1])
        cross = inj.message_fates(0, by_band[0][0], by_band[1][0])
        assert same == (1,)
        assert cross == (6,)
        assert inj.round_stats().delayed == 1

    def test_zero_matrix_trivial(self):
        plan = FaultPlan(seed=1, latencies=(LatencyMatrix(),))
        inj = FaultInjector(plan)
        inj.begin_round(0)
        assert not inj.message_faults_active

    def test_deterministic_schedule(self):
        def drive():
            inj, _ = self.make(((0, 2, 4), (2, 0, 2), (4, 2, 0)))
            out = []
            for t in range(4):
                inj.begin_round(t)
                out.extend(inj.message_fates(t, s, d) for s in range(8) for d in range(8))
            return out

        assert drive() == drive()


class TestAsymmetricPartition:
    def make(self, lo=0.0, hi=0.5):
        ph = RngService(3).position_hash()
        plan = FaultPlan(seed=1, asymmetric=(AsymmetricPartition(lo=lo, hi=hi),))
        return FaultInjector(plan, position_hash=ph), ph

    def test_one_way_invariant(self):
        """A->B blocked while B->A flows, for every cross pair."""
        inj, ph = self.make()
        inj.begin_round(0)
        arc = AsymmetricPartition(0.0, 0.5)
        inside = [v for v in range(40) if arc.inside(ph.position(v, 0))]
        outside = [v for v in range(40) if not arc.inside(ph.position(v, 0))]
        assert inside and outside
        for a in inside[:5]:
            for b in outside[:5]:
                assert inj.message_fates(0, a, b) == ()  # inside -> outside dies
                assert inj.message_fates(0, b, a) == (1,)  # reverse flows
        assert inj.message_fates(0, inside[0], inside[1]) == (1,)
        assert inj.message_fates(0, outside[0], outside[1]) == (1,)

    def test_drops_counted(self):
        inj, ph = self.make()
        inj.begin_round(0)
        arc = AsymmetricPartition(0.0, 0.5)
        a = next(v for v in range(40) if arc.inside(ph.position(v, 0)))
        b = next(v for v in range(40) if not arc.inside(ph.position(v, 0)))
        inj.message_fates(0, a, b)
        assert inj.round_stats().dropped == 1


class TestDeterminism:
    def drive(self, plan):
        inj = FaultInjector(plan)
        fates = []
        for t in range(5):
            inj.begin_round(t)
            for src in range(6):
                for dst in range(6):
                    fates.append(inj.message_fates(t, src, dst))
                fates.append(inj.stalled(t, src))
        return fates

    def test_same_seed_identical_schedule(self):
        plan = FaultPlan.simple(seed=13, drop_p=0.3, delay_p=0.3, stall_p=0.2)
        assert self.drive(plan) == self.drive(plan)

    def test_different_seed_different_schedule(self):
        a = FaultPlan.simple(seed=13, drop_p=0.5, stall_p=0.3)
        b = FaultPlan.simple(seed=14, drop_p=0.5, stall_p=0.3)
        assert self.drive(a) != self.drive(b)
