"""Extraction facts: what ProtocolModel recovers from small trees."""

import textwrap

from repro.analysis.flow import ProjectIndex
from repro.analysis.proto import ProtocolModel, ProtocolSpec
from repro.analysis.source_cache import SourceCache, collect_py_files

BASE_SPEC = {
    "schema": 1,
    "messages": {"Ping": {"anchor": "t", "fields": ["data"]}},
}


def _model(tmp_path, sources, spec=None):
    for name, src in sources.items():
        (tmp_path / name).write_text(textwrap.dedent(src))
    cache = SourceCache(tmp_path)
    modules = [cache.module(p) for p in collect_py_files([tmp_path])]
    index = ProjectIndex(modules)
    return ProtocolModel(
        modules, index, ProtocolSpec.from_dict(spec or BASE_SPEC)
    )


def test_registry_fields_defaults_and_skips(tmp_path):
    model = _model(
        tmp_path,
        {
            "m.py": """
            from dataclasses import dataclass, field
            from typing import ClassVar


            @dataclass(frozen=True)
            class Ping:
                __protocol__ = True

                data: int
                retries: int = 0
                _secret: int = 0
                KIND: ClassVar[str] = "ping"


            @dataclass
            class Unmarked:
                data: int
            """
        },
    )
    assert set(model.registry) == {"Ping"}
    ping = model.registry["Ping"]
    # Underscore-prefixed and ClassVar pseudo-fields are not wire fields.
    assert [(f.name, f.has_default) for f in ping.fields] == [
        ("data", False),
        ("retries", True),
    ]
    # ...but the plain dataclass is still tracked for P6 module coverage.
    assert [n for n, _ in model.dataclasses_by_module["m"]] == [
        "Ping",
        "Unmarked",
    ]


def test_dispatch_dict_loop_alias_and_consumers(tmp_path):
    model = _model(
        tmp_path,
        {
            "m.py": """
            from dataclasses import dataclass


            @dataclass(frozen=True)
            class Ping:
                __protocol__ = True

                data: int


            class Node:
                def on_round(self, ctx):
                    pings = []
                    buckets = {Ping: pings}
                    for msg in ctx.inbox:
                        buckets[type(msg)].append(msg)
                    self._drain(pings)
                    for p in pings:
                        self._one(p)

                def _drain(self, pings):
                    pass

                def _one(self, p):
                    pass
            """
        },
    )
    (entry,) = model.dispatch
    assert (entry.message, entry.bucket, entry.node_class) == (
        "Ping",
        "pings",
        "Node",
    )
    # Both the bucket hand-off and the loop-alias hand-off are consumers.
    assert {(c.message, c.handler) for c in model.consumers} == {
        ("Ping", "Node._drain"),
        ("Ping", "Node._one"),
    }


def test_on_handler_annotation_counts_as_dispatch(tmp_path):
    model = _model(
        tmp_path,
        {
            "m.py": """
            from dataclasses import dataclass


            @dataclass(frozen=True)
            class Ping:
                __protocol__ = True

                data: int


            class Node:
                def on_round(self, ctx):
                    pass

                def on_ping(self, ctx, msg: Ping):
                    return msg.data
            """
        },
    )
    (entry,) = model.dispatch
    assert (entry.message, entry.bucket) == ("Ping", "msg")
    (consumer,) = model.consumers
    assert consumer.handler == "Node.on_ping"


def test_construction_phase_context_narrows_under_guard(tmp_path):
    model = _model(
        tmp_path,
        {
            "m.py": """
            from dataclasses import dataclass


            class Phase:
                FRESH = 1
                ESTABLISHED = 2


            @dataclass(frozen=True)
            class Ping:
                __protocol__ = True

                data: int


            def free():
                return Ping(data=0)


            class Node:
                def on_round(self, ctx):
                    if self.phase is Phase.ESTABLISHED:
                        self._emit(ctx)

                def _emit(self, ctx):
                    ctx.send(0, Ping(data=1))
            """
        },
    )
    by_qname = {c.qname: c for c in model.constructions}
    # Outside any node class there is no phase context at all.
    assert by_qname["m.free"].phases is None
    # The helper inherits the interprocedural {established} entry context.
    assert by_qname["m.Node._emit"].phases == frozenset({"established"})


def test_payload_sites_direct_wrapper_and_tag_checks(tmp_path):
    model = _model(
        tmp_path,
        {
            "m.py": """
            def make_routed_message(msg_id, payload):
                return (msg_id, payload)


            class Router:
                def _make_routed(self, ctx, msg_id, target, payload):
                    return make_routed_message(msg_id, payload)

                def on_round(self, ctx):
                    pass

                def launch(self, ctx, key):
                    p = ("put", key, 1) if key else ("get", key, 2)
                    return self._make_routed(ctx, 7, 0, p)


            def direct(body):
                return make_routed_message(1, payload=("join", body))


            def deliver(msg):
                tag = msg.payload[0]
                if tag == "put":
                    return 1
                if msg.payload[0] == "get":
                    return 2
                return None
            """
        },
    )
    # The wrapper call maps its positional arg onto the callee's `payload`
    # parameter (the dht.py idiom), and the IfExp binding yields both tags.
    assert {p.tag for p in model.payload_sites} == {"put", "get", "join"}
    assert {c.tag for c in model.payload_checks} == {"put", "get"}


def test_send_hops_step_extraction_both_arities(tmp_path):
    model = _model(
        tmp_path,
        {
            "m.py": """
            def node_side(ctx, msg, dsts):
                ctx.send_hops(msg, 0, dsts)


            def network_side(net, src, msg, step, dsts):
                net.send_hops(src, msg, step, dsts)


            def batch(plane, items):
                plane.send_hops_batch([(m, s + 1, d) for m, s, d in items])
            """
        },
        spec=BASE_SPEC,
    )
    import ast

    exprs = [ast.unparse(sw.expr) for sw in model.step_writes]
    # 3-arg context form takes args[1]; 4+-arg network form takes args[2];
    # batch tuples contribute their second element (the comprehension's
    # target tuple is over-harvested too — `s` is a loop-target
    # passthrough, so P4 still classifies it as legal).
    assert sorted(exprs) == ["0", "s", "s + 1", "step"]
    apis = {s.api for s in model.send_sites}
    assert apis == {"send_hops", "send_hops_batch"}


def test_ttl_writes_need_spec_and_matching_attrs(tmp_path):
    src = {
        "m.py": """
        class Node:
            def on_round(self, ctx):
                pass

            def accept(self, ctx, owner):
                self.tokens.append((ctx.round + 4, owner))
                self.other.append((ctx.round + 4, owner))

            def grant(self, ctx, owner):
                self.grants[owner] = ctx.round + 4
        """
    }
    spec = dict(
        BASE_SPEC,
        ttl={
            "anchor": "t",
            "pools": ["tokens"],
            "ledgers": ["grants"],
            "sources": ["round + 4"],
        },
    )
    model = _model(tmp_path, src, spec=spec)
    assert {(w.attr, w.kind) for w in model.ttl_writes} == {
        ("tokens", "pool"),
        ("grants", "ledger"),
    }
    # Without a ttl spec nothing is harvested at all.
    lean = _model(tmp_path, src, spec=BASE_SPEC)
    assert lean.ttl_writes == []


def test_epoch_writes_only_inside_node_classes(tmp_path):
    model = _model(
        tmp_path,
        {
            "m.py": """
            class Node:
                def on_round(self, ctx):
                    pass

                def _cutover(self, e):
                    self.epoch = e


            class Plain:
                def set(self, e):
                    self.epoch = e
            """
        },
    )
    (write,) = model.epoch_writes
    assert write.qname == "m.Node._cutover"


def test_analysis_package_modules_are_never_site_scanned(tmp_path):
    model = _model(
        tmp_path,
        {
            "m.py": """
            # repro: module(repro.analysis.fake.rules)
            def helper(plane, msg, step, dsts):
                plane.send_hops(msg, step, dsts)
                self_writes = []
                self_writes.append(step)
            """
        },
    )
    assert model.send_sites == []
    assert model.step_writes == []


def test_summary_counts_are_complete_and_deterministic(tmp_path):
    model = _model(
        tmp_path,
        {
            "m.py": """
            from dataclasses import dataclass


            @dataclass(frozen=True)
            class Ping:
                __protocol__ = True

                data: int


            def emit(ctx):
                ctx.send(0, Ping(data=1))
            """
        },
    )
    assert model.summary() == {
        "messages": 1,
        "node_classes": 0,
        "dispatch_entries": 0,
        "constructions": 1,
        "payload_sites": 0,
        "send_sites": 1,
        "step_writes": 0,
        "ttl_writes": 0,
        "epoch_writes": 0,
    }
