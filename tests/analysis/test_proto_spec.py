"""The declarative spec: validation, round-trip, normalisation, docs table."""

import json

import pytest

from repro.analysis.lint import LintError
from repro.analysis.proto import (
    PHASES,
    ProtocolSpec,
    contract_markdown,
    load_spec,
    norm_expr,
)

MINIMAL = {
    "schema": 1,
    "messages": {
        "Ping": {"anchor": "test anchor", "fields": ["data"]},
    },
}

FULL = {
    "schema": 1,
    "source": "fixture",
    "message_modules": ["protofix.msgs"],
    "messages": {
        "Ping": {
            "anchor": "a1",
            "kind": "message",
            "fields": ["data"],
            "producer_phases": ["established"],
            "consumer_phases": ["fresh", "established"],
        },
        "Rec": {
            "anchor": "a2",
            "kind": "record",
            "fields": ["node", "epoch"],
            "producer_phases": None,
            "consumer_phases": None,
            "epoch_field_sources": ["e + 2"],
        },
    },
    "payloads": {
        "probe": {"anchor": "a3", "producer_phases": ["established"]},
    },
    "hops": {
        "anchor": "a4",
        "step_init": 0,
        "bound": "final_step",
        "wire_tuple": ["is_hop", "frame", "step"],
    },
    "codec": {"module": "protofix.codec", "encoder": "pack", "decoder": "unpack"},
    "epochs": {"anchor": "a5", "writers": {"Node._cutover": ["e"]}},
    "ttl": {
        "anchor": "a6",
        "pools": ["tokens"],
        "ledgers": ["grants"],
        "sources": ["round + TOKEN_TTL"],
    },
}


def test_minimal_spec_defaults():
    spec = ProtocolSpec.from_dict(MINIMAL)
    (ping,) = spec.messages
    assert ping.kind == "message" and ping.dispatched
    assert ping.producer_phases == PHASES  # null -> all phases
    assert ping.consumer_phases == PHASES
    assert spec.hops is None and spec.codec is None
    assert spec.epochs is None and spec.ttl is None
    assert spec.message("Ping") is ping
    assert spec.message("Nope") is None


def test_full_spec_round_trips_through_to_dict():
    spec = ProtocolSpec.from_dict(FULL)
    again = ProtocolSpec.from_dict(spec.to_dict())
    assert again == spec
    assert again.payload("probe").producer_phases == ("established",)
    assert again.payload("nope") is None
    assert spec.epochs.allowed("protofix.p5.Node._cutover") == ("e",)
    assert spec.epochs.allowed("protofix.p5.Node.rogue") is None


def test_record_kind_is_not_dispatched():
    spec = ProtocolSpec.from_dict(FULL)
    assert not spec.message("Rec").dispatched


def test_phase_lists_are_normalised_to_protocol_order():
    raw = dict(MINIMAL)
    raw["messages"] = {
        "Ping": {
            "anchor": "a",
            "producer_phases": ["established", "new"],
        }
    }
    spec = ProtocolSpec.from_dict(raw)
    assert spec.message("Ping").producer_phases == ("new", "established")


@pytest.mark.parametrize(
    ("mutate", "match"),
    [
        (lambda d: d.pop("schema"), "schema must be 1"),
        (lambda d: d.update(schema=2), "schema must be 1"),
        (lambda d: d.update(messages={}), "non-empty object"),
        (lambda d: d.update(messages={"X": {}}), "needs a non-empty `anchor`"),
        (
            lambda d: d.update(messages={"X": {"anchor": "a", "kind": "weird"}}),
            "kind must be one of",
        ),
        (
            lambda d: d.update(
                messages={"X": {"anchor": "a", "fields": [1]}}
            ),
            "must be a list of strings",
        ),
        (
            lambda d: d.update(
                messages={"X": {"anchor": "a", "producer_phases": ["later"]}}
            ),
            "unknown phases",
        ),
        (
            lambda d: d.update(hops={"anchor": "a", "step_init": "zero"}),
            "step_init must be an int",
        ),
        (
            lambda d: d.update(codec={"module": "m", "encoder": "e"}),
            "codec.decoder must be a string",
        ),
        (
            lambda d: d.update(epochs={"anchor": "a", "writers": []}),
            "writers must be an object",
        ),
    ],
)
def test_validation_errors(mutate, match):
    raw = json.loads(json.dumps(MINIMAL))
    mutate(raw)
    with pytest.raises(LintError, match=match):
        ProtocolSpec.from_dict(raw)


def test_load_spec_missing_file_and_bad_json(tmp_path):
    with pytest.raises(LintError, match="no protocol spec at"):
        load_spec(tmp_path / "absent.json")
    bad = tmp_path / "spec.json"
    bad.write_text("{not json")
    with pytest.raises(LintError, match="not valid JSON"):
        load_spec(bad)


def test_load_spec_uses_file_name_as_relpath(tmp_path):
    path = tmp_path / "myspec.json"
    path.write_text(json.dumps(MINIMAL))
    assert load_spec(path).relpath == "myspec.json"


def test_norm_expr_strips_receiver_plumbing():
    assert norm_expr("self.params.round + TOKEN_TTL") == "round + TOKEN_TTL"
    assert norm_expr("ctx.round + 4 * self.lam") == "round + 4 * lam"
    assert norm_expr("e  +  2") == "e + 2"


def test_contract_markdown_rows_cover_messages_and_payloads():
    spec = ProtocolSpec.from_dict(FULL)
    table = contract_markdown(spec)
    lines = table.splitlines()
    assert lines[0].startswith("| message | kind |")
    assert len(lines) == 2 + len(spec.messages) + len(spec.payloads)
    assert any("`Ping` | message" in line for line in lines)
    # Records are never dispatched: the consumer cell is a dash.
    rec_row = next(line for line in lines if "`Rec`" in line)
    assert "| — |" in rec_row
    assert any('payload `("probe", …)` | routed' in line for line in lines)
