# repro: module(repro.sim.example)
"""D3 bad: hash order leaks into execution order."""


def leak(table: dict[str, int]) -> list[str]:
    out = [k for k in table.keys()]
    for v in {3, 1, 2}:
        out.append(str(v))
    return out
