# repro: module(repro.sim.example)
"""D3 ok: hash-ordered collections are sorted before iteration."""


def ordered() -> list[int]:
    return [v for v in sorted({3, 1, 2})]
