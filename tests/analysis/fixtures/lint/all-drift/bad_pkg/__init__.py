# repro: module(repro.examplepkg)
"""X1 bad: every flavour of __all__ drift at once.

``hidden`` is imported but not in the child's __all__ (and missing from this
package's __all__); the child's ``beta`` is not re-exported; ``ghost`` is
advertised but bound nowhere.
"""

from .one import alpha, hidden

__all__ = ["alpha", "ghost"]
