# repro: module(repro.examplepkg)
"""X1 ok: the package re-exports exactly its child's __all__."""

from .one import alpha, beta

__all__ = ["alpha", "beta"]
