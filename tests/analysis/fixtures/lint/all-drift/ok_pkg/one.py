"""Child module with a declared public surface."""

__all__ = ["alpha", "beta"]


def alpha() -> int:
    return 1


def beta() -> int:
    return 2
