# repro: module(repro.config)
"""D5 ok: repro.config is the sanctioned place to read the environment."""

import os


def record_opt_in() -> bool:
    return os.environ.get("REPRO_BENCH_RECORD") == "1"
