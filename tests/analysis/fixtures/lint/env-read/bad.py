# repro: module(repro.sim.example)
"""D5 bad: ambient environment steering a simulation module."""

import os
from os import getenv


def fanout() -> int:
    return int(os.environ.get("REPRO_FANOUT", "3")) + int(getenv("REPRO_EXTRA") or 0)
