# repro: module(repro.sim.example)
"""W1 bad: a bare waiver is inert and reported."""

import time


def measure() -> float:
    # repro: allow(wallclock)
    return time.perf_counter()
