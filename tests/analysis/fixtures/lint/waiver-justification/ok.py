# repro: module(repro.sim.example)
"""W1 ok: the waiver carries a justification (and matches a finding)."""

import time


def measure() -> float:
    # repro: allow(wallclock): measurement metadata only; never enters sim state.
    return time.perf_counter()
