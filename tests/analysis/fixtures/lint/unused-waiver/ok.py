# repro: module(repro.sim.example)
"""W2 ok: every justified waiver matches a real finding."""

import time


def measure() -> float:
    # repro: allow(wallclock): profiler metadata; timings never reach the fingerprint.
    return time.perf_counter()
