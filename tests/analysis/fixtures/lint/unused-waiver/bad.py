# repro: module(repro.sim.example)
"""W2 bad: a stale waiver excusing nothing."""


def tally(xs: list[int]) -> int:
    # repro: allow(wallclock): stale — the clock read below was removed long ago.
    return sum(xs)
