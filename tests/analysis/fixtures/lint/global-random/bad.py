# repro: module(repro.sim.example)
"""D1 bad: process-global RNG state."""

import random

import numpy as np


def draw() -> float:
    np.random.seed(7)
    return random.random() + np.random.uniform()
