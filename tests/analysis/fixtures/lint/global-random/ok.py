# repro: module(repro.sim.example)
"""D1 ok: randomness flows through explicitly seeded Generator objects."""

import numpy as np


def draw(seed: int) -> float:
    rng = np.random.default_rng(seed)
    return float(rng.uniform())
