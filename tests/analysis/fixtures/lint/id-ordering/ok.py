# repro: module(repro.sim.example)
"""D4 ok: keys derive from stable protocol identifiers."""


def dedup_key(node_id: int, seq: int) -> tuple[int, int]:
    return (node_id, seq)
