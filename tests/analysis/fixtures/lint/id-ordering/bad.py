# repro: module(repro.sim.example)
"""D4 bad: object addresses used as keys."""


def register(seen: dict[int, object], msg: object) -> None:
    seen[id(msg)] = msg
