# repro: module(repro.sim.example)
"""D2 ok: all timing derives from the simulated round counter."""


def elapsed_rounds(t0: int, t1: int) -> int:
    return t1 - t0
