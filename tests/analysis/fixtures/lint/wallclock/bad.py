# repro: module(repro.sim.example)
"""D2 bad: wall-clock reads make a run depend on the host."""

import time
from time import perf_counter


def stamp() -> float:
    return time.time() + perf_counter()
