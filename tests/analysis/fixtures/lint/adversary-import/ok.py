# repro: module(repro.adversary.example)
"""L1 ok: sim types are imported for annotations only."""

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.sim.trace import GraphTrace


def describe(trace: "GraphTrace") -> str:
    return f"trace with horizon {trace.horizon}"
