# repro: module(repro.adversary.example)
"""L1 bad: runtime imports give the adversary a channel to fresh state."""

import repro.core.node
from repro.sim.trace import GraphTrace


def peek(trace: GraphTrace) -> object:
    return repro.core.node.Phase, trace.horizon
