# repro: module(repro.adversary.example)
"""L2 bad: spelunking past the lateness clamp."""


def churn_targets(view) -> list[tuple[int, int]]:
    return view._trace.edges_at(view._now)
