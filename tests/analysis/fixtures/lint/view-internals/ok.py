# repro: module(repro.adversary.example)
"""L2 ok: world state reads go through the AdversaryView public API."""


def churn_targets(view) -> list[int]:
    return [v for v in view.alive() if view.age_of(v) > 2]
