# repro: module(repro.sim.example)
"""L3 bad: live state handed across the lateness wall."""

from repro.adversary.view import AdversaryView


class Driver:
    def consult(self, t: int) -> object:
        view = AdversaryView(t, self.trace, self.lifecycle)
        return self.adversary.decide(view, self.trace, engine=self)
