# repro: module(repro.sim.example)
"""L3 ok: the adversary is consulted with a lateness-clamped view only."""

from repro.adversary.view import AdversaryView


class Driver:
    def consult(self, t: int) -> object:
        view = AdversaryView(
            t,
            self.trace,
            self.lifecycle,
            topology_lateness=self.params.a,
            state_lateness=self.params.b,
        )
        return self.adversary.decide(view)
