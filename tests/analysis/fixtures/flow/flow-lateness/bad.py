# repro: module(repro.sim.flowfix_badwall)
"""F1 bad: live state reaches the adversary *around* the syntactic wall.

Both leaks below are invisible to the L-family lint rules — no forbidden
expression ever appears inside a ``decide(...)`` call — and are caught
only by tracking the values interprocedurally.
"""


def _hand(adv, payload):
    adv.decide(payload)


class Driver:
    def consult(self, t: int) -> object:
        snap = self.trace
        return self.adversary.decide(snap)

    def indirect(self) -> None:
        _hand(self.adversary, self.network)
