# repro: module(repro.sim.flowfix_okwall)
"""F1 ok: live state crosses the wall only inside a clamped AdversaryView.

The view travels through a helper on purpose: the sanitizer's effect must
survive interprocedural propagation, not just a direct ``decide`` call.
"""

from repro.adversary.view import AdversaryView


def _consult(adv, view):
    return adv.decide(view)


class Driver:
    def consult(self, t: int) -> object:
        view = AdversaryView(
            t,
            self.trace,
            self.lifecycle,
            topology_lateness=self.params.a,
            state_lateness=self.params.b,
        )
        return _consult(self.adversary, view)
