# repro: module(repro.sim.flowfix_badclock)
"""F2 bad: a wall-clock read smuggled through ``getattr`` and a helper.

No ``time.<attr>`` attribute node ever appears, so the D2 wallclock rule
cannot see this; the flow engine tracks the value from the ``getattr``
through ``_stamp``'s return into fingerprint-feeding state.
"""

import time


def _stamp() -> float:
    clock = getattr(time, "perf_counter")
    return clock()


class Recorder:
    def mark(self) -> None:
        self.started_at = _stamp()
