# repro: module(repro.sim.flowfix_okclock)
"""F2 ok: fingerprint-feeding state derives from the round counter only."""


def _stamp(t: int) -> int:
    return 3 * t + 1


class Recorder:
    def mark(self, t: int) -> None:
        self.started_at = _stamp(t)
