# repro: module(protofix.p4_bad)
"""P4 bad: a trajectory launched at step 1 instead of the spec'd 0, an
increment with no `final_step` bound check anywhere in scope, and a TTL
stamp from an off-spec expiry expression."""
from dataclasses import dataclass


@dataclass(frozen=True)
class Frame:
    """Fixture record."""

    __protocol__ = True

    body: int


class Hop:
    def __init__(self, frame, step, final_step):
        self.frame = frame
        self.step = step
        self.final_step = final_step


def launch(plane, frame):
    plane.send_hops(Hop(frame, 1, 3), 1, [1])


def forward(plane, hop, dsts):
    plane.send_hops(hop, hop.step + 1, dsts)


class Node:
    def on_round(self, ctx):
        pass

    def accept(self, ctx, owner):
        self.tokens.append((ctx.round + 7, owner))
