# repro: module(protofix.p4_ok)
"""P4 ok: steps are initialised at the spec'd 0, passed through from
parameters, or advanced under a `final_step` bound check; TTL stamps use
the spec'd expiry expression for both the pool and the ledger."""
from dataclasses import dataclass

TOKEN_TTL = 4


@dataclass(frozen=True)
class Frame:
    """Fixture record."""

    __protocol__ = True

    body: int


class Hop:
    def __init__(self, frame, step, final_step):
        self.frame = frame
        self.step = step
        self.final_step = final_step

    def advanced(self):
        if self.step >= self.final_step:
            raise ValueError("trajectory exhausted")
        return Hop(self.frame, self.step + 1, self.final_step)


def launch(plane, frame):
    plane.send_hops(Hop(frame, 0, 3), 0, [1])


def forward(plane, hop, step, dsts):
    plane.send_hops(hop, step, dsts)


class Node:
    def on_round(self, ctx):
        for expiry, owner in list(self.tokens):
            if expiry <= ctx.round:
                self.tokens.remove((expiry, owner))

    def accept(self, ctx, owner):
        self.tokens.append((ctx.round + TOKEN_TTL, owner))

    def grant(self, ctx, owner):
        self.grants[owner] = ctx.round + TOKEN_TTL
