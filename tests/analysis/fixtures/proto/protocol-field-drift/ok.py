# repro: module(protofix.p3_ok)
"""P3 ok: the spec's field list, the dataclass and every constructor
call agree (names, order, required fields)."""
from dataclasses import dataclass


@dataclass(frozen=True)
class Rec:
    """Fixture record."""

    __protocol__ = True

    node: int
    pos: float


def launch(nid, position):
    return Rec(nid, pos=position)


def relaunch(nid):
    return Rec(node=nid, pos=0.0)
