# repro: module(protofix.p3_bad)
"""P3 bad: the dataclass renamed `pos` to `position` without touching
the spec; one call overflows positionally, one passes the stale field
name; the codec packs a 4-tuple and unpacks only one wire column
against the spec's 3-column wire tuple."""
from dataclasses import dataclass


@dataclass(frozen=True)
class Rec:
    """Fixture record whose second field drifted from the spec."""

    __protocol__ = True

    node: int
    position: float


def launch(nid, position):
    return Rec(nid, position, 7)


def relaunch(nid):
    return Rec(node=nid, pos=0.0)


def _msg_key(msg):
    return (1, msg, 0, 0)


def _decode_msg(is_hop, frame):
    return frame
