# repro: module(protofix.p5_bad)
"""P5 bad: the spec'd writer uses an off-spec source, a rogue method
writes self.epoch at all, and the message epoch field is filled from a
bare constant instead of the spec'd expression."""
from dataclasses import dataclass


@dataclass(frozen=True)
class JoinRec:
    """Fixture record."""

    __protocol__ = True

    node: int
    epoch: int


class Node:
    def on_round(self, ctx):
        pass

    def _cutover(self, e):
        self.epoch = e + 5

    def rogue(self):
        self.epoch = self.epoch + 1

    def launch(self, nid):
        return JoinRec(node=nid, epoch=9)
