# repro: module(protofix.p5_ok)
"""P5 ok: self.epoch is written only by the spec'd writer from its
spec'd source (None — demotion — is always legal), and the message epoch
field is filled from the spec'd expression."""
from dataclasses import dataclass


@dataclass(frozen=True)
class JoinRec:
    """Fixture record."""

    __protocol__ = True

    node: int
    epoch: int


class Node:
    def on_round(self, ctx):
        pass

    def _cutover(self, e):
        self.epoch = e

    def demote(self):
        self.epoch = None

    def launch(self, nid, e):
        return JoinRec(node=nid, epoch=e + 2)
