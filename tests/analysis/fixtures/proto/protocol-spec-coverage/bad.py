# repro: module(protofix.p6_bad)
"""P6 bad: a marked class with no spec entry, an unmarked dataclass in a
spec'd message module, a rogue payload tag, and — because this file
implements neither `Ping` nor the "probe" tag — the spec-side findings
for an unimplemented message and a never-emitted payload."""
from dataclasses import dataclass


@dataclass(frozen=True)
class Rogue:
    """Marked but never given a spec entry."""

    __protocol__ = True

    data: int


@dataclass(frozen=True)
class Stray:
    """A message-module dataclass missing the __protocol__ marker."""

    data: int


def probe(state, make_routed_message):
    return make_routed_message(payload=("mystery", state))


def deliver(msg):
    tag, body = msg.payload
    if tag == "mystery":
        return body
    return None
