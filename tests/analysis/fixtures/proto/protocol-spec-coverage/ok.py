# repro: module(protofix.p6_ok)
"""P6 ok: registry == spec exactly, every dataclass in the message
module carries the marker, and emitted payload tags match the spec's
payload table in both directions."""
from dataclasses import dataclass


@dataclass(frozen=True)
class Ping:
    """Fixture record."""

    __protocol__ = True

    data: int


def probe(state, make_routed_message):
    return make_routed_message(payload=("probe", state))


def deliver(msg):
    tag, body = msg.payload
    if tag == "probe":
        return body
    return None
