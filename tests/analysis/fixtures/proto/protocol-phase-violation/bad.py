# repro: module(protofix.p2_bad)
"""P2 bad: beats are handed off in any phase, constructed under a FRESH
guard, and the probe payload is emitted with no phase guard at all."""
from dataclasses import dataclass


class Phase:
    NEW = 0
    FRESH = 1
    ESTABLISHED = 2


@dataclass(frozen=True)
class Beat:
    """Fixture message."""

    __protocol__ = True

    owner: int


class Node:
    def on_round(self, ctx):
        beats = []
        buckets = {Beat: beats}
        for msg in ctx.inbox:
            buckets[type(msg)].append(msg)
        self._handle_beats(beats)
        if self.phase is Phase.FRESH:
            self._emit(ctx)

    def _handle_beats(self, beats):
        for msg in beats:
            self.owner = msg.owner

    def _emit(self, ctx):
        ctx.send(0, Beat(owner=self.owner))

    def probe(self, ctx, make_routed_message):
        return make_routed_message(payload=("probe", self.owner))

    def deliver(self, msg):
        tag, body = msg.payload
        if tag == "probe":
            return body
        return None
