# repro: module(protofix.p2_ok)
"""P2 ok: construction, bucket hand-off and payload emission all sit
under the spec'd `self.phase is Phase.ESTABLISHED` guard (directly, or
via the interprocedural entry context of `_emit`)."""
from dataclasses import dataclass


class Phase:
    NEW = 0
    FRESH = 1
    ESTABLISHED = 2


@dataclass(frozen=True)
class Beat:
    """Fixture message."""

    __protocol__ = True

    owner: int


class Node:
    def on_round(self, ctx):
        beats = []
        buckets = {Beat: beats}
        for msg in ctx.inbox:
            buckets[type(msg)].append(msg)
        if self.phase is Phase.ESTABLISHED:
            self._handle_beats(beats)
            self._emit(ctx)

    def _handle_beats(self, beats):
        for msg in beats:
            self.owner = msg.owner

    def _emit(self, ctx):
        ctx.send(0, Beat(owner=self.owner))

    def probe(self, ctx, make_routed_message):
        if self.phase is not Phase.ESTABLISHED:
            return None
        return make_routed_message(payload=("probe", self.owner))

    def deliver(self, msg):
        tag, body = msg.payload
        if tag == "probe":
            return body
        return None
