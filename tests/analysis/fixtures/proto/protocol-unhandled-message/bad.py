# repro: module(protofix.p1_bad)
"""P1 bad: Ping is constructed but never dispatched; the Pong dispatch
entry is dead (nothing constructs Pong); the probe payload tag is
emitted but never tested anywhere."""
from dataclasses import dataclass


@dataclass(frozen=True)
class Ping:
    """Fixture message."""

    __protocol__ = True

    data: int


@dataclass(frozen=True)
class Pong:
    """Fixture message."""

    __protocol__ = True

    data: int


class Node:
    def on_round(self, ctx):
        pongs = []
        buckets = {Pong: pongs}
        for msg in ctx.inbox:
            buckets[type(msg)].append(msg)
        self._handle_pongs(pongs)

    def _handle_pongs(self, pongs):
        for msg in pongs:
            self.last = msg.data

    def emit(self, ctx):
        ctx.send(0, Ping(data=1))

    def probe(self, ctx, make_routed_message):
        return make_routed_message(payload=("probe", self.last))
