# repro: module(protofix.p1_ok)
"""P1 ok: both messages are constructed AND dispatched; the probe payload
tag is emitted AND tested at a delivery site."""
from dataclasses import dataclass


@dataclass(frozen=True)
class Ping:
    """Fixture message."""

    __protocol__ = True

    data: int


@dataclass(frozen=True)
class Pong:
    """Fixture message."""

    __protocol__ = True

    data: int


class Node:
    def on_round(self, ctx):
        pings = []
        pongs = []
        buckets = {Ping: pings, Pong: pongs}
        for msg in ctx.inbox:
            buckets[type(msg)].append(msg)
        self._handle_pings(pings)
        self._handle_pongs(pongs)

    def _handle_pings(self, pings):
        for msg in pings:
            self.last = msg.data

    def _handle_pongs(self, pongs):
        for msg in pongs:
            self.last = msg.data

    def emit(self, ctx):
        ctx.send(0, Ping(data=1))
        ctx.send(0, Pong(data=2))

    def probe(self, ctx, make_routed_message):
        return make_routed_message(payload=("probe", self.last))

    def deliver(self, msg):
        tag, body = msg.payload
        if tag == "probe":
            return body
        return None
