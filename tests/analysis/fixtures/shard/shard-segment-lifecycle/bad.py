"""Bad: segments acquired but never destroyed (local and class-owned)."""

from multiprocessing.shared_memory import SharedMemory


def scratch_round(nbytes):
    shm = SharedMemory(create=True, size=nbytes)  # S4: never destroyed
    shm.buf[0:2] = b"ok"


class Slab:
    """Owns a segment but offers no close/destroy path at all."""

    def __init__(self, nbytes):
        self.shm = SharedMemory(create=True, size=nbytes)  # S4: leaked

    def store(self):
        return self.shm.size
