"""OK: every acquisition reaches close/unlink on the non-exceptional path."""

from multiprocessing.shared_memory import SharedMemory


def scratch_round(nbytes):
    shm = SharedMemory(create=True, size=nbytes)
    try:
        shm.buf[0:2] = b"ok"
        out = bytes(shm.buf[0:2])
    finally:
        shm.close()
        shm.unlink()
    return out


class Slab:
    """Owns a segment; close() releases it (the master calls it in a finally)."""

    def __init__(self, nbytes):
        self.shm = SharedMemory(create=True, size=nbytes)

    def close(self):
        self.shm.close()
        self.shm.unlink()
