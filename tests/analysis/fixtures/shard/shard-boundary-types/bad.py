"""Bad: a closure and a raw shared-buffer view cross the pipe boundary."""

import pickle


def reply(conn, up_shm, items):
    finisher = lambda batch: sorted(batch)  # noqa: E731
    conn.send_bytes(pickle.dumps(finisher))  # S2: lambda over the pipe
    conn.send_bytes(up_shm.buf)  # S2: raw buffer view over the pipe
