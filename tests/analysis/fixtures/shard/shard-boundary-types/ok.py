"""OK: only plain data (tuples of primitives) crosses the pipe boundary."""

import pickle


def reply(conn, items, marks, secs):
    payload = ("sends", (tuple(items), tuple(marks), secs))
    conn.send_bytes(pickle.dumps(payload))
