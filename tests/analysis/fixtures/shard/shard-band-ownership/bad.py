"""Bad: worker code allocates NodeStore slots and writes columns directly."""


def _worker_loop(engine, band, conn, store):
    for v, _jr, _slot in engine.joins:
        slot = store.ensure(v)  # S1: only the master allocates slots
        store.phase[slot] = 2  # S1: direct column write bypasses the API
    for v in engine.leaves:
        store.retire(v)  # S1: only the master retires slots
