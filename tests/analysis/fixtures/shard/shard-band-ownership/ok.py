"""OK: the worker adopts master-allocated slots and publishes via the API."""


def _worker_loop(engine, band, conn, store):
    for v, _jr, slot in engine.joins:
        store.adopt(v, slot)  # slot came from the master's allocator
    for v in sorted(engine.owned):
        engine.protocols[v].publish_state(store, store.slot_of(v))
