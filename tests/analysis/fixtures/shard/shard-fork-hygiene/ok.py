"""OK: worker state lives in locals; randomness comes from forked streams."""


def _worker_main(engine, band, conn):
    seen = {}
    for v in sorted(engine.owned):
        rng = engine.rngs[v]  # per-node stream forked with the snapshot
        seen[v] = rng.random()
    return seen
