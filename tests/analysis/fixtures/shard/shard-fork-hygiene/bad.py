"""Bad: worker code mutates module globals and draws OS entropy."""

import numpy as np

_SEEN = {}
_ROUND = 0


def _worker_main(engine, band, conn):
    global _ROUND  # S5: each fork rebinds a private copy
    _ROUND += 1
    rng = np.random.default_rng()  # S5: unseeded — fresh entropy per fork
    _SEEN[band] = rng.random()  # S5: module-global write diverges per fork
