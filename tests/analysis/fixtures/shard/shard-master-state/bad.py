"""Bad: worker code reads and advances master-only engine state."""


def _worker_main(engine, band, conn):
    decision = engine.adversary.decide(band)  # S3: adversary is master-only
    engine.trace.record(decision)  # S3: tracing is master-only
    if engine.network.plane_rows(band):  # S3: the live network is master-only
        conn.send_bytes(b"busy")
