"""OK: the worker sees only fork-time snapshots and control payloads."""


def _worker_main(engine, band, conn):
    params = engine.params
    for v in sorted(engine.owned):
        proto = engine.protocols[v]
        proto.on_round(v, params)
