"""Engine mechanics for ``repro proto-check``: waivers, baseline, SARIF, CLI."""

import json
import textwrap

import pytest

from repro.analysis.lint import Baseline, LintError, write_baseline
from repro.analysis.proto import (
    ALL_PROTO_RULES,
    proto_rule_table,
    resolve_proto_rules,
    run_proto_check,
)
from repro.analysis.sarif import sarif_report, validate_sarif

SPEC = {
    "schema": 1,
    "messages": {
        "Ping": {"anchor": "engine fixture contract", "fields": ["data"]},
    },
}

# Ping is a dispatched-kind message constructed with no dispatch table
# anywhere: exactly one P1 finding.
BAD_SRC = """
from dataclasses import dataclass


@dataclass(frozen=True)
class Ping:
    __protocol__ = True

    data: int


def emit(ctx):
    ctx.send(0, Ping(data=1))
"""


def _write(tmp_path, source, name="w.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return path


def _spec_file(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(SPEC))
    return path


def test_finding_reported_with_location_and_hint(tmp_path):
    _write(tmp_path, BAD_SRC)
    report = run_proto_check([tmp_path], root=tmp_path, baseline=None, spec=SPEC)
    assert not report.ok
    (finding,) = report.findings
    assert finding.rule == "protocol-unhandled-message"
    assert finding.path == "w.py"
    assert finding.line == 13
    assert "`Ping`" in finding.message and "dispatches" in finding.message
    assert report.protocol["messages"] == 1
    assert report.protocol["constructions"] == 1


def test_justified_waiver_suppresses_and_counts(tmp_path):
    _write(
        tmp_path,
        """
        from dataclasses import dataclass


        @dataclass(frozen=True)
        class Ping:
            __protocol__ = True

            data: int


        def emit(ctx):
            # repro: allow(protocol-unhandled-message): dispatch lands in PR 11
            ctx.send(0, Ping(data=1))
        """,
    )
    report = run_proto_check([tmp_path], root=tmp_path, baseline=None, spec=SPEC)
    assert report.ok
    assert len(report.waived) == 1
    assert report.waived[0].rule == "protocol-unhandled-message"


def test_unjustified_waiver_is_inert(tmp_path):
    _write(
        tmp_path,
        """
        from dataclasses import dataclass


        @dataclass(frozen=True)
        class Ping:
            __protocol__ = True

            data: int


        def emit(ctx):
            # repro: allow(protocol-unhandled-message)
            ctx.send(0, Ping(data=1))
        """,
    )
    report = run_proto_check([tmp_path], root=tmp_path, baseline=None, spec=SPEC)
    assert not report.ok  # the finding survives; W1 reports the bare waiver


def test_stale_proto_waiver_is_reported_here_not_by_lint(tmp_path):
    path = _write(
        tmp_path,
        """
        from dataclasses import dataclass


        @dataclass(frozen=True)
        class Ping:
            __protocol__ = True

            data: int


        def emit(ctx):
            # repro: allow(protocol-unhandled-message): nothing here anymore
            return ctx
        """,
    )
    report = run_proto_check([tmp_path], root=tmp_path, baseline=None, spec=SPEC)
    stale = [f for f in report.findings if f.rule == "unused-waiver"]
    assert len(stale) == 1
    assert "protocol-unhandled-message" in stale[0].message

    from repro.analysis.lint import run_lint

    lint_report = run_lint([path], root=tmp_path, baseline=None)
    assert not any(f.rule == "unused-waiver" for f in lint_report.findings)


def test_stale_waiver_not_flagged_when_its_rule_is_deselected(tmp_path):
    _write(
        tmp_path,
        """
        from dataclasses import dataclass


        @dataclass(frozen=True)
        class Ping:
            __protocol__ = True

            data: int


        def emit(ctx):
            # repro: allow(protocol-unhandled-message): nothing here anymore
            return ctx
        """,
    )
    report = run_proto_check(
        [tmp_path],
        root=tmp_path,
        rules=resolve_proto_rules("P3"),
        baseline=None,
        spec=SPEC,
    )
    assert report.ok  # P1 did not run, so its waiver cannot be proven stale


def test_baseline_round_trip_and_staleness(tmp_path):
    _write(tmp_path, BAD_SRC)
    first = run_proto_check([tmp_path], root=tmp_path, baseline=None, spec=SPEC)
    baseline_path = tmp_path / "proto-baseline.json"
    write_baseline(baseline_path, first.findings)

    second = run_proto_check(
        [tmp_path], root=tmp_path, baseline=baseline_path, spec=SPEC
    )
    assert second.ok
    assert len(second.baselined) == 1

    # Fix the code: the baseline entry must surface as stale.
    _write(
        tmp_path,
        """
        from dataclasses import dataclass


        @dataclass(frozen=True)
        class Ping:
            __protocol__ = True

            data: int
        """,
    )
    third = run_proto_check(
        [tmp_path], root=tmp_path, baseline=baseline_path, spec=SPEC
    )
    assert third.ok
    assert len(third.stale_baseline) == 1
    assert third.stale_baseline[0]["rule"] == "protocol-unhandled-message"


def test_baseline_object_accepted(tmp_path):
    _write(tmp_path, BAD_SRC)
    report = run_proto_check(
        [tmp_path], root=tmp_path, baseline=Baseline([]), spec=SPEC
    )
    assert not report.ok


def test_parse_error_becomes_finding(tmp_path):
    _write(tmp_path, "def broken(:\n", name="broken.py")
    report = run_proto_check([tmp_path], root=tmp_path, baseline=None, spec=SPEC)
    assert any(f.rule == "parse-error" for f in report.findings)


def test_missing_path_raises_lint_error(tmp_path):
    with pytest.raises(LintError, match="no such path"):
        run_proto_check(
            [tmp_path / "absent"], root=tmp_path, baseline=None, spec=SPEC
        )


def test_missing_default_spec_raises_lint_error(tmp_path):
    _write(tmp_path, BAD_SRC)
    with pytest.raises(LintError, match="no protocol spec at"):
        run_proto_check([tmp_path], root=tmp_path, baseline=None)


def test_resolve_rules_by_id_code_and_rejection():
    assert resolve_proto_rules(None) == ALL_PROTO_RULES
    (p2,) = resolve_proto_rules("P2")
    assert p2.id == "protocol-phase-violation"
    pair = resolve_proto_rules("protocol-unhandled-message,P6")
    assert tuple(r.code for r in pair) == ("P1", "P6")
    with pytest.raises(LintError, match="unknown proto rule"):
        resolve_proto_rules("P9")


def test_rule_table_lists_every_rule():
    table = proto_rule_table()
    for rule in ALL_PROTO_RULES:
        assert rule.code in table and rule.id in table


def test_report_dict_and_text_expose_protocol_counts(tmp_path):
    _write(tmp_path, BAD_SRC)
    report = run_proto_check([tmp_path], root=tmp_path, baseline=None, spec=SPEC)
    payload = report.to_dict()
    assert payload["spec"] == {
        "relpath": "protocol-spec.json",
        "messages": 1,
        "payloads": 0,
    }
    assert payload["protocol"]["messages"] == 1
    assert payload["counts"]["active"] == 1
    text = report.format_text()
    assert "1 message type(s)" in text
    assert "1 finding(s)" in text


def test_findings_serialize_to_valid_sarif(tmp_path):
    _write(tmp_path, BAD_SRC)
    report = run_proto_check([tmp_path], root=tmp_path, baseline=None, spec=SPEC)
    meta = {
        r.id: {"description": r.description, "help": r.fix_hint, "level": r.severity}
        for r in ALL_PROTO_RULES
    }
    doc = sarif_report(
        report.findings, tool_name="repro-proto", rule_meta=meta, root=tmp_path
    )
    validate_sarif(doc)
    (run,) = doc["runs"]
    assert run["tool"]["driver"]["name"] == "repro-proto"
    assert run["results"][0]["ruleId"] == "protocol-unhandled-message"


def test_cli_proto_check_list_rules_and_json(tmp_path, capsys):
    from repro.cli import main

    assert main(["proto-check", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "protocol-phase-violation" in out

    _write(tmp_path, BAD_SRC)
    spec = _spec_file(tmp_path)
    code = main(
        ["proto-check", "--paths", str(tmp_path / "w.py"), "--no-baseline",
         "--spec", str(spec), "--format", "json"]
    )
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"]["active"] == 1
    assert payload["findings"][0]["rule"] == "protocol-unhandled-message"


def test_cli_bad_spec_is_a_usage_error(tmp_path, capsys):
    from repro.cli import main

    _write(tmp_path, BAD_SRC)
    code = main(
        ["proto-check", "--paths", str(tmp_path / "w.py"), "--no-baseline",
         "--spec", str(tmp_path / "absent.json")]
    )
    assert code == 2
    assert "no protocol spec at" in capsys.readouterr().out


def test_cli_update_baseline_then_clean(tmp_path, capsys):
    from repro.cli import main

    _write(tmp_path, BAD_SRC)
    spec = _spec_file(tmp_path)
    baseline = tmp_path / "proto-baseline.json"
    assert (
        main(
            ["proto-check", "--paths", str(tmp_path / "w.py"),
             "--spec", str(spec), "--baseline", str(baseline),
             "--update-baseline"]
        )
        == 0
    )
    capsys.readouterr()
    assert (
        main(
            ["proto-check", "--paths", str(tmp_path / "w.py"),
             "--spec", str(spec), "--baseline", str(baseline)]
        )
        == 0
    )
    assert "1 baselined" in capsys.readouterr().out
