"""Corpus driver: every shard rule has a passing and a failing fixture.

The bad fixtures are shaped like real :mod:`repro.sim.shard` /
:mod:`repro.sim.exchange` code — worker bodies named ``_worker_main`` /
``_worker_loop`` so role inference seeds them, slab-owning classes, pipe
sends — so the corpus doubles as documentation of what each rule means
by "worker code" and "the boundary".
"""

from pathlib import Path

import pytest

from repro.analysis.shard import ALL_SHARD_RULES, run_shard_check

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "shard"
RULE_IDS = [rule.id for rule in ALL_SHARD_RULES]


def test_every_rule_has_a_fixture_pair():
    for rule_id in RULE_IDS:
        assert (FIXTURES / rule_id / "ok.py").exists(), rule_id
        assert (FIXTURES / rule_id / "bad.py").exists(), rule_id
    # And nothing in the corpus is orphaned from a real rule.
    assert sorted(d.name for d in FIXTURES.iterdir() if d.is_dir()) == sorted(
        RULE_IDS
    )


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_ok_fixture_is_clean(rule_id):
    report = run_shard_check(
        [FIXTURES / rule_id / "ok.py"], root=FIXTURES, baseline=None
    )
    assert report.ok, [f.format() for f in report.findings]


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_bad_fixture_triggers_its_rule(rule_id):
    report = run_shard_check(
        [FIXTURES / rule_id / "bad.py"], root=FIXTURES, baseline=None
    )
    hits = [f for f in report.findings if f.rule == rule_id]
    assert hits, f"no {rule_id} finding in {[f.format() for f in report.findings]}"
    for f in hits:
        assert f.line > 0 and f.message and f.fix_hint


def test_band_ownership_bad_names_both_defect_shapes():
    report = run_shard_check(
        [FIXTURES / "shard-band-ownership" / "bad.py"],
        root=FIXTURES,
        baseline=None,
    )
    messages = [f.message for f in report.findings]
    assert any("`.ensure()`" in m for m in messages)
    assert any("`.retire()`" in m for m in messages)
    assert any("column `.phase`" in m for m in messages)


def test_boundary_types_bad_catches_lambda_and_buffer_view():
    report = run_shard_check(
        [FIXTURES / "shard-boundary-types" / "bad.py"],
        root=FIXTURES,
        baseline=None,
    )
    messages = [f.message for f in report.findings]
    assert any("a lambda" in m for m in messages)
    assert any("buffer view" in m for m in messages)


def test_segment_lifecycle_bad_flags_local_and_class_leak():
    report = run_shard_check(
        [FIXTURES / "shard-segment-lifecycle" / "bad.py"],
        root=FIXTURES,
        baseline=None,
    )
    messages = [f.message for f in report.findings]
    assert any("segment `shm` acquired" in m for m in messages)
    assert any("`self.shm`" in m and "`Slab`" in m for m in messages)


def test_fork_hygiene_bad_flags_global_rng_and_write():
    report = run_shard_check(
        [FIXTURES / "shard-fork-hygiene" / "bad.py"],
        root=FIXTURES,
        baseline=None,
    )
    messages = [f.message for f in report.findings]
    assert any("_ROUND" in m for m in messages)
    assert any("default_rng()" in m for m in messages)
    assert any("`_SEEN`" in m for m in messages)
