"""Engine mechanics for ``repro shard-check``: waivers, baseline, SARIF, CLI."""

import json
import textwrap

import pytest

from repro.analysis.lint import Baseline, LintError, write_baseline
from repro.analysis.sarif import sarif_report, validate_sarif
from repro.analysis.shard import (
    ALL_SHARD_RULES,
    resolve_shard_rules,
    run_shard_check,
    shard_rule_table,
)

BAD_WORKER = """
def _worker_main(engine, band, conn):
    engine.trace.record(band)
"""


def _write(tmp_path, source, name="w.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return path


def test_finding_reported_with_location_and_hint(tmp_path):
    _write(tmp_path, BAD_WORKER)
    report = run_shard_check([tmp_path], root=tmp_path, baseline=None)
    assert not report.ok
    (finding,) = report.findings
    assert finding.rule == "shard-master-state"
    assert finding.path == "w.py"
    assert finding.line == 3
    assert "`.trace`" in finding.message
    assert report.roles.counts()["worker"] == 1


def test_justified_waiver_suppresses_and_counts(tmp_path):
    _write(
        tmp_path,
        """
        def _worker_main(engine, band, conn):
            # repro: allow(shard-master-state): fork-time snapshot, test double
            engine.trace.record(band)
        """,
    )
    report = run_shard_check([tmp_path], root=tmp_path, baseline=None)
    assert report.ok
    assert len(report.waived) == 1
    assert report.waived[0].rule == "shard-master-state"


def test_unjustified_waiver_is_inert(tmp_path):
    _write(
        tmp_path,
        """
        def _worker_main(engine, band, conn):
            # repro: allow(shard-master-state)
            engine.trace.record(band)
        """,
    )
    report = run_shard_check([tmp_path], root=tmp_path, baseline=None)
    assert not report.ok  # the finding survives; W1 reports the bare waiver


def test_stale_shard_waiver_is_reported_here_not_by_lint(tmp_path):
    path = _write(
        tmp_path,
        """
        def _worker_main(engine, band, conn):
            # repro: allow(shard-master-state): nothing here anymore
            return band
        """,
    )
    report = run_shard_check([tmp_path], root=tmp_path, baseline=None)
    stale = [f for f in report.findings if f.rule == "unused-waiver"]
    assert len(stale) == 1
    assert "shard-master-state" in stale[0].message

    from repro.analysis.lint import run_lint

    lint_report = run_lint([path], root=tmp_path, baseline=None)
    assert not any(f.rule == "unused-waiver" for f in lint_report.findings)


def test_stale_waiver_not_flagged_when_its_rule_is_deselected(tmp_path):
    _write(
        tmp_path,
        """
        def _worker_main(engine, band, conn):
            # repro: allow(shard-master-state): nothing here anymore
            return band
        """,
    )
    report = run_shard_check(
        [tmp_path],
        root=tmp_path,
        rules=resolve_shard_rules("S4"),
        baseline=None,
    )
    assert report.ok  # S3 did not run, so its waiver cannot be proven stale


def test_baseline_round_trip_and_staleness(tmp_path):
    _write(tmp_path, BAD_WORKER)
    first = run_shard_check([tmp_path], root=tmp_path, baseline=None)
    baseline_path = tmp_path / "shard-baseline.json"
    write_baseline(baseline_path, first.findings)

    second = run_shard_check([tmp_path], root=tmp_path, baseline=baseline_path)
    assert second.ok
    assert len(second.baselined) == 1

    # Fix the code: the baseline entry must surface as stale.
    _write(
        tmp_path,
        """
        def _worker_main(engine, band, conn):
            return band
        """,
    )
    third = run_shard_check([tmp_path], root=tmp_path, baseline=baseline_path)
    assert third.ok
    assert len(third.stale_baseline) == 1
    assert third.stale_baseline[0]["rule"] == "shard-master-state"


def test_baseline_object_accepted(tmp_path):
    _write(tmp_path, BAD_WORKER)
    report = run_shard_check([tmp_path], root=tmp_path, baseline=Baseline([]))
    assert not report.ok


def test_parse_error_becomes_finding(tmp_path):
    _write(tmp_path, "def broken(:\n", name="broken.py")
    report = run_shard_check([tmp_path], root=tmp_path, baseline=None)
    assert any(f.rule == "parse-error" for f in report.findings)


def test_missing_path_raises_lint_error(tmp_path):
    with pytest.raises(LintError, match="no such path"):
        run_shard_check([tmp_path / "absent"], root=tmp_path, baseline=None)


def test_resolve_rules_by_id_code_and_rejection():
    assert resolve_shard_rules(None) == ALL_SHARD_RULES
    (s3,) = resolve_shard_rules("S3")
    assert s3.id == "shard-master-state"
    pair = resolve_shard_rules("shard-band-ownership,S5")
    assert tuple(r.code for r in pair) == ("S1", "S5")
    with pytest.raises(LintError, match="unknown shard rule"):
        resolve_shard_rules("S9")


def test_rule_table_lists_every_rule():
    table = shard_rule_table()
    for rule in ALL_SHARD_RULES:
        assert rule.code in table and rule.id in table


def test_report_dict_and_text_expose_roles(tmp_path):
    _write(tmp_path, BAD_WORKER)
    report = run_shard_check([tmp_path], root=tmp_path, baseline=None)
    payload = report.to_dict()
    assert payload["roles"] == {"master": 0, "worker": 1, "shared": 0}
    assert payload["counts"]["active"] == 1
    text = report.format_text()
    assert "0 master / 1 worker / 0 shared" in text
    assert "1 finding(s)" in text


def test_findings_serialize_to_valid_sarif(tmp_path):
    _write(tmp_path, BAD_WORKER)
    report = run_shard_check([tmp_path], root=tmp_path, baseline=None)
    meta = {
        r.id: {"description": r.description, "help": r.fix_hint, "level": r.severity}
        for r in ALL_SHARD_RULES
    }
    doc = sarif_report(
        report.findings, tool_name="repro-shard", rule_meta=meta, root=tmp_path
    )
    validate_sarif(doc)
    (run,) = doc["runs"]
    assert run["tool"]["driver"]["name"] == "repro-shard"
    assert run["results"][0]["ruleId"] == "shard-master-state"


def test_cli_shard_check_list_rules_and_json(tmp_path, capsys, monkeypatch):
    from repro.cli import main

    assert main(["shard-check", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "shard-band-ownership" in out

    monkeypatch.chdir(tmp_path)
    _write(tmp_path, BAD_WORKER)
    code = main(
        ["shard-check", "--paths", str(tmp_path / "w.py"), "--no-baseline",
         "--format", "json"]
    )
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"]["active"] == 1
    assert payload["findings"][0]["rule"] == "shard-master-state"


def test_cli_update_baseline_then_clean(tmp_path, capsys):
    from repro.cli import main

    _write(tmp_path, BAD_WORKER)
    baseline = tmp_path / "shard-baseline.json"
    assert (
        main(
            ["shard-check", "--paths", str(tmp_path / "w.py"),
             "--baseline", str(baseline), "--update-baseline"]
        )
        == 0
    )
    capsys.readouterr()
    assert (
        main(
            ["shard-check", "--paths", str(tmp_path / "w.py"),
             "--baseline", str(baseline)]
        )
        == 0
    )
    assert "1 baselined" in capsys.readouterr().out
