"""Corpus driver: every flow policy has a passing and a failing fixture.

The bad fixtures are chosen to be *invisible to the syntactic linter* —
aliasing, helper indirection, ``getattr`` smuggling — so this file also
pins down the headline capability: ``repro flow`` catches what
``repro lint`` structurally cannot.
"""

from pathlib import Path

import pytest

from repro.analysis.flow import ALL_POLICIES, run_flow
from repro.analysis.lint import run_lint

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "flow"
POLICY_IDS = [policy.id for policy in ALL_POLICIES]


def test_every_policy_has_a_fixture_pair():
    for policy_id in POLICY_IDS:
        assert (FIXTURES / policy_id / "ok.py").exists(), policy_id
        assert (FIXTURES / policy_id / "bad.py").exists(), policy_id
    # And nothing in the corpus is orphaned from a real policy.
    assert sorted(d.name for d in FIXTURES.iterdir() if d.is_dir()) == sorted(
        POLICY_IDS
    )


@pytest.mark.parametrize("policy_id", POLICY_IDS)
def test_ok_fixture_is_clean(policy_id):
    report = run_flow([FIXTURES / policy_id / "ok.py"], root=FIXTURES, baseline=None)
    assert report.ok, [f.format() for f in report.findings]


@pytest.mark.parametrize("policy_id", POLICY_IDS)
def test_bad_fixture_triggers_its_policy(policy_id):
    report = run_flow([FIXTURES / policy_id / "bad.py"], root=FIXTURES, baseline=None)
    hits = [f for f in report.findings if f.rule == policy_id]
    assert hits, f"no {policy_id} finding in {[f.format() for f in report.findings]}"
    for f in hits:
        assert f.line > 0 and f.message and f.fix_hint


def test_lateness_bad_fixture_catches_alias_and_helper_indirection():
    report = run_flow(
        [FIXTURES / "flow-lateness" / "bad.py"], root=FIXTURES, baseline=None
    )
    messages = [f.message for f in report.findings]
    # The aliased snapshot (snap = self.trace; decide(snap)).
    assert any("`self.trace`" in m and "decide() argument `snap`" in m for m in messages)
    # The helper hand-off (_hand(adv, payload) -> adv.decide(payload)).
    assert any(
        "`self.network`" in m and "flows into" in m and "`_hand`" in m
        for m in messages
    )


def test_determinism_bad_fixture_catches_getattr_smuggle():
    report = run_flow(
        [FIXTURES / "flow-determinism" / "bad.py"], root=FIXTURES, baseline=None
    )
    assert len(report.findings) == 1
    f = report.findings[0]
    assert f.rule == "flow-determinism"
    assert "`time.perf_counter`" in f.message
    assert "`self.started_at`" in f.message


@pytest.mark.parametrize("policy_id", POLICY_IDS)
def test_syntactic_linter_is_blind_to_the_flow_bad_fixtures(policy_id):
    # The whole point of the interprocedural pass: these leaks produce no
    # lint finding at all.
    report = run_lint([FIXTURES / policy_id / "bad.py"], root=FIXTURES, baseline=None)
    assert report.ok, [f.format() for f in report.findings]
