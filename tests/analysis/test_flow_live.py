"""The flow analysis gates the live tree: clean with the committed baseline."""

from pathlib import Path

import pytest

import repro
from repro.analysis.flow import ALL_POLICIES, run_flow
from repro.cli import main

REPO_ROOT = Path(repro.__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / "flow-baseline.json"
FIXTURES = Path(__file__).resolve().parent / "fixtures" / "flow"


def test_live_tree_is_clean_under_committed_baseline():
    report = run_flow([SRC], root=REPO_ROOT, baseline=BASELINE)
    assert report.ok, "\n" + "\n".join(f.format() for f in report.findings)
    assert not report.stale_baseline, report.stale_baseline
    # The engine actually looked at the tree.
    assert report.files > 50 and report.functions > 300
    assert report.passes >= 2


def test_cli_gate_passes_on_live_tree():
    assert main(["flow"]) == 0


@pytest.mark.parametrize("policy_id", [p.id for p in ALL_POLICIES])
def test_injected_bad_fixture_fails_the_gate(policy_id):
    bad = FIXTURES / policy_id / "bad.py"
    report = run_flow([SRC, bad], root=REPO_ROOT, baseline=BASELINE)
    assert not report.ok
    assert any(f.rule == policy_id for f in report.findings)


def test_injected_bad_fixture_fails_the_cli_gate():
    bad = str(FIXTURES / "flow-lateness" / "bad.py")
    assert main(["flow", "--paths", bad, "--no-baseline"]) == 1
