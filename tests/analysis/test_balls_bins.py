"""Tests for balls-into-bins occupancy laws (Lemma 11 machinery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.balls_bins import (
    expected_occupied_fraction,
    min_r_for_occupancy,
    occupied_bins_sample,
    survival_fixpoint,
)


class TestExpectedOccupancy:
    def test_zero_balls(self):
        assert expected_occupied_fraction(0, 10) == 0.0

    def test_many_balls_saturates(self):
        assert expected_occupied_fraction(10_000, 10) == pytest.approx(1.0)

    def test_one_ball(self):
        assert expected_occupied_fraction(1, 10) == pytest.approx(0.1)

    def test_matches_monte_carlo(self, rng):
        balls, bins = 30, 20
        samples = occupied_bins_sample(balls, bins, rng, trials=3000)
        assert samples.mean() / bins == pytest.approx(
            expected_occupied_fraction(balls, bins), rel=0.03
        )

    def test_invalid(self):
        with pytest.raises(ValueError):
            expected_occupied_fraction(1, 0)
        with pytest.raises(ValueError):
            expected_occupied_fraction(-1, 5)


class TestMinR:
    def test_monotone_in_target(self):
        assert min_r_for_occupancy(0.5, 0.9) >= min_r_for_occupancy(0.5, 0.5)

    def test_achieves_target(self):
        h, target = 0.375, 0.5  # half of a 3/4-good swarm holds
        r = min_r_for_occupancy(h, target)
        assert 1.0 - np.exp(-r * h) >= target

    def test_paper_regime_is_constant(self):
        """For goodness 3/4 and half-holders, a single-digit r suffices —
        the quantitative content of 'a suitable r in Theta(1)'."""
        assert min_r_for_occupancy(0.375, 0.5) <= 4

    def test_invalid(self):
        with pytest.raises(ValueError):
            min_r_for_occupancy(0.0, 0.5)
        with pytest.raises(ValueError):
            min_r_for_occupancy(0.5, 1.0)


class TestSurvivalFixpoint:
    def test_paper_parameters_sustain_routing(self):
        """r=2 with 3/4-good swarms keeps a constant holder fraction."""
        assert survival_fixpoint(2, 0.75) > 0.4

    def test_r1_with_heavy_churn_collapses(self):
        """r=1 with goodness near the r*g <= 1 threshold collapses to ~0."""
        assert survival_fixpoint(1, 0.6) < 0.05

    def test_monotone_in_r(self):
        assert survival_fixpoint(3, 0.75) >= survival_fixpoint(2, 0.75)

    def test_invalid(self):
        with pytest.raises(ValueError):
            survival_fixpoint(0, 0.75)
        with pytest.raises(ValueError):
            survival_fixpoint(2, 0.0)
