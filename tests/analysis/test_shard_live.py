"""``repro shard-check`` gates the live tree: clean with the committed baseline.

The injection tests run each bad fixture *alongside* the real ``src/repro``
tree, proving every rule still fires inside the full project call graph —
the role seeds, import maps and class hierarchies of the live code must not
drown out a planted defect.
"""

from pathlib import Path

import pytest

import repro
from repro.analysis.shard import ALL_SHARD_RULES, run_shard_check
from repro.cli import main

REPO_ROOT = Path(repro.__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / "shard-baseline.json"
FIXTURES = Path(__file__).resolve().parent / "fixtures" / "shard"


def test_live_tree_is_clean_under_committed_baseline():
    report = run_shard_check([SRC], root=REPO_ROOT, baseline=BASELINE)
    assert report.ok, "\n" + "\n".join(f.format() for f in report.findings)
    assert not report.stale_baseline, report.stale_baseline
    # The engine actually looked at the tree and found the real partition.
    assert report.files > 50 and report.functions > 300
    counts = report.roles.counts()
    assert counts["worker"] >= 5  # _worker_main and its exchange helpers
    assert counts["master"] >= 10  # ShardRunner methods + engine drivers
    # The two sanctioned fork-time snapshot reads in _worker_main are waived.
    assert len(report.waived) >= 2


def test_live_worker_partition_names_the_real_entry_points():
    report = run_shard_check([SRC], root=REPO_ROOT, baseline=BASELINE)
    assert report.roles.worker_seeds == ("repro.sim.shard._worker_main",)
    worker_only = {
        q for q, r in report.roles.roles.items() if r == "worker"
    }
    assert "repro.sim.exchange.encode_uplink" in worker_only
    assert "repro.util.arena.attach_segment" in worker_only


def test_cli_gate_passes_on_live_tree():
    assert main(["shard-check"]) == 0


def test_umbrella_cli_gate_passes_on_live_tree():
    assert main(["check"]) == 0


@pytest.mark.parametrize("rule_id", [r.id for r in ALL_SHARD_RULES])
def test_injected_bad_fixture_fails_the_gate(rule_id):
    bad = FIXTURES / rule_id / "bad.py"
    report = run_shard_check([SRC, bad], root=REPO_ROOT, baseline=BASELINE)
    assert not report.ok
    assert any(f.rule == rule_id for f in report.findings)


def test_injected_bad_fixture_fails_the_cli_gate():
    bad = str(FIXTURES / "shard-master-state" / "bad.py")
    assert main(["shard-check", "--paths", bad, "--no-baseline"]) == 1
