"""The ``repro check`` umbrella: four engines, one parse, one call graph."""

import json
import textwrap

from repro.analysis.flow import ProjectIndex, run_flow
from repro.analysis.lint import run_lint
from repro.analysis.proto import run_proto_check
from repro.analysis.sarif import validate_sarif
from repro.analysis.shard import run_shard_check
from repro.analysis.source_cache import SourceCache, collect_py_files

TINY_SPEC = {
    "schema": 1,
    "messages": {
        "Ping": {"anchor": "test spec", "kind": "record", "fields": ["value"]}
    },
}


def test_four_engines_share_one_parse_and_one_graph(tmp_path):
    (tmp_path / "a.py").write_text(
        textwrap.dedent(
            """
            def helper(x):
                return x + 1

            def _worker_main(engine):
                return helper(engine.params)
            """
        )
    )
    (tmp_path / "b.py").write_text("VALUE = 3\n")
    (tmp_path / "c.py").write_text(
        textwrap.dedent(
            """
            from dataclasses import dataclass


            @dataclass(frozen=True)
            class Ping:
                '''A test message.'''

                __protocol__ = True

                value: int
            """
        )
    )
    cache = SourceCache(tmp_path)
    files = collect_py_files([tmp_path])
    index = ProjectIndex([m for m in map(cache.try_module, files) if m])
    parses = cache.parses
    assert parses == len(files)

    lint = run_lint([tmp_path], root=tmp_path, baseline=None, cache=cache)
    flow = run_flow(
        [tmp_path], root=tmp_path, baseline=None, cache=cache, index=index
    )
    shard = run_shard_check(
        [tmp_path], root=tmp_path, baseline=None, cache=cache, index=index
    )
    proto = run_proto_check(
        [tmp_path],
        root=tmp_path,
        baseline=None,
        cache=cache,
        index=index,
        spec=TINY_SPEC,
    )
    # No engine re-parsed anything the shared cache already held.
    assert cache.parses == parses
    assert lint.ok and flow.ok and shard.ok and proto.ok
    assert shard.roles.worker_only("a._worker_main")


def test_cli_check_emits_one_merged_sarif_document(capsys):
    from repro.cli import main

    code = main(["check", "--format", "sarif"])
    doc = json.loads(capsys.readouterr().out)
    assert code == 0
    validate_sarif(doc)
    names = [run["tool"]["driver"]["name"] for run in doc["runs"]]
    assert names == ["repro-lint", "repro-flow", "repro-shard", "repro-proto"]


def test_cli_check_json_combines_all_four_reports(capsys):
    from repro.cli import main

    code = main(["check", "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["ok"] is True
    for key in ("lint", "flow", "shard", "proto"):
        assert payload[key]["counts"]["active"] == 0
    assert payload["shard"]["roles"]["worker"] >= 5
    assert payload["proto"]["protocol"]["messages"] == 7
    assert payload["proto"]["protocol"]["dispatch_entries"] == 6


def test_cli_check_fails_on_injected_defect(tmp_path, capsys):
    from repro.cli import main

    bad = tmp_path / "w.py"
    bad.write_text(
        textwrap.dedent(
            """
            def _worker_main(engine, band, conn):
                engine.trace.record(band)
            """
        )
    )
    code = main(["check", "--paths", str(bad)])
    out = capsys.readouterr().out
    assert code == 1
    assert "== shard-check ==" in out
    assert "shard-master-state" in out
