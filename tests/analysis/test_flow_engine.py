"""Unit tests of the flow engine: summaries, sanitizer, waivers, CLI."""

import json
import textwrap

import pytest

from repro.analysis.flow import (
    ALL_POLICIES,
    LATENESS,
    FlowError,
    resolve_policies,
    run_flow,
)
from repro.analysis.lint import Baseline, run_lint, write_baseline
from repro.cli import main

ARM = "# repro: module(repro.sim.flowtest)\n"


def _tree(tmp_path, text, name="mod.py", header=ARM):
    path = tmp_path / name
    path.write_text(header + textwrap.dedent(text))
    return path


# -- interprocedural propagation ---------------------------------------


CHAIN = """
    import time


    def a():
        return b()


    def b():
        return c()


    def c():
        return time.perf_counter()


    class R:
        def mark(self):
            self.x = a()
"""


def test_taint_tracks_through_a_helper_chain(tmp_path):
    _tree(tmp_path, CHAIN)
    report = run_flow([tmp_path], root=tmp_path, baseline=None)
    assert [f.rule for f in report.findings] == ["flow-determinism"]
    assert "`time.perf_counter`" in report.findings[0].message
    # Converged before the depth bound.
    assert report.passes < 8
    assert report.functions == 4


def test_max_depth_bounds_the_chain_length(tmp_path):
    # Two passes are not enough to push the clock through a -> b -> c.
    _tree(tmp_path, CHAIN)
    report = run_flow([tmp_path], root=tmp_path, baseline=None, max_depth=2)
    assert report.ok
    assert report.passes == 2


def test_max_depth_must_be_positive(tmp_path):
    with pytest.raises(FlowError):
        run_flow([tmp_path], root=tmp_path, max_depth=0)


# -- the sanitizer ------------------------------------------------------


def test_view_without_both_lateness_keywords_is_not_a_sanitizer(tmp_path):
    _tree(
        tmp_path,
        """
        from repro.adversary.view import AdversaryView


        class D:
            def consult(self, t):
                view = AdversaryView(t, self.trace, self.lifecycle,
                                     topology_lateness=2)
                return self.adversary.decide(view)
        """,
    )
    report = run_flow([tmp_path], root=tmp_path, baseline=None)
    assert [f.rule for f in report.findings] == ["flow-lateness"]


def test_view_with_both_lateness_keywords_launders_live_state(tmp_path):
    _tree(
        tmp_path,
        """
        from repro.adversary.view import AdversaryView


        class D:
            def consult(self, t):
                view = AdversaryView(t, self.trace, self.lifecycle,
                                     topology_lateness=2, state_lateness=8)
                return self.adversary.decide(view)
        """,
    )
    report = run_flow([tmp_path], root=tmp_path, baseline=None)
    assert report.ok, [f.format() for f in report.findings]


# -- sinks beyond decide() ----------------------------------------------


def test_store_onto_adversary_handle_is_a_sink(tmp_path):
    _tree(
        tmp_path,
        """
        class D:
            def leak(self):
                adv = self.adversary
                adv.hint = self.trace
        """,
    )
    report = run_flow([tmp_path], root=tmp_path, baseline=None)
    assert [f.rule for f in report.findings] == ["flow-lateness"]
    assert "adversary object state `adv.hint`" in report.findings[0].message


def test_getattr_on_self_is_a_live_state_source(tmp_path):
    _tree(
        tmp_path,
        """
        class D:
            def consult(self):
                snap = getattr(self, "trace")
                return self.adversary.decide(snap)
        """,
    )
    report = run_flow([tmp_path], root=tmp_path, baseline=None)
    assert [f.rule for f in report.findings] == ["flow-lateness"]


def test_property_loads_resolve_to_the_property_function(tmp_path):
    _tree(
        tmp_path,
        """
        class D:
            @property
            def snapshot(self):
                return self.trace

            def consult(self):
                return self.adversary.decide(self.snapshot)
        """,
    )
    report = run_flow([tmp_path], root=tmp_path, baseline=None)
    assert [f.rule for f in report.findings] == ["flow-lateness"]


def test_unarmed_module_reports_nothing(tmp_path):
    _tree(
        tmp_path,
        """
        class D:
            def consult(self):
                snap = self.trace
                return self.adversary.decide(snap)
        """,
        header="# repro: module(elsewhere.tool)\n",
    )
    report = run_flow([tmp_path], root=tmp_path, baseline=None)
    assert report.ok


# -- waivers ------------------------------------------------------------


LEAK = """
    class D:
        def consult(self):
            snap = self.trace
            return self.adversary.decide(snap){trailer}
"""


def test_flow_waiver_absorbs_its_finding(tmp_path):
    _tree(
        tmp_path,
        LEAK.format(trailer="  # repro: allow(flow-lateness): exercised by tests"),
    )
    report = run_flow([tmp_path], root=tmp_path, baseline=None)
    assert report.ok
    assert [f.rule for f in report.waived] == ["flow-lateness"]


def test_stale_flow_waiver_is_reported_by_flow_not_lint(tmp_path):
    path = _tree(
        tmp_path,
        """
        X = 1  # repro: allow(flow-lateness): nothing here any more
        """,
    )
    flow = run_flow([path], root=tmp_path, baseline=None)
    assert [f.rule for f in flow.findings] == ["unused-waiver"]
    # The linter's W2 leaves flow-* waivers alone; only `repro flow` can
    # know whether they match a finding.
    lint = run_lint([path], root=tmp_path, baseline=None)
    assert lint.ok, [f.format() for f in lint.findings]


def test_unjustified_flow_waiver_is_inert(tmp_path):
    _tree(tmp_path, LEAK.format(trailer="  # repro: allow(flow-lateness)"))
    report = run_flow([tmp_path], root=tmp_path, baseline=None)
    assert [f.rule for f in report.findings] == ["flow-lateness"]


# -- baseline -----------------------------------------------------------


def test_baseline_round_trip(tmp_path):
    _tree(tmp_path, LEAK.format(trailer=""))
    first = run_flow([tmp_path], root=tmp_path, baseline=None)
    assert not first.ok
    baseline_path = tmp_path / "flow-baseline.json"
    write_baseline(baseline_path, first.findings)
    second = run_flow([tmp_path], root=tmp_path, baseline=baseline_path)
    assert second.ok
    assert len(second.baselined) == len(first.findings)
    assert not second.stale_baseline


def test_stale_baseline_entries_are_reported(tmp_path):
    _tree(tmp_path, "X = 1\n")
    base = Baseline(
        [{"path": "mod.py", "rule": "flow-lateness", "message": "long gone"}]
    )
    report = run_flow([tmp_path], root=tmp_path, baseline=base)
    assert report.ok
    assert report.stale_baseline == [
        {"path": "mod.py", "rule": "flow-lateness", "message": "long gone"}
    ]


# -- errors and selection -----------------------------------------------


def test_unparsable_file_is_a_parse_error_finding(tmp_path):
    _tree(tmp_path, "def broken(:\n")
    report = run_flow([tmp_path], root=tmp_path, baseline=None)
    assert [f.rule for f in report.findings] == ["parse-error"]


def test_missing_path_raises(tmp_path):
    with pytest.raises(FlowError):
        run_flow([tmp_path / "nope"], root=tmp_path)


def test_resolve_policies_by_id_code_and_error():
    assert resolve_policies(None) == ALL_POLICIES
    assert resolve_policies("F1") == (LATENESS,)
    assert resolve_policies("flow-lateness,f1") == (LATENESS,)
    with pytest.raises(FlowError):
        resolve_policies("F9")


def test_policy_selection_limits_findings(tmp_path):
    _tree(
        tmp_path,
        """
        import time


        class D:
            def both(self):
                self.t0 = time.perf_counter()
                return self.adversary.decide(self.trace.edges)
        """,
    )
    full = run_flow([tmp_path], root=tmp_path, baseline=None)
    assert sorted({f.rule for f in full.findings}) == [
        "flow-determinism",
        "flow-lateness",
    ]
    only_f1 = run_flow(
        [tmp_path], root=tmp_path, baseline=None, policies=resolve_policies("F1")
    )
    assert {f.rule for f in only_f1.findings} == {"flow-lateness"}


# -- CLI ----------------------------------------------------------------


def test_cli_list_policies(capsys):
    assert main(["flow", "--list-policies"]) == 0
    out = capsys.readouterr().out
    assert "flow-lateness" in out and "flow-determinism" in out


def test_cli_exit_codes(tmp_path, capsys):
    bad = _tree(tmp_path, LEAK.format(trailer=""))
    assert main(["flow", "--paths", str(bad), "--no-baseline"]) == 1
    capsys.readouterr()
    ok = _tree(tmp_path, "X = 1\n", name="ok.py")
    assert main(["flow", "--paths", str(ok), "--no-baseline"]) == 0
    capsys.readouterr()
    assert main(["flow", "--paths", str(tmp_path / "missing.py")]) == 2
    capsys.readouterr()
    assert main(["flow", "--policies", "F9"]) == 2


def test_cli_json_format(tmp_path, capsys):
    bad = _tree(tmp_path, LEAK.format(trailer=""))
    assert main(["flow", "--paths", str(bad), "--no-baseline", "--format=json"]) == 1
    data = json.loads(capsys.readouterr().out)
    assert data["counts"]["active"] == 1
    assert data["findings"][0]["rule"] == "flow-lateness"
    assert data["policies"] == ["flow-lateness", "flow-determinism"]


def test_cli_update_baseline(tmp_path, capsys):
    bad = _tree(tmp_path, LEAK.format(trailer=""))
    baseline = tmp_path / "fb.json"
    assert (
        main(
            [
                "flow",
                "--paths",
                str(bad),
                "--baseline",
                str(baseline),
                "--update-baseline",
            ]
        )
        == 0
    )
    capsys.readouterr()
    assert baseline.exists()
    assert main(["flow", "--paths", str(bad), "--baseline", str(baseline)]) == 0


def test_cli_max_depth(tmp_path, capsys):
    _tree(tmp_path, CHAIN)
    assert main(["flow", "--paths", str(tmp_path), "--no-baseline"]) == 1
    capsys.readouterr()
    assert (
        main(["flow", "--paths", str(tmp_path), "--no-baseline", "--max-depth", "2"])
        == 0
    )
