"""Corpus driver: every rule has a passing and a failing fixture."""

from pathlib import Path

import pytest

from repro.analysis.lint import run_lint
from repro.analysis.lint.registry import ALL_RULES

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lint"
RULE_IDS = [rule.id for rule in ALL_RULES]


def _variant(rule_id: str, kind: str) -> Path:
    """The ``ok``/``bad`` fixture for a rule (plain file or package dir)."""
    single = FIXTURES / rule_id / f"{kind}.py"
    return single if single.exists() else FIXTURES / rule_id / f"{kind}_pkg"


def test_every_rule_has_a_fixture_pair():
    for rule_id in RULE_IDS:
        assert _variant(rule_id, "ok").exists(), f"missing ok fixture for {rule_id}"
        assert _variant(rule_id, "bad").exists(), f"missing bad fixture for {rule_id}"
    # And nothing in the corpus is orphaned from a real rule.
    assert sorted(d.name for d in FIXTURES.iterdir() if d.is_dir()) == sorted(RULE_IDS)


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_ok_fixture_is_clean(rule_id):
    report = run_lint([_variant(rule_id, "ok")], root=FIXTURES, baseline=None)
    assert report.ok, [f.format() for f in report.findings]


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_bad_fixture_triggers_its_rule(rule_id):
    report = run_lint([_variant(rule_id, "bad")], root=FIXTURES, baseline=None)
    hits = [f for f in report.findings if f.rule == rule_id]
    assert hits, f"no {rule_id} finding in {[f.format() for f in report.findings]}"
    for f in hits:
        assert f.line > 0 and f.message


def test_all_drift_bad_package_exercises_all_four_checks():
    report = run_lint([_variant("all-drift", "bad")], root=FIXTURES, baseline=None)
    messages = " | ".join(f.message for f in report.findings)
    assert "`hidden` from `one`, which does not declare it" in messages
    assert "declares `beta`, which is not re-exported" in messages
    assert "omits it from __all__" in messages
    assert "__all__ names `ghost`" in messages


def test_waived_findings_are_reported_separately():
    report = run_lint(
        [FIXTURES / "unused-waiver" / "ok.py"], root=FIXTURES, baseline=None
    )
    assert report.ok
    assert [f.rule for f in report.waived] == ["wallclock"]
