"""SARIF 2.1.0 emission: shared by lint and flow, structurally validated."""

import json
from pathlib import Path

from repro.analysis.flow import run_flow
from repro.analysis.lint import run_lint
from repro.analysis.lint.findings import Finding
from repro.analysis.lint.registry import ALL_RULES
from repro.analysis.sarif import (
    SARIF_SCHEMA_URI,
    SARIF_VERSION,
    sarif_report,
    validate_sarif,
)
from repro.cli import main

LINT_FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lint"
FLOW_FIXTURES = Path(__file__).resolve().parent / "fixtures" / "flow"


def test_lint_findings_render_as_valid_sarif():
    report = run_lint(
        [LINT_FIXTURES / "wallclock" / "bad.py"], root=LINT_FIXTURES, baseline=None
    )
    assert report.findings
    meta = {r.id: {"description": r.description, "help": r.fix_hint} for r in ALL_RULES}
    doc = sarif_report(
        report.findings, tool_name="repro-lint", rule_meta=meta, root=LINT_FIXTURES
    )
    assert validate_sarif(doc) == []
    assert doc["$schema"] == SARIF_SCHEMA_URI
    assert doc["version"] == SARIF_VERSION
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert {res["ruleId"] for res in run["results"]} <= rule_ids
    # ruleIndex actually points at the named rule.
    for res in run["results"]:
        assert run["tool"]["driver"]["rules"][res["ruleIndex"]]["id"] == res["ruleId"]


def test_flow_findings_render_as_valid_sarif():
    report = run_flow(
        [FLOW_FIXTURES / "flow-lateness" / "bad.py"], root=FLOW_FIXTURES, baseline=None
    )
    assert report.findings
    doc = sarif_report(report.findings, tool_name="repro-flow", root=FLOW_FIXTURES)
    assert validate_sarif(doc) == []
    for res in doc["runs"][0]["results"]:
        uri = res["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
        assert "\\" not in uri


def test_whole_file_findings_clamp_to_line_one():
    finding = Finding(path="pkg/mod.py", line=0, rule="parse-error", message="boom")
    doc = sarif_report([finding], tool_name="t")
    region = doc["runs"][0]["results"][0]["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == 1
    assert validate_sarif(doc) == []


def test_rules_without_metadata_get_stub_entries():
    finding = Finding(path="a.py", line=3, rule="mystery", message="m", fix_hint="h")
    doc = sarif_report([finding], tool_name="t", rule_meta={})
    rules = doc["runs"][0]["tool"]["driver"]["rules"]
    assert [r["id"] for r in rules] == ["mystery"]
    assert rules[0]["help"]["text"] == "h"


def test_validator_rejects_broken_documents():
    assert validate_sarif([]) == ["document is not an object"]
    assert "version" in validate_sarif({"version": "1.0.0", "runs": []})[0]
    good = sarif_report(
        [Finding(path="a.py", line=2, rule="r", message="m")], tool_name="t"
    )
    # Unknown ruleId.
    broken = json.loads(json.dumps(good))
    broken["runs"][0]["results"][0]["ruleId"] = "ghost"
    assert any("ghost" in p for p in validate_sarif(broken))
    # 0-based region.
    broken = json.loads(json.dumps(good))
    broken["runs"][0]["results"][0]["locations"][0]["physicalLocation"]["region"][
        "startLine"
    ] = 0
    assert any("startLine" in p for p in validate_sarif(broken))
    # Backslash path.
    broken = json.loads(json.dumps(good))
    broken["runs"][0]["results"][0]["locations"][0]["physicalLocation"][
        "artifactLocation"
    ]["uri"] = "a\\b.py"
    assert any("forward-slash" in p for p in validate_sarif(broken))
    # Missing message text.
    broken = json.loads(json.dumps(good))
    del broken["runs"][0]["results"][0]["message"]
    assert any("message.text" in p for p in validate_sarif(broken))


def test_cli_sarif_output_validates_for_both_tools(capsys):
    assert main(["lint", "--format=sarif"]) == 0
    lint_doc = json.loads(capsys.readouterr().out)
    assert validate_sarif(lint_doc) == []
    assert len(lint_doc["runs"][0]["tool"]["driver"]["rules"]) == len(ALL_RULES)

    assert main(["flow", "--format=sarif"]) == 0
    flow_doc = json.loads(capsys.readouterr().out)
    assert validate_sarif(flow_doc) == []
    assert flow_doc["runs"][0]["tool"]["driver"]["name"] == "repro-flow"


def test_cli_sarif_output_carries_findings_on_failure(tmp_path, capsys):
    bad = FLOW_FIXTURES / "flow-determinism" / "bad.py"
    assert main(["flow", "--paths", str(bad), "--no-baseline", "--format=sarif"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert validate_sarif(doc) == []
    assert [r["ruleId"] for r in doc["runs"][0]["results"]] == ["flow-determinism"]
