"""Unit tests for the lint engine: directives, baseline, registry, CLI."""

import json
from pathlib import Path

import pytest

from repro.analysis.lint import (
    Baseline,
    Finding,
    LintError,
    resolve_rules,
    run_lint,
    scan_directives,
    write_baseline,
)
from repro.analysis.lint.registry import ALL_RULES
from repro.cli import main


# ----------------------------------------------------------------------
# Directive parsing
# ----------------------------------------------------------------------


def test_trailing_waiver_targets_its_own_line():
    waivers, module = scan_directives(
        ["x = clock()  # repro: allow(wallclock): metadata only"]
    )
    assert module is None
    (w,) = waivers
    assert (w.rule, w.comment_line, w.target_line) == ("wallclock", 1, 1)
    assert w.justified and w.justification == "metadata only"


def test_standalone_waiver_targets_next_code_line():
    waivers, _ = scan_directives(
        [
            "# repro: allow(wallclock): metadata only",
            "",
            "# an unrelated comment",
            "x = clock()",
        ]
    )
    (w,) = waivers
    assert (w.comment_line, w.target_line) == (1, 4)


def test_unjustified_waiver_is_parsed_but_not_justified():
    for text in ["# repro: allow(wallclock)", "# repro: allow(wallclock):   "]:
        (w,), _ = scan_directives([text])
        assert not w.justified


def test_module_directive_overrides_module_identity():
    _, module = scan_directives(["# repro: module(repro.sim.example)", "x = 1"])
    assert module == "repro.sim.example"


def test_directives_inside_string_literals_are_ignored():
    waivers, module = scan_directives(
        [
            'HINT = "waive with `# repro: allow(wallclock): why`"',
            "DOC = '# repro: module(repro.sim.fake)'",
        ]
    )
    assert waivers == [] and module is None


# ----------------------------------------------------------------------
# Finding model and baseline
# ----------------------------------------------------------------------


def _finding(message="msg", path="src/repro/x.py", rule="wallclock", line=3):
    return Finding(path=path, line=line, rule=rule, message=message)


def test_finding_format_and_dict():
    f = _finding()
    assert f.format() == "src/repro/x.py:3: [wallclock] msg"
    assert f.baseline_key() == ("src/repro/x.py", "wallclock", "msg")
    assert f.to_dict()["severity"] == "error"


def test_baseline_roundtrip_and_multiset(tmp_path):
    path = tmp_path / "base.json"
    write_baseline(path, [_finding(), _finding()])
    base = Baseline.load(path)
    assert len(base.entries) == 2
    # Two entries absorb two findings; a third of the same key stays active.
    active, baselined, stale = base.partition([_finding()] * 3)
    assert (len(active), len(baselined), len(stale)) == (1, 2, 0)


def test_baseline_line_numbers_do_not_matter(tmp_path):
    path = tmp_path / "base.json"
    write_baseline(path, [_finding(line=3)])
    active, baselined, stale = Baseline.load(path).partition([_finding(line=99)])
    assert not active and len(baselined) == 1 and not stale


def test_baseline_stale_entries_are_reported(tmp_path):
    path = tmp_path / "base.json"
    write_baseline(path, [_finding(message="gone")])
    active, baselined, stale = Baseline.load(path).partition([])
    assert not active and not baselined and len(stale) == 1


def test_missing_baseline_file_is_empty():
    assert Baseline.load("/nonexistent/lint-baseline.json").entries == []


def test_write_baseline_attaches_notes(tmp_path):
    f = _finding()
    path = write_baseline(tmp_path / "b.json", [f], notes={f.baseline_key(): "why"})
    assert json.loads(path.read_text())["findings"][0]["note"] == "why"


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


def test_resolve_rules_by_id_code_and_default():
    assert resolve_rules(None) == ALL_RULES
    assert [r.id for r in resolve_rules("wallclock")] == ["wallclock"]
    assert [r.code for r in resolve_rules("d2, L1")] == ["D2", "L1"]
    with pytest.raises(LintError):
        resolve_rules("no-such-rule")


def test_rule_metadata_is_complete_and_unique():
    ids = [r.id for r in ALL_RULES]
    codes = [r.code for r in ALL_RULES]
    assert len(set(ids)) == len(ids) and len(set(codes)) == len(codes)
    for rule in ALL_RULES:
        assert rule.id and rule.code and rule.description and rule.fix_hint


# ----------------------------------------------------------------------
# Engine behaviour
# ----------------------------------------------------------------------


def test_waiver_cannot_waive_the_waiver_rules(tmp_path):
    target = tmp_path / "snippet.py"
    target.write_text(
        "# repro: module(repro.sim.example)\n"
        "# repro: allow(waiver-justification): nice try\n"
        "# repro: allow(wallclock)\n"
        "x = 1\n"
    )
    report = run_lint([target], root=tmp_path, baseline=None)
    rules = sorted(f.rule for f in report.findings)
    # The bare waiver is reported and the meta-waiver absorbing it is itself
    # stale (it matched nothing), so both waiver rules fire.
    assert "waiver-justification" in rules and "unused-waiver" in rules


def test_syntax_error_becomes_parse_error_finding(tmp_path):
    target = tmp_path / "broken.py"
    target.write_text("def f(:\n")
    report = run_lint([target], root=tmp_path, baseline=None)
    assert [f.rule for f in report.findings] == ["parse-error"]
    assert not report.ok


def test_run_lint_rejects_missing_paths(tmp_path):
    with pytest.raises(LintError):
        run_lint([tmp_path / "nope"], root=tmp_path, baseline=None)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

BAD_FIXTURE = str(
    Path(__file__).resolve().parent / "fixtures" / "lint" / "wallclock" / "bad.py"
)


def test_cli_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ALL_RULES:
        assert rule.id in out


def test_cli_json_output_on_bad_fixture(capsys):
    code = main(["lint", "--paths", BAD_FIXTURE, "--no-baseline", "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["counts"]["active"] == len(payload["findings"]) > 0
    assert all(f["rule"] == "wallclock" for f in payload["findings"])


def test_cli_text_output_mentions_fix_hint(capsys):
    assert main(["lint", "--paths", BAD_FIXTURE, "--no-baseline"]) == 1
    assert "fix:" in capsys.readouterr().out


def test_cli_rule_filter_can_mask_findings(capsys):
    # Filtering to an unrelated rule hides the wallclock findings.
    assert main(["lint", "--paths", BAD_FIXTURE, "--no-baseline", "--rules", "D4"]) == 0


def test_cli_unknown_rule_is_usage_error(capsys):
    assert main(["lint", "--rules", "bogus"]) == 2
