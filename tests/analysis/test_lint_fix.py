"""``repro lint --fix``: stale waivers are deleted, everything else is kept."""

import textwrap

from repro.analysis.lint import fix_unused_waivers, run_lint
from repro.cli import main

CONTENT = textwrap.dedent(
    """\
    # repro: module(repro.sim.fixme)
    import time

    t0 = time.perf_counter()  # repro: allow(wallclock): measured on purpose
    y = 1  # repro: allow(wallclock): stale trailing waiver
    # repro: allow(id-ordering): stale standalone waiver
    z = 2
    q = 3  # repro: allow(flow-lateness): owned by repro flow, not the linter
    s = "# repro: allow(wallclock): waiver-shaped string, not a comment"
    """
)

EXPECTED = textwrap.dedent(
    """\
    # repro: module(repro.sim.fixme)
    import time

    t0 = time.perf_counter()  # repro: allow(wallclock): measured on purpose
    y = 1
    z = 2
    q = 3  # repro: allow(flow-lateness): owned by repro flow, not the linter
    s = "# repro: allow(wallclock): waiver-shaped string, not a comment"
    """
)


def test_fix_deletes_exactly_the_stale_waivers(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text(CONTENT)
    fixed = fix_unused_waivers([path], root=tmp_path)
    assert fixed == {"mod.py": 2}
    assert path.read_text() == EXPECTED


def test_fix_round_trip_leaves_no_w2_findings(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text(CONTENT)
    before = run_lint([path], root=tmp_path, baseline=None)
    assert [f.rule for f in before.findings] == ["unused-waiver", "unused-waiver"]
    fix_unused_waivers([path], root=tmp_path)
    after = run_lint([path], root=tmp_path, baseline=None)
    assert after.ok, [f.format() for f in after.findings]
    # The used waiver still absorbs its finding.
    assert [f.rule for f in after.waived] == ["wallclock"]


def test_fix_is_idempotent_and_reports_nothing_on_clean_trees(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text(CONTENT)
    assert fix_unused_waivers([path], root=tmp_path)
    assert fix_unused_waivers([path], root=tmp_path) == {}
    assert path.read_text() == EXPECTED


def test_fix_invalidates_a_shared_cache(tmp_path):
    from repro.analysis.source_cache import SourceCache

    path = tmp_path / "mod.py"
    path.write_text(CONTENT)
    cache = SourceCache(tmp_path)
    fix_unused_waivers([path], root=tmp_path, cache=cache)
    # A fresh parse through the same cache sees the rewritten file.
    assert len(cache.module(path).waivers) == 2


def test_cli_fix_flag(tmp_path, capsys):
    path = tmp_path / "mod.py"
    path.write_text(CONTENT)
    assert main(["lint", "--fix", "--paths", str(path), "--no-baseline"]) == 0
    out = capsys.readouterr().out
    assert "removed 2 stale waiver(s)" in out
    assert path.read_text() == EXPECTED
    assert main(["lint", "--fix", "--paths", str(path), "--no-baseline"]) == 0
    assert "nothing to fix" in capsys.readouterr().out
