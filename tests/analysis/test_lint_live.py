"""The linter gates the live tree: clean with the committed baseline."""

from pathlib import Path

import pytest

import repro
from repro.analysis.lint import run_lint
from repro.analysis.lint.registry import ALL_RULES
from repro.cli import main

REPO_ROOT = Path(repro.__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / "lint-baseline.json"
FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lint"


def test_live_tree_is_clean_under_committed_baseline():
    report = run_lint([SRC], root=REPO_ROOT, baseline=BASELINE)
    assert report.ok, "\n" + "\n".join(f.format() for f in report.findings)
    # The baseline only ever shrinks: every committed entry still matches.
    assert not report.stale_baseline, report.stale_baseline
    # The committed waivers are all live (none went stale silently).
    assert report.waived, "expected the documented inline waivers to be in use"


def test_cli_gate_passes_on_live_tree():
    assert main(["lint"]) == 0


@pytest.mark.parametrize("rule_id", [r.id for r in ALL_RULES])
def test_injected_bad_fixture_fails_the_gate(rule_id):
    bad = FIXTURES / rule_id / "bad.py"
    if not bad.exists():
        bad = FIXTURES / rule_id / "bad_pkg"
    report = run_lint([SRC, bad], root=REPO_ROOT, baseline=BASELINE)
    assert not report.ok
    assert any(f.rule == rule_id for f in report.findings)


def test_injected_bad_fixture_fails_the_cli_gate():
    bad = str(FIXTURES / "id-ordering" / "bad.py")
    assert main(["lint", "--paths", bad, "--no-baseline"]) == 1
