"""Tests for Chernoff tail helpers."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis.chernoff import (
    deviation_for_failure_prob,
    lower_tail,
    min_mu_for_whp,
    upper_tail,
    whp_threshold,
)


class TestTails:
    def test_upper_decreases_in_delta(self):
        assert upper_tail(50, 0.5) > upper_tail(50, 1.0)

    def test_lower_decreases_in_mu(self):
        assert lower_tail(10, 0.5) > lower_tail(100, 0.5)

    def test_zero_delta_trivial(self):
        assert upper_tail(50, 0.0) == 1.0
        assert lower_tail(50, 0.0) == 1.0

    def test_bounds_in_unit_interval(self):
        for mu in (1, 10, 100):
            for d in (0.1, 0.5, 1.0):
                assert 0.0 < upper_tail(mu, d) <= 1.0
                assert 0.0 < lower_tail(mu, d) <= 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            upper_tail(-1, 0.5)
        with pytest.raises(ValueError):
            lower_tail(10, 1.5)

    def test_lower_tail_actually_bounds_binomial(self, rng):
        """Empirical check: the bound dominates the observed tail."""
        mu, trials = 40.0, 20000
        draws = rng.binomial(80, 0.5, size=trials)  # mean 40
        for delta in (0.25, 0.5):
            observed = np.mean(draws <= (1 - delta) * mu)
            assert observed <= lower_tail(mu, delta) + 0.01


class TestInversions:
    @given(
        st.floats(min_value=1.0, max_value=1e4),
        st.floats(min_value=1e-6, max_value=0.5),
    )
    def test_deviation_roundtrip(self, mu, p_fail):
        d = deviation_for_failure_prob(mu, p_fail)
        assert lower_tail(mu, min(d, 1.0)) <= p_fail + 1e-9 or d > 1.0

    def test_min_mu_gives_whp(self):
        n, k, delta = 1024, 1, 0.5
        mu = min_mu_for_whp(n, k, delta)
        assert lower_tail(mu, delta) <= whp_threshold(n, k) * 1.0001

    def test_min_mu_is_logarithmic(self):
        assert min_mu_for_whp(2**20) / min_mu_for_whp(2**10) == pytest.approx(2.0)

    def test_whp_threshold(self):
        assert whp_threshold(100, 2) == pytest.approx(1e-4)
        with pytest.raises(ValueError):
            whp_threshold(1, 1)
