"""Corpus driver: every proto rule has a passing and a failing fixture.

Each rule directory carries its own minimal ``spec.json`` next to the
``ok.py``/``bad.py`` pair, so the corpus doubles as documentation of
what the declarative spec can say: the ``ok`` fixture fully satisfies
its spec under ALL six rules, the ``bad`` fixture injects exactly the
defect shapes its rule exists to catch.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.proto import ALL_PROTO_RULES, run_proto_check

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "proto"
RULE_IDS = [rule.id for rule in ALL_PROTO_RULES]


def _run(rule_id, name):
    return run_proto_check(
        [FIXTURES / rule_id / name],
        root=FIXTURES,
        baseline=None,
        spec=FIXTURES / rule_id / "spec.json",
    )


def test_every_rule_has_a_fixture_pair():
    for rule_id in RULE_IDS:
        assert (FIXTURES / rule_id / "ok.py").exists(), rule_id
        assert (FIXTURES / rule_id / "bad.py").exists(), rule_id
        assert (FIXTURES / rule_id / "spec.json").exists(), rule_id
    # And nothing in the corpus is orphaned from a real rule.
    assert sorted(d.name for d in FIXTURES.iterdir() if d.is_dir()) == sorted(
        RULE_IDS
    )


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_fixture_spec_is_valid(rule_id):
    from repro.analysis.proto import ProtocolSpec

    raw = json.loads((FIXTURES / rule_id / "spec.json").read_text())
    spec = ProtocolSpec.from_dict(raw)
    assert spec.messages  # every fixture spec names at least one message
    assert all(m.anchor for m in spec.messages)


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_ok_fixture_is_clean(rule_id):
    report = _run(rule_id, "ok.py")
    assert report.ok, [f.format() for f in report.findings]


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_bad_fixture_triggers_its_rule(rule_id):
    report = _run(rule_id, "bad.py")
    hits = [f for f in report.findings if f.rule == rule_id]
    assert hits, f"no {rule_id} finding in {[f.format() for f in report.findings]}"
    for f in hits:
        assert f.message and f.fix_hint
        # Spec-side findings (unimplemented message/payload) anchor to the
        # spec file at line 0; everything else points at real code.
        assert f.line > 0 or f.path == "spec.json"


def test_unhandled_message_bad_names_all_three_shapes():
    report = _run("protocol-unhandled-message", "bad.py")
    messages = [f.message for f in report.findings]
    assert any("no node dispatches it" in m for m in messages)
    assert any("dispatch entry for `Pong` is dead" in m for m in messages)
    assert any('"probe" is emitted here but' in m for m in messages)


def test_phase_violation_bad_names_all_three_shapes():
    report = _run("protocol-phase-violation", "bad.py")
    messages = [f.message for f in report.findings]
    assert any("`Beat` constructed in phase context {fresh}" in m for m in messages)
    assert any('routed payload "probe" emitted in phase context any' in m for m in messages)
    assert any("`Beat` handed to Node._handle_beats" in m for m in messages)
    # Every phase finding cites the spec anchor it violates.
    assert all(
        "fixture:" in m
        for m in messages
        if "phase context" in m
    )


def test_field_drift_bad_names_all_five_shapes():
    report = _run("protocol-field-drift", "bad.py")
    messages = [f.message for f in report.findings]
    assert any("drift from the spec" in m for m in messages)
    assert any("3 positional args but it has 2 fields" in m for m in messages)
    assert any("unknown field `pos`" in m for m in messages)
    assert any("without required field `position`" in m for m in messages)
    assert any("packs a 4-tuple" in m for m in messages)
    assert any("unpacks 1 wire" in m for m in messages)


def test_step_bound_bad_names_all_three_shapes():
    report = _run("protocol-step-bound", "bad.py")
    messages = [f.message for f in report.findings]
    assert any("initialised to 1 but the spec" in m for m in messages)
    assert any("`final_step` bound check" in m for m in messages)
    assert any("not a spec'd source" in m for m in messages)


def test_epoch_monotone_bad_names_all_three_shapes():
    report = _run("protocol-epoch-monotone", "bad.py")
    messages = [f.message for f in report.findings]
    assert any("not a spec'd epoch writer" in m for m in messages)
    assert any("self.epoch written from `e + 5`" in m for m in messages)
    assert any("field `epoch` of `JoinRec` filled from `9`" in m for m in messages)


def test_spec_coverage_bad_names_all_five_shapes():
    report = _run("protocol-spec-coverage", "bad.py")
    messages = [f.message for f in report.findings]
    assert any("no __protocol__-marked" in m and "`Ping`" in m for m in messages)
    assert any("`Rogue` is not covered by the protocol" in m for m in messages)
    assert any("`Stray` in message module protofix.p6_bad" in m for m in messages)
    assert any('tag "mystery" is not covered' in m for m in messages)
    assert any('payload "probe" but nothing emits' in m for m in messages)
    # The spec-side findings land on the spec file itself, always active.
    spec_side = [f for f in report.findings if f.path == "spec.json"]
    assert len(spec_side) == 2
