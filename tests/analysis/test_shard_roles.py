"""Unit tests for process-role inference (seeds, propagation, tripwires)."""

import textwrap

from repro.analysis.flow.callgraph import ProjectIndex
from repro.analysis.lint.engine import SourceModule
from repro.analysis.shard import MASTER, SHARED, WORKER, infer_roles


def _index(tmp_path, source, name="m.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return ProjectIndex([SourceModule.from_path(path, tmp_path)])


def test_worker_seed_propagates_to_helpers(tmp_path):
    roles = infer_roles(
        _index(
            tmp_path,
            """
            def _publish(store, v):
                store.adopt(v, 0)

            def _worker_main(engine, store):
                for v in engine.owned:
                    _publish(store, v)
            """,
        )
    )
    assert roles.worker_seeds == ("m._worker_main",)
    assert roles.role_of("m._worker_main") == WORKER
    assert roles.role_of("m._publish") == WORKER
    assert roles.worker_only("m._publish")


def test_master_seeds_cover_runner_methods_and_engine_run(tmp_path):
    roles = infer_roles(
        _index(
            tmp_path,
            """
            def _splice(items):
                return sorted(items)

            class ShardRunner:
                def run_compute(self, items):
                    return _splice(items)

            class Engine:
                def run_round(self):
                    return 1
            """,
        )
    )
    assert "m.ShardRunner.run_compute" in roles.master_seeds
    assert "m.Engine.run_round" in roles.master_seeds
    assert roles.role_of("m._splice") == MASTER
    assert not roles.worker_only("m._splice")


def test_helper_reachable_from_both_sides_is_shared(tmp_path):
    roles = infer_roles(
        _index(
            tmp_path,
            """
            def _encode(payload):
                return bytes(payload)

            def _worker_main(conn):
                conn.send_bytes(_encode([1]))

            class ShardRunner:
                def send(self, conn):
                    conn.send_bytes(_encode([2]))
            """,
        )
    )
    assert roles.role_of("m._encode") == SHARED
    assert not roles.worker_only("m._encode")


def test_unreachable_function_has_no_role(tmp_path):
    roles = infer_roles(
        _index(
            tmp_path,
            """
            def _worker_main(engine):
                return engine.params

            def bystander():
                return 0
            """,
        )
    )
    assert roles.role_of("m.bystander") is None
    assert not roles.worker_only("m.bystander")


def test_process_target_reference_does_not_leak_worker_into_master(tmp_path):
    """`Process(target=_worker_main)` is a name load, not a call — the
    master-side spawn loop must not make the worker body master-reachable."""
    roles = infer_roles(
        _index(
            tmp_path,
            """
            import multiprocessing

            def _worker_main(engine):
                return engine.params

            class ShardRunner:
                def spawn(self, engine):
                    proc = multiprocessing.Process(
                        target=_worker_main, args=(engine,)
                    )
                    proc.start()
                    return proc
            """,
        )
    )
    assert roles.role_of("m._worker_main") == WORKER
    assert roles.worker_only("m._worker_main")


def test_counts_sum_over_all_roles(tmp_path):
    roles = infer_roles(
        _index(
            tmp_path,
            """
            def _helper():
                return 1

            def _worker_loop():
                return _helper()

            class ShardRunner:
                def close(self):
                    return _helper()
            """,
        )
    )
    counts = roles.counts()
    assert counts == {MASTER: 1, WORKER: 1, SHARED: 1}
    assert sum(counts.values()) == len(roles.roles)
