"""The live gate: proto-check is clean on this repository, and each rule
demonstrably fires when the committed spec is perturbed.

The injection tests work by *mutating the spec*, not the source: if the
paper's contract said something slightly different, the analyzer must
notice the code no longer matches.  That proves every rule is live
against the real tree, not just against fixture-shaped code.
"""

import copy
import json
from pathlib import Path

import pytest

from repro.analysis.flow import ProjectIndex
from repro.analysis.proto import (
    ProtocolSpec,
    contract_markdown,
    load_spec,
    resolve_proto_rules,
    run_proto_check,
)
from repro.analysis.source_cache import SourceCache, collect_py_files

ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def shared():
    """One parse + one call graph for every live run in this module."""
    cache = SourceCache(ROOT)
    files = collect_py_files([ROOT / "src" / "repro"])
    modules = [m for m in map(cache.try_module, files) if m]
    index = ProjectIndex(modules)
    raw = json.loads((ROOT / "protocol-spec.json").read_text())
    return cache, index, raw


def _run(shared, spec_raw, rules=None):
    cache, index, _ = shared
    return run_proto_check(
        None,
        root=ROOT,
        rules=rules,
        baseline=None,
        cache=cache,
        index=index,
        spec=ProtocolSpec.from_dict(spec_raw),
    )


def test_live_tree_is_clean_under_committed_spec(shared):
    _, _, raw = shared
    report = _run(shared, raw)
    assert report.ok, [f.format() for f in report.findings]
    # The committed spec covers the full implemented protocol.
    assert report.protocol["messages"] == 7
    assert report.protocol["dispatch_entries"] == 6
    assert report.protocol["constructions"] >= 9
    assert len(report.spec.messages) == report.protocol["messages"]


def test_spec_covers_every_core_messages_class(shared):
    """100% coverage of core/messages.py, enforced structurally."""
    _, _, raw = shared
    assert "repro.core.messages" in raw["message_modules"]
    import ast

    tree = ast.parse((ROOT / "src" / "repro" / "core" / "messages.py").read_text())
    class_names = {
        n.name for n in tree.body if isinstance(n, ast.ClassDef)
    }
    assert class_names <= set(raw["messages"])


def test_p1_fires_when_a_record_is_respecced_as_dispatched(shared):
    _, _, raw = shared
    mutated = copy.deepcopy(raw)
    # JoinRecord rides inside batches; claiming it needs its own dispatch
    # entry must flag every construction site as unhandled.
    mutated["messages"]["JoinRecord"]["kind"] = "message"
    report = _run(shared, mutated, rules=resolve_proto_rules("P1"))
    hits = [f for f in report.findings if f.rule == "protocol-unhandled-message"]
    assert hits and all("`JoinRecord`" in f.message for f in hits)


def test_p2_fires_when_producer_phases_are_narrowed(shared):
    _, _, raw = shared
    mutated = copy.deepcopy(raw)
    mutated["messages"]["TokenMsg"]["producer_phases"] = ["new"]
    report = _run(shared, mutated, rules=resolve_proto_rules("P2"))
    hits = [f for f in report.findings if f.rule == "protocol-phase-violation"]
    assert hits and all("`TokenMsg`" in f.message for f in hits)


def test_p3_fires_when_spec_fields_drift(shared):
    _, _, raw = shared
    mutated = copy.deepcopy(raw)
    mutated["messages"]["JoinRecord"]["fields"] = ["node", "pos"]
    report = _run(shared, mutated, rules=resolve_proto_rules("P3"))
    hits = [f for f in report.findings if f.rule == "protocol-field-drift"]
    assert any("drift from the spec" in f.message for f in hits)


def test_p4_fires_when_step_init_is_respecced(shared):
    _, _, raw = shared
    mutated = copy.deepcopy(raw)
    mutated["hops"]["step_init"] = 5
    report = _run(shared, mutated, rules=resolve_proto_rules("P4"))
    hits = [f for f in report.findings if f.rule == "protocol-step-bound"]
    assert any("step_init=5" in f.message for f in hits)


def test_p4_fires_when_ttl_sources_are_removed(shared):
    _, _, raw = shared
    mutated = copy.deepcopy(raw)
    mutated["ttl"]["sources"] = ["round + 999"]
    report = _run(shared, mutated, rules=resolve_proto_rules("P4"))
    hits = [f for f in report.findings if f.rule == "protocol-step-bound"]
    assert any("not a spec'd source" in f.message for f in hits)


def test_p5_fires_when_epoch_writers_are_removed(shared):
    _, _, raw = shared
    mutated = copy.deepcopy(raw)
    mutated["epochs"]["writers"] = {}
    report = _run(shared, mutated, rules=resolve_proto_rules("P5"))
    hits = [f for f in report.findings if f.rule == "protocol-epoch-monotone"]
    assert any("not a spec'd epoch writer" in f.message for f in hits)


def test_p6_fires_in_both_directions(shared):
    _, _, raw = shared
    mutated = copy.deepcopy(raw)
    entry = mutated["messages"].pop("JoinBatch")
    mutated["messages"]["GhostMsg"] = entry
    report = _run(shared, mutated, rules=resolve_proto_rules("P6"))
    messages = [f.message for f in report.findings]
    assert any("`GhostMsg`" in m and "no __protocol__-marked" in m for m in messages)
    assert any("`JoinBatch` is not covered" in m for m in messages)
    # The missing-implementation finding anchors to the spec file itself.
    assert any(f.path == "protocol-spec.json" for f in report.findings)


def test_protocol_md_embeds_the_generated_contract_table():
    spec = load_spec(ROOT / "protocol-spec.json")
    table = contract_markdown(spec)
    assert table in (ROOT / "docs" / "PROTOCOL.md").read_text()
