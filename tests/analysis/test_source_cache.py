"""The shared parse cache: one parse per file across lint + flow."""

import pytest

from repro.analysis.flow import run_flow
from repro.analysis.lint import run_lint
from repro.analysis.source_cache import SourceCache, collect_py_files

ARM = "# repro: module(repro.sim.cached)\n"


def _populate(tmp_path, n=3):
    for i in range(n):
        (tmp_path / f"m{i}.py").write_text(ARM + f"X{i} = {i}\n")
    return tmp_path


def test_lint_and_flow_share_one_parse_per_file(tmp_path):
    _populate(tmp_path)
    cache = SourceCache(tmp_path)
    lint = run_lint([tmp_path], root=tmp_path, baseline=None, cache=cache)
    flow = run_flow([tmp_path], root=tmp_path, baseline=None, cache=cache)
    assert lint.files == flow.files == 3
    assert cache.parses == 3


def test_unshared_runs_parse_twice(tmp_path):
    _populate(tmp_path)
    c1, c2 = SourceCache(tmp_path), SourceCache(tmp_path)
    run_lint([tmp_path], root=tmp_path, baseline=None, cache=c1)
    run_flow([tmp_path], root=tmp_path, baseline=None, cache=c2)
    assert c1.parses == 3 and c2.parses == 3


def test_x1_sibling_lookups_reuse_the_main_loop_parses(tmp_path):
    # A package whose __init__ re-exports from a sibling: the X1 rule reads
    # the sibling's __all__, which must not trigger a second parse.
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "one.py").write_text('__all__ = ["alpha"]\nalpha = 1\n')
    (pkg / "__init__.py").write_text(
        'from pkg.one import alpha\n\n__all__ = ["alpha"]\n'
    )
    cache = SourceCache(tmp_path)
    report = run_lint([pkg], root=tmp_path, baseline=None, cache=cache)
    assert report.ok, [f.format() for f in report.findings]
    assert cache.parses == 2


def test_syntax_errors_are_memoized(tmp_path):
    path = tmp_path / "broken.py"
    path.write_text("def broken(:\n")
    cache = SourceCache(tmp_path)
    assert cache.try_module(path) is None
    with pytest.raises(SyntaxError):
        cache.module(path)
    assert cache.try_module(path) is None
    assert cache.parses == 1


def test_invalidate_forces_a_reparse(tmp_path):
    path = tmp_path / "m.py"
    path.write_text("X = 1\n")
    cache = SourceCache(tmp_path)
    assert cache.module(path).tree is cache.module(path).tree
    assert cache.parses == 1
    path.write_text("X = 2\n")
    cache.invalidate(path)
    assert cache.module(path).source == "X = 2\n"
    assert cache.parses == 2


def test_collect_py_files_dedupes_and_rejects_missing(tmp_path):
    _populate(tmp_path, n=2)
    files = collect_py_files([tmp_path, tmp_path / "m0.py"])
    assert len(files) == 2
    with pytest.raises(FileNotFoundError):
        collect_py_files([tmp_path / "ghost"])
