"""Tests for knowledge-graph connectivity audits."""

from __future__ import annotations

import pytest

from repro.analysis.connectivity import (
    component_of,
    components,
    is_connected,
    is_isolated,
)


class TestComponents:
    def test_single_component(self):
        knows = {1: {2}, 2: {3}, 3: set()}
        assert is_connected(knows)
        assert components(knows) == [{1, 2, 3}]

    def test_two_components(self):
        knows = {1: {2}, 2: set(), 3: {4}, 4: set()}
        comps = components(knows)
        assert len(comps) == 2
        assert {1, 2} in comps and {3, 4} in comps
        assert not is_connected(knows)

    def test_undirected_closure(self):
        """u knowing v connects them both ways for partition purposes."""
        knows = {1: {2}, 2: set()}
        assert component_of(knows, 2) == {1, 2}

    def test_edges_to_dead_nodes_ignored(self):
        knows = {1: {99}, 2: {1}}  # 99 not alive
        assert component_of(knows, 1) == {1, 2}

    def test_empty_graph_connected(self):
        assert is_connected({})

    def test_component_of_missing_raises(self):
        with pytest.raises(KeyError):
            component_of({1: set()}, 9)


class TestIsolation:
    def test_isolated_singleton(self):
        knows = {1: set(), 2: {3}, 3: set()}
        assert is_isolated(knows, 1)
        assert not is_isolated(knows, 2)

    def test_isolated_pair(self):
        knows = {1: {2}, 2: set(), 3: {4}, 4: {3}}
        assert is_isolated(knows, 1, max_size=2)
        assert not is_isolated(knows, 1, max_size=1)
