"""Tests for statistical estimators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.estimators import (
    chi_square_uniform,
    fit_log_power,
    fit_power_law,
    wilson_interval,
)


class TestWilson:
    def test_contains_true_rate(self):
        est = wilson_interval(50, 100)
        assert est.lo < 0.5 < est.hi
        assert est.rate == 0.5

    def test_extremes(self):
        est = wilson_interval(0, 20)
        assert est.lo == 0.0 and est.hi > 0.0
        est = wilson_interval(20, 20)
        assert est.hi == 1.0 and est.lo < 1.0

    def test_narrows_with_trials(self):
        small = wilson_interval(5, 10)
        big = wilson_interval(500, 1000)
        assert (big.hi - big.lo) < (small.hi - small.lo)

    def test_invalid(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(11, 10)


class TestChiSquare:
    def test_uniform_data_not_rejected(self, rng):
        counts = np.bincount(rng.integers(0, 50, size=5000), minlength=50)
        _, p = chi_square_uniform(counts)
        assert p > 0.001

    def test_skewed_data_rejected(self):
        counts = np.array([1000] + [10] * 49)
        _, p = chi_square_uniform(counts)
        assert p < 1e-6

    def test_invalid(self):
        with pytest.raises(ValueError):
            chi_square_uniform(np.array([5.0]))
        with pytest.raises(ValueError):
            chi_square_uniform(np.zeros(4))


class TestPowerLawFits:
    def test_exact_power_law_recovered(self):
        xs = np.array([2.0, 4.0, 8.0, 16.0])
        ys = 3.0 * xs**2
        a, b = fit_power_law(xs, ys)
        assert a == pytest.approx(3.0, rel=1e-9)
        assert b == pytest.approx(2.0, rel=1e-9)

    def test_log_power_recovers_cubic_log(self):
        ns = np.array([64, 256, 1024, 4096], dtype=float)
        ys = 5.0 * np.log2(ns) ** 3
        a, b = fit_log_power(ns, ys)
        assert a == pytest.approx(5.0, rel=1e-9)
        assert b == pytest.approx(3.0, rel=1e-9)

    def test_invalid(self):
        with pytest.raises(ValueError):
            fit_power_law(np.array([1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            fit_power_law(np.array([0.0, 1.0]), np.array([1.0, 2.0]))
