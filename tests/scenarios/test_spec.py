"""Tests for Scenario specs: validation, JSON round-trip, builders."""

from __future__ import annotations

import json

import pytest

from repro.adversary.composed import ComposedAdversary
from repro.adversary.oblivious import RandomChurnAdversary
from repro.adversary.swarm_wipe import ContactTraceAdversary, DegreeTargetAdversary
from repro.faults.plan import FaultPlan, MessageFaults
from repro.scenarios.spec import (
    AdversarySpec,
    ChurnSpec,
    Scenario,
    build_adversary,
    build_params,
    materialize_plan,
)


class TestValidation:
    def test_churn_kind(self):
        with pytest.raises(ValueError):
            ChurnSpec(kind="bogus")

    def test_churn_intensity(self):
        with pytest.raises(ValueError):
            ChurnSpec(kind="random", intensity=0.0)

    def test_attack_kind(self):
        with pytest.raises(ValueError):
            AdversarySpec(kind="bogus")

    def test_scenario_fields(self):
        with pytest.raises(ValueError):
            Scenario(name="", description="d")
        with pytest.raises(ValueError):
            Scenario(name="x", description="d", rounds=0)
        with pytest.raises(ValueError):
            Scenario(name="x", description="d", n=4)


class TestJsonRoundTrip:
    def make(self):
        return Scenario(
            name="demo",
            description="a demo",
            plan=FaultPlan(messages=(MessageFaults(drop_p=0.2, start=3, end=9),)),
            churn=ChurnSpec(kind="random", intensity=0.5),
            attack=AdversarySpec(kind="degree-target", top=3),
            rounds=20,
            n=48,
        )

    def test_round_trips(self):
        s = self.make()
        assert Scenario.from_json(s.to_json()) == s

    def test_json_serializable(self):
        doc = self.make().to_json()
        assert json.loads(json.dumps(doc)) == doc

    def test_unknown_field_rejected(self):
        doc = self.make().to_json()
        doc["bogus"] = 1
        with pytest.raises(ValueError):
            Scenario.from_json(doc)


class TestBuilders:
    def scenario(self, **kw):
        defaults = dict(name="demo", description="d")
        defaults.update(kw)
        return Scenario(**defaults)

    def test_params_follow_scenario_n(self):
        params = build_params(self.scenario(n=48), seed=3)
        assert params.n == 48
        assert params.seed == 3

    def test_plan_shifts_past_bootstrap(self):
        sc = self.scenario(
            plan=FaultPlan(messages=(MessageFaults(drop_p=0.5, start=4, end=20),))
        )
        params = build_params(sc, seed=0)
        plan = materialize_plan(sc, params, seed=0)
        assert plan.messages[0].start == params.bootstrap_rounds + 4
        assert plan.messages[0].end == params.bootstrap_rounds + 20

    def test_seed_mixed_into_plan(self):
        sc = self.scenario(
            plan=FaultPlan(messages=(MessageFaults(drop_p=0.5),))
        )
        params = build_params(sc, seed=0)
        a = materialize_plan(sc, params, seed=1)
        b = materialize_plan(sc, params, seed=2)
        assert a.seed != b.seed
        assert materialize_plan(sc, params, seed=1) == a

    def test_no_adversary_when_quiet(self):
        sc = self.scenario()
        assert build_adversary(sc, build_params(sc, 0), 0) is None

    def test_single_child_not_wrapped(self):
        sc = self.scenario(churn=ChurnSpec(kind="random"))
        adv = build_adversary(sc, build_params(sc, 0), 0)
        assert isinstance(adv, RandomChurnAdversary)

    def test_churn_plus_attack_composed(self):
        sc = self.scenario(
            churn=ChurnSpec(kind="random"),
            attack=AdversarySpec(kind="degree-target", top=2),
        )
        adv = build_adversary(sc, build_params(sc, 0), 0)
        assert isinstance(adv, ComposedAdversary)
        kinds = {type(c) for c in adv.children}
        assert kinds == {RandomChurnAdversary, DegreeTargetAdversary}

    def test_contact_trace_attack(self):
        sc = self.scenario(attack=AdversarySpec(kind="contact-trace", victim=5))
        adv = build_adversary(sc, build_params(sc, 0), 0)
        assert isinstance(adv, ContactTraceAdversary)
        assert adv.victim == 5
