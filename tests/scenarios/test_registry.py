"""Tests for the scenario registry's shape and invariants."""

from __future__ import annotations

import pytest

from repro.scenarios.registry import SCENARIOS, all_scenarios, get_scenario
from repro.scenarios.spec import Scenario


class TestRegistry:
    def test_at_least_ten_scenarios(self):
        assert len(SCENARIOS) >= 10

    def test_names_match_keys(self):
        assert all(s.name == name for name, s in SCENARIOS.items())

    def test_calm_is_the_baseline(self):
        calm = get_scenario("calm")
        assert calm.plan.is_trivial
        assert calm.churn.kind == "none"
        assert calm.attack.kind == "none"

    def test_every_scenario_round_trips_through_json(self):
        for s in all_scenarios():
            assert Scenario.from_json(s.to_json()) == s

    def test_every_adverse_scenario_has_a_recovery_tail(self):
        """Fault windows close before the run ends (or are open-ended churn)."""
        for s in all_scenarios():
            _, close = s.plan.fault_window()
            if close is not None:
                assert close < s.rounds, s.name

    def test_descriptions_present(self):
        assert all(s.description for s in all_scenarios())

    def test_expected_names_present(self):
        expected = {
            "calm",
            "loss30-delay50",
            "flash-crowd",
            "ring-cut-adversary",
            "rolling-partition",
            "stall-storm",
        }
        assert expected <= set(SCENARIOS)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("bogus")

    def test_all_scenarios_sorted(self):
        names = [s.name for s in all_scenarios()]
        assert names == sorted(names)
