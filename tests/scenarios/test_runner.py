"""Tests for the scenario runner: worker invariance, recovery metrics, schema."""

from __future__ import annotations

import json

import pytest

from repro.scenarios.report import scenario_report, validate_scenario_report
from repro.scenarios.runner import _percentile, run_matrix, run_scenario_cell


@pytest.fixture(scope="module")
def calm_cell():
    return run_scenario_cell(("calm", 0, True))


class TestPercentile:
    def test_nearest_rank(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        assert _percentile(xs, 50) == 2.0
        assert _percentile(xs, 95) == 4.0
        assert _percentile([5.0], 99) == 5.0


class TestCalmCell:
    def test_paper_guarantees(self, calm_cell):
        assert calm_cell["probes"]["delivery_rate"] == 1.0
        assert calm_cell["established_fraction"] >= 0.95
        assert calm_cell["recovery"]["events"] == 0
        assert calm_cell["faults_injected"] == 0
        assert calm_cell["churn_events"] == 0

    def test_stretch_within_dilation_slack(self, calm_cell):
        # Probes launch at the origin's next even round, so stretch may
        # exceed 1.0 by up to 2/dilation — but never by a full dilation.
        assert 0.0 < calm_cell["stretch"]["p99"] < 2.0

    def test_trivial_window_is_null(self, calm_cell):
        assert calm_cell["fault_window"] == [None, None]

    def test_embeds_plan_json(self, calm_cell):
        assert "seed" in calm_cell["plan"]
        json.dumps(calm_cell)  # the whole record is plain data

    def test_deterministic(self, calm_cell):
        again = run_scenario_cell(("calm", 0, True))
        assert again == calm_cell


class TestFaultyCell:
    def test_fault_window_and_metrics(self):
        cell = run_scenario_cell(("stall-storm", 0, True))
        open_, close = cell["fault_window"]
        assert open_ is not None and close is not None and close > open_
        assert cell["faults_injected"] > 0

    def test_seed_changes_schedule(self):
        a = run_scenario_cell(("stall-storm", 0, True))
        b = run_scenario_cell(("stall-storm", 1, True))
        assert a["fingerprint"] != b["fingerprint"]


class TestWorkerInvariance:
    def test_matrix_identical_across_worker_counts(self):
        names = ("calm", "stall-storm")
        serial = run_matrix(names, (0,), workers=1, quick=True)
        parallel = run_matrix(names, (0,), workers=4, quick=True)
        assert serial == parallel

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            run_matrix((), (0,))


class TestReportSchema:
    def test_valid_report_passes(self, calm_cell):
        report = scenario_report([calm_cell])
        validate_scenario_report(report)
        json.dumps(report)

    def test_wrong_schema_tag(self, calm_cell):
        report = scenario_report([calm_cell])
        report["schema"] = "nope"
        with pytest.raises(ValueError, match="schema"):
            validate_scenario_report(report)

    def test_empty_cells_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            validate_scenario_report({"schema": "repro/scenario-report/v1", "cells": []})

    def test_missing_field_rejected(self, calm_cell):
        cell = dict(calm_cell)
        del cell["fingerprint"]
        with pytest.raises(ValueError, match="missing"):
            validate_scenario_report(scenario_report([cell]))

    def test_bad_fraction_rejected(self, calm_cell):
        cell = json.loads(json.dumps(calm_cell))
        cell["recovery"]["degraded_round_fraction"] = 1.5
        with pytest.raises(ValueError, match="degraded_round_fraction"):
            validate_scenario_report(scenario_report([cell]))
