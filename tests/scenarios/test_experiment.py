"""Tests for the E-SC scenario-matrix experiment."""

from __future__ import annotations

from repro.experiments import get_experiment
from repro.experiments.e_scenarios import QUICK_NAMES, run_scenarios_experiment


class TestESC:
    def test_registered(self):
        assert get_experiment("E-SC") is run_scenarios_experiment

    def test_quick_subset_passes(self):
        result = run_scenarios_experiment(quick=True, seed=0)
        assert result.passed
        assert [row[0] for row in result.rows] == sorted(QUICK_NAMES)

    def test_explicit_names(self):
        result = run_scenarios_experiment(quick=True, seed=0, names=("calm",))
        assert result.passed
        assert len(result.rows) == 1
