"""Tests for lateness enforcement in the adversary view."""

from __future__ import annotations

import pytest

from repro.adversary.view import AdversaryView, LatenessViolation
from repro.sim.identity import Lifecycle
from repro.sim.trace import GraphTrace


@pytest.fixture
def world():
    tr = GraphTrace()
    lc = Lifecycle()
    for i in range(4):
        lc.add(i, joined_round=-10)
    tr.record(0, [(0, 1)], frozenset({0, 1, 2, 3}))
    tr.record(1, [(1, 2)], frozenset({0, 1, 2, 3}))
    tr.record(2, [(2, 3)], frozenset({0, 1, 2, 3}))
    return tr, lc


class TestLateness:
    def test_two_late_sees_old_topology(self, world):
        tr, lc = world
        view = AdversaryView(3, tr, lc, topology_lateness=2, state_lateness=100)
        assert view.edges_at(1) == [(1, 2)]
        assert view.edges_at(0) == [(0, 1)]

    def test_two_late_blocked_from_recent(self, world):
        tr, lc = world
        view = AdversaryView(3, tr, lc, topology_lateness=2, state_lateness=100)
        with pytest.raises(LatenessViolation):
            view.edges_at(2)

    def test_zero_late_sees_everything(self, world):
        tr, lc = world
        view = AdversaryView(3, tr, lc, topology_lateness=0, state_lateness=100)
        assert view.edges_at(2) == [(2, 3)]
        assert view.newest_visible_topology_round() == 3

    def test_negative_lateness_rejected(self, world):
        tr, lc = world
        with pytest.raises(ValueError):
            AdversaryView(3, tr, lc, topology_lateness=-1, state_lateness=0)

    def test_contacts_and_degrees_respect_lateness(self, world):
        tr, lc = world
        view = AdversaryView(3, tr, lc, topology_lateness=2, state_lateness=100)
        assert view.contacts_of(1, 1) == {2}
        with pytest.raises(LatenessViolation):
            view.contacts_of(2, 2)
        assert view.degree_table(1) == {1: 1, 2: 1}
        with pytest.raises(LatenessViolation):
            view.degree_table(2)


class TestPopulationKnowledge:
    def test_alive_and_ages(self, world):
        tr, lc = world
        view = AdversaryView(3, tr, lc, topology_lateness=2, state_lateness=100)
        assert view.alive == frozenset({0, 1, 2, 3})
        assert view.age_of(0) == 13

    def test_eligible_bootstraps_excludes_young(self, world):
        tr, lc = world
        lc.add(9, joined_round=2)
        view = AdversaryView(3, tr, lc, topology_lateness=2, state_lateness=100)
        assert 9 not in view.eligible_bootstraps()
        assert 0 in view.eligible_bootstraps()

    def test_fresh_id(self, world):
        tr, lc = world
        view = AdversaryView(3, tr, lc, topology_lateness=2, state_lateness=100)
        assert view.fresh_id() == 4
