"""Unit tests for the content-lateness adversary (E-X5 machinery)."""

from __future__ import annotations

import pytest

from repro.adversary.content_late import ContentLateAdversary
from repro.adversary.view import AdversaryView
from repro.config import ProtocolParams
from repro.sim.identity import Lifecycle
from repro.sim.trace import GraphTrace
from repro.util.rngs import RngService


@pytest.fixture
def params() -> ProtocolParams:
    return ProtocolParams(
        n=32,
        alpha=0.5,
        kappa=1.5,
        seed=0,
        churn_budget_override=80,
        churn_window_override=10,
    )


def make_view(params, t, budget=80):
    tr = GraphTrace()
    lc = Lifecycle()
    for i in range(params.n):
        lc.add(i, joined_round=-100)
    for s in range(t):
        tr.record(s, [], lc.alive)
    return AdversaryView(
        t, tr, lc, topology_lateness=2, state_lateness=100, budget_remaining=budget
    )


def make_adv(params, b):
    h = RngService(params.seed).position_hash()
    return ContentLateAdversary(
        params, h, seed=1, state_lateness=b, active_from=0
    )


class TestReadableEpochs:
    def test_newest_readable_epoch_formula(self, params):
        lam = params.lam
        adv = make_adv(params, b=10)
        t = 50
        e_max = adv.readable_epochs(t)[-1]
        # Join for e_max launched at 2*(e_max - lam - 2) <= t - b.
        assert 2 * (e_max - lam - 2) + 10 <= t
        assert 2 * (e_max + 1 - lam - 2) + 10 > t

    def test_small_b_reveals_future(self, params):
        lam = params.lam
        adv = make_adv(params, b=2 * lam)
        t = 60
        assert 2 * adv.readable_epochs(t)[-1] > t  # future epoch visible

    def test_safe_b_reveals_only_expired(self, params):
        lam = params.lam
        adv = make_adv(params, b=2 * lam + 6)
        for t in range(40, 60):
            e = adv.readable_epochs(t)[-1]
            assert 2 * e + 1 < t  # D_e expired before round t


class TestDecisions:
    def test_fires_with_small_b(self, params):
        lam = params.lam
        adv = make_adv(params, b=2 * lam)
        d = adv.decide(make_view(params, t=60))
        assert d.churn_count > 0
        assert adv.wipes

    def test_silent_with_safe_b(self, params):
        lam = params.lam
        adv = make_adv(params, b=2 * lam + 6)
        for t in range(40, 52):
            assert adv.decide(make_view(params, t)).churn_count == 0
        assert adv.wipes == []

    def test_kills_are_the_future_swarm(self, params):
        lam = params.lam
        adv = make_adv(params, b=2 * lam)
        t = 60
        d = adv.decide(make_view(params, t))
        e = adv.wipes[-1][1]
        for v in d.leaves:
            p = adv._hash.position(v, e)
            gap = abs(p - adv.target_point)
            assert min(gap, 1 - gap) <= params.swarm_radius

    def test_respects_budget(self, params):
        lam = params.lam
        adv = make_adv(params, b=2 * lam)
        d = adv.decide(make_view(params, t=60, budget=6))
        assert d.churn_count <= 6

    def test_paired_joins_keep_population(self, params):
        lam = params.lam
        adv = make_adv(params, b=2 * lam)
        d = adv.decide(make_view(params, t=60))
        assert len(d.joins) == len(d.leaves)
