"""Unit tests for adversary strategies (decision shape, budget respect)."""

from __future__ import annotations

import pytest

from repro.adversary.base import NullAdversary
from repro.adversary.oblivious import RandomChurnAdversary, paced_schedule
from repro.adversary.view import AdversaryView
from repro.config import ProtocolParams
from repro.sim.identity import Lifecycle
from repro.sim.trace import GraphTrace


@pytest.fixture
def params() -> ProtocolParams:
    return ProtocolParams(n=32, alpha=0.25, kappa=1.25, seed=0)


def make_view(params, t=50, budget=None):
    tr = GraphTrace()
    lc = Lifecycle()
    for i in range(params.n):
        lc.add(i, joined_round=-100)
    for s in range(t):
        tr.record(s, [], lc.alive)
    return AdversaryView(
        t,
        tr,
        lc,
        topology_lateness=2,
        state_lateness=100,
        budget_remaining=params.churn_budget if budget is None else budget,
    )


class TestPacedSchedule:
    def test_within_budget(self, params):
        pairs, interval = paced_schedule(params)
        window = params.churn_window
        firings = window // interval + 1
        assert firings * pairs * 2 <= params.churn_budget + 2 * pairs

    def test_intensity_scales_down(self, params):
        full = paced_schedule(params, 1.0)
        half = paced_schedule(params, 0.5)
        assert half[0] <= full[0] or half[1] >= full[1]

    def test_invalid_intensity(self, params):
        with pytest.raises(ValueError):
            paced_schedule(params, 0.0)


class TestRandomChurn:
    def test_decision_shape(self, params):
        adv = RandomChurnAdversary(params, seed=1, active_from=0)
        d = adv.decide(make_view(params))
        assert len(d.leaves) == len(d.joins) == adv.pairs
        assert all(j.new_id >= params.n for j in d.joins)

    def test_respects_interval(self, params):
        adv = RandomChurnAdversary(params, seed=1, active_from=0)
        d1 = adv.decide(make_view(params, t=50))
        d2 = adv.decide(make_view(params, t=51))
        assert d1.churn_count > 0
        if adv.interval > 1:
            assert d2.churn_count == 0

    def test_protected_nodes_never_churned(self, params):
        protect = frozenset(range(8))
        adv = RandomChurnAdversary(params, seed=1, active_from=0, protect=protect)
        for t in range(50, 50 + 5 * adv.interval, adv.interval):
            d = adv.decide(make_view(params, t=t))
            assert not (d.leaves & protect)

    def test_distinct_bootstraps(self, params):
        adv = RandomChurnAdversary(params, seed=1, active_from=0)
        d = adv.decide(make_view(params))
        boots = [j.bootstrap_id for j in d.joins]
        assert len(set(boots)) == len(boots)

    def test_null_adversary(self, params):
        d = NullAdversary().decide(make_view(params))
        assert d.churn_count == 0
