"""Unit tests for the scripted attack adversaries (decision mechanics)."""

from __future__ import annotations

import pytest

from repro.adversary.isolate_join import IsolateJoinAdversary
from repro.adversary.join_chain import JoinChainAdversary
from repro.adversary.swarm_wipe import ContactTraceAdversary, DegreeTargetAdversary
from repro.adversary.view import AdversaryView
from repro.config import ProtocolParams
from repro.sim.identity import Lifecycle
from repro.sim.trace import GraphTrace


@pytest.fixture
def params() -> ProtocolParams:
    return ProtocolParams(
        n=16,
        alpha=0.5,
        kappa=1.5,
        seed=0,
        churn_budget_override=40,
        churn_window_override=10,
    )


def make_world(params, t=20, edges_by_round=None):
    tr = GraphTrace()
    lc = Lifecycle()
    for i in range(params.n):
        lc.add(i, joined_round=-100)
    edges_by_round = edges_by_round or {}
    for s in range(t):
        tr.record(s, edges_by_round.get(s, []), lc.alive)
    return tr, lc


def view_for(adv, params, tr, lc, t, budget=40):
    return AdversaryView(
        t,
        tr,
        lc,
        topology_lateness=adv.topology_lateness,
        state_lateness=10**9,
        budget_remaining=budget,
    )


class TestIsolateJoin:
    def test_phase1_joins_helper(self, params):
        adv = IsolateJoinAdversary(params, seed=1)
        tr, lc = make_world(params)
        d = adv.decide(view_for(adv, params, tr, lc, 20))
        assert len(d.joins) == 1
        assert adv.helper_id == d.joins[0].new_id
        assert adv.victim_id is None

    def test_phase2_waits_two_rounds(self, params):
        adv = IsolateJoinAdversary(params, seed=1)
        tr, lc = make_world(params)
        d1 = adv.decide(view_for(adv, params, tr, lc, 20))
        lc.add(adv.helper_id, 20)
        tr.record(20, [], lc.alive)
        d2 = adv.decide(view_for(adv, params, tr, lc, 21))
        assert d2.churn_count == 0  # helper only 1 round old
        tr.record(21, [], lc.alive)
        d3 = adv.decide(view_for(adv, params, tr, lc, 22))
        assert len(d3.joins) == 1
        assert d3.joins[0].bootstrap_id == adv.helper_id
        assert adv.victim_id == d3.joins[0].new_id

    def test_hunt_kills_contacts(self, params):
        adv = IsolateJoinAdversary(params, seed=1)
        tr, lc = make_world(params)
        adv.decide(view_for(adv, params, tr, lc, 20))
        lc.add(adv.helper_id, 20)
        tr.record(20, [], lc.alive)
        tr.record(21, [], lc.alive)
        adv.decide(view_for(adv, params, tr, lc, 22))
        lc.add(adv.victim_id, 22)
        # Node 3 talks to the victim in round 22.
        tr.record(22, [(3, adv.victim_id)], lc.alive)
        d = adv.decide(view_for(adv, params, tr, lc, 23))
        assert 3 in d.leaves
        assert adv.victim_id not in d.leaves
        assert len(d.joins) == len(d.leaves)


class TestJoinChain:
    def test_first_step_starts_chain(self, params):
        adv = JoinChainAdversary(params, seed=2)
        tr, lc = make_world(params)
        d = adv.decide(view_for(adv, params, tr, lc, 20))
        assert adv.chain_head is not None
        assert any(j.new_id == adv.chain_head for j in d.joins)

    def test_chain_extends_via_previous_head(self, params):
        adv = JoinChainAdversary(params, seed=2)
        tr, lc = make_world(params)
        d1 = adv.decide(view_for(adv, params, tr, lc, 20))
        for j in d1.joins:
            lc.add(j.new_id, 20)
        old_head = adv.chain_head
        tr.record(20, [], lc.alive)
        d2 = adv.decide(view_for(adv, params, tr, lc, 21))
        chain_joins = [j for j in d2.joins if j.new_id == adv.chain_head]
        assert chain_joins and chain_joins[0].bootstrap_id == old_head

    def test_predecessors_killed(self, params):
        adv = JoinChainAdversary(params, seed=2)
        tr, lc = make_world(params)
        for t in range(20, 24):
            d = adv.decide(view_for(adv, params, tr, lc, t))
            for j in d.joins:
                lc.add(j.new_id, t)
            for v in d.leaves:
                lc.remove(v, t)
            tr.record(t, [], lc.alive)
        # All chain members except the last two are dead.
        for v in adv.chain[:-2]:
            assert v not in lc.alive
        assert adv.chain[-1] in lc.alive

    def test_eroded_all(self, params):
        adv = JoinChainAdversary(params, seed=2)
        tr, lc = make_world(params)
        adv.decide(view_for(adv, params, tr, lc, 20))
        assert not adv.eroded_all(lc.alive)
        assert adv.eroded_all(frozenset())


class TestPairedKillAdversaries:
    def test_contact_trace_kills_contacts(self, params):
        adv = ContactTraceAdversary(params, victim=0, seed=3, topology_lateness=2, active_from=0)
        edges = {18: [(1, 0), (0, 2)]}
        tr, lc = make_world(params, t=20, edges_by_round=edges)
        d = adv.decide(view_for(adv, params, tr, lc, 20))
        assert d.leaves == frozenset({1, 2})
        assert len(d.joins) == 2

    def test_contact_trace_idle_without_contacts(self, params):
        adv = ContactTraceAdversary(params, victim=0, seed=3, topology_lateness=2, active_from=0)
        tr, lc = make_world(params)
        assert adv.decide(view_for(adv, params, tr, lc, 20)).churn_count == 0

    def test_degree_target_kills_hubs(self, params):
        adv = DegreeTargetAdversary(params, seed=3, top=2, topology_lateness=2, active_from=0)
        edges = {18: [(5, 1), (5, 2), (5, 3), (6, 1), (6, 2), (9, 5)]}
        tr, lc = make_world(params, t=20, edges_by_round=edges)
        d = adv.decide(view_for(adv, params, tr, lc, 20))
        assert 5 in d.leaves  # highest degree

    def test_budget_zero_means_no_kills(self, params):
        adv = DegreeTargetAdversary(params, seed=3, top=2, topology_lateness=2, active_from=0)
        edges = {18: [(5, 1), (5, 2)]}
        tr, lc = make_world(params, t=20, edges_by_round=edges)
        d = adv.decide(view_for(adv, params, tr, lc, 20, budget=0))
        assert d.churn_count == 0
