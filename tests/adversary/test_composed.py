"""Tests for ComposedAdversary's decision merging."""

from __future__ import annotations

import pytest

from repro.adversary.base import Adversary, ChurnDecision, JoinRequest
from repro.adversary.composed import ComposedAdversary


class FakeView:
    """Just enough of AdversaryView for decide(): round + an id counter."""

    def __init__(self, t=10, next_id=100):
        self.round = t
        self._next = next_id

    def fresh_id(self):
        return self._next


class Scripted(Adversary):
    def __init__(self, decision, *, active_from=0, topo=2, state=10**9):
        super().__init__(active_from=active_from)
        self.decision = decision
        self.topology_lateness = topo
        self.state_lateness = state
        self.rejections = []

    def decide(self, view):
        return self.decision

    def notify_rejected(self, decision, reason):
        self.rejections.append(reason)


class TestComposition:
    def test_requires_children(self):
        with pytest.raises(ValueError):
            ComposedAdversary()

    def test_leaves_unioned(self):
        a = Scripted(ChurnDecision(leaves=frozenset({1, 2})))
        b = Scripted(ChurnDecision(leaves=frozenset({2, 3})))
        got = ComposedAdversary(a, b).decide(FakeView())
        assert got.leaves == frozenset({1, 2, 3})

    def test_join_ids_rebased_and_unique(self):
        # Both children allocated overlapping new ids; the composition
        # re-bases them onto fresh ids so they never collide.
        a = Scripted(ChurnDecision(joins=(JoinRequest(50, 7), JoinRequest(51, 8))))
        b = Scripted(ChurnDecision(joins=(JoinRequest(50, 9),)))
        got = ComposedAdversary(a, b).decide(FakeView(next_id=100))
        ids = [j.new_id for j in got.joins]
        assert ids == [100, 101, 102]
        assert [j.bootstrap_id for j in got.joins] == [7, 8, 9]

    def test_join_via_leaving_bootstrap_dropped(self):
        a = Scripted(ChurnDecision(leaves=frozenset({7})))
        b = Scripted(ChurnDecision(joins=(JoinRequest(50, 7), JoinRequest(51, 8))))
        got = ComposedAdversary(a, b).decide(FakeView())
        assert [j.bootstrap_id for j in got.joins] == [8]

    def test_inactive_child_contributes_nothing(self):
        a = Scripted(ChurnDecision(leaves=frozenset({1})), active_from=0)
        b = Scripted(ChurnDecision(leaves=frozenset({2})), active_from=99)
        got = ComposedAdversary(a, b).decide(FakeView(t=10))
        assert got.leaves == frozenset({1})

    def test_all_quiet_is_none(self):
        a = Scripted(ChurnDecision.none())
        got = ComposedAdversary(a, a).decide(FakeView())
        assert got == ChurnDecision.none()

    def test_lateness_is_most_capable(self):
        a = Scripted(ChurnDecision.none(), topo=2, state=10**9)
        b = Scripted(ChurnDecision.none(), topo=4, state=6)
        comp = ComposedAdversary(a, b)
        assert comp.topology_lateness == 2
        assert comp.state_lateness == 6

    def test_active_from_is_earliest(self):
        a = Scripted(ChurnDecision.none(), active_from=5)
        b = Scripted(ChurnDecision.none(), active_from=9)
        assert ComposedAdversary(a, b).active_from == 5

    def test_rejection_fans_out(self):
        a = Scripted(ChurnDecision.none())
        b = Scripted(ChurnDecision.none())
        comp = ComposedAdversary(a, b)
        comp.notify_rejected(ChurnDecision.none(), "budget")
        assert a.rejections == ["budget"]
        assert b.rejections == ["budget"]
