"""Tests for churn-budget enforcement (the model's adversary constraints)."""

from __future__ import annotations

import pytest

from repro.adversary.base import ChurnDecision, JoinRequest
from repro.adversary.budget import ChurnLedger, ChurnViolation
from repro.config import ProtocolParams
from repro.sim.identity import Lifecycle


@pytest.fixture
def params() -> ProtocolParams:
    return ProtocolParams(n=16, alpha=0.25, kappa=1.25)  # budget 4, max 20 nodes


@pytest.fixture
def lifecycle(params) -> Lifecycle:
    lc = Lifecycle()
    for i in range(params.n + 2):
        lc.add(i, joined_round=-100)
    return lc


def leave(*ids) -> ChurnDecision:
    return ChurnDecision(leaves=frozenset(ids))


def join(t_new, bootstrap) -> ChurnDecision:
    return ChurnDecision(joins=(JoinRequest(t_new, bootstrap),))


class TestBudgetWindow:
    def test_within_budget_ok(self, params, lifecycle):
        ledger = ChurnLedger(params)
        ledger.validate(10, leave(0, 1), lifecycle)

    def test_over_budget_rejected(self, params, lifecycle):
        ledger = ChurnLedger(params)
        with pytest.raises(ChurnViolation, match="churn events"):
            ledger.validate(10, leave(0, 1, 2, 3, 4), lifecycle)

    def test_window_accumulates(self, params, lifecycle):
        ledger = ChurnLedger(params)
        ledger.commit(10, leave(0, 1, 2))
        assert ledger.remaining(10) == 1
        with pytest.raises(ChurnViolation):
            ledger.validate(11, leave(3, 4), lifecycle)

    def test_window_slides(self, params, lifecycle):
        ledger = ChurnLedger(params)
        ledger.commit(0, leave(0, 1, 2, 3))
        assert ledger.remaining(0) == 0
        t = params.churn_window  # round 0 falls out of window at this round
        assert ledger.remaining(t) == params.churn_budget

    def test_joins_count_toward_budget(self, params, lifecycle):
        ledger = ChurnLedger(params)
        ledger.commit(5, ChurnDecision(joins=tuple(JoinRequest(100 + i, i) for i in range(4))))
        assert ledger.remaining(5) == 0


class TestLeaveValidity:
    def test_cannot_churn_dead_node(self, params, lifecycle):
        ledger = ChurnLedger(params)
        with pytest.raises(ChurnViolation, match="not alive"):
            ledger.validate(10, leave(999), lifecycle)


class TestJoinRules:
    def test_valid_join(self, params, lifecycle):
        ChurnLedger(params).validate(10, join(100, 0), lifecycle)

    def test_bootstrap_must_be_two_rounds_old(self, params, lifecycle):
        """The necessary condition from Lemma 4: w in V_t ∩ V_{t-2}."""
        lifecycle.add(50, joined_round=9)
        ledger = ChurnLedger(params)
        with pytest.raises(ChurnViolation, match="2 rounds old"):
            ledger.validate(10, join(100, 50), lifecycle)
        # Two rounds later it becomes a legal bootstrap.
        ledger.validate(11, join(100, 50), lifecycle)

    def test_bootstrap_cannot_be_leaving(self, params, lifecycle):
        ledger = ChurnLedger(params)
        d = ChurnDecision(leaves=frozenset({0}), joins=(JoinRequest(100, 0),))
        with pytest.raises(ChurnViolation, match="leaving"):
            ledger.validate(10, d, lifecycle)

    def test_bootstrap_cannot_be_joining(self, params, lifecycle):
        ledger = ChurnLedger(params)
        d = ChurnDecision(joins=(JoinRequest(100, 0), JoinRequest(101, 100)))
        with pytest.raises(ChurnViolation, match="itself joining"):
            ledger.validate(10, d, lifecycle)

    def test_bootstrap_must_be_alive(self, params, lifecycle):
        ledger = ChurnLedger(params)
        with pytest.raises(ChurnViolation, match="not alive"):
            ledger.validate(10, join(100, 998), lifecycle)

    def test_ids_never_reused(self, params, lifecycle):
        lifecycle.remove(5, 3)
        ledger = ChurnLedger(params)
        with pytest.raises(ChurnViolation, match="already used"):
            ledger.validate(10, join(5, 0), lifecycle)

    def test_duplicate_new_ids_rejected(self, params, lifecycle):
        ledger = ChurnLedger(params)
        d = ChurnDecision(joins=(JoinRequest(100, 0), JoinRequest(100, 1)))
        with pytest.raises(ChurnViolation, match="duplicate"):
            ledger.validate(10, d, lifecycle)

    def test_join_fan_in_capped(self, params, lifecycle):
        ledger = ChurnLedger(params)
        joins = tuple(
            JoinRequest(100 + i, 0) for i in range(params.max_joins_per_bootstrap + 1)
        )
        with pytest.raises(ChurnViolation, match="joins via"):
            ledger.validate(10, ChurnDecision(joins=joins), lifecycle)


class TestSizeBounds:
    def test_cannot_shrink_below_n(self, params):
        lc = Lifecycle()
        for i in range(params.n):
            lc.add(i, -100)
        with pytest.raises(ChurnViolation, match="shrink"):
            ChurnLedger(params).validate(10, leave(0), lc)

    def test_cannot_grow_above_kappa_n(self, params):
        lc = Lifecycle()
        for i in range(params.max_nodes):
            lc.add(i, -100)
        with pytest.raises(ChurnViolation, match="grow"):
            ChurnLedger(params).validate(10, join(1000, 0), lc)
