"""Tests for ProtocolParams and its derived quantities."""

from __future__ import annotations

import math

import pytest

from repro.config import ProtocolParams, default_params


class TestValidation:
    def test_rejects_tiny_n(self):
        with pytest.raises(ValueError):
            ProtocolParams(n=4)

    def test_rejects_bad_kappa(self):
        with pytest.raises(ValueError):
            ProtocolParams(n=64, kappa=0.9)
        with pytest.raises(ValueError):
            ProtocolParams(n=64, kappa=2.5)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            ProtocolParams(n=64, alpha=0.0)
        with pytest.raises(ValueError):
            ProtocolParams(n=64, alpha=1.0)

    def test_rejects_bad_c(self):
        with pytest.raises(ValueError):
            ProtocolParams(n=64, c=0.0)

    def test_rejects_bad_r(self):
        with pytest.raises(ValueError):
            ProtocolParams(n=64, r=0)

    def test_rejects_bad_goodness(self):
        with pytest.raises(ValueError):
            ProtocolParams(n=64, goodness=1.0)

    def test_rejects_bad_delta_tau(self):
        with pytest.raises(ValueError):
            ProtocolParams(n=64, delta=0)
        with pytest.raises(ValueError):
            ProtocolParams(n=64, tau=0)


class TestDerived:
    def test_lam(self):
        p = ProtocolParams(n=64, kappa=1.0625)
        assert p.lam == math.ceil(math.log2(64 * 1.0625))

    def test_radii_ratios(self):
        p = ProtocolParams(n=128)
        assert p.list_radius == pytest.approx(2 * p.swarm_radius)
        assert p.debruijn_radius == pytest.approx(1.5 * p.swarm_radius)

    def test_expected_swarm_size(self):
        p = ProtocolParams(n=128, c=2.0)
        assert p.expected_swarm_size == pytest.approx(2 * 2.0 * p.lam)

    def test_dilation(self):
        p = ProtocolParams(n=128)
        assert p.dilation == 2 * p.lam + 2

    def test_lambda_prime(self):
        p = ProtocolParams(n=128)
        assert p.lambda_prime == 2 * p.lam + 4

    def test_bootstrap_and_lateness(self):
        p = ProtocolParams(n=128)
        assert p.bootstrap_rounds == 2 * p.lam + 7
        assert p.lateness == (2, 2 * p.lam + 7)

    def test_churn_budget(self):
        p = ProtocolParams(n=128)
        assert p.churn_budget == 128 // 16
        assert p.churn_window == 4 * p.lam + 14

    def test_max_nodes(self):
        p = ProtocolParams(n=128, kappa=1.0625)
        assert p.max_nodes == int(128 * 1.0625)

    def test_delta_tau_defaults_scale_with_lam(self):
        small = ProtocolParams(n=16)
        big = ProtocolParams(n=4096)
        assert big.delta_eff > small.delta_eff
        assert big.tau_eff >= 2 * big.delta_eff

    def test_explicit_delta_tau_respected(self):
        p = ProtocolParams(n=64, delta=5, tau=11)
        assert p.delta_eff == 5
        assert p.tau_eff == 11

    def test_sampling_rank_range_above_expected_swarm(self):
        p = ProtocolParams(n=256)
        assert p.sampling_rank_range >= p.expected_swarm_size


class TestConvenience:
    def test_with_updates(self):
        p = ProtocolParams(n=64).with_updates(c=3.0)
        assert p.c == 3.0
        assert p.n == 64

    def test_describe_keys(self):
        d = ProtocolParams(n=64).describe()
        for key in ("n", "lam", "swarm_radius", "dilation", "churn_budget"):
            assert key in d

    def test_default_params(self):
        p = default_params(64, seed=3, c=2.5)
        assert p.n == 64 and p.seed == 3 and p.c == 2.5

    def test_frozen(self):
        p = ProtocolParams(n=64)
        with pytest.raises(Exception):
            p.n = 128  # type: ignore[misc]
