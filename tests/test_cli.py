"""Tests for the CLI and the report generator."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.experiments.registry import ExperimentResult
from repro.experiments.report import render_report, run_all, write_report


class TestCliList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for eid in ("E-T1", "E-L9", "E-T14", "E-AB", "E-X1", "E-X2"):
            assert eid in out


class TestCliParams:
    def test_prints_derived_values(self, capsys):
        assert main(["params", "128"]) == 0
        out = capsys.readouterr().out
        assert "lam: 8" in out
        assert "dilation: 18" in out

    def test_overrides(self, capsys):
        assert main(["params", "128", "--c", "2.5", "--alpha", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "c: 2.5" in out
        assert "alpha: 0.25" in out


class TestCliScenario:
    def test_list_shows_registry(self, capsys):
        assert main(["scenario", "--list"]) == 0
        out = capsys.readouterr().out
        names = [line.split()[0] for line in out.strip().splitlines()]
        assert len(names) >= 10
        assert "calm" in names
        assert "loss30-delay50" in names

    def test_run_requires_names(self):
        with pytest.raises(SystemExit):
            main(["scenario", "run"])

    def test_no_action_errors(self):
        with pytest.raises(SystemExit):
            main(["scenario"])

    def test_unknown_scenario(self, capsys):
        assert main(["scenario", "run", "bogus"]) == 2

    def test_run_writes_validated_report(self, capsys, tmp_path):
        out_path = tmp_path / "report.json"
        assert main(["scenario", "run", "calm", "--seed", "2", "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "calm" in out
        import json

        from repro.scenarios import validate_scenario_report

        doc = json.loads(out_path.read_text())
        validate_scenario_report(doc)
        assert doc["cells"][0]["seed"] == 2


class TestCliChaosScenario:
    def test_unknown_scenario(self, capsys):
        assert main(["chaos", "--scenario", "bogus"]) == 2

    def test_runs_registry_scenario(self, capsys):
        assert main(["chaos", "--scenario", "calm", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "calm" in out
        assert "fingerprint" in out


class TestCliRun:
    def test_runs_fast_experiment(self, capsys):
        assert main(["run", "E-F1"]) == 0
        out = capsys.readouterr().out
        assert "verdict: PASS" in out

    def test_unknown_id(self, capsys):
        assert main(["run", "E-NOPE"]) == 2

    def test_seed_forwarded(self, capsys):
        assert main(["run", "E-F1", "--seed", "5"]) == 0


class TestReport:
    def make_result(self, eid="E-X", passed=True):
        return ExperimentResult(
            experiment_id=eid,
            title="demo",
            claim="c",
            header=["a"],
            rows=[[1]],
            passed=passed,
        )

    def test_render_report(self):
        text = render_report([self.make_result(), self.make_result("E-Y", False)])
        assert "| E-X | demo | PASS |" in text
        assert "| E-Y | demo | FAIL |" in text
        assert "### E-X" in text

    def test_write_report(self, tmp_path):
        path = write_report(tmp_path / "r.md", [self.make_result()])
        assert path.read_text().startswith("# Experiment report")

    def test_run_all_subset(self):
        results = run_all(quick=True, only=["E-F1"])
        assert len(results) == 1
        assert results[0].experiment_id == "E-F1"

    def test_run_all_rejects_unknown(self):
        with pytest.raises(KeyError):
            run_all(only=["E-NOPE"])
