"""Bit-for-bit equivalence of the cached hot paths against the reference.

The epoch cache (shared per-epoch position tables + interned copy-on-write
``PositionIndex`` slabs) and the columnar hop plane are pure optimisations:
every observable of a run — per-round metrics, the exact edge multiset, the
churn decisions, every node's final state, audits and probe deliveries —
must be identical with them on (the default) and off.  The golden digests
below were captured from the pre-optimisation code, so these tests pin the
optimised paths against the original implementation, not just against each
other.
"""

from __future__ import annotations

import pytest

from .simfp import run_scenario

#: Captured from the seed implementation (before the epoch cache and hop
#: plane existed).  Any behavioural drift — one extra RNG draw, one
#: reordered send — flips the digest.
GOLDEN = {
    "steady": "ad475a0578dc63811b3c04d39543dffd",
    "churn": "69c056247a56a212e963e9654c2d178c",
    "faults": "3554adec0140df71d3cb549914686b51",
    "churn_faults": "0026d6b6492f3df1e0bcef1af8eb9da4",
}


@pytest.mark.parametrize("scenario", sorted(GOLDEN))
def test_optimized_matches_golden(scenario):
    """Default (cached) configuration reproduces the reference digests."""
    assert run_scenario(scenario) == GOLDEN[scenario]


@pytest.mark.parametrize("scenario", ["steady", "churn"])
def test_reference_matches_golden(scenario):
    """With caches disabled the original code paths still run — and agree."""
    fp = run_scenario(scenario, epoch_cache=False, hop_plane=False)
    assert fp == GOLDEN[scenario]


def test_cache_without_plane_matches_golden():
    """The epoch cache alone (legacy transport) is also equivalence-safe."""
    assert run_scenario("steady", hop_plane=False) == GOLDEN["steady"]


def test_trivial_new_rules_match_golden():
    """A plan carrying the scenario rule types, all trivial, is a no-op.

    RateCap with no limit, an all-zero LatencyMatrix and an asymmetric cut
    whose window never opens must consume no entropy and reorder nothing:
    the run still reproduces the pre-fault-layer golden digest bit for bit.
    """
    from repro.faults.plan import (
        AsymmetricPartition,
        FaultPlan,
        LatencyMatrix,
        RateCap,
    )

    plan = FaultPlan(
        seed=123,
        ratecaps=(RateCap(),),
        latencies=(LatencyMatrix(delays=((0, 0), (0, 0))),),
        asymmetric=(AsymmetricPartition(lo=0.0, hi=0.5, start=10**9),),
    )
    assert run_scenario("steady", faults=plan) == GOLDEN["steady"]
