"""Integration tests for the full maintenance protocol (Theorem 14).

These drive the message-level protocol end to end: bootstrap, continuous
2-round reconfiguration, churn, joins of brand-new nodes, routed probe
traffic, and the structural audits.  Sizes are kept small (n=40..48) so the
whole file runs in a couple of minutes; the benchmarks push further.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversary.oblivious import RandomChurnAdversary
from repro.adversary.swarm_wipe import ContactTraceAdversary, DegreeTargetAdversary
from repro.config import ProtocolParams
from repro.core.node import Phase
from repro.core.runner import MaintenanceSimulation


def make_params(**overrides):
    defaults = dict(
        n=40, c=1.2, r=2, delta=3, tau=8, seed=11, alpha=0.25, kappa=1.25
    )
    defaults.update(overrides)
    return ProtocolParams(**defaults)


@pytest.fixture(scope="module")
def churn_run():
    """One shared 90-round run under budget-paced random churn."""
    params = make_params()
    adv = RandomChurnAdversary(params, seed=2)
    sim = MaintenanceSimulation(params, adversary=adv)
    rng = np.random.default_rng(0)
    probe_ids = []
    for chunk in range(6):
        sim.run(15)
        if chunk >= 1:
            probe_ids.extend(sim.send_probes(4, rng))
    # Let the last probes land.
    sim.run(2 * params.dilation)
    return sim, probe_ids


class TestNoChurnSteadyState:
    def test_overlay_rebuilt_every_two_rounds(self):
        params = make_params(n=40)
        sim = MaintenanceSimulation(params)
        warm = 2 * (params.lam + 3)
        sim.run(warm)
        audit1 = sim.audit_overlay()
        sim.run(2)
        audit2 = sim.audit_overlay()
        assert audit2.epoch == audit1.epoch + 1
        # Positions change completely between epochs.
        h = sim.services.position_hash
        moved = sum(
            1
            for v in sim.established_nodes()
            if h.position(v, audit1.epoch) != h.position(v, audit2.epoch)
        )
        assert moved == audit2.members

    def test_full_edge_coverage(self):
        params = make_params(n=40)
        sim = MaintenanceSimulation(params)
        sim.run(2 * (params.lam + 4))
        audit = sim.audit_overlay()
        assert audit.edge_coverage == 1.0
        assert audit.members == params.n

    def test_congestion_polylog(self):
        """Per-node message counts stay within a (generous) log^3 envelope."""
        params = make_params(n=40)
        sim = MaintenanceSimulation(params)
        sim.run(2 * (params.lam + 4))
        peak = sim.engine.metrics.peak_congestion()
        envelope = 40 * params.lam**3  # wide constant; the shape is the claim
        assert 0 < peak < envelope


class TestUnderRandomChurn(object):
    def test_no_demotions(self, churn_run):
        sim, _ = churn_run
        assert sim.health_summary()["total_demotions"] == 0

    def test_established_fraction_high(self, churn_run):
        sim, _ = churn_run
        assert sim.health_summary()["established_fraction"] >= 0.9

    def test_edge_coverage_full(self, churn_run):
        sim, _ = churn_run
        assert sim.audit_overlay().edge_coverage >= 0.999

    def test_all_probes_delivered(self, churn_run):
        sim, probe_ids = churn_run
        report = sim.probe_report(probe_ids)
        assert report.delivery_rate == 1.0
        # Delivery means the whole target swarm got the probe.
        assert report.mean_receivers >= 3

    def test_newcomers_eventually_establish(self, churn_run):
        sim, _ = churn_run
        stuck = [
            v
            for v in sim.engine.alive
            if sim.node(v).phase is not Phase.ESTABLISHED
            and sim.round - sim.engine.lifecycle.joined_round(v)
            > 4 * sim.params.lam
        ]
        assert stuck == []

    def test_population_stayed_legal(self, churn_run):
        sim, _ = churn_run
        assert sim.params.n <= len(sim.engine.alive) <= sim.params.max_nodes


class TestUnderTargetedChurn:
    def test_survives_contact_trace_2late(self):
        """A 2-late adversary hunting one victim's contacts cannot break
        routability — the overlay it sees is two overlays stale."""
        params = make_params(seed=13)
        adv = ContactTraceAdversary(params, victim=0, seed=3, topology_lateness=2)
        sim = MaintenanceSimulation(params, adversary=adv)
        rng = np.random.default_rng(1)
        sim.run(params.bootstrap_rounds + 10)
        ids = sim.send_probes(8, rng)
        sim.run(2 * params.dilation + 4)
        assert sim.probe_report(ids).delivery_rate >= 0.9
        assert sim.audit_overlay().edge_coverage >= 0.99

    def test_survives_degree_targeting_2late(self):
        params = make_params(seed=14)
        adv = DegreeTargetAdversary(params, seed=4, top=6, topology_lateness=2)
        sim = MaintenanceSimulation(params, adversary=adv)
        rng = np.random.default_rng(2)
        sim.run(params.bootstrap_rounds + 10)
        ids = sim.send_probes(8, rng)
        sim.run(2 * params.dilation + 4)
        assert sim.probe_report(ids).delivery_rate >= 0.9

    def test_victim_node_stays_routable(self):
        """The hunted victim itself keeps its overlay membership."""
        params = make_params(seed=15)
        adv = ContactTraceAdversary(params, victim=5, seed=5, topology_lateness=2)
        sim = MaintenanceSimulation(params, adversary=adv)
        sim.run(params.bootstrap_rounds + 30)
        assert 5 in sim.engine.alive
        assert sim.node(5).phase is Phase.ESTABLISHED


class TestFailureInjection:
    def test_demoted_node_recovers(self):
        """Force-demote an established node; the token machinery re-joins it."""
        params = make_params(seed=16)
        sim = MaintenanceSimulation(params)
        sim.run(2 * (params.lam + 3))
        victim = sorted(sim.established_nodes())[0]
        node = sim.node(victim)
        node.phase = Phase.FRESH
        node.epoch = None
        node.pos = None
        node.d_nbrs = {}
        node._d_index = None
        sim.run(6 * params.lam)
        assert sim.node(victim).phase is Phase.ESTABLISHED

    def test_run_with_lenient_budget_never_crashes(self):
        """A buggy adversary (over budget) is rejected round by round."""
        from repro.adversary.base import Adversary, ChurnDecision

        class Greedy(Adversary):
            topology_lateness = 2

            def decide(self, view):
                return ChurnDecision(
                    leaves=frozenset(sorted(view.alive)[: len(view.alive) // 2])
                )

        params = make_params(seed=17)
        sim = MaintenanceSimulation(
            params, adversary=Greedy(active_from=5), strict_budget=False
        )
        sim.run(12)
        assert len(sim.engine.alive) == params.n
        assert all(r.rejected is not None for r in sim.engine.reports[5:])
