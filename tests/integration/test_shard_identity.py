"""Sharded engine equivalence: workers ∈ {1, 2, 4} must be bit-identical.

The multi-process shard runner (:mod:`repro.sim.shard`) re-executes the
compute phase across forked band workers and splices the send streams back
in global node order.  These tests pin that the full-simulation fingerprint
— per-round metrics, exact edge multisets, churn decisions, every node's
final state, audits and probe deliveries — is unchanged for every worker
count, across steady state, churn and message/stall faults (the fault
scenarios exercise the legacy per-copy hop path and its cross-process
message re-canonicalisation).

The pairs below cover W ∈ {2, 4} against the W=1 reference while keeping
suite wall-time in check (each sharded run pays per-round pickling; the
scenario × worker matrix beyond this adds cost, not coverage — all three
scenario families and both worker counts appear).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim import exchange, shard
from repro.util import arena

from .simfp import SCENARIOS, round_snapshot, run_scenario, sim_fingerprint


@pytest.mark.parametrize(
    ("scenario", "workers"),
    [
        ("steady", 2),
        ("steady", 4),
        ("churn", 4),
        ("faults", 2),
        ("churn_faults", 2),
        ("churn_faults", 4),
    ],
)
def test_sharded_run_matches_reference(
    scenario: str, workers: int, monkeypatch
) -> None:
    reference = run_scenario(scenario)
    # Arm the runtime shard sanitizer (band-ownership + pipe-codec asserts)
    # for the sharded leg: workers inherit the flag through fork, so the
    # identity suite doubles as the sanitizer's false-positive gate.
    monkeypatch.setattr(shard, "_SANITIZE", True)
    sharded = run_scenario(scenario, workers=workers)
    assert sharded == reference


def _run_with_stats(name: str, workers: int):
    """Like :func:`run_scenario` but also returns the exchange counters."""
    builder, total = SCENARIOS[name]
    sim = builder(workers=workers)
    try:
        probe_rng = np.random.default_rng(99)
        rounds: list[tuple] = []
        for t in range(total):
            if t == 4:
                sim.send_probes(6, probe_rng)
            sim.engine.run_round()
            rounds.append(round_snapshot(sim, t))
        fingerprint = sim_fingerprint(sim, rounds)
    finally:
        sim.close()
    return fingerprint, sim.exchange_stats()


def test_regrow_handshake_preserves_fingerprint(monkeypatch) -> None:
    """Deliberately undersized slabs force both regrow paths — the master's
    re-encode-after-double and the worker's one-round pipe fallback — and
    the run must still be bit-identical to the reference."""
    reference = run_scenario("faults")
    monkeypatch.setattr(exchange, "DOWN_MIN_BYTES", 4096)
    monkeypatch.setattr(exchange, "UP_BAND_MIN_BYTES", 2048)
    fingerprint, stats = _run_with_stats("faults", workers=2)
    assert fingerprint == reference
    assert stats.regrows_down > 0
    assert stats.regrows_up > 0
    assert stats.fallback_rounds > 0


def test_slabs_reused_across_rounds() -> None:
    """Doubling converges: after warmup the same slabs carry every round,
    so regrows stay O(log traffic) while rounds grow — not O(rounds)."""
    _fingerprint, stats = _run_with_stats("steady", workers=2)
    assert stats.rounds >= 24
    assert stats.regrows_down <= 4
    assert stats.regrows_up <= 4
    assert stats.fallback_rounds <= stats.regrows_up + 2
    # and the slabs actually carried the bulk traffic
    assert stats.bytes_shm > stats.bytes_pipe


def test_empty_band_rounds_match_reference() -> None:
    """A worker whose band holds no deliveries (tiny n spread over W=4)
    must round-trip empty payloads without perturbing the run."""
    from repro.config import ProtocolParams
    from repro.core.runner import MaintenanceSimulation

    def _fp(workers: int) -> str:
        params = ProtocolParams(n=12, c=1.2, r=2, delta=3, tau=8, seed=21)
        with MaintenanceSimulation(params, workers=workers) as sim:
            rounds = []
            for t in range(16):
                sim.engine.run_round()
                rounds.append(round_snapshot(sim, t))
            return sim_fingerprint(sim, rounds)

    assert _fp(4) == _fp(1)


def test_close_releases_all_segments() -> None:
    """Engine teardown must leave zero shared-memory segments registered —
    the leak CI asserts at interpreter exit (see shard-smoke)."""
    from repro.config import ProtocolParams
    from repro.core.runner import MaintenanceSimulation

    before = arena.live_segments()
    params = ProtocolParams(n=16, c=1.2, r=2, delta=3, tau=8, seed=1)
    sim = MaintenanceSimulation(params, workers=2)
    try:
        sim.run(4)
        assert len(arena.live_segments()) > len(before)
    finally:
        sim.close()
    assert arena.live_segments() == before
    sim.close()  # idempotent


def test_exchange_stats_lifecycle() -> None:
    from repro.config import ProtocolParams
    from repro.core.runner import MaintenanceSimulation

    params = ProtocolParams(n=16, c=1.2, r=2, delta=3, tau=8, seed=1)
    with MaintenanceSimulation(params, workers=1) as serial:
        serial.run(2)
        assert serial.exchange_stats() is None

    sim = MaintenanceSimulation(params, workers=2)
    try:
        sim.run(6)
        live = sim.exchange_stats()
        assert live is not None and live.rounds == 6
        assert live.bytes_shm > 0 and live.bytes_pipe > 0
    finally:
        sim.close()
    retained = sim.exchange_stats()
    assert retained is not None
    assert retained.rounds >= 6  # snapshot survives worker teardown


def test_health_monitoring_rejects_sharding() -> None:
    """HealthMonitor would force a gather per round; the combination is an
    explicit error rather than a silent 10x slowdown."""
    from repro.config import ProtocolParams
    from repro.core.runner import MaintenanceSimulation
    from repro.faults.health import HealthMonitor

    params = ProtocolParams(n=16, c=1.2, r=2, delta=3, tau=8, seed=1)
    with pytest.raises(ValueError, match="workers=1"):
        MaintenanceSimulation(params, health=HealthMonitor(params), workers=2)
