"""Sharded engine equivalence: workers ∈ {1, 2, 4} must be bit-identical.

The multi-process shard runner (:mod:`repro.sim.shard`) re-executes the
compute phase across forked band workers and splices the send streams back
in global node order.  These tests pin that the full-simulation fingerprint
— per-round metrics, exact edge multisets, churn decisions, every node's
final state, audits and probe deliveries — is unchanged for every worker
count, across steady state, churn and message/stall faults (the fault
scenarios exercise the legacy per-copy hop path and its cross-process
message re-canonicalisation).

The pairs below cover W ∈ {2, 4} against the W=1 reference while keeping
suite wall-time in check (each sharded run pays per-round pickling; the
scenario × worker matrix beyond this adds cost, not coverage — all three
scenario families and both worker counts appear).
"""

from __future__ import annotations

import pytest

from .simfp import run_scenario


@pytest.mark.parametrize(
    ("scenario", "workers"),
    [
        ("steady", 2),
        ("steady", 4),
        ("churn", 4),
        ("faults", 2),
    ],
)
def test_sharded_run_matches_reference(scenario: str, workers: int) -> None:
    reference = run_scenario(scenario)
    sharded = run_scenario(scenario, workers=workers)
    assert sharded == reference


def test_health_monitoring_rejects_sharding() -> None:
    """HealthMonitor would force a gather per round; the combination is an
    explicit error rather than a silent 10x slowdown."""
    from repro.config import ProtocolParams
    from repro.core.runner import MaintenanceSimulation
    from repro.faults.health import HealthMonitor

    params = ProtocolParams(n=16, c=1.2, r=2, delta=3, tau=8, seed=1)
    with pytest.raises(ValueError, match="workers=1"):
        MaintenanceSimulation(params, health=HealthMonitor(params), workers=2)
