"""Integration tests for the Section 2 impossibility results (Lemmas 3, 4).

These run the scripted attacks against the naive gossip baseline on the real
engine and check the knowledge-graph partition criteria.
"""

from __future__ import annotations

import pytest

from repro.adversary.budget import ChurnViolation
from repro.adversary.isolate_join import IsolateJoinAdversary
from repro.adversary.join_chain import JoinChainAdversary
from repro.analysis.connectivity import (
    is_connected,
    is_isolated,
    knowledge_graph_of_gossip,
)
from repro.baselines.gossip import GossipNode
from repro.config import ProtocolParams
from repro.sim.engine import Engine


def gossip_engine(params, adversary=None, *, join_min_age=2, ring_degree=3):
    eng = Engine(
        params,
        lambda v, s: GossipNode(v, s),
        adversary=adversary,
        strict_budget=True,
        join_min_age=join_min_age,
    )
    eng.seed_nodes(range(params.n))
    # Wire the initial overlay as a ring with a few chords.
    n = params.n
    for v in range(n):
        peers = {(v + d) % n for d in range(1, ring_degree + 1)}
        eng.protocol_of(v).seed_known(peers)
    return eng


class TestGossipBaselineSanity:
    def test_connected_without_churn(self):
        params = ProtocolParams(n=32, seed=1)
        eng = gossip_engine(params)
        eng.run(20)
        assert is_connected(knowledge_graph_of_gossip(eng))

    def test_survives_mild_random_churn(self):
        from repro.adversary.oblivious import RandomChurnAdversary

        params = ProtocolParams(n=32, alpha=0.25, kappa=1.25, seed=1)
        adv = RandomChurnAdversary(params, seed=2, active_from=5)
        eng = gossip_engine(params, adversary=adv)
        eng.run(60)
        assert is_connected(knowledge_graph_of_gossip(eng))


class TestLemma3Isolation:
    def test_one_late_adversary_isolates_victim(self):
        """Lemma 3: with up-to-date topology the victim is cut off in O(log n)."""
        params = ProtocolParams(
            n=32,
            alpha=0.5,
            kappa=1.5,
            seed=3,
            churn_budget_override=64,
            churn_window_override=16,
        )
        adv = IsolateJoinAdversary(params, seed=4, topology_lateness=1)
        eng = gossip_engine(params, adversary=adv)
        eng.run(70)
        assert adv.victim_id is not None
        assert adv.victim_id in eng.alive, "the victim itself must survive"
        assert adv.eroded_all(eng.alive), "V_0 should be fully eroded"
        knows = knowledge_graph_of_gossip(eng)
        assert is_isolated(knows, adv.victim_id, max_size=1)
        assert not is_connected(knows)

    def test_attack_respects_lateness_interface(self):
        """The 1-late attack only ever queries rounds <= t-1 (no peeking)."""
        params = ProtocolParams(
            n=32,
            alpha=0.5,
            kappa=1.5,
            seed=3,
            churn_budget_override=64,
            churn_window_override=16,
        )
        adv = IsolateJoinAdversary(params, seed=4, topology_lateness=1)
        eng = gossip_engine(params, adversary=adv)
        # LatenessViolation inside decide() would propagate and fail here.
        eng.run(30)


class TestLemma4JoinChain:
    def make_params(self):
        return ProtocolParams(
            n=24,
            alpha=0.5,
            kappa=1.5,
            seed=5,
            churn_budget_override=200,
            churn_window_override=10,
        )

    def test_chain_attack_partitions_weakened_model(self):
        """With join-via-1-round-old allowed, the oblivious chain attack
        separates the chain head once all of V_0 is eroded."""
        params = self.make_params()
        adv = JoinChainAdversary(params, seed=6, erosion_batch=2)
        eng = gossip_engine(params, adversary=adv, join_min_age=1)
        # Erosion removes all of V_0 early; the chain then keeps extending so
        # the head's last acquaintances die too.
        eng.run(120)
        assert not (set(adv.initial_population) & set(eng.alive))
        head = adv.chain_head
        assert head is not None and head in eng.alive
        knows = knowledge_graph_of_gossip(eng)
        assert is_isolated(knows, head, max_size=2)
        assert not is_connected(knows)

    def test_chain_attack_blocked_by_proper_join_rule(self):
        """Under the real model (bootstrap >= 2 rounds old) the same attack
        violates the join rule on its very first chain extension."""
        params = self.make_params()
        adv = JoinChainAdversary(params, seed=6)
        eng = gossip_engine(params, adversary=adv, join_min_age=2)
        with pytest.raises(ChurnViolation, match="rounds old"):
            eng.run(30)
