"""Full-simulation fingerprints for bit-for-bit equivalence tests.

A *fingerprint* condenses everything observable about a maintenance run into
one digest: per-round metrics (sent/received/alive), the exact edge multiset
``E_t`` of every round, the churn decisions, every node's final protocol
state, the structural audit and the probe report.  Two runs with the same
fingerprint behaved identically at the message level — the digest is the
contract the cached/vectorised hot paths must honour against the reference
paths.

The golden digests recorded in ``test_equivalence.py`` were captured from
the pre-epoch-cache code, so any optimisation that changes behaviour (one
extra RNG draw, one reordered send) flips the digest.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.adversary.oblivious import RandomChurnAdversary
from repro.config import ProtocolParams
from repro.core.runner import MaintenanceSimulation
from repro.faults.plan import FaultPlan, MessageFaults, NodeStall

__all__ = ["round_snapshot", "node_snapshot", "sim_fingerprint", "run_scenario", "SCENARIOS"]


def round_snapshot(sim: MaintenanceSimulation, t: int) -> tuple:
    """Everything observable about round ``t`` (call right after the round)."""
    report = sim.engine.reports[t]
    metrics = report.metrics
    edges = sim.engine.trace.edges_at(t)
    faults = metrics.faults
    return (
        t,
        (metrics.total_sent, metrics.max_sent, metrics.mean_sent),
        (metrics.max_received, metrics.mean_received),
        metrics.alive,
        (faults.dropped, faults.delayed, faults.duplicated, faults.stalled)
        if faults is not None
        else None,
        tuple(sorted(report.decision.leaves)),
        tuple(sorted((j.new_id, j.bootstrap_id) for j in report.decision.joins)),
        tuple(sorted(edges)) if edges is not None else None,
    )


def node_snapshot(sim: MaintenanceSimulation, v: int) -> tuple:
    """One node's complete protocol state, in canonical order."""
    node = sim.node(v)
    return (
        v,
        node.phase.value,
        node.epoch,
        node.pos,
        tuple(sorted(node.d_nbrs.items())),
        tuple(sorted((w, rec.pos, rec.epoch) for w, rec in node.h_records.items())),
        tuple(node.tokens),
        tuple(node.slots),
        tuple((repr(payload), t) for payload, t in node.delivered),
        tuple(sorted(node._pending_grants.items())),
        tuple(msg.msg_id for msg in node._pending_launch),
        (
            node.sampled_tokens_seen,
            node.connects_received,
            node.connects_dropped,
            node.max_connects_in_round,
            node.demotions,
            node.joins_launched,
        ),
    )


def sim_fingerprint(sim: MaintenanceSimulation, rounds: list[tuple]) -> str:
    """Digest of per-round snapshots + final node states + audits."""
    audit = sim.audit_overlay()
    parts = [
        tuple(rounds),
        tuple(node_snapshot(sim, v) for v in sorted(sim.engine.alive)),
        (
            audit.epoch,
            audit.members,
            audit.alive,
            audit.established_fraction,
            audit.missing_edges,
            audit.required_edges,
            audit.min_swarm_size,
            audit.mean_swarm_size,
        ),
    ]
    if sim._probe_targets:
        probe = sim.probe_report()
        parts.append((probe.launched, probe.delivered, probe.mean_receivers))
    return hashlib.blake2b(repr(parts).encode(), digest_size=16).hexdigest()


def _scenario_steady(**sim_kwargs) -> MaintenanceSimulation:
    params = ProtocolParams(n=48, c=1.2, r=2, delta=3, tau=8, seed=1)
    return MaintenanceSimulation(params, **sim_kwargs)


def _scenario_churn(**sim_kwargs) -> MaintenanceSimulation:
    params = ProtocolParams(n=48, c=1.2, r=2, delta=3, tau=8, seed=3)
    adversary = RandomChurnAdversary(params, seed=5, intensity=1.0)
    return MaintenanceSimulation(params, adversary, **sim_kwargs)


def _scenario_faults(**sim_kwargs) -> MaintenanceSimulation:
    params = ProtocolParams(n=32, c=1.2, r=2, delta=3, tau=8, seed=7)
    plan = FaultPlan(
        seed=11,
        messages=(MessageFaults(drop_p=0.04, delay_p=0.05, delay_rounds=2, duplicate_p=0.03),),
        stalls=(NodeStall(stall_p=0.02),),
    )
    return MaintenanceSimulation(params, faults=plan, **sim_kwargs)


def _scenario_churn_faults(**sim_kwargs) -> MaintenanceSimulation:
    params = ProtocolParams(n=32, c=1.2, r=2, delta=3, tau=8, seed=9)
    adversary = RandomChurnAdversary(params, seed=13, intensity=0.8)
    plan = FaultPlan(
        seed=17,
        messages=(MessageFaults(drop_p=0.03, delay_p=0.04, delay_rounds=1, duplicate_p=0.02),),
        stalls=(NodeStall(stall_p=0.02),),
    )
    return MaintenanceSimulation(params, adversary, faults=plan, **sim_kwargs)


#: scenario name -> (builder, rounds to run).  Rounds reach past the first
#: cutover wave (2 * (lam + 3)) so the full join pipeline is exercised.
SCENARIOS = {
    "steady": (_scenario_steady, 24),
    "churn": (_scenario_churn, 30),
    "faults": (_scenario_faults, 24),
    "churn_faults": (_scenario_churn_faults, 28),
}


def run_scenario(name: str, **sim_kwargs) -> str:
    """Run one named scenario round by round; returns its fingerprint.

    Probes are queued mid-run so final-delivery paths contribute to the
    digest.  ``sim_kwargs`` forward to :class:`MaintenanceSimulation` (the
    equivalence tests toggle the cached hot paths on and off here).
    """
    builder, total = SCENARIOS[name]
    sim = builder(**sim_kwargs)
    try:
        probe_rng = np.random.default_rng(99)
        rounds: list[tuple] = []
        for t in range(total):
            if t == 4:  # early enough that deliveries (2*lam + 2 later) land in-run
                sim.send_probes(6, probe_rng)
            sim.engine.run_round()
            rounds.append(round_snapshot(sim, t))
        return sim_fingerprint(sim, rounds)
    finally:
        # Release shard workers / shared slabs on sharded runs (W=1: no-op).
        sim.close()
