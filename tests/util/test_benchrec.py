"""Tests for the tracked benchmark records (BENCH_<id>.json)."""

from __future__ import annotations

import json

import pytest

from repro.util.benchrec import (
    MAX_ENTRIES,
    SCHEMA_VERSION,
    append_entry,
    bench_path,
    load_bench_file,
    make_entry,
    peak_rss_kb,
    validate_bench_file,
)


class TestEntries:
    def test_make_entry_fields(self):
        entry = make_entry(n=48, rounds=2, seconds_per_round=0.5)
        assert entry["n"] == 48
        assert entry["rounds"] == 2
        assert entry["seconds_per_round"] == 0.5
        assert entry["peak_rss_kb"] > 0
        assert entry["created"].endswith("Z")
        assert "label" not in entry

    def test_label_and_created_override(self):
        entry = make_entry(
            n=1, rounds=1, seconds_per_round=0.1,
            created="2026-01-01T00:00:00Z", label="baseline",
        )
        assert entry["created"] == "2026-01-01T00:00:00Z"
        assert entry["label"] == "baseline"

    def test_peak_rss_positive_kib(self):
        rss = peak_rss_kb()
        assert 0 < rss < 1 << 30  # KiB, not bytes


class TestAppendAndValidate:
    def test_roundtrip(self, tmp_path):
        entry = make_entry(n=8, rounds=4, seconds_per_round=0.25)
        path = append_entry(tmp_path, "micro", entry)
        assert path == bench_path(tmp_path, "micro")
        data = validate_bench_file(path)
        assert data["schema"] == SCHEMA_VERSION
        assert data["id"] == "micro"
        assert data["entries"] == [entry]

    def test_appends_in_order(self, tmp_path):
        for i in range(3):
            append_entry(
                tmp_path, "b", make_entry(n=i, rounds=1, seconds_per_round=i)
            )
        data = load_bench_file(bench_path(tmp_path, "b"))
        assert [e["n"] for e in data["entries"]] == [0, 1, 2]

    def test_trims_to_max_entries(self, tmp_path):
        for i in range(MAX_ENTRIES + 7):
            append_entry(
                tmp_path, "b", make_entry(n=i, rounds=1, seconds_per_round=0.1)
            )
        data = validate_bench_file(bench_path(tmp_path, "b"))
        assert len(data["entries"]) == MAX_ENTRIES
        assert data["entries"][-1]["n"] == MAX_ENTRIES + 6  # newest kept

    def test_id_mismatch_rejected(self, tmp_path):
        append_entry(tmp_path, "a", make_entry(n=1, rounds=1, seconds_per_round=1))
        bad = bench_path(tmp_path, "b")
        bad.write_text(bench_path(tmp_path, "a").read_text())
        with pytest.raises(ValueError, match="holds id"):
            append_entry(tmp_path, "b", make_entry(n=1, rounds=1, seconds_per_round=1))

    def test_schema_mismatch_rejected(self, tmp_path):
        path = bench_path(tmp_path, "x")
        path.write_text(json.dumps({"schema": 99, "id": "x", "entries": []}))
        with pytest.raises(ValueError, match="schema"):
            validate_bench_file(path)

    def test_missing_field_rejected(self, tmp_path):
        entry = make_entry(n=1, rounds=1, seconds_per_round=1.0)
        del entry["peak_rss_kb"]
        path = bench_path(tmp_path, "x")
        path.write_text(
            json.dumps({"schema": SCHEMA_VERSION, "id": "x", "entries": [entry]})
        )
        with pytest.raises(ValueError, match="peak_rss_kb"):
            validate_bench_file(path)

    def test_wrong_type_rejected(self, tmp_path):
        entry = make_entry(n=1, rounds=1, seconds_per_round=1.0)
        entry["n"] = True  # bools are ints in Python; schema says no
        with pytest.raises(ValueError, match="wrong type"):
            append_entry(tmp_path, "x", entry)

    def test_negative_measurement_rejected(self, tmp_path):
        entry = make_entry(n=1, rounds=1, seconds_per_round=-0.5)
        with pytest.raises(ValueError, match="negative"):
            append_entry(tmp_path, "x", entry)


class TestRepoRecords:
    def test_committed_bench_files_are_valid(self):
        from pathlib import Path

        results = Path(__file__).resolve().parents[2] / "benchmarks" / "results"
        files = sorted(results.glob("BENCH_*.json"))
        assert files, "expected committed BENCH_*.json records"
        for path in files:
            data = validate_bench_file(path)
            assert data["entries"], f"{path} has no entries"

    def test_micro_benchmark_history_records_speedup(self):
        from pathlib import Path

        path = (
            Path(__file__).resolve().parents[2]
            / "benchmarks"
            / "results"
            / "BENCH_micro_protocol_rounds.json"
        )
        data = validate_bench_file(path)
        first, second = data["entries"][0], data["entries"][1]
        assert first["label"].startswith("baseline")
        assert first["seconds_per_round"] / second["seconds_per_round"] >= 2.0
