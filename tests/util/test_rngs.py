"""Tests for seeded RNG streams and the keyed position hash."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util.rngs import PositionHash, RngService


class TestPositionHash:
    def test_deterministic(self):
        h = PositionHash(42)
        assert h.position(7, 3) == h.position(7, 3)

    def test_varies_with_node(self):
        h = PositionHash(42)
        assert h.position(7, 3) != h.position(8, 3)

    def test_varies_with_epoch(self):
        h = PositionHash(42)
        assert h.position(7, 3) != h.position(7, 4)

    def test_varies_with_key(self):
        assert PositionHash(1).position(7, 3) != PositionHash(2).position(7, 3)

    def test_range(self):
        h = PositionHash(42)
        for v in range(50):
            for e in range(5):
                assert 0.0 <= h.position(v, e) < 1.0

    def test_roughly_uniform(self):
        """Mean of many hash outputs should be ~0.5 (coarse sanity check)."""
        h = PositionHash(42)
        vals = [h.position(v, 0) for v in range(2000)]
        assert abs(np.mean(vals) - 0.5) < 0.02

    def test_positions_vectorised(self):
        h = PositionHash(42)
        ids = [3, 1, 4, 1, 5]
        arr = h.positions(ids, 2)
        assert arr.shape == (5,)
        for i, v in enumerate(ids):
            assert arr[i] == h.position(v, 2)


class TestRngService:
    def test_streams_reproducible(self):
        a = RngService(1).stream("x").random(5)
        b = RngService(1).stream("x").random(5)
        np.testing.assert_array_equal(a, b)

    def test_streams_independent_by_scope(self):
        svc = RngService(1)
        a = svc.stream("x").random(5)
        b = svc.stream("y").random(5)
        assert not np.array_equal(a, b)

    def test_seed_changes_everything(self):
        a = RngService(1).stream("x").random(5)
        b = RngService(2).stream("x").random(5)
        assert not np.array_equal(a, b)

    def test_node_stream_distinct_from_adversary(self):
        svc = RngService(3)
        a = svc.node_stream(0).random(4)
        b = svc.adversary_stream().random(4)
        assert not np.array_equal(a, b)

    def test_position_hash_reproducible(self):
        a = RngService(5).position_hash().position(1, 1)
        b = RngService(5).position_hash().position(1, 1)
        assert a == b

    def test_seed_property(self):
        assert RngService(9).seed == 9
