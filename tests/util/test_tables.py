"""Tests for table rendering."""

from __future__ import annotations

import pytest

from repro.util.tables import format_markdown_table, format_table, format_value


class TestFormatValue:
    def test_bool(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_float_compact(self):
        assert format_value(0.123456) == "0.1235"

    def test_float_scientific_for_small(self):
        assert "e" in format_value(1.5e-7)

    def test_zero(self):
        assert format_value(0.0) == "0"

    def test_string_passthrough(self):
        assert format_value("abc") == "abc"

    def test_int(self):
        assert format_value(42) == "42"


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bee"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_title(self):
        out = format_table(["a"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestMarkdownTable:
    def test_shape(self):
        out = format_markdown_table(["a", "b"], [[1, 2]])
        lines = out.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"
