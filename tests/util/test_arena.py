"""Unit tests for the shared-memory arena / framing layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util import arena
from repro.util.arena import (
    ArenaFull,
    ByteArena,
    FrameDecoder,
    FrameEncoder,
    read_array,
    read_frame,
)


def _buf(nbytes: int = 4096) -> memoryview:
    return memoryview(bytearray(nbytes))


# ----------------------------------------------------------------------
# Bump allocator
# ----------------------------------------------------------------------


class TestByteArena:
    def test_alloc_bumps_and_aligns(self):
        a = ByteArena(_buf())
        assert a.alloc(3) == 0
        # next allocation rounds the 3-byte cursor up to the 8-byte default
        assert a.alloc(1) == 8
        assert a.alloc(2, align=4) == 12
        assert a.used == 14

    def test_alloc_respects_base_and_size(self):
        a = ByteArena(_buf(64), base=16, size=24)
        off = a.alloc(8)
        assert off == 16  # absolute offset, not region-relative
        a.alloc(16)
        with pytest.raises(ArenaFull):
            a.alloc(1)

    def test_arena_full_reports_needed_bytes(self):
        a = ByteArena(_buf(16))
        a.alloc(8)
        with pytest.raises(ArenaFull) as exc:
            a.alloc(64)
        # needed is the total arena size that would have fit everything
        assert exc.value.needed >= 8 + 64
        # the failed alloc must not move the cursor
        assert a.used == 8

    def test_reset_rewinds_to_base(self):
        a = ByteArena(_buf(64), base=8)
        a.alloc(16)
        a.reset()
        assert a.used == 0
        assert a.alloc(4) == 8

    def test_frame_roundtrip(self):
        buf = _buf()
        a = ByteArena(buf)
        payload = b"hello arena"
        off = a.put_bytes(payload)
        assert bytes(read_frame(buf, off)) == payload
        # a second frame lands after the first, still readable
        off2 = a.put_bytes(b"x" * 100)
        assert bytes(read_frame(buf, off)) == payload
        assert bytes(read_frame(buf, off2)) == b"x" * 100

    def test_array_roundtrip_and_alignment(self):
        buf = _buf()
        a = ByteArena(buf)
        a.alloc(3)  # misalign the cursor on purpose
        arr = np.arange(7, dtype=np.int64)
        off = a.put_array(arr)
        assert off % 8 == 0
        out = read_array(buf, off, np.dtype(np.int64), 7)
        np.testing.assert_array_equal(out, arr)
        # int32 columns keep 8-byte alignment too (max(8, itemsize))
        arr32 = np.array([-5, 0, 9], dtype=np.int32)
        off32 = a.put_array(arr32)
        assert off32 % 8 == 0
        np.testing.assert_array_equal(
            read_array(buf, off32, np.dtype(np.int32), 3), arr32
        )

    def test_empty_array(self):
        buf = _buf()
        a = ByteArena(buf)
        off = a.put_array(np.empty(0, dtype=np.int32))
        assert read_array(buf, off, np.dtype(np.int32), 0).size == 0


# ----------------------------------------------------------------------
# Framing with identity memoisation
# ----------------------------------------------------------------------


class TestFraming:
    def test_encoder_memoises_by_identity(self):
        a = ByteArena(_buf())
        enc = FrameEncoder(a)
        obj = ("shared", [1, 2, 3])
        twin = ("shared", [1, 2, 3])  # equal but distinct
        off1 = enc.encode(obj)
        off2 = enc.encode(obj)
        off3 = enc.encode(twin)
        assert off1 == off2
        assert off3 != off1

    def test_decoder_reconstructs_sharing(self):
        buf = _buf()
        a = ByteArena(buf)
        enc = FrameEncoder(a)
        obj = {"k": (1, 2)}
        off = enc.encode(obj)
        dec = FrameDecoder(buf)
        first = dec.decode(off)
        second = dec.decode(off)
        assert first == obj
        assert first is second  # same frame -> same object
        dec.reset()
        assert dec.decode(off) is not first

    def test_encoder_reset_forgets_offsets(self):
        a = ByteArena(_buf())
        enc = FrameEncoder(a)
        obj = ("x",)
        off = enc.encode(obj)
        a.reset()
        enc.reset()
        assert enc.encode(obj) == off  # re-encoded from scratch at base

    def test_encoder_pins_objects(self):
        # The memo keys on id(); encoding must keep a reference so a
        # garbage-collected id cannot alias a new object mid-cycle.
        a = ByteArena(_buf())
        enc = FrameEncoder(a)
        offs = {enc.encode((i, "tmp")) for i in range(50)}
        assert len(offs) == 50  # every temporary got its own frame


# ----------------------------------------------------------------------
# Segment lifecycle
# ----------------------------------------------------------------------


class TestSegments:
    def test_create_destroy_updates_registry(self):
        before = arena.live_segments()
        shm = arena.create_segment(1024, "test-role")
        assert (shm.name, "test-role") in arena.live_segments()
        arena.destroy_segment(shm)
        assert arena.live_segments() == before

    def test_attach_reads_creator_writes(self):
        shm = arena.create_segment(64, "test-attach")
        try:
            shm.buf[:4] = b"ping"
            other = arena.attach_segment(shm.name)
            assert bytes(other.buf[:4]) == b"ping"
            arena.close_segment(other)
        finally:
            arena.destroy_segment(shm)

    def test_destroy_unlinks_despite_live_views(self):
        # A live numpy view keeps close() from releasing the mapping
        # (BufferError); the unlink must happen anyway or the segment
        # leaks into /dev/shm until reboot.
        shm = arena.create_segment(256, "test-leak")
        name = shm.name
        view = np.frombuffer(shm.buf, dtype=np.uint8)
        arena.destroy_segment(shm)
        assert all(n != name for n, _role in arena.live_segments())
        with pytest.raises(FileNotFoundError):
            arena.attach_segment(name)
        del view
        arena.close_segment(shm)  # now releasable; idempotent cleanup

    def test_destroy_is_idempotent(self):
        shm = arena.create_segment(64, "test-idem")
        arena.destroy_segment(shm)
        arena.destroy_segment(shm)  # second unlink is a no-op
