"""Tests for fixed-point De Bruijn address arithmetic."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.util.bits import (
    address_from_bits,
    address_of,
    bits_of_address,
    debruijn_prefix_address,
    debruijn_step,
    num_address_bits,
    point_of,
)

lam_st = st.integers(min_value=1, max_value=16)


class TestNumAddressBits:
    def test_power_of_two(self):
        assert num_address_bits(64, 1.0) == 6

    def test_rounds_up(self):
        assert num_address_bits(65, 1.0) == 7

    def test_kappa_inflates(self):
        assert num_address_bits(64, 1.0625) == 7

    def test_rejects_tiny_n(self):
        with pytest.raises(ValueError):
            num_address_bits(1, 1.0)

    def test_rejects_kappa_below_one(self):
        with pytest.raises(ValueError):
            num_address_bits(64, 0.5)


class TestAddressOf:
    def test_zero(self):
        assert address_of(0.0, 4) == 0

    def test_half(self):
        assert address_of(0.5, 4) == 8

    def test_near_one_clamped(self):
        assert address_of(0.999999999999, 4) == 15

    def test_unwrapped_input(self):
        assert address_of(1.5, 4) == 8

    @given(st.floats(min_value=0, max_value=1, exclude_max=True), lam_st)
    def test_in_range(self, p, lam):
        assert 0 <= address_of(p, lam) < (1 << lam)

    @given(st.integers(min_value=0, max_value=255))
    def test_point_roundtrip(self, addr):
        assert address_of(point_of(addr, 8), 8) == addr


class TestPointOf:
    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            point_of(16, 4)
        with pytest.raises(ValueError):
            point_of(-1, 4)

    def test_values(self):
        assert point_of(0, 4) == 0.0
        assert point_of(8, 4) == 0.5


class TestBitsRoundtrip:
    @given(st.integers(min_value=0, max_value=1023))
    def test_roundtrip(self, addr):
        assert address_from_bits(bits_of_address(addr, 10)) == addr

    def test_msb_first(self):
        assert bits_of_address(0b1000, 4) == (1, 0, 0, 0)

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            address_from_bits((0, 2))


class TestDebruijnStep:
    def test_push_zero(self):
        # x = 0b1111, push 0: -> 0b0111
        assert debruijn_step(0b1111, 0, 4) == 0b0111

    def test_push_one(self):
        assert debruijn_step(0b0000, 1, 4) == 0b1000

    def test_rejects_bad_bit(self):
        with pytest.raises(ValueError):
            debruijn_step(0, 2, 4)

    @given(st.integers(min_value=0, max_value=255), st.integers(0, 1))
    def test_matches_real_map(self, addr, bit):
        """Integer step approximates x -> (x + bit)/2 within 2**-lam."""
        lam = 8
        x = point_of(addr, lam)
        stepped = point_of(debruijn_step(addr, bit, lam), lam)
        ideal = (x + bit) / 2.0
        assert abs(stepped - ideal) <= 2.0**-lam


class TestPrefixAddress:
    @given(
        st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255)
    )
    def test_endpoints(self, src, dst):
        lam = 8
        assert debruijn_prefix_address(src, dst, 0, lam) == src
        assert debruijn_prefix_address(src, dst, lam, lam) == dst

    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=1, max_value=8),
    )
    def test_matches_iterated_steps(self, src, dst, i):
        """Prefix address equals i pushes of dst's bits, LSB first."""
        lam = 8
        x = src
        for j in range(i):
            bit = (dst >> j) & 1
            x = debruijn_step(x, bit, lam)
        assert debruijn_prefix_address(src, dst, i, lam) == x

    def test_rejects_out_of_range_step(self):
        with pytest.raises(ValueError):
            debruijn_prefix_address(0, 0, 9, 8)
