"""Tests for the structured event log."""

from __future__ import annotations

import pytest

from repro.util.eventlog import Event, EventLog


class TestLogging:
    def test_log_and_len(self):
        log = EventLog()
        log.log(0, "join", node=5)
        log.log(1, "leave", node=6)
        assert len(log) == 2

    def test_rejects_bad_inputs(self):
        log = EventLog()
        with pytest.raises(ValueError):
            log.log(-1, "x")
        with pytest.raises(ValueError):
            log.log(0, "")

    def test_queries(self):
        log = EventLog()
        log.log(0, "join", node=1)
        log.log(3, "join", node=2)
        log.log(5, "leave", node=1)
        assert len(log.of_kind("join")) == 2
        assert [e.round for e in log.in_rounds(1, 4)] == [3]
        assert len(log.where(lambda e: e.fields.get("node") == 1)) == 2
        assert log.kinds() == {"join", "leave"}


class TestSerialisation:
    def test_json_roundtrip(self):
        e = Event(round=4, kind="probe", fields={"id": 7, "target": 0.5})
        again = Event.from_json(e.to_json())
        assert again == e

    def test_dump_load(self, tmp_path):
        log = EventLog()
        log.log(0, "a", x=1)
        log.log(1, "b", y="z")
        path = log.dump(tmp_path / "events.jsonl")
        loaded = EventLog.load(path)
        assert loaded.events == log.events

    def test_load_skips_blank_lines(self, tmp_path):
        p = tmp_path / "e.jsonl"
        p.write_text('{"round": 0, "kind": "a"}\n\n')
        assert len(EventLog.load(p)) == 1

    def test_iter_jsonl(self):
        log = EventLog()
        log.log(0, "a")
        assert list(log.iter_jsonl()) == [log.events[0].to_json()]

    def test_non_serialisable_fields_stringified(self):
        log = EventLog()
        log.log(0, "x", obj=frozenset({1}))
        assert "frozenset" in log.events[0].to_json()
