"""Unit and property tests for ring-interval algebra."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.intervals import (
    Arc,
    arc_union_length,
    arcs_overlap,
    is_left_of,
    ring_distance,
    ring_distance_array,
    wrap,
)

unit = st.floats(min_value=0.0, max_value=1.0, exclude_max=True, allow_nan=False)


class TestRingDistance:
    def test_zero_for_identical_points(self):
        assert ring_distance(0.3, 0.3) == 0.0

    def test_simple_gap(self):
        assert ring_distance(0.2, 0.5) == pytest.approx(0.3)

    def test_wraps_around_zero(self):
        assert ring_distance(0.95, 0.05) == pytest.approx(0.1)

    def test_antipodal_is_half(self):
        assert ring_distance(0.0, 0.5) == pytest.approx(0.5)

    def test_accepts_unwrapped_inputs(self):
        assert ring_distance(1.2, 0.2) == pytest.approx(0.0)

    @given(unit, unit)
    def test_symmetric(self, u, v):
        assert ring_distance(u, v) == pytest.approx(ring_distance(v, u))

    @given(unit, unit)
    def test_bounded_by_half(self, u, v):
        assert 0.0 <= ring_distance(u, v) <= 0.5

    @given(unit, unit, unit)
    def test_triangle_inequality(self, u, v, w):
        assert ring_distance(u, w) <= ring_distance(u, v) + ring_distance(v, w) + 1e-12

    @given(st.lists(unit, min_size=1, max_size=8), unit)
    def test_array_matches_scalar(self, points, center):
        arr = np.array(points)
        out = ring_distance_array(arr, center)
        for p, d in zip(points, out):
            assert d == pytest.approx(ring_distance(p, center))


class TestLeftOf:
    def test_plain_order(self):
        assert is_left_of(0.2, 0.4)
        assert not is_left_of(0.4, 0.2)

    def test_reversed_across_wrap(self):
        # |u - v| > 1/2 reverses the relation (the short way crosses 0).
        assert is_left_of(0.9, 0.1)
        assert not is_left_of(0.1, 0.9)

    def test_not_left_of_itself(self):
        assert not is_left_of(0.5, 0.5)

    @given(unit, unit)
    def test_antisymmetric(self, u, v):
        if u != v and abs(u - v) != 0.5:
            assert is_left_of(u, v) != is_left_of(v, u)


class TestArc:
    def test_contains_center(self):
        assert Arc(0.5, 0.01).contains(0.5)

    def test_contains_wrapped_point(self):
        assert Arc(0.99, 0.05).contains(0.02)
        assert not Arc(0.99, 0.05).contains(0.2)

    def test_endpoints_inclusive(self):
        arc = Arc(0.5, 0.1)
        assert arc.contains(0.4)
        assert arc.contains(0.6)

    def test_full_ring(self):
        assert Arc(0.3, 0.5).is_full
        assert Arc(0.3, 0.6).contains(0.9)

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            Arc(0.5, -0.1)

    def test_center_wrapped(self):
        assert Arc(1.25, 0.1).center == pytest.approx(0.25)

    def test_length(self):
        assert Arc(0.5, 0.1).length == pytest.approx(0.2)
        assert Arc(0.5, 0.9).length == 1.0

    def test_lo_hi(self):
        arc = Arc(0.05, 0.1)
        assert arc.lo == pytest.approx(0.95)
        assert arc.hi == pytest.approx(0.15)

    def test_scaled_half_branch0(self):
        arc = Arc(0.5, 0.2).scaled_half(0)
        assert arc.center == pytest.approx(0.25)
        assert arc.radius == pytest.approx(0.1)

    def test_scaled_half_branch1(self):
        arc = Arc(0.5, 0.2).scaled_half(1)
        assert arc.center == pytest.approx(0.75)
        assert arc.radius == pytest.approx(0.1)

    def test_scaled_half_rejects_bad_branch(self):
        with pytest.raises(ValueError):
            Arc(0.5, 0.2).scaled_half(2)

    def test_expanded(self):
        arc = Arc(0.5, 0.1).expanded(0.05)
        assert arc.radius == pytest.approx(0.15)

    @given(unit, st.floats(min_value=0.0, max_value=0.49), unit)
    def test_contains_matches_distance(self, center, radius, p):
        assert Arc(center, radius).contains(p) == (
            ring_distance(p, center) <= radius
        )

    @given(
        st.lists(unit, min_size=1, max_size=16),
        unit,
        st.floats(min_value=0.0, max_value=0.49),
    )
    def test_contains_array_matches_scalar(self, points, center, radius):
        arc = Arc(center, radius)
        mask = arc.contains_array(np.array(points))
        for p, m in zip(points, mask):
            assert bool(m) == arc.contains(p)

    @given(unit, st.floats(min_value=1e-6, max_value=0.4), unit)
    def test_scaled_half_maps_members(self, center, radius, p):
        """If p is in the arc then (p + i)/2 is in the scaled arc."""
        arc = Arc(center, radius)
        if arc.contains(p):
            # Tiny tolerance absorbs one-ulp rounding at arc boundaries.
            half0 = arc.scaled_half(0).expanded(1e-12)
            half1 = arc.scaled_half(1).expanded(1e-12)
            for branch in (0, 1):
                img = wrap((p + branch) / 2.0)
                # Both (p+0)/2 and (p+1)/2 land in one of the two half-images.
                assert half0.contains(img) or half1.contains(img)


class TestArcsOverlap:
    def test_overlapping(self):
        assert arcs_overlap(Arc(0.1, 0.1), Arc(0.25, 0.1))

    def test_disjoint(self):
        assert not arcs_overlap(Arc(0.1, 0.05), Arc(0.5, 0.05))

    def test_wrap_overlap(self):
        assert arcs_overlap(Arc(0.98, 0.05), Arc(0.02, 0.05))

    def test_full_overlaps_everything(self):
        assert arcs_overlap(Arc(0.0, 0.5), Arc(0.7, 0.0))


class TestArcUnionLength:
    def test_empty(self):
        assert arc_union_length([]) == 0.0

    def test_single(self):
        assert arc_union_length([Arc(0.5, 0.1)]) == pytest.approx(0.2)

    def test_disjoint_pair(self):
        got = arc_union_length([Arc(0.2, 0.05), Arc(0.6, 0.05)])
        assert got == pytest.approx(0.2)

    def test_overlapping_pair(self):
        got = arc_union_length([Arc(0.2, 0.1), Arc(0.25, 0.1)])
        assert got == pytest.approx(0.25)

    def test_wrapping_arc(self):
        got = arc_union_length([Arc(0.0, 0.1)])
        assert got == pytest.approx(0.2)

    def test_full_ring_caps_at_one(self):
        assert arc_union_length([Arc(0.0, 0.6)]) == 1.0

    @given(st.lists(st.tuples(unit, st.floats(min_value=0, max_value=0.3)), max_size=6))
    def test_union_bounds(self, spec):
        arcs = [Arc(c, r) for c, r in spec]
        total = arc_union_length(arcs)
        assert 0.0 <= total <= 1.0
        if arcs:
            assert total >= max(a.length for a in arcs) - 1e-9
            assert total <= sum(a.length for a in arcs) + 1e-9


class TestWrap:
    @given(st.floats(min_value=-10, max_value=10, allow_nan=False))
    def test_range(self, x):
        assert 0.0 <= wrap(x) < 1.0

    def test_identity_on_unit(self):
        assert wrap(0.25) == 0.25

    def test_negative(self):
        assert wrap(-0.25) == pytest.approx(0.75)

    def test_integer_maps_to_zero(self):
        assert wrap(3.0) == 0.0
