"""Tests for the text ring renderer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ProtocolParams
from repro.overlay.lds import LDSGraph
from repro.util.intervals import Arc
from repro.util.ringviz import render_arcs, render_density, render_node_anatomy


class TestRenderDensity:
    def test_width_respected(self):
        out = render_density({0: 0.1, 1: 0.9}, width=40)
        assert len(out.splitlines()[0]) == 42  # width + 2 pipes

    def test_empty(self):
        out = render_density({}, width=20)
        assert out.splitlines()[0] == "|" + " " * 20 + "|"

    def test_dense_bucket_darker(self):
        positions = {i: 0.25 for i in range(50)}
        positions[99] = 0.75
        strip = render_density(positions, width=40).splitlines()[0]
        dense = strip[1 + int(0.25 * 40)]
        sparse = strip[1 + int(0.75 * 40)]
        assert dense == "@"
        assert sparse != "@" and sparse != " "

    def test_accepts_iterable(self):
        out = render_density([0.5, 0.6], width=20)
        assert "|" in out

    def test_rejects_tiny_width(self):
        with pytest.raises(ValueError):
            render_density({}, width=4)


class TestRenderArcs:
    def test_marks_covered_buckets(self):
        out = render_arcs({"a": Arc(0.5, 0.1)}, width=40)
        row = out.split("|")[1]
        assert row[int(0.5 * 40)] == "#"
        assert row[int(0.05 * 40)] == " "

    def test_wrapping_arc(self):
        out = render_arcs({"w": Arc(0.0, 0.1)}, width=40)
        row = out.split("|")[1]
        assert row[0] == "#" and row[-1] == "#"
        assert row[20] == " "

    def test_point_arc_still_visible(self):
        out = render_arcs({"pt": Arc(0.3, 0.0)}, width=40)
        assert "#" in out

    def test_labels_aligned(self):
        out = render_arcs({"a": Arc(0.1, 0.05), "longer": Arc(0.2, 0.05)}, width=30)
        lines = out.splitlines()
        assert lines[0].index("|") == lines[1].index("|")


class TestNodeAnatomy:
    def test_renders_all_arcs(self, rng):
        params = ProtocolParams(n=64, seed=2)
        graph = LDSGraph.random(params, rng)
        v = int(graph.node_ids[0])
        out = render_node_anatomy(graph, v, width=60)
        assert "list arc" in out
        assert "DB arc v/2" in out
        assert f"node {v}" in out
