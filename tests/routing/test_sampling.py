"""Tests for the A_SAMPLING delivery rule (Lemma 13)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ProtocolParams
from repro.overlay.positions import PositionIndex
from repro.routing.sampling import draw_sample_rank, rank_in_swarm, sampling_recipient
from repro.routing.series import SeriesRouter


@pytest.fixture
def params() -> ProtocolParams:
    return ProtocolParams(n=96, c=1.5, r=2, seed=5)


@pytest.fixture
def index(rng, params) -> PositionIndex:
    return PositionIndex({i: float(p) for i, p in enumerate(rng.random(params.n))})


class TestRankRule:
    def test_rank_range(self, index, params):
        p = 0.4
        members = index.ids_within(p, params.swarm_radius)
        ranks = [rank_in_swarm(index, p, int(v), params) for v in members]
        assert sorted(ranks) == list(range(len(members)))

    def test_rank_none_outside_swarm(self, index, params):
        p = 0.4
        outside = [
            int(v) for v in index.ids
            if int(v) not in set(int(x) for x in index.ids_within(p, params.swarm_radius))
        ]
        assert rank_in_swarm(index, p, outside[0], params) is None

    def test_recipient_matches_rank(self, index, params):
        p = 0.4
        members = index.ids_within(p, params.swarm_radius)
        for delta in range(len(members)):
            w = sampling_recipient(index, p, delta, params)
            assert rank_in_swarm(index, p, w, params) == delta

    def test_recipient_none_for_large_delta(self, index, params):
        w = sampling_recipient(index, 0.4, 10_000, params)
        assert w is None

    def test_draw_in_range(self, params):
        rng = np.random.default_rng(0)
        draws = [draw_sample_rank(rng, params) for _ in range(200)]
        assert all(0 <= d < params.sampling_rank_range for d in draws)
        assert len(set(draws)) > 10  # actually random


class TestSamplingEndToEnd:
    def test_discard_probability_at_most_half_ish(self, params):
        """Lemma 13: P[discard] <= 1/2 (we allow statistical slack)."""
        router = SeriesRouter(params, seed=2)
        for v in range(96):
            for _ in range(4):
                router.send_sample(v)
        router.run_until_quiet()
        outcomes = list(router.outcomes.values())
        hits = sum(1 for o in outcomes if o.sample_receiver is not None)
        assert hits / len(outcomes) >= 0.35  # E[hit] = E[|S|]/R ~ 1/2

    def test_sample_receiver_in_target_swarm(self, params):
        router = SeriesRouter(params, seed=3)
        for v in range(30):
            router.send_sample(v)
        router.run_until_quiet()
        for o in router.outcomes.values():
            if o.sample_receiver is not None:
                assert o.sample_receiver in o.receivers

    def test_uniformity_chi_square(self, params):
        """Lemma 13(1): every node is sampled with the same probability."""
        from scipy import stats

        router = SeriesRouter(params, seed=4, reconfigure=False)
        counts = {v: 0 for v in range(params.n)}
        rng = np.random.default_rng(8)
        batches = 40
        per_batch = 96
        for _ in range(batches):
            for v in range(per_batch):
                router.send_sample(int(rng.integers(0, params.n)))
        router.run_until_quiet()
        for o in router.outcomes.values():
            if o.sample_receiver is not None:
                counts[o.sample_receiver] += 1
        observed = np.array(list(counts.values()), dtype=float)
        assert observed.sum() > 500
        _, pvalue = stats.chisquare(observed)
        assert pvalue > 0.001  # do not reject uniformity
