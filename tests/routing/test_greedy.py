"""Tests for the greedy LDG baseline router."""

from __future__ import annotations

import numpy as np
import pytest

from repro.overlay.ldg import LDGGraph
from repro.util.bits import num_address_bits
from repro.util.intervals import ring_distance


@pytest.fixture
def setup(rng):
    graph = LDGGraph.random(128, rng)
    lam = num_address_bits(128, 1.0)
    from repro.routing.greedy import GreedyRouter

    return graph, GreedyRouter(graph, lam)


class TestGreedyNoChurn:
    def test_delivers_to_closest_node(self, setup, rng):
        graph, router = setup
        targets = rng.random(20)
        for i, t in enumerate(targets):
            router.send(int(graph.node_ids[i * 3]), float(t))
        router.run_until_quiet()
        for out in router.outcomes:
            assert out.delivered
            final = out.path[-1]
            closest = graph.index.closest(out.target)
            # Greedy may stop at a ring-adjacent local optimum; distance must
            # match the true closest node's distance up to one ring gap.
            d_final = ring_distance(graph.index.position(final), out.target)
            d_best = ring_distance(graph.index.position(closest), out.target)
            assert d_final <= 3 * d_best + 3.0 / len(graph)

    def test_hop_count_logarithmic(self, setup, rng):
        graph, router = setup
        for i in range(30):
            router.send(int(graph.node_ids[i]), float(rng.random()))
        router.run_until_quiet()
        hops = [o.hops for o in router.outcomes if o.delivered]
        assert hops, "no deliveries"
        assert max(hops) <= 8 * router.lam

    def test_path_starts_at_origin(self, setup):
        graph, router = setup
        origin = int(graph.node_ids[0])
        router.send(origin, 0.5)
        router.run_until_quiet()
        assert router.outcomes[0].path[0] == origin


class TestGreedyUnderChurn:
    def test_single_dead_holder_loses_message(self, setup):
        graph, router = setup
        origin = int(graph.node_ids[0])
        router.send(origin, 0.5)
        router.step()
        # Kill the current holder: the message must die.
        holder = router.outcomes[0].path[-1]
        router.kill([holder])
        router.run_until_quiet()
        assert not router.outcomes[0].delivered
        assert router.outcomes[0].failed_at is not None

    def test_dead_origin_rejected(self, setup):
        graph, router = setup
        origin = int(graph.node_ids[0])
        router.kill([origin])
        with pytest.raises(ValueError):
            router.send(origin, 0.5)

    def test_fragility_vs_random_churn(self, setup, rng):
        """With 20% random churn mid-flight, a noticeable fraction dies —
        the contrast to A_ROUTING's swarm redundancy."""
        graph, router = setup
        for i in range(64):
            router.send(int(graph.node_ids[i]), float(rng.random()))
        router.step()
        victims = rng.choice(graph.node_ids, size=25, replace=False)
        router.kill(int(v) for v in victims)
        router.run_until_quiet()
        lost = sum(1 for o in router.outcomes if not o.delivered)
        assert lost > 0
