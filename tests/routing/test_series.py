"""Tests for A_ROUTING on a routable series (Lemmas 9-11)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ProtocolParams
from repro.routing.series import SeriesRouter


@pytest.fixture
def params() -> ProtocolParams:
    return ProtocolParams(n=96, c=1.5, r=2, seed=3)


class TestDeliveryNoChurn:
    def test_single_message_delivered(self, params):
        router = SeriesRouter(params)
        router.send(0, 0.5, payload="hello")
        router.run_until_quiet()
        out = router.outcomes[0]
        assert out.delivered
        assert out.receivers

    def test_dilation_exactly_2lam_plus_2(self, params):
        """Lemma 9: dilation is exactly 2*lam + 2 from the initial multicast."""
        router = SeriesRouter(params)
        ids = [router.send(int(v), float(t)) for v, t in
               zip(range(0, 96, 7), np.linspace(0.05, 0.95, 14))]
        router.run_until_quiet()
        for msg_id in ids:
            out = router.outcomes[msg_id]
            assert out.delivered
            assert out.dilation == params.dilation

    def test_receivers_are_target_swarm(self, params):
        router = SeriesRouter(params)
        target = 0.321
        router.send(5, target)
        router.run_until_quiet()
        out = router.outcomes[0]
        # The delivery epoch is the one current at delivered_round.
        epoch = router.epoch_at(out.delivered_round)
        swarm = set(
            int(v) for v in router.index(epoch).ids_within(target, params.swarm_radius)
        )
        assert out.receivers == frozenset(swarm & router.alive)
        assert len(out.receivers) > 0

    def test_static_overlay_mode(self, params):
        router = SeriesRouter(params, reconfigure=False)
        router.send(0, 0.77)
        router.run_until_quiet()
        assert router.outcomes[0].delivered
        # All epochs share one position table.
        assert router.index(0).as_dict() == router.index(3).as_dict()

    def test_many_messages_all_delivered(self, params):
        router = SeriesRouter(params)
        rng = np.random.default_rng(0)
        for v in range(96):
            router.send(v, float(rng.random()))
        router.run_until_quiet()
        delivered = sum(1 for o in router.outcomes.values() if o.delivered)
        assert delivered == 96

    def test_even_round_send_held_back_one_round(self, params):
        """Messages handed over during an even round start next (odd) round."""
        router = SeriesRouter(params)
        assert router.round == 0  # even
        router.send(0, 0.5)
        router.step()
        assert router.outcomes[0].initial_round is None
        router.step()
        assert router.outcomes[0].initial_round == 1

    def test_send_from_dead_origin_rejected(self, params):
        router = SeriesRouter(params)
        router.kill([3])
        with pytest.raises(ValueError):
            router.send(3, 0.5)


class TestDeliveryUnderChurn:
    def test_random_churn_below_goodness_is_survivable(self, params):
        """Killing a random ~10% of nodes mid-flight must not stop delivery."""
        router = SeriesRouter(params)
        rng = np.random.default_rng(7)
        for v in range(0, 96, 3):
            router.send(v, float(rng.random()))
        victims = rng.choice(96, size=9, replace=False)
        router.run(3)
        router.kill(int(v) for v in victims)
        router.run_until_quiet()
        outcomes = list(router.outcomes.values())
        delivered = sum(1 for o in outcomes if o.delivered)
        assert delivered >= 0.9 * len(outcomes)

    def test_wiping_a_full_swarm_kills_messages_there(self, params):
        """If a whole swarm dies the message cannot survive (sanity check of
        the goodness requirement — this is what a 0-late adversary exploits)."""
        router = SeriesRouter(params, reconfigure=False)
        target = 0.5
        router.send(0, target)
        router.run(2)  # initial multicast done, holders at S(x_0)
        # Kill every node — extreme churn, certainly kills all swarms.
        router.kill(list(router.alive))
        router.run_until_quiet()
        assert not router.outcomes[0].delivered

    def test_dead_nodes_do_not_forward_or_receive(self, params):
        router = SeriesRouter(params)
        router.send(0, 0.9)
        router.run(2)
        dead = list(router.alive)[:10]
        router.kill(dead)
        router.run_until_quiet()
        out = router.outcomes[0]
        if out.delivered:
            assert not (set(dead) & out.receivers)


class TestCongestion:
    def test_metrics_recorded(self, params):
        router = SeriesRouter(params)
        for v in range(96):
            router.send(v, float(np.random.default_rng(1).random()))
        router.run_until_quiet()
        assert router.metrics.rounds > 0
        assert router.metrics.total_messages() > 0

    def test_congestion_scales_with_k(self, params):
        """Lemma 9: congestion is O(k log n) — doubling k roughly doubles it."""
        def peak(k: int) -> int:
            router = SeriesRouter(params, seed=11)
            rng = np.random.default_rng(5)
            for v in range(96):
                for _ in range(k):
                    router.send(v, float(rng.random()))
            router.run_until_quiet()
            return router.metrics.peak_congestion()

        p1, p4 = peak(1), peak(4)
        assert 2.0 <= p4 / p1 <= 8.0


class TestEpochBookkeeping:
    def test_epoch_at(self, params):
        router = SeriesRouter(params)
        assert router.epoch_at(0) == 0
        assert router.epoch_at(1) == 0
        assert router.epoch_at(2) == 1
        assert router.epoch_at(7) == 3

    def test_reconfigure_changes_positions(self, params):
        router = SeriesRouter(params)
        assert router.index(0).as_dict() != router.index(2).as_dict()

    def test_membership_frozen_at_first_consult(self, params):
        router = SeriesRouter(params)
        idx = router.index(0)
        router.kill([0])
        assert 0 in router.index(0)  # snapshot unchanged
        assert 0 not in router.index(5)  # later epochs exclude the dead


class TestOmissionFaults:
    """Muted nodes are alive (occupy swarm slots) but never forward —
    a strictly harsher failure mode than churn."""

    def test_muted_fraction_tolerated(self, params):
        import numpy as np

        router = SeriesRouter(params, seed=21)
        rng = np.random.default_rng(21)
        router.mute(int(v) for v in rng.choice(96, size=12, replace=False))
        ids = [router.send(v, float(rng.random())) for v in range(0, 96, 4)
               if v not in router.muted]
        router.run_until_quiet()
        delivered = sum(1 for i in ids if router.outcomes[i].delivered)
        assert delivered >= 0.95 * len(ids)

    def test_fully_muted_swarm_stops_message(self, params):
        router = SeriesRouter(params, seed=22, reconfigure=False)
        router.send(0, 0.5)
        router.run(2)
        router.mute(router.alive)
        router.run_until_quiet()
        assert not router.outcomes[0].delivered

    def test_muted_origin_never_launches(self, params):
        router = SeriesRouter(params, seed=23)
        router.mute([5])
        router.send(5, 0.5)  # still alive, so the send is accepted...
        router.run_until_quiet()
        assert not router.outcomes[0].delivered  # ...but nothing ever leaves


class TestJoinAndRepositionPeriod:
    def test_join_adds_fresh_ids(self, params):
        router = SeriesRouter(params)
        new = router.join(3)
        assert len(new) == 3
        assert set(new) <= router.alive
        assert min(new) >= params.n

    def test_joiners_appear_in_future_epochs(self, params):
        router = SeriesRouter(params)
        router.index(0)  # materialise epoch 0
        new = router.join(1)[0]
        assert new not in router.index(0)
        assert new in router.index(3)

    def test_reposition_every_controls_position_changes(self, params):
        slow = SeriesRouter(params, reposition_every=3)
        assert slow.index(0).as_dict() == slow.index(2).as_dict()
        assert slow.index(0).as_dict() != slow.index(3).as_dict()

    def test_reposition_every_validated(self, params):
        with pytest.raises(ValueError):
            SeriesRouter(params, reposition_every=0)
