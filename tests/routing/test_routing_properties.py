"""Property-style tests for routing invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ProtocolParams
from repro.routing.messages import Hop, make_routed_message
from repro.routing.series import SeriesRouter

unit = st.floats(min_value=0.0, max_value=1.0, exclude_max=True, allow_nan=False)


class TestMessageInvariants:
    @given(unit, unit, st.integers(min_value=2, max_value=12))
    def test_trajectory_length_always_lam_plus_2(self, v, p, lam):
        msg = make_routed_message("id", 0, v, p, lam, 0)
        assert len(msg.trajectory) == lam + 2
        assert msg.final_step == lam + 1

    @given(unit, unit)
    def test_hop_advance(self, v, p):
        msg = make_routed_message("id", 0, v, p, 8, 0)
        hop = Hop(msg, 0)
        for k in range(1, msg.final_step + 1):
            hop = hop.advanced()
            assert hop.step == k
            assert hop.point == msg.trajectory[k]
        assert hop.at_final_swarm

    def test_sampling_flag(self):
        plain = make_routed_message("a", 0, 0.1, 0.2, 8, 0)
        sampled = make_routed_message("b", 0, 0.1, 0.2, 8, 0, sample_rank=3)
        assert not plain.is_sampling
        assert sampled.is_sampling


class TestRouterInvariants:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_dilation_is_seed_independent(self, seed):
        """Dilation is a structural constant, not a random variable."""
        params = ProtocolParams(n=96, c=1.5, r=2, seed=seed)
        router = SeriesRouter(params, seed=seed)
        rng = np.random.default_rng(seed)
        ids = [router.send(int(rng.integers(0, 96)), float(rng.random())) for _ in range(12)]
        router.run_until_quiet()
        dils = {router.outcomes[i].dilation for i in ids if router.outcomes[i].delivered}
        assert dils == {params.dilation}

    def test_payload_identity_preserved(self):
        """The delivered payload is the same object that was sent."""
        params = ProtocolParams(n=96, c=1.5, r=2, seed=5)
        router = SeriesRouter(params, seed=5)
        payload = {"nonce": object()}
        i = router.send(0, 0.5, payload=payload)
        router.run_until_quiet()
        assert router.outcomes[i].msg.payload is payload

    def test_outcomes_cover_every_send(self):
        params = ProtocolParams(n=96, c=1.5, r=2, seed=6)
        router = SeriesRouter(params, seed=6)
        ids = [router.send(v, 0.3) for v in range(10)]
        assert set(ids) <= set(router.outcomes)
        router.run_until_quiet()
        assert all(router.outcomes[i].initial_round is not None for i in ids)

    def test_total_messages_scale_linearly_in_sends(self):
        def total(k):
            params = ProtocolParams(n=96, c=1.5, r=2, seed=7)
            router = SeriesRouter(params, seed=7)
            rng = np.random.default_rng(7)
            for v in range(96):
                for _ in range(k):
                    router.send(v, float(rng.random()))
            router.run_until_quiet()
            return router.metrics.total_messages()

        t1, t3 = total(1), total(3)
        assert 2.0 <= t3 / t1 <= 4.0

    def test_quiet_router_sends_nothing(self):
        params = ProtocolParams(n=96, c=1.5, r=2, seed=8)
        router = SeriesRouter(params, seed=8)
        router.run(6)
        assert router.metrics.total_messages() == 0

    def test_holder_history_only_when_enabled(self):
        params = ProtocolParams(n=96, c=1.5, r=2, seed=9)
        off = SeriesRouter(params, seed=9)
        off.send(0, 0.5)
        off.run(4)
        assert off.holder_history == {}
        on = SeriesRouter(params, seed=9, record_holders=True)
        i = on.send(0, 0.5)
        on.run(4)
        assert i in on.holder_history
        # Holder sets are per-round and non-empty while in flight.
        assert all(h for h in on.holder_history[i].values())
