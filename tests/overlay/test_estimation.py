"""Tests for local network-size estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ProtocolParams
from repro.overlay.estimation import (
    all_node_estimates,
    estimate_lambda,
    local_size_estimate,
    median_size_estimate,
    params_from_estimate,
)
from repro.overlay.positions import PositionIndex


def uniform_index(n, rng):
    return PositionIndex({i: float(p) for i, p in enumerate(rng.random(n))})


class TestLocalEstimate:
    def test_exact_on_regular_grid(self):
        n = 64
        index = PositionIndex({i: i / n for i in range(n)})
        # On a perfect grid the j-th closest neighbour is at ceil(j/2)/n.
        est = local_size_estimate(index, 0, j=4)
        assert est == pytest.approx(4 / (2 * 2 / n))

    def test_unbiased_order_of_magnitude(self, rng):
        n = 512
        index = uniform_index(n, rng)
        ests = [local_size_estimate(index, v, j=8) for v in range(0, n, 16)]
        assert np.median(ests) == pytest.approx(n, rel=0.4)

    def test_rejects_bad_j(self, rng):
        index = uniform_index(16, rng)
        with pytest.raises(ValueError):
            local_size_estimate(index, 0, j=0)
        with pytest.raises(ValueError):
            local_size_estimate(index, 0, j=16)

    def test_handles_collisions(self):
        index = PositionIndex({0: 0.5, 1: 0.5, 2: 0.75})
        est = local_size_estimate(index, 0, j=1)
        assert np.isfinite(est) and est > 0


class TestAllNodeEstimates:
    def test_matches_scalar(self, rng):
        index = uniform_index(64, rng)
        vec = all_node_estimates(index, j=4)
        ids_sorted = index.ids
        for pos_rank in range(0, 64, 13):
            v = int(ids_sorted[pos_rank])
            assert vec[pos_rank] == pytest.approx(
                local_size_estimate(index, v, j=4), rel=1e-9
            )

    def test_shape(self, rng):
        index = uniform_index(40, rng)
        assert all_node_estimates(index, j=3).shape == (40,)


class TestMedianEstimate:
    @pytest.mark.parametrize("n", [64, 256, 1024])
    def test_relative_error_bounded(self, n, rng):
        index = uniform_index(n, rng)
        est = median_size_estimate(index)
        assert abs(est - n) / n < 0.30

    def test_accuracy_improves_with_j(self, rng):
        n = 1024
        errs = {}
        for j in (2, 16):
            trials = [
                abs(median_size_estimate(uniform_index(n, rng), j=j) - n) / n
                for _ in range(5)
            ]
            errs[j] = np.mean(trials)
        assert errs[16] <= errs[2] + 0.02


class TestDerivedParams:
    def test_estimate_lambda(self):
        assert estimate_lambda(64.0) == 6
        assert estimate_lambda(65.0) == 7
        assert estimate_lambda(64.0, kappa=1.1) == 7

    def test_params_from_estimate(self):
        base = ProtocolParams(n=100, c=2.0, seed=3)
        derived = params_from_estimate(base, 118.4)
        assert derived.n == 118
        assert derived.c == pytest.approx(2.0 * 1.2)  # default safety slack

    def test_params_from_estimate_no_slack(self):
        base = ProtocolParams(n=100, c=2.0, seed=3)
        derived = params_from_estimate(base, 118.4, safety=1.0)
        assert derived.c == 2.0

    def test_params_from_estimate_rejects_bad_safety(self):
        base = ProtocolParams(n=100, c=2.0, seed=3)
        with pytest.raises(ValueError):
            params_from_estimate(base, 100.0, safety=0.9)

    def test_estimated_radii_close_to_true(self, rng):
        """The whole point: radii from the estimate are within the slack the
        swarm property tolerates."""
        n = 512
        index = uniform_index(n, rng)
        base = ProtocolParams(n=n, c=1.5, seed=1)
        est = median_size_estimate(index)
        derived = params_from_estimate(base, est, safety=1.0)
        ratio = derived.swarm_radius / base.swarm_radius
        assert 0.7 < ratio < 1.4
