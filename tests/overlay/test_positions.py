"""Tests for the sorted position index."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.overlay.positions import PositionIndex
from repro.util.intervals import Arc, ring_distance

unit = st.floats(min_value=0.0, max_value=1.0, exclude_max=True, allow_nan=False)


def make_index(points):
    return PositionIndex({i: p for i, p in enumerate(points)})


class TestBasics:
    def test_len_and_contains(self):
        idx = make_index([0.1, 0.5, 0.9])
        assert len(idx) == 3
        assert 0 in idx and 3 not in idx

    def test_position_lookup(self):
        idx = PositionIndex({7: 0.25})
        assert idx.position(7) == 0.25
        with pytest.raises(KeyError):
            idx.position(8)

    def test_sorted(self):
        idx = make_index([0.9, 0.1, 0.5])
        np.testing.assert_array_equal(idx.sorted_positions, [0.1, 0.5, 0.9])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            PositionIndex({0: 1.0})
        with pytest.raises(ValueError):
            PositionIndex({0: -0.1})

    def test_as_dict(self):
        d = {3: 0.1, 5: 0.7}
        assert PositionIndex(d).as_dict() == d

    def test_empty(self):
        idx = PositionIndex({})
        assert len(idx) == 0
        assert idx.ids_within(0.5, 0.1).size == 0


class TestRangeQueries:
    def test_simple_window(self):
        idx = make_index([0.1, 0.2, 0.3, 0.8])
        got = set(idx.ids_within(0.2, 0.11))
        assert got == {0, 1, 2}

    def test_wrap_window(self):
        idx = make_index([0.02, 0.5, 0.97])
        got = set(idx.ids_within(0.0, 0.05))
        assert got == {0, 2}

    def test_endpoint_inclusive(self):
        idx = make_index([0.3])
        assert set(idx.ids_within(0.2, 0.1)) == {0}

    def test_full_ring(self):
        idx = make_index([0.1, 0.4, 0.9])
        assert set(idx.ids_within(0.0, 0.5)) == {0, 1, 2}

    def test_count_matches_ids(self):
        idx = make_index([0.1, 0.2, 0.3, 0.8, 0.95])
        for center in (0.0, 0.2, 0.5, 0.9):
            for radius in (0.01, 0.1, 0.3):
                assert idx.count_within(center, radius) == idx.ids_within(
                    center, radius
                ).size

    @given(
        st.lists(unit, min_size=1, max_size=30),
        unit,
        st.floats(min_value=0.0, max_value=0.49),
    )
    def test_matches_bruteforce(self, points, center, radius):
        """Fast range query agrees with ring_distance away from the boundary.

        Points within one ulp of the arc boundary may disagree (the query
        computes ``center ± radius`` while the oracle computes a distance;
        the two roundings can differ by one ulp) — immaterial at protocol
        radii, so exact-boundary points are excluded from the comparison.
        """
        idx = make_index(points)
        got = set(int(i) for i in idx.ids_within(center, radius))
        eps = 1e-12
        for i, p in enumerate(points):
            d = ring_distance(p, center)
            if d <= radius - eps:
                assert i in got
            elif d >= radius + eps:
                assert i not in got


class TestSortedIdsInArc:
    def test_order_starts_at_ccw_endpoint(self):
        idx = make_index([0.95, 0.02, 0.05])
        ordered = list(idx.sorted_ids_in_arc(Arc(0.0, 0.1)))
        # CCW endpoint is 0.9; going clockwise: 0.95 (id 0), 0.02 (1), 0.05 (2).
        assert ordered == [0, 1, 2]

    def test_non_wrapping_order(self):
        idx = make_index([0.3, 0.1, 0.2])
        ordered = list(idx.sorted_ids_in_arc(Arc(0.2, 0.15)))
        assert ordered == [1, 2, 0]


class TestClosest:
    def test_exact_hit(self):
        idx = make_index([0.1, 0.5, 0.9])
        assert idx.closest(0.5) == 1

    def test_wraps(self):
        idx = make_index([0.1, 0.5, 0.9])
        assert idx.closest(0.99) == 2
        assert idx.closest(0.01) == 0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            PositionIndex({}).closest(0.5)

    @given(st.lists(unit, min_size=1, max_size=25, unique=True), unit)
    def test_matches_bruteforce(self, points, p):
        idx = make_index(points)
        got = idx.closest(p)
        best = min(range(len(points)), key=lambda i: (ring_distance(points[i], p)))
        assert ring_distance(points[got], p) == pytest.approx(
            ring_distance(points[best], p)
        )


class TestRestricted:
    def test_keeps_subset(self):
        idx = make_index([0.1, 0.5, 0.9])
        sub = idx.restricted({0, 2})
        assert len(sub) == 2
        assert 1 not in sub
        assert sub.position(2) == 0.9
