"""Tests for the classical Linearized De Bruijn Graph baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.overlay.ldg import LDGGraph
from repro.util.intervals import ring_distance, wrap


@pytest.fixture
def ldg(rng) -> LDGGraph:
    return LDGGraph.random(64, rng)


class TestConstruction:
    def test_needs_three_nodes(self):
        with pytest.raises(ValueError):
            LDGGraph.from_positions({0: 0.1, 1: 0.2})

    def test_size(self, ldg):
        assert len(ldg) == 64


class TestRingEdges:
    def test_successor_predecessor_inverse(self, ldg):
        for v in ldg.node_ids[:10]:
            v = int(v)
            assert ldg.ring_predecessor(ldg.ring_successor(v)) == v

    def test_successor_is_clockwise_closest(self):
        g = LDGGraph.from_positions({0: 0.1, 1: 0.4, 2: 0.8})
        assert g.ring_successor(0) == 1
        assert g.ring_successor(2) == 0

    def test_ring_is_single_cycle(self, ldg):
        start = int(ldg.node_ids[0])
        seen = set()
        v = start
        for _ in range(len(ldg)):
            seen.add(v)
            v = ldg.ring_successor(v)
        assert v == start
        assert len(seen) == len(ldg)


class TestDeBruijnContacts:
    def test_contacts_are_closest(self, ldg):
        for v in ldg.node_ids[:10]:
            v = int(v)
            p = ldg.index.position(v)
            nbrs = set(ldg.neighbors(v))
            for branch in (0, 1):
                target = wrap((p + branch) / 2.0)
                closest = ldg.index.closest(target)
                if closest != v:
                    assert closest in nbrs

    def test_constant_degree(self, ldg):
        dmin, dmean, dmax = ldg.degree_stats()
        assert dmax <= 4
        assert dmin >= 1
