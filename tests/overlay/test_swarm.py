"""Tests for swarm membership and goodness audits."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ProtocolParams
from repro.overlay.positions import PositionIndex
from repro.overlay.swarm import audit_goodness, swarm_arc, swarm_members
from repro.util.intervals import ring_distance


@pytest.fixture
def index(rng, small_params) -> PositionIndex:
    return PositionIndex({i: float(p) for i, p in enumerate(rng.random(small_params.n))})


class TestSwarmMembers:
    def test_matches_definition(self, index, small_params):
        """v in S(p) iff d(v, p) <= c*lam/n."""
        for p in (0.0, 0.25, 0.5, 0.77, 0.999):
            got = set(int(v) for v in swarm_members(index, p, small_params))
            expected = {
                int(v)
                for v in index.ids
                if ring_distance(index.position(int(v)), p)
                <= small_params.swarm_radius
            }
            assert got == expected

    def test_arc_radius(self, small_params):
        arc = swarm_arc(0.3, small_params)
        assert arc.center == pytest.approx(0.3)
        assert arc.radius == pytest.approx(small_params.swarm_radius)


class TestAuditGoodness:
    def test_all_survive(self, index, small_params):
        stats = audit_goodness(index, small_params)
        assert stats.min_good_fraction == 1.0
        assert stats.min_size >= 1
        assert stats.all_nonempty

    def test_mean_size_near_expectation(self, rng):
        """E[|S|] = 2*c*lam with n nodes at density n (law of large numbers)."""
        params = ProtocolParams(n=1024, c=2.0)
        index = PositionIndex({i: float(p) for i, p in enumerate(rng.random(params.n))})
        stats = audit_goodness(
            index, params, centers=rng.random(200)
        )
        assert stats.mean_size == pytest.approx(params.expected_swarm_size, rel=0.25)

    def test_survivor_set(self, index, small_params):
        all_ids = [int(v) for v in index.ids]
        dead = set(all_ids[:: 2])  # kill half
        stats = audit_goodness(index, small_params, survives=set(all_ids) - dead)
        assert stats.min_good_fraction < 0.75

    def test_survivor_predicate(self, index, small_params):
        stats = audit_goodness(index, small_params, survives=lambda v: True)
        assert stats.min_good_fraction == 1.0

    def test_empty_index(self, small_params):
        stats = audit_goodness(PositionIndex({}), small_params)
        assert stats.count == 0
        assert stats.all_nonempty

    def test_explicit_centers(self, index, small_params):
        stats = audit_goodness(index, small_params, centers=np.array([0.5]))
        assert stats.count == 1

    def test_centers_witness_extremes(self, small_params):
        """Default centers find a swarm at least as small as any probed point."""
        index = PositionIndex({0: 0.0, 1: 0.4, 2: 0.5, 3: 0.6})
        stats = audit_goodness(index, small_params)
        probe_sizes = [
            swarm_members(index, p, small_params).size for p in np.linspace(0, 1, 500)
        ]
        assert stats.min_size <= min(probe_sizes)
        assert stats.max_size >= max(probe_sizes)
