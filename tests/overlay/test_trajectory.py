"""Tests for Definition 7 trajectories and the Lemma 12 crossing census."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.overlay.trajectory import (
    crossing_counts,
    max_step_error,
    trajectory,
    trajectory_bits,
)
from repro.util.bits import address_of
from repro.util.intervals import Arc

unit = st.floats(min_value=0.0, max_value=1.0, exclude_max=False, allow_nan=False).map(
    lambda x: x % 1.0
)


class TestTrajectory:
    def test_length(self):
        assert len(trajectory(0.3, 0.7, 8)) == 10

    def test_endpoints(self):
        traj = trajectory(0.3, 0.7, 8)
        assert traj[0] == pytest.approx(0.3)
        assert traj[-1] == pytest.approx(0.7)

    def test_step_lam_is_target_address(self):
        lam = 8
        traj = trajectory(0.3, 0.7, lam)
        assert address_of(traj[lam], lam) == address_of(0.7, lam)

    @given(unit, unit, st.integers(min_value=2, max_value=12))
    @settings(max_examples=60)
    def test_each_step_is_debruijn_map(self, v, p, lam):
        """Every hop is (x + bit)/2 within 2**-lam (Definition 7 geometry)."""
        traj = trajectory(v, p, lam)
        assert max_step_error(traj) <= 2.0**-lam + 1e-12

    @given(unit, st.integers(min_value=2, max_value=12))
    @settings(max_examples=30)
    def test_self_trajectory_constant_address(self, v, lam):
        """Routing to yourself keeps the address fixed after lam steps."""
        traj = trajectory(v, v, lam)
        assert address_of(traj[lam], lam) == address_of(v, lam)


class TestTrajectoryBits:
    def test_msb_first(self):
        assert trajectory_bits(0.5, 3) == (1, 0, 0)

    def test_matches_address(self):
        lam = 6
        p = 0.337
        bits = trajectory_bits(p, lam)
        addr = 0
        for b in bits:
            addr = (addr << 1) | b
        assert addr == address_of(p, lam)


class TestCrossingCounts:
    def test_step_zero_counts_sources(self, rng):
        sources = rng.random(500)
        targets = rng.random(500)
        arc = Arc(0.25, 0.1)
        got = crossing_counts(sources, targets, 8, arc, 0)
        expected = int(np.count_nonzero(arc.contains_array(sources)))
        assert got == expected

    def test_last_step_counts_targets(self, rng):
        sources = rng.random(500)
        targets = rng.random(500)
        arc = Arc(0.7, 0.05)
        got = crossing_counts(sources, targets, 8, arc, 9)
        expected = int(np.count_nonzero(arc.contains_array(targets)))
        assert got == expected

    def test_matches_scalar_trajectories(self, rng):
        lam = 6
        sources = rng.random(200)
        targets = rng.random(200)
        arc = Arc(0.4, 0.08)
        for step in (1, 3, lam):
            got = crossing_counts(sources, targets, lam, arc, step)
            expected = sum(
                1
                for s, t in zip(sources, targets)
                if arc.contains(trajectory(s, t, lam)[step])
            )
            assert got == expected

    def test_rejects_bad_step(self, rng):
        with pytest.raises(ValueError):
            crossing_counts(rng.random(5), rng.random(5), 4, Arc(0.5, 0.1), 6)

    def test_rejects_mismatched_shapes(self, rng):
        with pytest.raises(ValueError):
            crossing_counts(rng.random(5), rng.random(6), 4, Arc(0.5, 0.1), 1)

    def test_lemma12_expectation(self, rng):
        """E[X_I^j] = k*n*|I| for uniform sources/targets, any middle step."""
        n, k, lam = 4000, 1, 10
        sources = rng.random(n * k)
        targets = rng.random(n * k)
        arc = Arc(0.3, 0.05)  # |I| = 0.1
        expected = k * n * arc.length
        for step in (2, 5, 8):
            got = crossing_counts(sources, targets, lam, arc, step)
            assert got == pytest.approx(expected, rel=0.2)
