"""Tests for the Linearized De Bruijn Swarm topology (Definition 5, Lemma 6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ProtocolParams
from repro.overlay.lds import LDSGraph, build_lds, required_neighbor_arcs
from repro.util.intervals import ring_distance, wrap


@pytest.fixture
def lds(small_params, rng) -> LDSGraph:
    return LDSGraph.random(small_params, rng)


class TestConstruction:
    def test_random_has_n_nodes(self, small_params, rng):
        g = LDSGraph.random(small_params, rng)
        assert len(g) == small_params.n

    def test_random_with_explicit_n(self, small_params, rng):
        g = LDSGraph.random(small_params, rng, n=40)
        assert len(g) == 40

    def test_build_from_mapping(self, small_params):
        g = build_lds({0: 0.1, 1: 0.2, 2: 0.9}, small_params)
        assert set(int(v) for v in g.node_ids) == {0, 1, 2}


class TestListEdges:
    def test_definition(self, lds):
        """(v, w) in E_L iff d(v, w) <= 2*c*lam/n."""
        params = lds.params
        for v in lds.node_ids[:10]:
            v = int(v)
            pv = lds.index.position(v)
            got = set(int(w) for w in lds.list_neighbors(v))
            expected = {
                int(w)
                for w in lds.node_ids
                if int(w) != v
                and ring_distance(lds.index.position(int(w)), pv)
                <= params.list_radius
            }
            assert got == expected

    def test_excludes_self(self, lds):
        for v in lds.node_ids[:10]:
            assert int(v) not in set(int(w) for w in lds.list_neighbors(int(v)))

    def test_symmetric(self, lds):
        """List edges are symmetric (same distance both ways)."""
        for v in lds.node_ids[:10]:
            v = int(v)
            for w in lds.list_neighbors(v):
                assert v in set(int(x) for x in lds.list_neighbors(int(w)))


class TestDeBruijnEdges:
    def test_definition(self, lds):
        """(v, w) in E_DB iff d((v+i)/2, w) <= 3*c*lam/(2n) for i in {0,1}."""
        params = lds.params
        for v in lds.node_ids[:10]:
            v = int(v)
            pv = lds.index.position(v)
            got = set(int(w) for w in lds.db_neighbors(v))
            expected = set()
            for w in lds.node_ids:
                w = int(w)
                if w == v:
                    continue
                pw = lds.index.position(w)
                for i in (0, 1):
                    if ring_distance(wrap((pv + i) / 2.0), pw) <= params.debruijn_radius:
                        expected.add(w)
            assert got == expected

    def test_neighbors_is_union(self, lds):
        for v in lds.node_ids[:10]:
            v = int(v)
            got = set(int(w) for w in lds.neighbors(v))
            expected = set(int(w) for w in lds.list_neighbors(v)) | set(
                int(w) for w in lds.db_neighbors(v)
            )
            assert got == expected


class TestDegrees:
    def test_degree_logarithmic(self, lds):
        """Expected degree is O(lam); check it is within a generous envelope."""
        params = lds.params
        _, mean, dmax = lds.degree_stats()
        # E[deg] ~ (4c + 2*3c) * lam = 10 c lam (list + two DB windows).
        envelope = 10.0 * params.c * params.lam
        assert mean < 2.0 * envelope
        assert dmax < 4.0 * envelope

    def test_edge_count_matches_degrees(self, lds):
        assert lds.edge_count() == sum(
            lds.degree(int(v)) for v in lds.node_ids
        )


class TestSwarmProperty:
    def test_lemma6_random_points(self, small_params, rng):
        """Every node of S(p) connects to all of S(p/2) and S((p+1)/2)."""
        g = LDSGraph.random(small_params, rng)
        points = rng.random(20)
        assert g.check_swarm_property(points)

    def test_lemma6_near_wrap(self, small_params, rng):
        """The tricky cases from the Lemma 6 proof: p close to 0 or 1."""
        g = LDSGraph.random(small_params, rng)
        eps = small_params.swarm_radius / 3.0
        points = [0.0, eps, 1.0 - eps, 0.5, 0.5 - eps, 0.5 + eps]
        assert g.check_swarm_property(points)

    def test_violated_when_db_radius_too_small(self, small_params, rng):
        """Shrinking the DB radius far below 3/2 swarm radius breaks Lemma 6.

        With the DB radius below half the swarm radius, a node at the edge of
        S(p) cannot cover the far edge of S(p/2); with enough random points
        some violation appears.
        """
        g = LDSGraph.random(small_params, rng)
        # Edges from a much smaller c; swarms evaluated at the original radius.
        sparse = LDSGraph(g.index, small_params.with_updates(c=small_params.c / 8.0))
        violations = 0
        for p in rng.random(40):
            members = g.swarm(p)
            target = set(int(t) for t in g.swarm(wrap(p / 2.0)))
            for v in members:
                nbrs = set(int(w) for w in sparse.neighbors(int(v)))
                nbrs.add(int(v))
                if not target <= nbrs:
                    violations += 1
                    break
        assert violations > 0


class TestRequiredNeighborArcs:
    def test_arcs(self, small_params):
        list_arc, db0, db1 = required_neighbor_arcs(0.6, small_params)
        assert list_arc.center == pytest.approx(0.6)
        assert list_arc.radius == pytest.approx(small_params.list_radius)
        assert db0.center == pytest.approx(0.3)
        assert db1.center == pytest.approx(0.8)
        assert db0.radius == pytest.approx(small_params.debruijn_radius)


class TestAuditClaimedAdjacency:
    def test_complete_claim_passes(self, lds):
        claimed = {int(v): set(int(w) for w in lds.neighbors(int(v))) for v in lds.node_ids}
        assert lds.audit_claimed_adjacency(claimed) == {}

    def test_superset_claim_passes(self, lds):
        claimed = {
            int(v): set(int(w) for w in lds.neighbors(int(v))) | {99999}
            for v in lds.node_ids
        }
        assert lds.audit_claimed_adjacency(claimed) == {}

    def test_missing_edges_reported(self, lds):
        v0 = int(lds.node_ids[0])
        claimed = {int(v): set(int(w) for w in lds.neighbors(int(v))) for v in lds.node_ids}
        removed = claimed[v0].pop()
        report = lds.audit_claimed_adjacency(claimed)
        assert report == {v0: {removed}}
