"""Tests for the Chord-swarm transfer (topology + trajectories + routing)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ProtocolParams
from repro.overlay.chordswarm import (
    ChordSwarmGraph,
    chord_finger_arcs,
    chord_trajectory,
)
from repro.routing.series import SeriesRouter
from repro.util.intervals import ring_distance, wrap

unit = st.floats(min_value=0.0, max_value=1.0, exclude_max=True, allow_nan=False)


@pytest.fixture
def graph(small_params, rng) -> ChordSwarmGraph:
    return ChordSwarmGraph.random(small_params, rng)


class TestFingerArcs:
    def test_count_and_radius(self, small_params):
        arcs = chord_finger_arcs(0.3, small_params)
        assert len(arcs) == small_params.lam
        assert all(a.radius == pytest.approx(small_params.list_radius) for a in arcs)

    def test_centers_are_translations(self, small_params):
        arcs = chord_finger_arcs(0.3, small_params)
        for i, arc in enumerate(arcs, start=1):
            assert arc.center == pytest.approx(wrap(0.3 + 2.0**-i))


class TestTopology:
    def test_finger_edges_match_definition(self, graph):
        params = graph.params
        for v in graph.node_ids[:6]:
            v = int(v)
            p = graph.index.position(v)
            got = set(int(w) for w in graph.finger_neighbors(v))
            expected = set()
            for i in range(1, params.lam + 1):
                center = wrap(p + 2.0**-i)
                for w in graph.node_ids:
                    w = int(w)
                    if w != v and ring_distance(
                        graph.index.position(w), center
                    ) <= params.list_radius:
                        expected.add(w)
            assert got == expected

    def test_degree_log_squared(self, graph):
        """Chord-swarm degree is Theta(log^2 n) — higher than the LDS."""
        params = graph.params
        _, mean, _ = graph.degree_stats()
        per_arc = 4 * params.c * params.lam  # expected members per finger arc
        assert mean < 2.0 * params.lam * per_arc
        assert mean > 0.5 * per_arc  # at least the list arc's worth

    def test_finger_property(self, graph, rng):
        """The Chord analogue of Lemma 6 (exact, no rounding slack)."""
        assert graph.check_finger_property(rng.random(10))

    def test_from_positions(self, small_params):
        g = ChordSwarmGraph.from_positions({0: 0.1, 1: 0.5, 2: 0.9}, small_params)
        assert len(g) == 3


class TestChordTrajectory:
    def test_length_and_endpoints(self):
        traj = chord_trajectory(0.2, 0.7, 8)
        assert len(traj) == 10
        assert traj[0] == pytest.approx(0.2)
        assert traj[-1] == pytest.approx(0.7)

    def test_x_lam_close_to_target(self):
        lam = 10
        traj = chord_trajectory(0.2, 0.7, lam)
        assert ring_distance(traj[lam], 0.7) <= 2.0**-lam + 1e-12

    @given(unit, unit, st.integers(min_value=2, max_value=12))
    @settings(max_examples=60)
    def test_steps_are_fingers_or_stays(self, v, p, lam):
        """Each hop advances by exactly 2^-i (clockwise) or stays put."""
        traj = chord_trajectory(v, p, lam)
        for i in range(1, lam + 1):
            delta = wrap(traj[i] - traj[i - 1])
            assert delta == pytest.approx(0.0, abs=1e-12) or delta == pytest.approx(
                2.0**-i, abs=1e-12
            )

    @given(unit, unit)
    @settings(max_examples=40)
    def test_monotone_progress(self, v, p):
        """Clockwise distance to the target never increases.

        For all points before the final correction, the remaining clockwise
        distance is ``d - prefix_i`` with a non-decreasing prefix, so it
        never wraps and never grows (up to float rounding).
        """
        lam = 8
        traj = chord_trajectory(v, p, lam)
        remaining = [wrap(p - x) for x in traj[:-1]]
        assert all(a >= b - 1e-9 for a, b in zip(remaining, remaining[1:]))


class TestChordRouting:
    def test_end_to_end_delivery(self):
        params = ProtocolParams(n=96, c=1.5, r=2, seed=6)
        router = SeriesRouter(params, seed=6, trajectory_fn=chord_trajectory)
        rng = np.random.default_rng(4)
        for v in range(96):
            router.send(v, float(rng.random()))
        router.run_until_quiet()
        outcomes = list(router.outcomes.values())
        assert all(o.delivered for o in outcomes)
        assert all(o.dilation == params.dilation for o in outcomes)

    def test_delivery_under_churn(self):
        params = ProtocolParams(n=96, c=1.5, r=2, seed=7)
        router = SeriesRouter(params, seed=7, trajectory_fn=chord_trajectory)
        rng = np.random.default_rng(5)
        for v in range(96):
            router.send(v, float(rng.random()))
        router.run(3)
        router.kill(int(v) for v in rng.choice(96, size=9, replace=False))
        router.run_until_quiet()
        delivered = sum(1 for o in router.outcomes.values() if o.delivered)
        assert delivered >= 0.9 * 96
