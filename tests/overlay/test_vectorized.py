"""Equivalence tests for the vectorised hot paths.

The batched query paths (``bounds_many``, ``ids_within_list``, ``prime``,
``restricted`` via masked arrays) must return byte-identical results to the
scalar reference paths they replaced — routing correctness and the
bit-for-bit reproducibility guarantee both depend on it.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.config import ProtocolParams
from repro.overlay.lds import LDSGraph, build_lds
from repro.overlay.positions import PositionIndex
from repro.util.intervals import Arc, ring_distance

unit = st.floats(min_value=0.0, max_value=1.0, exclude_max=True, allow_nan=False)
radii = st.floats(min_value=0.0, max_value=0.7, allow_nan=False)


def make_index(points):
    return PositionIndex({i: p for i, p in enumerate(points)})


def brute_within(points, center, radius):
    return [i for i, p in enumerate(points) if ring_distance(p, center) <= radius]


class TestFloatWrapGuard:
    """Regression: a tiny negative ``center - radius`` wraps to exactly 1.0
    under ``%``, which must be clamped to 0.0 in every bounds path."""

    def test_scalar_guard_engages(self):
        # center - radius == -1e-18; (-1e-18) % 1.0 rounds to exactly 1.0.
        center, radius = 1e-18, 2e-18
        assert (center - radius) % 1.0 == 1.0  # precondition for the edge
        idx = make_index([0.0, 0.3, 0.7])
        ids = idx.ids_within(center, radius)
        assert ids.tolist() == [0]
        assert idx.count_within(center, radius) == 1
        assert idx.ids_within_list(center, radius) == [0]

    def test_batched_guard_matches_scalar(self):
        idx = make_index([0.0, 0.2, 0.5, 0.8])
        radius = 2e-18
        centers = np.array([1e-18, 0.2, 0.999999])
        a, b, wrapped = idx.bounds_many(centers, radius)
        for i, c in enumerate(centers.tolist()):
            assert (int(a[i]), int(b[i]), bool(wrapped[i])) == idx._bounds(c, radius)

    @given(st.lists(unit, min_size=1, max_size=30), unit)
    def test_count_never_disagrees_with_ids(self, points, center):
        idx = make_index(points)
        for radius in (0.0, 1e-18, 2e-18, 1e-9, 0.1, 0.5, 0.6):
            assert idx.count_within(center, radius) == idx.ids_within(
                center, radius
            ).size


class TestArcVariantEquivalence:
    """``ids_within``, ``ids_within_list``, ``ids_in_arc`` and
    ``sorted_ids_in_arc`` must agree element-for-element, in order."""

    def assert_all_agree(self, idx, center, radius):
        ids = idx.ids_within(center, radius)
        assert idx.ids_within_list(center, radius) == ids.tolist()
        np.testing.assert_array_equal(idx.ids_in_arc(Arc(center, radius)), ids)
        np.testing.assert_array_equal(
            idx.sorted_ids_in_arc(Arc(center, radius)), ids
        )
        assert idx.count_within(center, radius) == ids.size

    def test_wrapped_arc(self):
        idx = make_index([0.05, 0.3, 0.6, 0.95])
        self.assert_all_agree(idx, 0.0, 0.1)
        assert idx.ids_within_list(0.0, 0.1) == [3, 0]  # position order

    def test_full_ring_radius(self):
        idx = make_index([0.4, 0.1, 0.8])
        for radius in (0.5, 0.6, 1.0):
            self.assert_all_agree(idx, 0.25, radius)
            assert idx.count_within(0.25, radius) == 3

    def test_empty_index(self):
        idx = PositionIndex({})
        self.assert_all_agree(idx, 0.3, 0.2)
        self.assert_all_agree(idx, 0.3, 0.5)
        assert idx.ids_within_list(0.3, 0.2) == []
        assert idx.ids_within_list(0.3, 0.5) == []

    @given(st.lists(unit, min_size=0, max_size=40), unit, radii)
    def test_variants_agree_and_match_bruteforce(self, points, center, radius):
        idx = make_index(points)
        self.assert_all_agree(idx, center, radius)
        got = sorted(idx.ids_within(center, radius).tolist())
        assert got == brute_within(points, center, radius)


class TestBoundsMany:
    @given(
        st.lists(unit, min_size=1, max_size=40),
        st.lists(unit, min_size=1, max_size=12),
        st.floats(min_value=0.0, max_value=0.49, allow_nan=False),
    )
    def test_matches_scalar_bounds(self, points, centers, radius):
        idx = make_index(points)
        arr = np.array(centers, dtype=np.float64)
        a, b, wrapped = idx.bounds_many(arr, radius)
        for i, c in enumerate(centers):
            sa, sb, sw = idx._bounds(c, radius)
            assert (int(a[i]), int(b[i]), bool(wrapped[i])) == (sa, sb, sw)

    @given(
        st.lists(unit, min_size=1, max_size=40),
        st.lists(unit, min_size=1, max_size=12),
        st.floats(min_value=0.0, max_value=0.49, allow_nan=False),
    )
    def test_slices_reproduce_ids_within(self, points, centers, radius):
        idx = make_index(points)
        ids = idx.ids_list
        n = len(ids)
        arr = np.array(centers, dtype=np.float64)
        a, b, wrapped = idx.bounds_many(arr, radius)
        for i, c in enumerate(centers):
            window = (
                ids[a[i]:] + ids[: b[i]] if wrapped[i] else ids[a[i]:b[i]]
            )
            assert window == idx.ids_within(c, radius).tolist()
            size = n - a[i] + b[i] if wrapped[i] else b[i] - a[i]
            assert size == len(window)


class TestRestricted:
    def reference(self, idx, keep):
        keep = set(keep)
        return PositionIndex(
            {v: p for v, p in idx.as_dict().items() if v in keep}
        )

    @given(
        st.lists(unit, min_size=0, max_size=30),
        st.sets(st.integers(min_value=0, max_value=35)),
    )
    def test_matches_rebuilt_index(self, points, keep):
        idx = make_index(points)
        got = idx.restricted(keep)
        want = self.reference(idx, keep)
        np.testing.assert_array_equal(got.ids, want.ids)
        np.testing.assert_array_equal(got.sorted_positions, want.sorted_positions)
        assert got.as_dict() == want.as_dict()

    def test_accepts_ndarray_and_preserves_queries(self):
        idx = make_index([0.1, 0.4, 0.6, 0.9])
        got = idx.restricted(np.array([0, 2, 3]))
        want = self.reference(idx, {0, 2, 3})
        np.testing.assert_array_equal(got.ids, want.ids)
        np.testing.assert_array_equal(
            got.ids_within(0.95, 0.2), want.ids_within(0.95, 0.2)
        )
        assert got.ids_within_list(0.95, 0.2) == want.ids_within_list(0.95, 0.2)


class TestPrimedLDS:
    """``prime()`` must fill the caches with exactly what the lazy per-node
    queries compute, and the one-pass statistics must match naive sums."""

    def build_pair(self, seed, n=48):
        params = ProtocolParams(n=n, seed=seed)
        rng = np.random.default_rng(seed)
        positions = {i: float(p) for i, p in enumerate(rng.random(n))}
        return build_lds(positions, params), build_lds(positions, params)

    def test_prime_matches_lazy(self):
        for seed in (1, 2, 3):
            primed, lazy = self.build_pair(seed)
            primed.prime()
            for v in lazy.node_ids.tolist():
                np.testing.assert_array_equal(
                    primed.list_neighbors(v), lazy.list_neighbors(v)
                )
                np.testing.assert_array_equal(
                    primed.db_neighbors(v), lazy.db_neighbors(v)
                )
                np.testing.assert_array_equal(
                    primed.neighbors(v), lazy.neighbors(v)
                )

    def test_prime_is_idempotent(self):
        primed, _ = self.build_pair(5)
        primed.prime()
        before = {v: primed.neighbors(v).tolist() for v in primed.node_ids.tolist()}
        primed.prime()
        after = {v: primed.neighbors(v).tolist() for v in primed.node_ids.tolist()}
        assert before == after

    def test_degree_stats_and_edge_count_consistent(self):
        graph, lazy = self.build_pair(9)
        lo, mean, hi = graph.degree_stats()
        degrees = [lazy.degree(v) for v in lazy.node_ids.tolist()]
        assert (lo, hi) == (min(degrees), max(degrees))
        assert mean == float(np.mean(degrees))
        assert graph.edge_count() == sum(degrees)

    def test_empty_graph(self):
        params = ProtocolParams(n=16, seed=1)
        graph = LDSGraph(PositionIndex({}), params)
        graph.prime()
        assert graph.degree_stats() == (0, 0.0, 0)
        assert graph.edge_count() == 0

    @settings(deadline=None, max_examples=20)
    @given(st.lists(unit, min_size=1, max_size=24, unique=True), st.integers(1, 10**6))
    def test_prime_matches_lazy_fuzzed(self, points, seed):
        params = ProtocolParams(n=max(16, len(points)), seed=seed)
        positions = {i: p for i, p in enumerate(points)}
        primed = build_lds(positions, params)
        lazy = build_lds(positions, params)
        primed.prime()
        for v in positions:
            np.testing.assert_array_equal(primed.neighbors(v), lazy.neighbors(v))
            np.testing.assert_array_equal(
                primed.list_neighbors(v), lazy.list_neighbors(v)
            )
            np.testing.assert_array_equal(
                primed.db_neighbors(v), lazy.db_neighbors(v)
            )
