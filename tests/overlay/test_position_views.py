"""Incremental PositionIndex views: restricted / without / with_added.

These are the copy-on-write primitives the epoch cache leans on, so every
path must agree exactly with a from-scratch ``PositionIndex`` build — the
set-input and ndarray-input branches of ``restricted`` included.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.overlay.positions import PositionIndex


def make_index(n: int = 12, seed: int = 0) -> PositionIndex:
    rng = np.random.default_rng(seed)
    return PositionIndex({v: float(p) for v, p in enumerate(rng.random(n))})


class TestRestrictedInputPaths:
    """All ``keep`` input kinds normalise to the same view."""

    def test_set_list_tuple_ndarray_agree(self):
        index = make_index()
        keep_set = {1, 3, 5, 7}
        variants = [
            keep_set,
            list(keep_set),
            tuple(keep_set),
            np.array(sorted(keep_set), dtype=np.int64),
            np.array(sorted(keep_set), dtype=np.float64),  # integral floats ok
        ]
        views = [index.restricted(k) for k in variants]
        for view in views[1:]:
            assert np.array_equal(view.ids, views[0].ids)
            assert np.array_equal(view.sorted_positions, views[0].sorted_positions)

    def test_empty_keep(self):
        index = make_index()
        for empty in (set(), [], np.array([], dtype=np.int64)):
            view = index.restricted(empty)
            assert len(view) == 0
            assert view.ids_within(0.5, 0.4).size == 0

    def test_unknown_ids_are_ignored(self):
        index = make_index(n=6)
        view = index.restricted({2, 4, 999, -5})
        assert set(view.ids.tolist()) == {2, 4}

    def test_duplicates_collapse(self):
        index = make_index(n=6)
        view = index.restricted([2, 2, 4, 4])
        assert set(view.ids.tolist()) == {2, 4}

    def test_non_integral_floats_rejected(self):
        index = make_index(n=6)
        with pytest.raises((TypeError, ValueError)):
            index.restricted(np.array([1.5, 2.0]))


class TestWithout:
    def test_matches_rebuild(self):
        index = make_index(n=10, seed=3)
        view = index.without({2, 5})
        fresh = PositionIndex(
            {v: index.position(v) for v in index.ids.tolist() if v not in (2, 5)}
        )
        assert np.array_equal(view.ids, fresh.ids)
        assert np.array_equal(view.sorted_positions, fresh.sorted_positions)

    def test_noop_returns_self(self):
        index = make_index(n=8)
        assert index.without(set()) is index
        assert index.without({999}) is index


class TestWithAdded:
    def test_matches_rebuild(self):
        rng = np.random.default_rng(7)
        base = {v: float(p) for v, p in enumerate(rng.random(9))}
        index = PositionIndex(base)
        new = {100: 0.123, 101: 0.456, 102: 0.789}
        grown = index.with_added(list(new), list(new.values()))
        fresh = PositionIndex({**base, **new})
        assert np.array_equal(grown.ids, fresh.ids)
        assert np.array_equal(grown.sorted_positions, fresh.sorted_positions)
        # Original untouched (copy-on-write, not mutation).
        assert len(index) == 9

    def test_rejects_existing_id(self):
        index = make_index(n=5)
        with pytest.raises(ValueError):
            index.with_added([2], [0.5])

    def test_rejects_out_of_range_position(self):
        index = make_index(n=5)
        with pytest.raises(ValueError):
            index.with_added([99], [1.5])

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=0.999999),
            min_size=1,
            max_size=24,
            unique=True,
        ),
        st.integers(min_value=1, max_value=10),
    )
    def test_fuzz_incremental_equals_fresh(self, points, n_add):
        base = {v: p for v, p in enumerate(points)}
        index = PositionIndex(base)
        rng = np.random.default_rng(n_add)
        add_ids = [1000 + i for i in range(n_add)]
        add_pos = [float(p) for p in rng.random(n_add)]
        grown = index.with_added(add_ids, add_pos)
        fresh = PositionIndex({**base, **dict(zip(add_ids, add_pos))})
        assert np.array_equal(grown.ids, fresh.ids)
        assert np.array_equal(grown.sorted_positions, fresh.sorted_positions)


class TestRankWithin:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=0.999999),
            min_size=1,
            max_size=20,
            unique=True,
        ),
        st.floats(min_value=0.0, max_value=0.999999),
        st.floats(min_value=0.01, max_value=0.6),
    )
    def test_matches_list_index(self, points, center, radius):
        index = PositionIndex({v: p for v, p in enumerate(points)})
        window = index.ids_within_list(center, radius)
        for v in range(len(points)):
            rank = index.rank_within(center, radius, v)
            if v in window:
                assert rank == window.index(v)
            else:
                assert rank is None

    def test_unknown_id_is_none(self):
        index = make_index(n=4)
        assert index.rank_within(0.5, 0.3, 999) is None
