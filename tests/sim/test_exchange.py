"""Unit tests for the shard boundary-exchange encoders/decoders.

The contract under test is *identity-preserving round-trips*: whatever the
PR 7 pipe payloads carried, the arena encoding must reproduce — including
the sharing structure (one logical message -> one decoded object per
process per round) that receiver-side hop dedup and plane-row interning
key on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.routing.messages import Hop, RoutedMessage
from repro.sim import exchange
from repro.sim.hopplane import HopDelivery
from repro.util.arena import ArenaFull, ByteArena, FrameDecoder, FrameEncoder


def _msg(i: int, payload: object = None) -> RoutedMessage:
    return RoutedMessage(
        msg_id=("t", i),
        origin=i,
        target=0.25,
        trajectory=(0.1, 0.2, 0.3),
        start_round=4,
        payload=payload,
    )


def _codec(nbytes: int = 1 << 16):
    buf = memoryview(bytearray(nbytes))
    arena = ByteArena(buf)
    return buf, arena, FrameEncoder(arena), FrameDecoder(buf)


# ----------------------------------------------------------------------
# Downlink
# ----------------------------------------------------------------------


class TestDownlinkShared:
    def test_none_passthrough(self):
        buf, arena, enc, dec = _codec()
        assert exchange.encode_downlink_shared(arena, enc, None) is None
        assert exchange.decode_downlink_shared(buf, dec, None) is None

    def test_roundtrip_shares_repeated_messages(self):
        buf, arena, enc, dec = _codec()
        m0, m1 = _msg(0), _msg(1)
        delivery = HopDelivery(
            msgs=[m0, m1, m0],  # m0 appears on two rows
            steps=np.array([1, 2, 3], dtype=np.int32),
            rows={7: np.array([0, 2], dtype=np.int32)},
            counts={7: 2},
            total=2,
        )
        desc = exchange.encode_downlink_shared(arena, enc, delivery)
        msgs, steps = exchange.decode_downlink_shared(buf, dec, desc)
        assert [m.msg_id for m in msgs] == [m0.msg_id, m1.msg_id, m0.msg_id]
        assert msgs[0] is msgs[2]  # one frame, one decoded object
        assert msgs[0] is not msgs[1]
        np.testing.assert_array_equal(steps, delivery.steps)


class TestDownlinkBand:
    def test_control_and_inboxes_roundtrip(self):
        buf, arena, enc, dec = _codec()
        m = _msg(5, payload=("probe", 9))
        control = ((3, 4), (), (1, 8), [])
        inboxes = {
            2: [(10, Hop(m, 1)), (11, Hop(m, 1)), (12, "token")],
            6: [],
        }
        hop_rows = {2: np.array([0, 3, 5], dtype=np.int32)}
        desc = exchange.encode_downlink_band(arena, enc, control, inboxes, hop_rows)
        out_control, out_inboxes, out_rows = exchange.decode_downlink_band(
            buf, dec, desc
        )
        assert out_control == control
        assert set(out_inboxes) == {2, 6}
        assert out_inboxes[6] == []
        senders = [s for s, _m in out_inboxes[2]]
        assert senders == [10, 11, 12]
        h0, h1 = out_inboxes[2][0][1], out_inboxes[2][1][1]
        assert isinstance(h0, Hop) and h0.step == 1
        # the two hop copies share one decoded RoutedMessage — the
        # receiver-side (identity, step) dedup depends on this
        assert h0.msg is h1.msg
        assert out_inboxes[2][2][1] == "token"
        np.testing.assert_array_equal(out_rows[2], hop_rows[2])

    def test_negative_step_packing(self):
        # Non-hop entries pack step -1 as (-1 << 1) | 0 == -2; the decode
        # must shift it back arithmetically, not logically.
        buf, arena, enc, dec = _codec()
        desc = exchange.encode_downlink_band(
            arena, enc, (), {3: [(1, ("plain", 0))]}, None
        )
        _c, inboxes, _r = exchange.decode_downlink_band(buf, dec, desc)
        assert inboxes[3] == [(1, ("plain", 0))]

    def test_empty_band(self):
        buf, arena, enc, dec = _codec()
        desc = exchange.encode_downlink_band(arena, enc, ((), (), (), []), {}, None)
        control, inboxes, rows = exchange.decode_downlink_band(buf, dec, desc)
        assert control == ((), (), (), [])
        assert inboxes == {}
        assert rows == {}

    def test_shared_frames_span_band_payloads(self):
        # A message delivered to two bands is framed once: both band
        # payloads reference the same offset through the shared encoder.
        buf, arena, enc, dec = _codec()
        m = _msg(1)
        d1 = exchange.encode_downlink_band(arena, enc, (), {0: [(9, Hop(m, 2))]}, None)
        d2 = exchange.encode_downlink_band(arena, enc, (), {1: [(9, Hop(m, 2))]}, None)
        _, in1, _ = exchange.decode_downlink_band(buf, dec, d1)
        _, in2, _ = exchange.decode_downlink_band(buf, dec, d2)
        assert in1[0][0][1].msg is in2[1][0][1].msg


# ----------------------------------------------------------------------
# Uplink
# ----------------------------------------------------------------------


class TestUplink:
    def test_all_item_tags_roundtrip(self):
        buf, arena, enc, dec = _codec()
        m = _msg(2)
        items = [
            ("s", 4, Hop(m, 1)),
            ("b", [(5, "grant"), (6, Hop(m, 1))]),
            ("m", (7, 8, 9), Hop(m, 2)),
            ("mb", [((1, 2), Hop(m, 2)), ((3,), "ack")]),
        ]
        marks = [(4, 2, 1), (5, 0, 0)]
        desc = exchange.encode_uplink(arena, enc, items, marks, None)
        out_items, out_marks, plane = exchange.decode_uplink(buf, dec, desc)
        assert plane is None
        assert out_marks == marks
        assert [it[0] for it in out_items] == ["s", "b", "m", "mb"]
        assert out_items[0][1] == 4
        assert out_items[1][1][0] == (5, "grant")
        assert out_items[2][1] == (7, 8, 9)
        assert out_items[3][1][1] == ((3,), "ack")
        # every copy of the logical hop at step 1 shares one message object
        h_s = out_items[0][2]
        h_b = out_items[1][1][1][1]
        h_m = out_items[2][2]
        assert h_s.msg is h_b.msg is h_m.msg
        assert out_items[3][1][0][1].msg is h_s.msg  # step 2 too: same frame

    def test_plane_pack_roundtrip(self):
        buf, arena, enc, dec = _codec()
        m0, m1 = _msg(0), _msg(1)
        pack = (
            [m0, m1],
            [1, 2],
            [0, 1],
            [2, 1],
            [10, 11, 12],
        )
        desc = exchange.encode_uplink(arena, enc, [], [], pack)
        _items, _marks, out = exchange.decode_uplink(buf, dec, desc)
        msgs, steps, rows, lens, flat = out
        assert [m.msg_id for m in msgs] == [m0.msg_id, m1.msg_id]
        assert (steps, rows, lens, flat) == ([1, 2], [0, 1], [2, 1], [10, 11, 12])

    def test_empty_round(self):
        buf, arena, enc, dec = _codec()
        desc = exchange.encode_uplink(arena, enc, [], [], None)
        assert exchange.decode_uplink(buf, dec, desc) == ([], [], None)

    def test_overflow_raises_arena_full(self):
        buf = memoryview(bytearray(256))
        arena = ByteArena(buf)
        enc = FrameEncoder(arena)
        items = [("s", 1, _msg(i, payload="x" * 64)) for i in range(8)]
        with pytest.raises(ArenaFull) as exc:
            exchange.encode_uplink(arena, enc, items, [(1, 0, 0)], None)
        assert exc.value.needed > 256

    def test_used_bytes_in_descriptor(self):
        buf, arena, enc, dec = _codec()
        desc = exchange.encode_uplink(arena, enc, [("s", 1, "msg")], [(1, 1, 0)], None)
        assert desc[-1] == arena.used > 0
