"""Tests for node lifecycle bookkeeping."""

from __future__ import annotations

import pytest

from repro.sim.identity import Lifecycle, NodeRecord


class TestNodeRecord:
    def test_alive_interval(self):
        rec = NodeRecord(1, joined_round=3)
        assert not rec.alive_at(2)
        assert rec.alive_at(3)
        assert rec.alive_at(100)
        rec.left_round = 7
        assert rec.alive_at(6)
        assert not rec.alive_at(7)

    def test_age(self):
        rec = NodeRecord(1, joined_round=3)
        assert rec.age_at(3) == 0
        assert rec.age_at(10) == 7


class TestLifecycle:
    def test_add_remove(self):
        lc = Lifecycle()
        lc.add(1, 0)
        lc.add(2, 0)
        assert len(lc) == 2
        assert 1 in lc
        lc.remove(1, 5)
        assert 1 not in lc
        assert len(lc) == 1

    def test_ids_immutable(self):
        lc = Lifecycle()
        lc.add(1, 0)
        lc.remove(1, 2)
        with pytest.raises(ValueError):
            lc.add(1, 5)

    def test_remove_dead_raises(self):
        lc = Lifecycle()
        with pytest.raises(KeyError):
            lc.remove(1, 0)

    def test_alive_at_reconstruction(self):
        lc = Lifecycle()
        lc.add(1, 0)
        lc.add(2, 3)
        lc.remove(1, 5)
        assert lc.alive_at(0) == {1}
        assert lc.alive_at(3) == {1, 2}
        assert lc.alive_at(5) == {2}

    def test_alive_since(self):
        lc = Lifecycle()
        lc.add(1, 0)
        lc.add(2, 9)
        assert lc.alive_since(10, 2) == {1}
        assert lc.alive_since(11, 2) == {1, 2}

    def test_next_id(self):
        lc = Lifecycle()
        assert lc.next_id() == 0
        lc.add(5, 0)
        assert lc.next_id() == 6
        lc.remove(5, 1)
        assert lc.next_id() == 6  # ids never reused

    def test_age_and_joined_round(self):
        lc = Lifecycle()
        lc.add(4, 2)
        assert lc.joined_round(4) == 2
        assert lc.age(4, 7) == 5
