"""Tests for the graph-series recorder."""

from __future__ import annotations

import pytest

from repro.sim.trace import GraphTrace


class TestRecording:
    def test_basic(self):
        tr = GraphTrace()
        tr.record(0, [(1, 2)], frozenset({1, 2}))
        assert tr.edges_at(0) == [(1, 2)]
        assert tr.alive_at(0) == frozenset({1, 2})
        assert tr.last_round == 0

    def test_consecutive_rounds_enforced(self):
        tr = GraphTrace()
        tr.record(0, [], frozenset())
        with pytest.raises(ValueError):
            tr.record(2, [], frozenset())

    def test_ring_buffer_eviction(self):
        tr = GraphTrace(edge_depth=2)
        for t in range(4):
            tr.record(t, [(t, t + 1)], frozenset({t}))
        assert tr.edges_at(0) is None
        assert tr.edges_at(1) is None
        assert tr.edges_at(2) == [(2, 3)]
        assert tr.edges_at(3) == [(3, 4)]
        # Alive sets are kept for the whole run.
        assert tr.alive_at(0) == frozenset({0})

    def test_bad_depth(self):
        with pytest.raises(ValueError):
            GraphTrace(edge_depth=0)

    def test_joins_leaves(self):
        tr = GraphTrace()
        tr.record(0, [], frozenset({1}), joins=(1,), leaves=(9,))
        assert tr.joins_at(0) == (1,)
        assert tr.leaves_at(0) == (9,)
        assert tr.joins_at(5) == ()


class TestQueries:
    def test_survivors(self):
        tr = GraphTrace()
        tr.record(0, [], frozenset({1, 2, 3}))
        tr.record(1, [], frozenset({2, 3, 4}))
        assert tr.survivors(0, 1) == frozenset({2, 3})

    def test_survivors_missing_round(self):
        tr = GraphTrace()
        tr.record(0, [], frozenset())
        with pytest.raises(KeyError):
            tr.survivors(0, 5)

    def test_contacts_and_out_neighbors(self):
        tr = GraphTrace()
        tr.record(0, [(1, 2), (3, 1), (2, 3)], frozenset({1, 2, 3}))
        assert tr.out_neighbors_at(0, 1) == {2}
        assert tr.contacts_of(0, 1) == {2, 3}
        assert tr.contacts_of(0, 9) == set()

    def test_queries_on_evicted_round_empty(self):
        tr = GraphTrace(edge_depth=1)
        tr.record(0, [(1, 2)], frozenset({1, 2}))
        tr.record(1, [], frozenset({1, 2}))
        assert tr.out_neighbors_at(0, 1) == set()
        assert tr.contacts_of(0, 1) == set()
