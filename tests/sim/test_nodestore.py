"""Columnar node store: slot lifecycle, publishing, shared-buffer mode."""

from __future__ import annotations

import math

import pytest

from repro.core.nodestore import (
    PHASE_EMPTY,
    PHASE_ESTABLISHED,
    PHASE_FRESH,
    PHASE_NEW,
    NodeStore,
)


def test_slots_assigned_in_first_ensure_order():
    store = NodeStore(capacity=4)
    assert store.ensure(30) == 0
    assert store.ensure(10) == 1
    assert store.ensure(30) == 0  # idempotent
    assert store.slot_of(10) == 1
    assert len(store) == 2


def test_growth_preserves_rows():
    store = NodeStore(capacity=2)
    store.ensure(1)
    store.publish(store.slot_of(1), PHASE_ESTABLISHED, 7, 0.25)
    for v in range(2, 40):
        store.ensure(v)
    assert store.capacity >= 40
    assert store.phase[store.slot_of(1)] == PHASE_ESTABLISHED
    assert store.epoch[store.slot_of(1)] == 7
    assert store.pos[store.slot_of(1)] == 0.25


def test_publish_maps_none_to_sentinels():
    store = NodeStore()
    slot = store.ensure(5)
    store.publish(slot, PHASE_FRESH, None, None)
    assert store.epoch[slot] == -1
    assert math.isnan(store.pos[slot])


def test_retire_marks_row_empty_and_keeps_slot():
    store = NodeStore()
    slot = store.ensure(5)
    store.publish(slot, PHASE_ESTABLISHED, 3, 0.5)
    store.retire(5)
    assert store.phase[slot] == PHASE_EMPTY
    assert store.slot_of(5) == slot  # slot is never reused


def test_aggregate_reads():
    store = NodeStore()
    for v, (phase, epoch, pos) in {
        3: (PHASE_ESTABLISHED, 2, 0.1),
        1: (PHASE_ESTABLISHED, 2, 0.9),
        2: (PHASE_NEW, -1, float("nan")),
    }.items():
        store.publish(store.ensure(v), phase, epoch, pos)
    assert store.ids_in_phase(PHASE_ESTABLISHED) == [1, 3]
    assert store.phase_counts() == {PHASE_NEW: 1, PHASE_ESTABLISHED: 2}


def test_fixed_buffer_mode_rejects_overflow():
    capacity = 4
    buf = memoryview(bytearray(NodeStore.nbytes_for(capacity)))
    store = NodeStore(buffers=NodeStore.views_over(buf, capacity))
    store.init_fixed_views()
    for v in range(capacity):
        store.ensure(v)
    with pytest.raises(RuntimeError, match="over capacity"):
        store.ensure(99)


def test_views_share_the_backing_buffer():
    capacity = 8
    raw = bytearray(NodeStore.nbytes_for(capacity))
    store = NodeStore(buffers=NodeStore.views_over(memoryview(raw), capacity))
    store.init_fixed_views()
    mirror = NodeStore(buffers=NodeStore.views_over(memoryview(raw), capacity))
    slot = store.ensure(7)
    store.publish(slot, PHASE_ESTABLISHED, 5, 0.75)
    # The mirror sees the write through the shared buffer (the shard
    # workers and the master share rows exactly this way).
    assert mirror.phase[slot] == PHASE_ESTABLISHED
    assert mirror.epoch[slot] == 5
    assert mirror.pos[slot] == 0.75


def test_adopt_mirrors_external_allocation():
    store = NodeStore()
    store.adopt(42, 3)
    assert store.slot_of(42) == 3
    store.publish(3, PHASE_NEW, None, None)
    assert store.phase[3] == PHASE_NEW


def test_band_assignment_is_static_and_total():
    from repro.sim.shard import assign_bands, band_of
    from repro.util.rngs import RngService

    ph = RngService(1).position_hash()
    bands = assign_bands(range(200), ph, 4)
    assert set(bands) == set(range(200))
    assert set(bands.values()) <= {0, 1, 2, 3}
    # Pure function of the epoch-0 hash: recomputing never moves a node.
    again = assign_bands(range(200), ph, 4)
    assert bands == again
    assert band_of(0.999999, 4) == 3
    assert band_of(0.0, 4) == 0
    assert band_of(1.0, 4) == 3  # clamped at the top edge


def test_store_is_published_during_single_worker_runs():
    """The W=1 engine publishes every node's scalars after each round."""
    from repro.config import ProtocolParams
    from repro.core.runner import MaintenanceSimulation

    params = ProtocolParams(n=16, c=1.2, r=2, delta=3, tau=8, seed=1)
    sim = MaintenanceSimulation(params)
    sim.run(2)
    store = sim.engine.node_store
    established = store.ids_in_phase(PHASE_ESTABLISHED)
    assert established == sorted(sim.established_nodes())
    for v in established:
        node = sim.node(v)
        slot = store.slot_of(v)
        assert store.epoch[slot] == node.epoch
        assert store.pos[slot] == pytest.approx(node.pos)
