"""Tests for message transport semantics."""

from __future__ import annotations

import numpy as np

from repro.sim.network import Network


class StubHook:
    """Scripted fault hook: maps (src, dst) to a fates tuple, default clean."""

    def __init__(self, fates=None, active=True):
        self.fates = fates or {}
        self.message_faults_active = active

    def message_fates(self, t, src, dst):
        return self.fates.get((src, dst), (1,))


class TestSendDeliver:
    def test_basic_delivery(self):
        net = Network()
        net.send(1, 2, "hello")
        edges, sent = net.close_send_phase()
        assert edges == [(1, 2)]
        assert sent == {1: 1}
        inboxes, received = net.deliver({1, 2})
        assert inboxes == {2: [(1, "hello")]}
        assert received == {2: 1}

    def test_churned_receiver_gets_nothing(self):
        """A node churned out before delivery receives nothing (immediacy)."""
        net = Network()
        net.send(1, 2, "hello")
        net.close_send_phase()
        inboxes, _ = net.deliver({1})  # 2 is gone
        assert inboxes == {}

    def test_churned_sender_messages_still_delivered(self):
        """Messages sent in t-1 by a node that leaves at t are delivered."""
        net = Network()
        net.send(1, 2, "bye")
        net.close_send_phase()
        inboxes, _ = net.deliver({2})  # 1 is gone
        assert inboxes == {2: [(1, "bye")]}

    def test_edges_recorded_even_for_dead_receivers(self):
        """The edge exists at send time; the adversary sees it regardless."""
        net = Network()
        net.send(1, 2, "x")
        edges, _ = net.close_send_phase()
        assert (1, 2) in edges

    def test_no_same_round_delivery(self):
        """A message sent this round is not in this round's delivery."""
        net = Network()
        inboxes, _ = net.deliver(set())
        assert inboxes == {}
        net.send(1, 2, "x")
        # Not yet closed: nothing pending for delivery.
        assert net.has_pending


class TestMulticast:
    def test_send_many(self):
        net = Network()
        net.send_many(1, [2, 3, 4], "m")
        edges, sent = net.close_send_phase()
        assert sorted(edges) == [(1, 2), (1, 3), (1, 4)]
        assert sent == {1: 3}
        inboxes, received = net.deliver({2, 3, 4})
        assert all(inboxes[d] == [(1, "m")] for d in (2, 3, 4))
        assert received == {2: 1, 3: 1, 4: 1}

    def test_payload_shared_not_copied(self):
        net = Network()
        payload = {"k": 1}
        net.send_many(1, [2, 3], payload)
        net.close_send_phase()
        inboxes, _ = net.deliver({2, 3})
        assert inboxes[2][0][1] is inboxes[3][0][1]

    def test_empty_multicast_noop(self):
        net = Network()
        net.send_many(1, [], "m")
        edges, sent = net.close_send_phase()
        assert edges == [] and sent == {}

    def test_partial_survivors(self):
        net = Network()
        net.send_many(1, [2, 3], "m")
        net.close_send_phase()
        inboxes, _ = net.deliver({3})
        assert inboxes == {3: [(1, "m")]}


class TestIdCoercion:
    def test_send_many_coerces_numpy_ids(self):
        """NumPy ids must not leak into trace edges (type-consistent with send)."""
        net = Network()
        net.send_many(1, np.array([2, 3], dtype=np.int64), "m")
        net.send(1, np.int64(4), "m")
        edges, _ = net.close_send_phase()
        assert sorted(edges) == [(1, 2), (1, 3), (1, 4)]
        assert all(type(dst) is int for _, dst in edges)
        inboxes, _ = net.deliver({2, 3, 4})
        assert all(type(dst) is int for dst in inboxes)


class TestFaultHook:
    def test_dropped_message_keeps_its_edge(self):
        net = Network()
        net.fault_hook = StubHook({(1, 2): ()})
        net.send(1, 2, "x")
        edges, _ = net.close_send_phase()
        assert edges == [(1, 2)]  # the adversary still observes the attempt
        inboxes, _ = net.deliver({1, 2})
        assert inboxes == {}
        assert not net.has_pending

    def test_delayed_message_arrives_later(self):
        net = Network()
        net.fault_hook = StubHook({(1, 2): (3,)})
        net.send(1, 2, "slow")
        net.close_send_phase()
        for _ in range(2):
            inboxes, _ = net.deliver({1, 2})
            assert inboxes == {}
            assert net.has_pending
        inboxes, _ = net.deliver({1, 2})
        assert inboxes == {2: [(1, "slow")]}
        assert not net.has_pending

    def test_delayed_message_respects_churn_at_delivery(self):
        net = Network()
        net.fault_hook = StubHook({(1, 2): (2,)})
        net.send(1, 2, "slow")
        net.close_send_phase()
        net.deliver({1, 2})
        inboxes, _ = net.deliver({1})  # 2 left while the message was in flight
        assert inboxes == {}

    def test_duplicate_delivers_two_copies(self):
        net = Network()
        net.fault_hook = StubHook({(1, 2): (1, 1)})
        net.send(1, 2, "x")
        net.close_send_phase()
        inboxes, received = net.deliver({2})
        assert inboxes == {2: [(1, "x"), (1, "x")]}
        assert received == {2: 2}

    def test_multicast_split_by_latency_shares_payload(self):
        net = Network()
        net.fault_hook = StubHook({(1, 3): (2,), (1, 4): ()})
        payload = {"k": 1}
        net.send_many(1, [2, 3, 4], payload)
        edges, _ = net.close_send_phase()
        assert sorted(edges) == [(1, 2), (1, 3), (1, 4)]
        first, _ = net.deliver({2, 3, 4})
        assert first == {2: [(1, payload)]}
        second, _ = net.deliver({2, 3, 4})
        assert second == {3: [(1, payload)]}
        assert second[3][0][1] is first[2][0][1]
        assert not net.has_pending

    def test_has_pending_drains_only_after_all_buckets(self):
        """Both queues (singles and multicasts), all latency buckets."""
        net = Network()
        net.fault_hook = StubHook({(1, 2): (3,), (5, 6): (2,)})
        net.send(1, 2, "late-single")
        net.send_many(5, [6, 7], "multi")
        net.close_send_phase()
        alive = {1, 2, 5, 6, 7}
        assert net.has_pending
        net.deliver(alive)  # round 1: only (5, 7) due
        assert net.has_pending
        net.deliver(alive)  # round 2: (5, 6) due
        assert net.has_pending
        inboxes, _ = net.deliver(alive)  # round 3: (1, 2) due
        assert inboxes == {2: [(1, "late-single")]}
        assert not net.has_pending

    def test_inactive_hook_uses_fast_path(self):
        net = Network()
        net.fault_hook = StubHook({(1, 2): ()}, active=False)
        net.send(1, 2, "x")
        net.close_send_phase()
        inboxes, _ = net.deliver({2})
        assert inboxes == {2: [(1, "x")]}


class TestRoundIsolation:
    def test_counts_reset_between_rounds(self):
        net = Network()
        net.send(1, 2, "a")
        net.close_send_phase()
        _, sent = net.close_send_phase()
        assert sent == {}

    def test_pending_cleared_after_delivery(self):
        net = Network()
        net.send(1, 2, "a")
        net.close_send_phase()
        net.deliver({2})
        inboxes, _ = net.deliver({2})
        assert inboxes == {}
