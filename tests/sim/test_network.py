"""Tests for message transport semantics."""

from __future__ import annotations

from repro.sim.network import Network


class TestSendDeliver:
    def test_basic_delivery(self):
        net = Network()
        net.send(1, 2, "hello")
        edges, sent = net.close_send_phase()
        assert edges == [(1, 2)]
        assert sent == {1: 1}
        inboxes, received = net.deliver({1, 2})
        assert inboxes == {2: [(1, "hello")]}
        assert received == {2: 1}

    def test_churned_receiver_gets_nothing(self):
        """A node churned out before delivery receives nothing (immediacy)."""
        net = Network()
        net.send(1, 2, "hello")
        net.close_send_phase()
        inboxes, _ = net.deliver({1})  # 2 is gone
        assert inboxes == {}

    def test_churned_sender_messages_still_delivered(self):
        """Messages sent in t-1 by a node that leaves at t are delivered."""
        net = Network()
        net.send(1, 2, "bye")
        net.close_send_phase()
        inboxes, _ = net.deliver({2})  # 1 is gone
        assert inboxes == {2: [(1, "bye")]}

    def test_edges_recorded_even_for_dead_receivers(self):
        """The edge exists at send time; the adversary sees it regardless."""
        net = Network()
        net.send(1, 2, "x")
        edges, _ = net.close_send_phase()
        assert (1, 2) in edges

    def test_no_same_round_delivery(self):
        """A message sent this round is not in this round's delivery."""
        net = Network()
        inboxes, _ = net.deliver(set())
        assert inboxes == {}
        net.send(1, 2, "x")
        # Not yet closed: nothing pending for delivery.
        assert net.has_pending


class TestMulticast:
    def test_send_many(self):
        net = Network()
        net.send_many(1, [2, 3, 4], "m")
        edges, sent = net.close_send_phase()
        assert sorted(edges) == [(1, 2), (1, 3), (1, 4)]
        assert sent == {1: 3}
        inboxes, received = net.deliver({2, 3, 4})
        assert all(inboxes[d] == [(1, "m")] for d in (2, 3, 4))
        assert received == {2: 1, 3: 1, 4: 1}

    def test_payload_shared_not_copied(self):
        net = Network()
        payload = {"k": 1}
        net.send_many(1, [2, 3], payload)
        net.close_send_phase()
        inboxes, _ = net.deliver({2, 3})
        assert inboxes[2][0][1] is inboxes[3][0][1]

    def test_empty_multicast_noop(self):
        net = Network()
        net.send_many(1, [], "m")
        edges, sent = net.close_send_phase()
        assert edges == [] and sent == {}

    def test_partial_survivors(self):
        net = Network()
        net.send_many(1, [2, 3], "m")
        net.close_send_phase()
        inboxes, _ = net.deliver({3})
        assert inboxes == {3: [(1, "m")]}


class TestRoundIsolation:
    def test_counts_reset_between_rounds(self):
        net = Network()
        net.send(1, 2, "a")
        net.close_send_phase()
        _, sent = net.close_send_phase()
        assert sent == {}

    def test_pending_cleared_after_delivery(self):
        net = Network()
        net.send(1, 2, "a")
        net.close_send_phase()
        net.deliver({2})
        inboxes, _ = net.deliver({2})
        assert inboxes == {}
