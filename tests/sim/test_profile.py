"""Tests for the per-phase round profiler."""

from __future__ import annotations

import itertools

from repro.config import ProtocolParams
from repro.sim.engine import Engine, NodeContext, NodeProtocol
from repro.sim.profile import PHASES, PhaseProfiler, PhaseTimings


class ChatterProtocol(NodeProtocol):
    """Every node pings its successor every round (keeps all phases busy)."""

    def __init__(self, node_id: int, services) -> None:
        self.node_id = node_id

    def on_round(self, ctx: NodeContext) -> None:
        ctx.send((ctx.node_id + 1) % ctx.params.n, ("tok", ctx.round))


def make_engine(n=8, **kw):
    params = ProtocolParams(n=n, seed=1, alpha=0.25)
    eng = Engine(params, lambda v, s: ChatterProtocol(v, s), **kw)
    eng.seed_nodes(range(n))
    return eng


def fake_clock(step=1.0):
    """A deterministic clock ticking ``step`` seconds per call."""
    counter = itertools.count()
    return lambda: next(counter) * step


class TestPhaseTimings:
    def test_total_and_dict(self):
        t = PhaseTimings(adversary=1.0, receive=2.0, compute=3.0, close=4.0)
        assert t.total == 10.0
        assert t.as_dict() == {
            "adversary": 1.0,
            "receive": 2.0,
            "compute": 3.0,
            "close": 4.0,
        }
        assert tuple(t.as_dict()) == PHASES


class TestPhaseProfiler:
    def test_records_per_round(self):
        prof = PhaseProfiler(clock=fake_clock())
        eng = make_engine(profiler=prof)
        reports = eng.run(5)
        assert prof.rounds == 5
        # The fake clock ticks exactly once per phase boundary (5 ticks per
        # round), so every phase lasts exactly one fake second.
        for timings in prof.history:
            assert timings.as_dict() == {name: 1.0 for name in PHASES}
        assert prof.total_time() == 5 * 4.0
        assert prof.totals() == {name: 5.0 for name in PHASES}
        assert prof.mean_per_round() == {name: 1.0 for name in PHASES}
        # The same record lands on the round metrics.
        for report, timings in zip(reports, prof.history):
            assert report.metrics.phases is timings

    def test_detached_engine_records_nothing(self):
        eng = make_engine()
        reports = eng.run(3)
        assert eng.profiler is None
        assert all(r.metrics.phases is None for r in reports)

    def test_profiler_does_not_change_simulation(self):
        plain = make_engine()
        profiled = make_engine(profiler=PhaseProfiler())
        plain.run(6)
        profiled.run(6)
        for a, b in zip(plain.reports, profiled.reports):
            assert a.metrics.total_sent == b.metrics.total_sent
            assert a.metrics.max_sent == b.metrics.max_sent
            assert a.metrics.max_received == b.metrics.max_received
            assert a.metrics.alive == b.metrics.alive

    def test_empty_profiler_summaries(self):
        prof = PhaseProfiler()
        assert prof.rounds == 0
        assert prof.total_time() == 0.0
        assert prof.mean_per_round() == {name: 0.0 for name in PHASES}
        assert "phase" in prof.table()

    def test_table_sorted_by_cost(self):
        prof = PhaseProfiler()
        prof.record(adversary=0.1, receive=0.2, compute=4.0, close=0.05)
        prof.record(adversary=0.1, receive=0.2, compute=4.0, close=0.05)
        table = prof.table()
        lines = table.splitlines()
        assert lines[1].startswith("compute")
        assert lines[-1].startswith("all")
        assert "ms/round" in lines[0]
        # Shares sum to ~100% and the dominant phase dominates.
        assert "91.9%" in lines[1] or "92.0%" in lines[1]


class TestRunnerIntegration:
    def test_maintenance_sim_passthrough(self):
        from repro.core.runner import MaintenanceSimulation

        prof = PhaseProfiler()
        sim = MaintenanceSimulation(
            ProtocolParams(n=16, seed=3), profiler=prof
        )
        sim.run(4)
        assert prof.rounds == 4
        assert sim.engine.profiler is prof
        assert all(t.total > 0.0 for t in prof.history)
