"""Tests for congestion accounting."""

from __future__ import annotations

import numpy as np

from repro.sim.metrics import MetricsCollector


class TestMetricsCollector:
    def test_single_round(self):
        mc = MetricsCollector()
        m = mc.record_round(0, {1: 5, 2: 3}, {2: 5, 1: 3}, alive_count=2)
        assert m.total_sent == 8
        assert m.max_sent == 5
        assert m.mean_sent == 4.0
        assert m.max_received == 5
        assert m.alive == 2

    def test_empty_round(self):
        mc = MetricsCollector()
        m = mc.record_round(0, {}, {}, alive_count=10)
        assert m.total_sent == 0
        assert m.max_sent == 0
        assert m.mean_sent == 0.0

    def test_summaries(self):
        mc = MetricsCollector()
        mc.record_round(0, {1: 4}, {2: 4}, 2)
        mc.record_round(1, {1: 10}, {2: 10}, 2)
        assert mc.rounds == 2
        assert mc.peak_congestion() == 10
        assert mc.total_messages() == 14
        assert mc.mean_congestion() == (2.0 + 5.0) / 2

    def test_congestion_series(self):
        mc = MetricsCollector()
        mc.record_round(0, {1: 4}, {}, 1)
        mc.record_round(1, {1: 7}, {}, 1)
        np.testing.assert_array_equal(mc.congestion_series(), [4, 7])

    def test_empty_collector(self):
        mc = MetricsCollector()
        assert mc.peak_congestion() == 0
        assert mc.mean_congestion() == 0.0
        assert mc.total_messages() == 0
