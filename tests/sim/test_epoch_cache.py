"""EpochCache: interned indexes must equal freshly built ones — always.

The cache's contract is pure memoisation: ``index_for`` over any member set
returns a :class:`PositionIndex` indistinguishable from
``PositionIndex({v: h(v, e) for v in members})``, while identical member
sets share one object.  The property fuzz drives the cache through random
churn sequences (joins surfacing new ids, leaves shrinking member sets,
epoch advances pruning state) and compares against fresh builds at every
step.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.overlay.positions import PositionIndex
from repro.sim.epochs import EpochCache
from repro.util.rngs import PositionHash


@pytest.fixture
def phash() -> PositionHash:
    return PositionHash(key=0xDEADBEEF)


def assert_same_index(cached: PositionIndex, fresh: PositionIndex) -> None:
    assert np.array_equal(cached.ids, fresh.ids)
    assert np.array_equal(cached.sorted_positions, fresh.sorted_positions)


def test_position_memoised(phash):
    cache = EpochCache(phash)
    p = cache.position(7, 3)
    assert p == phash.position(7, 3)
    assert cache.position(7, 3) == p
    assert cache.table(3)[7] == p


def test_index_for_matches_fresh_build(phash):
    cache = EpochCache(phash)
    members = frozenset(range(20))
    pos = {v: phash.position(v, 1) for v in members}
    idx = cache.index_for(1, members, pos)
    assert_same_index(idx, PositionIndex(pos))


def test_same_members_share_one_object(phash):
    """Two same-epoch nodes with equal member sets share arrays outright."""
    cache = EpochCache(phash)
    members = frozenset(range(16))
    pos = {v: phash.position(v, 2) for v in members}
    a = cache.index_for(2, members, pos)
    b = cache.index_for(2, frozenset(members), dict(pos))
    assert a is b
    assert a.ids is b.ids and a.sorted_positions is b.sorted_positions


def test_subsets_carve_the_shared_slab(phash):
    """Sub-member-sets are views of the slab, not re-sorted copies."""
    cache = EpochCache(phash)
    full = frozenset(range(30))
    pos = {v: phash.position(v, 4) for v in full}
    whole = cache.index_for(4, full, pos)
    assert whole is cache.slab(4)
    small = full - {3, 17}  # small complement: the without() path
    idx_small = cache.index_for(4, frozenset(small), pos)
    assert_same_index(idx_small, PositionIndex({v: pos[v] for v in small}))
    large_cut = frozenset(list(sorted(full))[:10])  # restricted() path
    idx_large = cache.index_for(4, large_cut, pos)
    assert_same_index(idx_large, PositionIndex({v: pos[v] for v in large_cut}))


def test_begin_round_prunes_old_epochs(phash):
    cache = EpochCache(phash)
    for e in (0, 1, 2):
        members = frozenset(range(8))
        cache.index_for(e, members, {v: phash.position(v, e) for v in members})
    assert cache.stats()["epochs"] == 3
    cache.begin_round(4)  # engine enters epoch 2: epochs 0 and 1 die
    assert cache.stats()["epochs"] == 1
    assert cache.slab(2) is not None
    assert cache.slab(1) is None


def test_property_fuzz_churn_sequences(phash):
    """Cached indexes equal fresh builds across random churn histories."""
    rng = np.random.default_rng(1234)
    for trial in range(8):
        cache = EpochCache(phash)
        population = list(range(200))
        alive = set(rng.choice(population, size=40, replace=False).tolist())
        for step in range(25):
            t = step
            cache.begin_round(t)
            epoch = t // 2
            # Churn: some leaves, some joins (fresh ids surface mid-epoch).
            leaves = {
                v for v in alive if rng.random() < 0.1
            } if rng.random() < 0.7 else set()
            alive -= leaves
            joins = rng.choice(population, size=rng.integers(0, 4), replace=False)
            alive |= {int(v) for v in joins}
            # A few nodes build indexes over random neighbourhood subsets.
            for _ in range(3):
                k = int(rng.integers(2, len(alive) + 1))
                members = frozenset(
                    int(v) for v in rng.choice(sorted(alive), size=k, replace=False)
                )
                pos = {v: cache.position(v, epoch) for v in members}
                cached = cache.index_for(epoch, members, pos)
                assert_same_index(cached, PositionIndex(pos))
                # Interning: an immediate rebuild is the same object.
                assert cache.index_for(epoch, members, pos) is cached


def test_drop_ids_forgets_and_rebuilds(phash):
    cache = EpochCache(phash)
    members = frozenset(range(12))
    pos = {v: phash.position(v, 5) for v in members}
    cache.index_for(5, members, pos)
    cache.drop_ids(5, [0, 1])
    remaining = frozenset(range(2, 12))
    idx = cache.index_for(5, remaining, pos)
    assert_same_index(idx, PositionIndex({v: pos[v] for v in remaining}))
    assert 0 not in cache.table(5)
