"""Property-based tests for the simulator's core invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.adversary.base import ChurnDecision
from repro.adversary.budget import ChurnLedger, ChurnViolation
from repro.config import ProtocolParams
from repro.sim.identity import Lifecycle
from repro.sim.network import Network


# ----------------------------------------------------------------------
# Network: exactly-once delivery to survivors
# ----------------------------------------------------------------------

sends_st = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=9),  # src
        st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=4),
    ),
    max_size=20,
)
alive_st = st.sets(st.integers(min_value=0, max_value=9))


class TestNetworkProperties:
    @given(sends_st, alive_st)
    def test_exactly_once_to_survivors(self, sends, alive):
        """Every (send, surviving receiver) pair delivers exactly once;
        dead receivers get nothing; edge counts equal send counts."""
        net = Network()
        expected: dict[int, int] = {}
        total_sends = 0
        for i, (src, dsts) in enumerate(sends):
            if i % 2 == 0:
                for d in dsts:
                    net.send(src, d, ("m", i))
            else:
                net.send_many(src, dsts, ("m", i))
            for d in dsts:
                total_sends += 1
                if d in alive:
                    expected[d] = expected.get(d, 0) + 1
        edges, sent = net.close_send_phase()
        assert len(edges) == total_sends
        assert sum(sent.values()) == total_sends
        inboxes, received = net.deliver(alive)
        assert set(inboxes) <= alive
        got = {d: len(msgs) for d, msgs in inboxes.items()}
        assert got == expected
        assert received == expected

    @given(sends_st)
    def test_no_duplicate_delivery_across_rounds(self, sends):
        net = Network()
        for src, dsts in sends:
            net.send_many(src, dsts, "x")
        net.close_send_phase()
        everyone = set(range(10))
        first, _ = net.deliver(everyone)
        second, _ = net.deliver(everyone)
        assert second == {}


# ----------------------------------------------------------------------
# Churn ledger: the sliding window is never exceeded
# ----------------------------------------------------------------------


def leave_decision(ids) -> ChurnDecision:
    return ChurnDecision(leaves=frozenset(ids))


class TestLedgerProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=60),
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=3, max_value=12),
    )
    @settings(max_examples=60)
    def test_window_never_exceeded(self, spend_wishes, budget, window):
        """Greedily spending as much as validation allows never lets any
        sliding window exceed the budget."""
        params = ProtocolParams(
            n=64,
            kappa=2.0,
            seed=0,
            churn_budget_override=budget,
            churn_window_override=window,
        )
        lc = Lifecycle()
        for i in range(128):  # plenty of headroom above n
            lc.add(i, joined_round=-100)
        ledger = ChurnLedger(params)
        spent_at: list[tuple[int, int]] = []
        next_victim = 0
        for t, wish in enumerate(spend_wishes):
            take = min(wish, ledger.remaining(t), 128 - next_victim)
            # Never shrink below n.
            take = min(take, len(lc.alive) - params.n)
            if take <= 0:
                continue
            ids = list(range(next_victim, next_victim + take))
            next_victim += take
            ledger.validate(t, leave_decision(ids), lc)
            for v in ids:
                lc.remove(v, t)
            ledger.commit(t, leave_decision(ids))
            spent_at.append((t, take))
        # Check every sliding window by brute force.
        rounds = len(spend_wishes)
        for start in range(rounds):
            total = sum(c for t, c in spent_at if start <= t < start + window)
            assert total <= budget

    @given(st.integers(min_value=2, max_value=20), st.integers(min_value=3, max_value=12))
    @settings(max_examples=30)
    def test_over_budget_always_rejected(self, budget, window):
        params = ProtocolParams(
            n=64,
            kappa=2.0,
            seed=0,
            churn_budget_override=budget,
            churn_window_override=window,
        )
        lc = Lifecycle()
        for i in range(128):
            lc.add(i, joined_round=-100)
        ledger = ChurnLedger(params)
        ids = list(range(budget + 1))
        try:
            ledger.validate(5, leave_decision(ids), lc)
            raised = False
        except ChurnViolation:
            raised = True
        assert raised


# ----------------------------------------------------------------------
# Engine: determinism
# ----------------------------------------------------------------------


class TestEngineDeterminism:
    def test_maintenance_run_bitwise_reproducible(self):
        from repro.core.runner import MaintenanceSimulation

        def run():
            params = ProtocolParams(n=40, c=1.2, delta=3, tau=6, seed=33)
            sim = MaintenanceSimulation(params)
            sim.run(14)
            return [m.total_sent for m in sim.engine.metrics.history]

        assert run() == run()

    def test_different_seed_different_traffic(self):
        from repro.core.runner import MaintenanceSimulation

        def run(seed):
            params = ProtocolParams(n=40, c=1.2, delta=3, tau=6, seed=seed)
            sim = MaintenanceSimulation(params)
            sim.run(14)
            return [m.total_sent for m in sim.engine.metrics.history]

        assert run(1) != run(2)
