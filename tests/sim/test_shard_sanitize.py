"""Runtime shard sanitizer: codec and band-ownership asserts.

The static analyzer (``repro shard-check``) proves structural properties;
these asserts cover the runtime residue — *which ids* a worker touches and
*which values* actually cross the pipe.  Armed via ``REPRO_SHARD_SANITIZE=1``
(or a monkeypatched ``shard._SANITIZE``, which forked workers inherit — the
identity suite runs its sharded legs that way).
"""

import threading

import pytest

from repro.config import env_flag
from repro.sim import shard


class _FakeConn:
    def __init__(self):
        self.sent = []

    def send_bytes(self, blob):
        self.sent.append(blob)


@pytest.mark.parametrize(
    "bad",
    [
        lambda t: t,
        memoryview(b"x"),
        threading.Lock(),
        threading.RLock(),
        threading.Event(),
        len,
        (x for x in range(3)),
    ],
    ids=["lambda", "memoryview", "lock", "rlock", "event", "builtin", "generator"],
)
def test_codec_assert_rejects_banned_types(bad):
    with pytest.raises(AssertionError, match="shard sanitizer"):
        shard._assert_codec_safe(bad)


@pytest.mark.parametrize(
    "container",
    [
        lambda bad: ("sends", [bad]),
        lambda bad: {"k": (1, {2: bad})},
        lambda bad: [{("t",): [bad]}],
    ],
    ids=["tuple-list", "nested-dict", "deep-mix"],
)
def test_codec_assert_walks_containers(container):
    with pytest.raises(AssertionError, match="crossing the process boundary"):
        shard._assert_codec_safe(container(threading.Lock()))


def test_codec_assert_passes_real_payload_shapes():
    shard._assert_codec_safe(("round", (3, 0, "seg-0", (0, 4), (4, 8), 0, "u", 64)))
    shard._assert_codec_safe(("sends", ((0, 1, 2, 3), 0.25)))
    shard._assert_codec_safe(("state", {7: {"phase": 2, "pos": 0.5}}))


def test_worker_send_asserts_only_when_armed(monkeypatch):
    conn = _FakeConn()
    monkeypatch.setattr(shard, "_SANITIZE", False)
    shard._worker_send(conn, ("bye", None))
    assert len(conn.sent) == 1

    monkeypatch.setattr(shard, "_SANITIZE", True)
    shard._worker_send(conn, ("sends", (1, 2)))
    assert len(conn.sent) == 2
    with pytest.raises(AssertionError):
        shard._worker_send(conn, ("sends", [threading.Lock()]))
    assert len(conn.sent) == 2  # nothing crossed the boundary


def test_master_send_obj_asserts_when_armed(monkeypatch):
    from repro.config import ProtocolParams
    from repro.core.runner import MaintenanceSimulation

    monkeypatch.setattr(shard, "_SANITIZE", True)
    params = ProtocolParams(n=16, c=1.2, r=2, delta=3, tau=8, seed=1)
    sim = MaintenanceSimulation(params, workers=2)
    try:
        sim.run(2)
        runner = sim.engine._shard
        with pytest.raises(AssertionError, match="codec"):
            runner._send_obj(runner._conns[0], ("round", [lambda: 0]))
    finally:
        sim.close()


class _Band0Hash:
    """Position hash pinning every id into band 0 (of any worker count)."""

    def position(self, v, epoch):
        return 0.0


class _Engine:
    def __init__(self, workers):
        self.workers = workers
        self.services = type("S", (), {"position_hash": _Band0Hash()})()


def test_band_assert_accepts_owned_ids():
    shard._assert_band_owned(_Engine(workers=4), 0, [1, 2, 3])


def test_band_assert_rejects_foreign_ids():
    with pytest.raises(AssertionError, match="owned by band 0"):
        shard._assert_band_owned(_Engine(workers=4), 3, [1])


def test_env_flag_parses_truthy_values(monkeypatch):
    monkeypatch.delenv("REPRO_TEST_FLAG", raising=False)
    assert not env_flag("REPRO_TEST_FLAG")
    for truthy in ("1", "true", "YES", " on "):
        monkeypatch.setenv("REPRO_TEST_FLAG", truthy)
        assert env_flag("REPRO_TEST_FLAG"), truthy
    for falsy in ("0", "", "off", "no"):
        monkeypatch.setenv("REPRO_TEST_FLAG", falsy)
        assert not env_flag("REPRO_TEST_FLAG"), falsy
