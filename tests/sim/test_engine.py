"""Tests for the synchronous round engine, using toy protocols."""

from __future__ import annotations

import pytest

from repro.adversary.base import Adversary, ChurnDecision, JoinRequest
from repro.adversary.budget import ChurnViolation
from repro.config import ProtocolParams
from repro.sim.engine import Engine, JoinNotice, NodeContext, NodeProtocol


class EchoProtocol(NodeProtocol):
    """Replies to every message; node 0 pings node 1 in round 0."""

    def __init__(self, node_id: int, services) -> None:
        self.node_id = node_id
        self.received: list[tuple[int, object]] = []

    def on_round(self, ctx: NodeContext) -> None:
        self.received.extend(ctx.inbox)
        if ctx.round == 0 and ctx.node_id == 0:
            ctx.send(1, "ping")
        for src, msg in ctx.inbox:
            if msg == "ping":
                ctx.send(src, "pong")


class GossipProtocol(NodeProtocol):
    """Round-robin flooding of a token along the id ring."""

    def __init__(self, node_id: int, services) -> None:
        self.node_id = node_id
        self.seen = False

    def on_round(self, ctx: NodeContext) -> None:
        if ctx.inbox:
            self.seen = True
        if ctx.round == 0 and ctx.node_id == 0:
            self.seen = True
        if self.seen:
            ctx.send((ctx.node_id + 1) % ctx.params.n, "tok")


def make_engine(protocol_cls, n=16, adversary=None, **kw):
    params = ProtocolParams(n=n, seed=1, alpha=0.25)
    eng = Engine(params, lambda v, s: protocol_cls(v, s), adversary=adversary, **kw)
    eng.seed_nodes(range(n))
    return eng


class TestBasicExecution:
    def test_message_takes_one_round(self):
        eng = make_engine(EchoProtocol)
        eng.run(1)
        assert eng.protocol_of(1).received == []
        eng.run(1)
        assert eng.protocol_of(1).received == [(0, "ping")]

    def test_reply_takes_another_round(self):
        eng = make_engine(EchoProtocol)
        eng.run(3)
        assert (1, "pong") in eng.protocol_of(0).received

    def test_edges_recorded(self):
        eng = make_engine(EchoProtocol)
        eng.run(2)
        assert eng.trace.edges_at(0) == [(0, 1)]
        assert eng.trace.edges_at(1) == [(1, 0)]

    def test_metrics_recorded(self):
        eng = make_engine(EchoProtocol)
        reports = eng.run(2)
        assert reports[0].metrics.total_sent == 1
        assert reports[1].metrics.total_sent == 1
        assert reports[0].alive == 16

    def test_gossip_floods_ring(self):
        eng = make_engine(GossipProtocol)
        eng.run(17)
        assert all(eng.protocol_of(v).seen for v in range(16))

    def test_deterministic_given_seed(self):
        a = make_engine(GossipProtocol)
        b = make_engine(GossipProtocol)
        ra = a.run(5)
        rb = b.run(5)
        assert [r.metrics.total_sent for r in ra] == [r.metrics.total_sent for r in rb]

    def test_seed_nodes_only_once(self):
        eng = make_engine(EchoProtocol)
        with pytest.raises(RuntimeError):
            eng.seed_nodes([99])


class LeaveOneAdversary(Adversary):
    """Churns out node 1 at round 1, replacing it with a new node."""

    topology_lateness = 2

    def __init__(self):
        super().__init__(active_from=1)
        self.done = False

    def decide(self, view):
        if self.done:
            return ChurnDecision.none()
        self.done = True
        return ChurnDecision(
            leaves=frozenset({1}),
            joins=(JoinRequest(view.fresh_id(), 0),),
        )


class SpamFutureProtocol(EchoProtocol):
    """Node 0 sends to id 16 in round 0 — before that id has even joined."""

    def on_round(self, ctx):
        self.received.extend(ctx.inbox)
        if ctx.round == 0 and ctx.node_id == 0:
            ctx.send(16, "early")


class TestChurnSemantics:
    def test_leaver_sends_from_previous_round_still_delivered(self):
        """A node leaving in round t still has its t-1 sends delivered in t."""

        class Pinger(EchoProtocol):
            def on_round(self, ctx):
                self.received.extend(ctx.inbox)
                if ctx.round == 0 and ctx.node_id == 1:
                    ctx.send(0, "from-the-grave")

        eng = make_engine(Pinger, adversary=LeaveOneAdversary())
        eng.run(2)  # node 1 leaves in round 1, after sending in round 0
        assert 1 not in eng.alive
        assert (1, "from-the-grave") in eng.protocol_of(0).received

    def test_joiner_receives_nothing_in_join_round(self):
        """A node joining in round t receives nothing that round — even a
        message somehow addressed to its id before it existed."""
        eng = make_engine(SpamFutureProtocol, adversary=LeaveOneAdversary())
        eng.run(3)  # "early" would be due in round 1, exactly the join round
        assert 16 in eng.alive
        assert eng.protocol_of(16).received == []

    def test_leaver_does_not_receive(self):
        eng = make_engine(EchoProtocol, adversary=LeaveOneAdversary())
        # Round 0: node 0 sends ping to 1. Round 1: node 1 leaves before receipt.
        eng.run(2)
        assert 1 not in eng.alive

    def test_join_notice_delivered_to_bootstrap(self):
        notices = []

        class Rec(EchoProtocol):
            def on_round(self, ctx):
                notices.extend(
                    m for _, m in ctx.inbox if isinstance(m, JoinNotice)
                )
                super().on_round(ctx)

        eng = make_engine(Rec, adversary=LeaveOneAdversary())
        eng.run(2)
        assert notices == [JoinNotice(16)]

    def test_new_node_age_tracked(self):
        eng = make_engine(EchoProtocol, adversary=LeaveOneAdversary())
        eng.run(2)
        assert eng.lifecycle.joined_round(16) == 1

    def test_trace_records_churn(self):
        eng = make_engine(EchoProtocol, adversary=LeaveOneAdversary())
        eng.run(2)
        assert eng.trace.leaves_at(1) == (1,)
        assert eng.trace.joins_at(1) == (16,)


class TestSortedAliveCache:
    """run_round sorts the alive set once and reuses it until churn."""

    def test_cache_matches_alive_and_is_reused(self):
        eng = make_engine(EchoProtocol)
        eng.run(1)
        cached = eng._sorted_alive
        assert cached == sorted(eng.alive)
        eng.run(3)  # no churn: the very same list object is reused
        assert eng._sorted_alive is cached

    def test_cache_invalidated_on_churn(self):
        eng = make_engine(EchoProtocol, adversary=LeaveOneAdversary())
        eng.run(1)
        cached = eng._sorted_alive
        eng.run(1)  # round 1: node 1 leaves, node 16 joins
        assert eng._sorted_alive is not cached
        assert eng._sorted_alive == sorted(eng.alive)
        assert 1 not in eng._sorted_alive and 16 in eng._sorted_alive


class GreedyAdversary(Adversary):
    """Tries to churn out everything — must be stopped by the budget."""

    topology_lateness = 2

    def decide(self, view):
        victims = sorted(view.alive)[: len(view.alive) // 2]
        return ChurnDecision(leaves=frozenset(victims))


class TestBudgetIntegration:
    def test_strict_mode_raises(self):
        eng = make_engine(EchoProtocol, adversary=GreedyAdversary())
        with pytest.raises(ChurnViolation):
            eng.run(1)

    def test_lenient_mode_skips_and_reports(self):
        eng = make_engine(EchoProtocol, adversary=GreedyAdversary(), strict_budget=False)
        reports = eng.run(2)
        assert all(r.rejected is not None for r in reports)
        assert len(eng.alive) == 16  # nothing actually churned

    def test_lateness_attributes_declared_on_base(self):
        """The base class declares the (2, 10)-late defaults; no getattr."""

        class Noop(Adversary):
            def decide(self, view):
                return ChurnDecision.none()

        adv = Noop()
        assert adv.topology_lateness == 2
        assert adv.state_lateness >= 10**6  # effectively "never sees state"
        assert "topology_lateness" in Adversary.__dict__
        assert "state_lateness" in Adversary.__dict__

    def test_adversary_inactive_before_active_from(self):
        adv = LeaveOneAdversary()
        adv.active_from = 5
        eng = make_engine(EchoProtocol, adversary=adv)
        eng.run(5)
        assert len(eng.alive) == 16
        eng.run(1)
        assert 1 not in eng.alive
