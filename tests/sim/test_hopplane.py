"""Columnar hop plane: interning, batched sends, delivery grouping."""

from __future__ import annotations

from repro.sim.hopplane import HopPlane


class Msg:
    """Stand-in routed message (identity is what the plane interns on)."""


def test_interns_one_row_per_logical_hop():
    plane = HopPlane()
    m = Msg()
    assert plane.send(1, m, 0, [2, 3]) == 2
    assert plane.send(4, m, 0, [3, 5]) == 2  # same (msg, step): same row
    assert plane.send(4, m, 1, [2]) == 1  # next step: a new logical hop
    frozen = plane.close_round()
    assert len(frozen.msgs) == 2
    assert frozen.copies() == 5
    assert list(frozen.iter_edges()) == [(1, 2), (1, 3), (4, 3), (4, 5), (4, 2)]


def test_send_batch_equals_individual_sends():
    m1, m2 = Msg(), Msg()
    one = HopPlane()
    one.send(7, m1, 0, [1, 2])
    one.send(7, m2, 3, [2])
    one.send(7, m1, 0, [3])
    a = one.close_round()

    two = HopPlane()
    assert two.send_batch(7, [(m1, 0, [1, 2]), (m2, 3, [2]), (m1, 0, [3])]) == 4
    b = two.close_round()

    assert a.steps.tolist() == b.steps.tolist()
    assert a.srcs.tolist() == b.srcs.tolist()
    assert a.send_rows.tolist() == b.send_rows.tolist()
    assert a.lens.tolist() == b.lens.tolist()
    assert a.flat.tolist() == b.flat.tolist()


def test_empty_receiver_lists_are_skipped():
    plane = HopPlane()
    assert plane.send(1, Msg(), 0, []) == 0
    assert plane.send_batch(1, [(Msg(), 0, [])]) == 0
    assert plane.close_round() is None


def test_deliver_groups_by_receiver_in_send_order():
    plane = HopPlane()
    m1, m2 = Msg(), Msg()
    plane.send(1, m1, 0, [10, 11])
    plane.send(2, m2, 0, [11, 10])
    plane.send(3, m1, 0, [11])  # duplicate row for 11: counted, then deduped
    frozen = plane.close_round()
    delivery = frozen.deliver(alive={10, 11})
    assert delivery.total == 5
    assert delivery.counts == {10: 2, 11: 3}  # pre-dedup copy counts
    row_m1 = frozen.msgs.index(m1)
    row_m2 = frozen.msgs.index(m2)
    # Rows arrive deduplicated to first occurrences, in send order.
    assert delivery.rows[10].tolist() == [row_m1, row_m2]
    assert delivery.rows[11].tolist() == [row_m1, row_m2]


def test_deliver_drops_dead_receivers_but_counts_all_copies():
    plane = HopPlane()
    plane.send(1, Msg(), 0, [10, 99])
    frozen = plane.close_round()
    delivery = frozen.deliver(alive={10})
    assert delivery.total == 2  # in-flight copies, for budget accounting
    assert set(delivery.rows) == {10}


def test_close_round_resets_interning():
    plane = HopPlane()
    m = Msg()
    plane.send(1, m, 0, [2])
    first = plane.close_round()
    plane.send(1, m, 0, [3])
    second = plane.close_round()
    assert first.msgs is not second.msgs
    assert second.copies() == 1
