"""Tests for the parallel sweep runner (E-SW)."""

from __future__ import annotations

import pytest

from repro.experiments import all_experiments, get_experiment
from repro.experiments.registry import ExperimentResult
from repro.experiments.report import DEFAULT_ORDER
from repro.experiments.sweep import DEFAULT_GRID, run_cell, run_sweep

FAST_GRID = ("E-F1", "E-L12")  # sub-second experiments, seed-robust


class TestRunSweep:
    def test_serial_grid(self):
        result = run_sweep(FAST_GRID, (0, 1), workers=1)
        assert result.experiment_id == "E-SW"
        assert result.passed
        assert [row[:2] for row in result.rows] == [
            ["E-F1", 0],
            ["E-F1", 1],
            ["E-L12", 0],
            ["E-L12", 1],
        ]
        assert all(row[3] == "PASS" for row in result.rows)

    def test_parallel_is_bit_identical_to_serial(self):
        serial = run_sweep(FAST_GRID, (0, 1), workers=1)
        parallel = run_sweep(FAST_GRID, (0, 1), workers=2)
        assert parallel.rows == serial.rows
        assert parallel.notes == serial.notes
        assert parallel.to_table() == serial.to_table()

    def test_grid_order_is_sorted_not_given(self):
        shuffled = run_sweep(("E-L12", "E-F1"), (1, 0), workers=1)
        ordered = run_sweep(("E-F1", "E-L12"), (0, 1), workers=1)
        assert shuffled.rows == ordered.rows

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            run_sweep((), (0,), workers=1)
        with pytest.raises(ValueError):
            run_sweep(FAST_GRID, (), workers=1)

    def test_failing_cell_fails_sweep(self, monkeypatch):
        from repro.experiments import registry

        def always_fail(quick=True, seed=0):
            return ExperimentResult(
                experiment_id="E-ZZ",
                title="fail",
                claim="",
                header=["x"],
                rows=[[1]],
                passed=False,
            )

        monkeypatch.setitem(registry._REGISTRY, "E-ZZ", always_fail)
        result = run_sweep(("E-F1", "E-ZZ"), (0,), workers=1)
        assert not result.passed
        assert any("E-ZZ/seed=0" in note for note in result.notes)

    def test_run_cell_summary(self):
        eid, seed, passed, rows, note = run_cell(("E-F1", 3, True))
        assert (eid, seed, passed) == ("E-F1", 3, True)
        assert rows > 0
        assert isinstance(note, str)


class TestRegistration:
    def test_registered_and_ordered(self):
        assert "E-SW" in all_experiments()
        assert "E-SW" in DEFAULT_ORDER

    def test_registered_entrypoint_runs_default_grid(self):
        result = get_experiment("E-SW")(quick=True, seed=0)
        assert result.passed
        assert len(result.rows) == 2 * len(DEFAULT_GRID)


class TestCli:
    def test_sweep_command(self, capsys):
        from repro.cli import main

        assert main(["sweep", "E-F1", "--seeds", "0,1", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "verdict: PASS" in out
        assert "E-F1" in out

    def test_sweep_unknown_experiment(self, capsys):
        from repro.cli import main

        assert main(["sweep", "E-NOPE"]) == 2

    def test_sweep_bad_seeds(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["sweep", "E-F1", "--seeds", "a,b"])
        with pytest.raises(SystemExit):
            main(["sweep", "E-F1", "--seeds", ","])
