"""Tests for the experiment registry and result rendering."""

from __future__ import annotations

import pytest

from repro.experiments import all_experiments, get_experiment
from repro.experiments.models import TABLE1_MODELS
from repro.experiments.registry import ExperimentResult, register


EXPECTED_IDS = {
    "E-T1",
    "E-F1",
    "E-L3",
    "E-L4",
    "E-L6",
    "E-L9",
    "E-L12",
    "E-L13",
    "E-L17",
    "E-L22",
    "E-T14",
    "E-L24",
    "E-AB",
}


class TestRegistry:
    def test_all_artefacts_registered(self):
        assert EXPECTED_IDS <= set(all_experiments())

    def test_get_experiment(self):
        fn = get_experiment("E-F1")
        assert callable(fn)

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            get_experiment("E-NOPE")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register("E-F1")(lambda **kw: None)


class TestResultRendering:
    def make(self, passed=True):
        return ExperimentResult(
            experiment_id="E-X",
            title="demo",
            claim="something holds",
            header=["a", "b"],
            rows=[[1, 2.5]],
            passed=passed,
            notes=["a note"],
        )

    def test_to_table(self):
        text = self.make().to_table()
        assert "[E-X] demo" in text
        assert "verdict: PASS" in text
        assert "note: a note" in text

    def test_to_table_fail(self):
        assert "verdict: FAIL" in self.make(passed=False).to_table()

    def test_to_markdown(self):
        md = self.make().to_markdown()
        assert md.startswith("### E-X")
        assert "| a | b |" in md
        assert "**PASS**" in md


class TestModels:
    def test_table1_has_four_rows(self):
        assert len(TABLE1_MODELS) == 4

    def test_this_paper_row_present(self):
        assert any(m.reference == "this" for m in TABLE1_MODELS)

    def test_row_shape(self):
        for m in TABLE1_MODELS:
            assert len(m.row()) == 5


class TestQuickExperiments:
    """Smoke-run the fast experiments end to end (slow ones run in benchmarks)."""

    @pytest.mark.parametrize("eid", ["E-F1", "E-L6", "E-L12"])
    def test_fast_experiments_pass(self, eid):
        result = get_experiment(eid)(quick=True)
        assert result.passed, result.to_table()
        assert result.rows

    def test_lemma4_passes(self):
        result = get_experiment("E-L4")(quick=True)
        assert result.passed, result.to_table()
