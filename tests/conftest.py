"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ProtocolParams


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_params() -> ProtocolParams:
    """A small but structurally realistic parameterisation for unit tests."""
    return ProtocolParams(n=64, seed=7)


@pytest.fixture
def tiny_params() -> ProtocolParams:
    """The smallest configuration the library supports, for fast tests."""
    return ProtocolParams(n=16, seed=7)
