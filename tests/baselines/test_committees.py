"""Tests for the SPARTAN-style committee baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.committees import CommitteeOverlay


@pytest.fixture
def overlay() -> CommitteeOverlay:
    return CommitteeOverlay(n=128, committee_size=8, r=2, seed=1)


class TestStructure:
    def test_committee_count(self, overlay):
        assert overlay.m == 16

    def test_everyone_assigned(self, overlay):
        assert sum(overlay.committee_sizes()) == 128

    def test_rejects_tiny_committee(self):
        with pytest.raises(ValueError):
            CommitteeOverlay(n=16, committee_size=1)

    def test_virtual_neighbors(self, overlay):
        nbrs = overlay.virtual_neighbors(3)
        assert nbrs == (4, 2, 6, 7)

    def test_virtual_path_connects_everything(self, overlay):
        for dst in range(overlay.m):
            path = overlay.virtual_path(0, dst)
            assert path[0] == 0 and path[-1] == dst
            for a, b in zip(path, path[1:]):
                assert b in overlay.virtual_neighbors(a)

    def test_path_logarithmic(self, overlay):
        import math

        longest = max(len(overlay.virtual_path(0, d)) for d in range(overlay.m))
        assert longest <= 3 * math.ceil(math.log2(overlay.m)) + 2


class TestMembership:
    def test_join_refills_thinnest(self, overlay):
        overlay.kill(list(overlay.members(5)))
        assert len(overlay.members(5)) == 0
        overlay.join(3)
        assert len(overlay.members(5)) == 3

    def test_kill_shrinks(self, overlay):
        victims = list(overlay.members(2))[:4]
        overlay.kill(victims)
        assert len(overlay.members(2)) == 4

    def test_join_ids_fresh(self, overlay):
        new = overlay.join(2)
        assert all(v >= 128 for v in new)
        assert set(new) <= overlay.alive


class TestRouting:
    def test_delivers_without_churn(self, overlay):
        rng = np.random.default_rng(0)
        ids = [
            overlay.send(int(rng.choice(sorted(overlay.alive))), int(rng.integers(0, overlay.m)))
            for _ in range(30)
        ]
        overlay.run_until_quiet()
        assert all(overlay.outcomes[i].delivered for i in ids)

    def test_survives_random_churn(self, overlay):
        """Redundancy is redundancy: random churn is absorbed."""
        rng = np.random.default_rng(1)
        ids = [overlay.send(int(v), int(rng.integers(0, overlay.m)))
               for v in sorted(overlay.alive)[:40]]
        overlay.step()
        victims = rng.choice(sorted(overlay.alive), size=12, replace=False)
        overlay.kill(int(v) for v in victims)
        overlay.join(12)
        overlay.run_until_quiet()
        delivered = sum(1 for i in ids if overlay.outcomes[i].delivered)
        assert delivered >= 0.9 * len(ids)

    def test_wiped_committee_severs_routes(self, overlay):
        """The static structure's fatal flaw: one dead committee is forever."""
        # Wipe committee 1, then route 0 -> 1 (and through it).
        overlay.kill(list(overlay.members(1)))
        origin = sorted(overlay.members(0))[0]
        i = overlay.send(origin, 1)
        overlay.run_until_quiet()
        assert not overlay.outcomes[i].delivered
        assert overlay.outcomes[i].failed

    def test_dead_origin_rejected(self, overlay):
        v = sorted(overlay.alive)[0]
        overlay.kill([v])
        with pytest.raises(ValueError):
            overlay.send(v, 3)
