"""Unit tests for the naive gossip baseline."""

from __future__ import annotations

import pytest

from repro.analysis.connectivity import is_connected, knowledge_graph_of_gossip
from repro.baselines.gossip import GossipNode, PeerSample
from repro.config import ProtocolParams
from repro.sim.engine import Engine, JoinNotice


def make_engine(n=16):
    params = ProtocolParams(n=n, alpha=0.25, kappa=1.25, seed=4)
    eng = Engine(params, lambda v, s: GossipNode(v, s))
    eng.seed_nodes(range(n))
    for v in range(n):
        eng.protocol_of(v).seed_known({(v + 1) % n, (v + 2) % n})
    return eng


class TestGossipBasics:
    def test_seed_known_excludes_self(self):
        eng = make_engine()
        eng.protocol_of(0).seed_known({0, 1, 2})
        assert 0 not in eng.protocol_of(0).known

    def test_knowledge_spreads(self):
        eng = make_engine()
        before = len(eng.protocol_of(0).known)
        eng.run(10)
        after = len(eng.protocol_of(0).known)
        assert after > before

    def test_sender_learned_from_messages(self):
        eng = make_engine(n=16)
        eng.run(5)
        # Node 15 gossips to 0 and 1; eventually someone learns a reverse edge.
        knows = knowledge_graph_of_gossip(eng)
        assert is_connected(knows)

    def test_peer_sample_merge(self):
        eng = make_engine()
        node = eng.protocol_of(0)
        from repro.sim.engine import NodeContext
        from repro.sim.network import Network

        ctx = NodeContext(
            node_id=0,
            t=1,
            inbox=[(5, PeerSample((7, 8)))],
            rng=eng.rng_service.node_stream(0),
            params=eng.params,
            joined_round=0,
            network=Network(),
        )
        node.on_round(ctx)
        assert {5, 7, 8} <= node.known

    def test_join_notice_introduces_both_ways(self):
        eng = make_engine()
        node = eng.protocol_of(0)
        from repro.sim.engine import NodeContext
        from repro.sim.network import Network

        net = Network()
        ctx = NodeContext(
            node_id=0,
            t=1,
            inbox=[(-1, JoinNotice(new_id=99))],
            rng=eng.rng_service.node_stream(0),
            params=eng.params,
            joined_round=0,
            network=net,
        )
        node.on_round(ctx)
        net.close_send_phase()
        inboxes, _ = net.deliver(frozenset(range(200)))
        # The newcomer receives an introduction sample including node 0.
        assert any(
            isinstance(m, PeerSample) and 0 in m.peers
            for _, m in inboxes.get(99, [])
        )

    def test_gossip_bounded_fanout(self):
        eng = make_engine()
        eng.run(5)
        for report in eng.reports:
            # FANOUT gossip targets + occasional introductions only.
            assert report.metrics.max_sent <= GossipNode.FANOUT + 2 * GossipNode.SAMPLE_SIZE
