"""Unit tests for the maintenance runner's audits and probe bookkeeping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ProtocolParams
from repro.core.bootstrap import prime_initial_overlay
from repro.core.runner import MaintenanceSimulation, OverlayAudit, ProbeReport


@pytest.fixture(scope="module")
def warm_sim():
    params = ProtocolParams(n=40, c=1.2, r=2, delta=3, tau=8, seed=21)
    sim = MaintenanceSimulation(params)
    sim.run(2 * (params.lam + 3))
    return sim


class TestAudits:
    def test_initial_graph_matches_params(self):
        params = ProtocolParams(n=40, c=1.2, delta=3, tau=8, seed=21)
        sim = MaintenanceSimulation(params)
        assert len(sim.initial_graph) == params.n

    def test_audit_fields(self, warm_sim):
        audit = warm_sim.audit_overlay()
        assert isinstance(audit, OverlayAudit)
        assert audit.members == 40
        assert audit.alive == 40
        assert audit.established_fraction == 1.0
        assert audit.required_edges > 0
        assert audit.edge_coverage == 1.0
        assert audit.min_swarm_size >= 1

    def test_health_summary_keys(self, warm_sim):
        h = warm_sim.health_summary()
        for key in (
            "round",
            "alive",
            "established_fraction",
            "total_demotions",
            "peak_congestion",
            "mean_congestion",
        ):
            assert key in h

    def test_empty_audit_when_nothing_established(self):
        params = ProtocolParams(n=40, c=1.2, delta=3, tau=8, seed=22)
        sim = MaintenanceSimulation(params)
        for node in sim.alive_nodes():
            node.phase = type(node.phase).FRESH
        audit = sim.audit_overlay()
        assert audit.members == 0
        assert audit.established_fraction == 0.0
        assert audit.edge_coverage == 1.0  # vacuous


class TestProbes:
    def test_probe_report_empty(self, warm_sim):
        report = warm_sim.probe_report([])
        assert isinstance(report, ProbeReport)
        assert report.launched == 0
        assert report.delivery_rate == 1.0

    def test_probe_roundtrip(self, warm_sim):
        rng = np.random.default_rng(5)
        ids = warm_sim.send_probes(3, rng)
        warm_sim.run(2 * warm_sim.params.dilation + 4)
        report = warm_sim.probe_report(ids)
        assert report.launched == 3
        assert report.delivered == 3
        assert report.mean_receivers >= 1

    def test_probe_ids_unique(self, warm_sim):
        rng = np.random.default_rng(6)
        a = warm_sim.send_probes(2, rng)
        b = warm_sim.send_probes(2, rng)
        assert len(set(a) | set(b)) == 4


class TestBootstrapPriming:
    def test_prime_requires_round_zero(self):
        params = ProtocolParams(n=40, c=1.2, delta=3, tau=8, seed=23)
        sim = MaintenanceSimulation(params)
        sim.run(1)
        with pytest.raises(RuntimeError):
            prime_initial_overlay(sim.engine)

    def test_primed_nodes_have_definition5_neighborhoods(self):
        params = ProtocolParams(n=40, c=1.2, delta=3, tau=8, seed=24)
        sim = MaintenanceSimulation(params)
        graph = sim.initial_graph
        for v in list(sim.engine.alive)[:8]:
            node = sim.node(v)
            assert set(node.d_nbrs) == {int(w) for w in graph.neighbors(v)}
            assert node.epoch == 0
