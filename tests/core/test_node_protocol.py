"""Unit tests for MaintenanceNode state machinery (no full engine runs)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ProtocolParams
from repro.core.messages import (
    ConnectMsg,
    CreateBatch,
    JoinBatch,
    JoinRecord,
    TokenGrant,
    TokenMsg,
)
from repro.core.node import TOKEN_TTL, MaintenanceNode, Phase
from repro.sim.engine import EngineServices, JoinNotice, NodeContext
from repro.sim.network import Network
from repro.util.rngs import RngService


@pytest.fixture
def params() -> ProtocolParams:
    return ProtocolParams(n=48, c=1.2, r=2, delta=3, tau=6, seed=9)


@pytest.fixture
def services(params) -> EngineServices:
    svc = RngService(params.seed)
    return EngineServices(params=params, rng=svc, position_hash=svc.position_hash())


def make_ctx(node, services, t, inbox, network=None):
    net = network if network is not None else Network()
    return (
        NodeContext(
            node_id=node.id,
            t=t,
            inbox=inbox,
            rng=services.rng.node_stream(node.id),
            params=services.params,
            joined_round=0,
            network=net,
        ),
        net,
    )


def sent_messages(net: Network):
    """All (src, dst, msg) triples sent this round."""
    edges, _ = net.close_send_phase()
    inboxes, _ = net.deliver(frozenset(range(-10, 10_000)))
    out = []
    for dst, msgs in inboxes.items():
        for src, m in msgs:
            out.append((src, int(dst), m))
    return out


class TestPhases:
    def test_starts_new(self, services):
        node = MaintenanceNode(1, services)
        assert node.phase is Phase.NEW

    def test_grant_promotes_to_fresh(self, services):
        node = MaintenanceNode(1, services)
        ctx, _ = make_ctx(node, services, 3, [(2, TokenGrant((5, 6, 7)))])
        node.on_round(ctx)
        assert node.phase is Phase.FRESH
        assert {o for _, o in node.tokens} == {5, 6, 7}

    def test_prime_establishes(self, services):
        node = MaintenanceNode(1, services)
        node.prime(epoch=0, pos=0.5, neighbors={2: 0.51})
        assert node.phase is Phase.ESTABLISHED
        assert node.epoch == 0

    def test_cutover_establishes_fresh_node(self, services, params):
        node = MaintenanceNode(1, services)
        node.phase = Phase.FRESH
        e = params.lam + 5
        recs = tuple(JoinRecord(10 + i, 0.1 * i, e) for i in range(3))
        ctx, _ = make_ctx(node, services, 2 * e, [(2, CreateBatch(recs))])
        node.on_round(ctx)
        assert node.phase is Phase.ESTABLISHED
        assert node.epoch == e
        assert set(node.d_nbrs) == {10, 11, 12}
        assert node.pos == services.position_hash.position(1, e)

    def test_missed_cutover_demotes(self, services, params):
        node = MaintenanceNode(1, services)
        node.prime(epoch=0, pos=0.5, neighbors={2: 0.51})
        e = params.lam + 5
        ctx, _ = make_ctx(node, services, 2 * e, [])
        node.on_round(ctx)
        assert node.phase is Phase.FRESH
        assert node.demotions == 1

    def test_no_demotion_during_bootstrap(self, services, params):
        """Before epoch lam+2 no cutover records exist; nodes keep D_0."""
        node = MaintenanceNode(1, services)
        node.prime(epoch=0, pos=0.5, neighbors={2: 0.51})
        ctx, _ = make_ctx(node, services, 2 * (params.lam + 1), [])
        node.on_round(ctx)
        assert node.phase is Phase.ESTABLISHED
        assert node.epoch == 0

    def test_stale_epoch_records_ignored(self, services, params):
        node = MaintenanceNode(1, services)
        e = params.lam + 5
        recs = (JoinRecord(10, 0.4, e - 1),)  # wrong epoch
        ctx, _ = make_ctx(node, services, 2 * e, [(2, CreateBatch(recs))])
        node.on_round(ctx)
        assert node.phase is Phase.NEW


class TestTokenPlumbing:
    def test_direct_token_absorbed(self, services):
        node = MaintenanceNode(1, services)
        ctx, _ = make_ctx(node, services, 4, [(2, TokenMsg(owner=9))])
        node.on_round(ctx)
        assert (4 + TOKEN_TTL, 9) in node.tokens

    def test_tokens_expire(self, services):
        node = MaintenanceNode(1, services)
        ctx, _ = make_ctx(node, services, 4, [(2, TokenMsg(owner=9))])
        node.on_round(ctx)
        for t in range(5, 5 + TOKEN_TTL):
            ctx, _ = make_ctx(node, services, t, [])
            node.on_round(ctx)
        assert node.tokens == []

    def test_fresh_node_connects_on_even_round(self, services, params):
        node = MaintenanceNode(1, services)
        node.phase = Phase.FRESH
        node.tokens = [(100, 5), (100, 6), (100, 7), (100, 8)]
        ctx, net = make_ctx(node, services, 10, [])
        node.on_round(ctx)
        connects = [(d, m) for _, d, m in sent_messages(net) if isinstance(m, ConnectMsg)]
        assert len(connects) == params.delta_eff
        assert all(m.node == 1 for _, m in connects)
        # Tokens are sampled, not consumed (they expire via TTL instead).
        assert len(node.tokens) == 4

    def test_connect_fills_slot(self, services):
        node = MaintenanceNode(1, services)
        ctx, _ = make_ctx(node, services, 5, [(7, ConnectMsg(7))])
        node.on_round(ctx)
        assert 7 in node.slots

    def test_slots_reset_each_even_round(self, services):
        node = MaintenanceNode(1, services)
        ctx, _ = make_ctx(node, services, 5, [(7, ConnectMsg(7))])
        node.on_round(ctx)
        assert 7 in node.slots
        ctx, _ = make_ctx(node, services, 6, [])
        node.on_round(ctx)
        assert node.slots == [None] * len(node.slots)

    def test_slot_overflow_dropped(self, services, params):
        node = MaintenanceNode(1, services)
        inbox = [(i, ConnectMsg(i)) for i in range(100, 100 + 3 * params.delta_eff)]
        ctx, _ = make_ctx(node, services, 5, inbox)
        node.on_round(ctx)
        assert node.connects_dropped == len(inbox) - 2 * params.delta_eff
        assert sum(1 for s in node.slots if s is not None) == 2 * params.delta_eff

    def test_duplicate_connect_not_double_registered(self, services):
        node = MaintenanceNode(1, services)
        ctx, _ = make_ctx(node, services, 5, [(7, ConnectMsg(7)), (7, ConnectMsg(7))])
        node.on_round(ctx)
        assert node.slots.count(7) == 1


class TestJoinNotice:
    def test_bootstrap_duties(self, services, params):
        node = MaintenanceNode(1, services)
        node.prime(epoch=0, pos=0.5, neighbors={2: 0.51, 3: 0.52})
        node.tokens = [(100, 10 + i) for i in range(4 * params.delta_eff)]
        ctx, net = make_ctx(node, services, 6, [(-1, JoinNotice(new_id=99))])
        node.on_round(ctx)
        msgs = sent_messages(net)
        connects = [(d, m) for _, d, m in msgs if isinstance(m, ConnectMsg)]
        grants = [(d, m) for _, d, m in msgs if isinstance(m, TokenGrant)]
        assert len(connects) == params.delta_eff
        assert all(m.node == 99 for _, m in connects)
        assert len(grants) == 1
        assert grants[0][0] == 99
        assert len(grants[0][1].tokens) == params.delta_eff

    def test_token_starved_bootstrap_falls_back_to_neighbors(self, services, params):
        node = MaintenanceNode(1, services)
        nbrs = {i: i / 100 for i in range(2, 2 + 4 * params.delta_eff)}
        node.prime(epoch=0, pos=0.5, neighbors=nbrs)
        ctx, net = make_ctx(node, services, 6, [(-1, JoinNotice(new_id=99))])
        node.on_round(ctx)
        msgs = sent_messages(net)
        grants = [m for _, d, m in msgs if isinstance(m, TokenGrant) and d == 99]
        assert grants and len(grants[0].tokens) == params.delta_eff
        assert set(grants[0].tokens) <= set(nbrs)


class TestOddRoundRecords:
    def test_join_batches_stored_for_next_epoch(self, services, params):
        node = MaintenanceNode(1, services)
        node.prime(epoch=4, pos=0.5, neighbors={2: 0.51})
        e_next = 5
        recs = (JoinRecord(7, 0.49, e_next), JoinRecord(8, 0.9, e_next - 1))
        ctx, _ = make_ctx(node, services, 2 * 4 + 1, [(2, JoinBatch(recs))])
        node.on_round(ctx)
        assert set(node.h_records) == {7}  # wrong-epoch record filtered

    def test_h_records_reset_each_odd_round(self, services):
        node = MaintenanceNode(1, services)
        node.prime(epoch=4, pos=0.5, neighbors={2: 0.51})
        ctx, _ = make_ctx(node, services, 9, [(2, JoinBatch((JoinRecord(7, 0.49, 5),)))])
        node.on_round(ctx)
        assert node.h_records
        ctx, _ = make_ctx(node, services, 11, [])
        node.on_round(ctx)
        assert node.h_records == {}


class TestLaunches:
    def test_established_launches_join_and_tokens(self, services, params):
        node = MaintenanceNode(1, services)
        node.prime(epoch=5, pos=0.5, neighbors={2: 0.51})
        ctx, _ = make_ctx(node, services, 10, [])
        node.on_round(ctx)
        # Launches are queued for the next odd round, not yet sent.
        kinds = [m.msg_id[0] for m in node._pending_launch]
        assert kinds.count("join") == 1
        assert kinds.count("token") == params.tau_eff
        join = next(m for m in node._pending_launch if m.msg_id[0] == "join")
        target_epoch = 10 // 2 + params.lam + 2
        assert join.msg_id == ("join", 1, target_epoch, 1)
        assert join.target == services.position_hash.position(1, target_epoch)

    def test_sponsor_launches_for_slot_nodes(self, services, params):
        node = MaintenanceNode(1, services)
        node.prime(epoch=5, pos=0.5, neighbors={2: 0.51})
        ctx, _ = make_ctx(node, services, 9, [(99, ConnectMsg(99))])
        node.on_round(ctx)
        ctx, _ = make_ctx(node, services, 10, [])
        node.on_round(ctx)
        joins = [m for m in node._pending_launch if m.msg_id[0] == "join"]
        sponsored = [m for m in joins if m.msg_id[1] == 99]
        assert len(sponsored) == 1

    def test_fresh_node_does_not_launch(self, services):
        node = MaintenanceNode(1, services)
        node.phase = Phase.FRESH
        ctx, _ = make_ctx(node, services, 10, [])
        node.on_round(ctx)
        assert node._pending_launch == []
