"""Tests for the distributed bootstrap construction."""

from __future__ import annotations

import pytest

from repro.config import ProtocolParams
from repro.core.construction import (
    ConstructionNode,
    build_initial_overlay_distributed,
    construction_schedule,
)
from repro.core.runner import MaintenanceSimulation
from repro.overlay.lds import LDSGraph
from repro.overlay.positions import PositionIndex
from repro.sim.engine import Engine
from repro.util.intervals import ring_distance


@pytest.fixture
def params() -> ProtocolParams:
    return ProtocolParams(n=64, c=1.5, seed=4)


class TestSchedule:
    def test_phases_ordered(self, params):
        s = construction_schedule(params)
        assert 0 < s.doubling_end < s.range_end <= s.push_round < s.find_start
        assert s.find_start < s.total_rounds

    def test_total_rounds_logarithmic(self):
        small = construction_schedule(ProtocolParams(n=32, seed=0))
        big = construction_schedule(ProtocolParams(n=1024, seed=0))
        # O(log n): 32x more nodes costs only ~3x log2(32) extra rounds.
        assert big.total_rounds - small.total_rounds <= 3 * 5 + 4

    def test_range_covers_list_arc(self, params):
        s = construction_schedule(params)
        assert 2**s.range_levels >= 4 * params.c * params.lam


class TestEndToEnd:
    @pytest.mark.parametrize("n", [32, 64, 96])
    def test_builds_definition5_superset(self, n):
        params = ProtocolParams(n=n, c=1.5, seed=4)
        # verify=True raises on any missing Definition-5 edge.
        nbrs, rounds = build_initial_overlay_distributed(params)
        assert len(nbrs) == n
        assert rounds == construction_schedule(params).total_rounds

    def test_positions_in_neighborhoods_are_correct(self, params):
        nbrs, _ = build_initial_overlay_distributed(params)
        engine = Engine(params, lambda v, s: ConstructionNode(v, s))
        truth_hash = engine.services.position_hash
        for v, table in list(nbrs.items())[:8]:
            for w, pos in table.items():
                assert pos == truth_hash.position(w, 0)

    def test_neighborhoods_exclude_self(self, params):
        nbrs, _ = build_initial_overlay_distributed(params)
        for v, table in nbrs.items():
            assert v not in table

    def test_verification_catches_sabotage(self, params, monkeypatch):
        """If finalisation drops the De Bruijn contacts, verify must fail."""

        real = ConstructionNode._finalize

        def sabotaged(self):
            self.find_results = {0: {}, 1: {}}
            real(self)

        monkeypatch.setattr(ConstructionNode, "_finalize", sabotaged)
        with pytest.raises(RuntimeError, match="missing"):
            build_initial_overlay_distributed(params)

    def test_congestion_polylog(self, params):
        """No node sends more than O(lam^2)-ish messages in any round."""
        engine = Engine(params, lambda v, s: ConstructionNode(v, s))
        engine.seed_nodes(range(params.n))
        positions = {
            v: engine.services.position_hash.position(v, 0) for v in range(params.n)
        }
        order = sorted(positions, key=positions.__getitem__)
        for i, v in enumerate(order):
            succ = order[(i + 1) % len(order)]
            engine.protocol_of(v).seed_successor(succ, positions[succ])
        engine.run(construction_schedule(params).total_rounds)
        peak = engine.metrics.peak_congestion()
        assert peak <= 20 * params.lam**2


class TestMaintenanceIntegration:
    def test_maintenance_runs_on_constructed_bootstrap(self):
        params = ProtocolParams(n=48, c=1.2, r=2, delta=3, tau=8, seed=9)
        sim = MaintenanceSimulation(params, distributed_bootstrap=True)
        sim.run(2 * (params.lam + 3))
        audit = sim.audit_overlay()
        assert audit.edge_coverage == 1.0
        assert audit.members == params.n
