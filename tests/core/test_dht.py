"""Tests for the churn-resistant DHT layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversary.oblivious import RandomChurnAdversary
from repro.config import ProtocolParams
from repro.core.dht import DhtResponse, DHTNode, StashTransfer, key_point
from repro.core.runner import MaintenanceSimulation


def make_sim(seed=3, adversary=False):
    params = ProtocolParams(
        n=48, c=1.2, r=2, delta=3, tau=8, seed=seed, alpha=0.25, kappa=1.25
    )
    adv = RandomChurnAdversary(params, seed=seed + 1) if adversary else None
    return params, MaintenanceSimulation(params, adversary=adv, node_cls=DHTNode)


@pytest.fixture(scope="module")
def dht_run():
    """Shared run: two puts, heavy reconfiguration, then gets."""
    params, sim = make_sim(seed=3, adversary=True)
    sim.run(4)
    sim.node(0).queue_put("alpha", "A")
    sim.node(1).queue_put("beta", {"x": 1})
    sim.run(2 * params.dilation + 6)
    replicas_early = {
        key: [v for v in sim.engine.alive if key in sim.node(v).store]
        for key in ("alpha", "beta")
    }
    sim.run(40)  # ~20 full overlay rebuilds under churn
    rid_a = sim.node(5).queue_get("alpha")
    rid_missing = sim.node(6).queue_get("never-stored")
    sim.run(2 * params.dilation + 6)
    return params, sim, replicas_early, rid_a, rid_missing


class TestKeyPoint:
    def test_deterministic(self):
        assert key_point("k") == key_point("k")

    def test_range(self):
        for key in ("a", "b", "xyz", ""):
            assert 0.0 <= key_point(key) < 1.0

    def test_spread(self):
        pts = [key_point(f"key-{i}") for i in range(500)]
        assert abs(np.mean(pts) - 0.5) < 0.05


class TestReplication:
    def test_put_replicates_across_swarm(self, dht_run):
        params, sim, replicas_early, *_ = dht_run
        for key, reps in replicas_early.items():
            # Roughly the swarm size (2*c*lam ~ 16), certainly many copies.
            assert len(reps) >= params.expected_swarm_size / 2

    def test_replicas_are_the_responsible_swarm(self, dht_run):
        params, sim, *_ = dht_run
        point = key_point("alpha")
        for v in sim.engine.alive:
            node = sim.node(v)
            if "alpha" in node.store and node.pos is not None:
                gap = abs(node.pos - point)
                # Replicas sit within the swarm radius (plus one cutover of
                # slack for items received this very round).
                assert min(gap, 1 - gap) <= 2 * params.swarm_radius

    def test_items_survive_reconfigurations_under_churn(self, dht_run):
        params, sim, *_ = dht_run
        for key in ("alpha", "beta"):
            reps = [v for v in sim.engine.alive if key in sim.node(v).store]
            assert len(reps) >= params.expected_swarm_size / 3


class TestGet:
    def test_get_returns_value(self, dht_run):
        _, sim, _, rid_a, _ = dht_run
        resp = sim.node(5).responses.get(rid_a)
        assert resp is not None
        assert resp.found and resp.value == "A"

    def test_get_missing_key_not_found(self, dht_run):
        _, sim, _, _, rid_missing = dht_run
        resp = sim.node(6).responses.get(rid_missing)
        assert resp is not None
        assert not resp.found and resp.value is None


class TestMechanics:
    def test_stash_transfer_stores(self):
        params, sim = make_sim(seed=9)
        sim.run(2)
        node = sim.node(0)
        node.phase  # established via priming
        # Direct stash injection path:
        from repro.sim.engine import NodeContext
        from repro.sim.network import Network

        # Use an odd round so the even-round range eviction does not
        # immediately discard the planted (out-of-range) key.
        ctx = NodeContext(
            node_id=0,
            t=sim.round + 1,
            inbox=[(1, StashTransfer((("k", "v"),)))],
            rng=sim.engine.rng_service.node_stream(0),
            params=params,
            joined_round=0,
            network=Network(),
        )
        node.on_round(ctx)
        assert "k" in node.store

    def test_eviction_drops_out_of_range_items(self):
        params, sim = make_sim(seed=10)
        sim.run(2 * (params.lam + 3))  # steady reconfiguration
        node = sim.node(0)
        # Plant an item far from the node's position.
        far = (node.pos + 0.5) % 1.0
        node.store["planted"] = (far, "x")
        sim.run(2)
        assert "planted" not in sim.node(0).store

    def test_found_response_wins_over_not_found(self):
        params, sim = make_sim(seed=11)
        node = sim.node(0)
        rid = ("r", 1)
        node.responses[rid] = DhtResponse(rid, "k", None, False)
        from repro.sim.engine import NodeContext
        from repro.sim.network import Network

        ctx = NodeContext(
            node_id=0,
            t=2,
            inbox=[(1, DhtResponse(rid, "k", "v", True))],
            rng=sim.engine.rng_service.node_stream(0),
            params=params,
            joined_round=0,
            network=Network(),
        )
        node.on_round(ctx)
        assert node.responses[rid].found
