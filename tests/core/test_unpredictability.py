"""Lemma 16 — the adversary is oblivious of the nodes' positions.

The proof rests on two mechanisms, both tested here:

1. the position hash is a keyed PRF: positions across epochs carry no
   mutual information, so yesterday's overlay says nothing about today's;
2. the adversary's view is structurally incapable of revealing positions or
   payloads — it exposes topology only, and only at its lateness.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro.adversary.view import AdversaryView, LatenessViolation
from repro.config import ProtocolParams
from repro.core.runner import MaintenanceSimulation
from repro.sim.identity import Lifecycle
from repro.sim.trace import GraphTrace
from repro.util.intervals import ring_distance
from repro.util.rngs import RngService


class TestPositionIndependence:
    def test_epoch_positions_uncorrelated(self):
        """h(v, e) and h(v, e+1) are statistically independent."""
        h = RngService(3).position_hash()
        a = np.array([h.position(v, 4) for v in range(4000)])
        b = np.array([h.position(v, 5) for v in range(4000)])
        rho = np.corrcoef(a, b)[0, 1]
        assert abs(rho) < 0.05

    def test_colocated_nodes_scatter_next_epoch(self):
        """Nodes sharing a swarm in epoch e are uniformly spread in e+1.

        This is what makes the 2-late swarm-wipe useless: the cluster the
        adversary observed has dissolved by the time it can strike.
        """
        params = ProtocolParams(n=512, seed=6)
        h = RngService(6).position_hash()
        pos_e = {v: h.position(v, 7) for v in range(params.n)}
        # Pick the nodes co-located around point 0.5 in epoch 7.
        cluster = [
            v for v, p in pos_e.items() if ring_distance(p, 0.5) <= 0.02
        ]
        assert len(cluster) >= 8
        next_positions = np.array([h.position(v, 8) for v in cluster])
        # Kolmogorov-Smirnov against uniform: must not reject.
        _, pvalue = stats.kstest(next_positions, "uniform")
        assert pvalue > 0.01

    def test_pairwise_distances_not_preserved(self):
        """Epoch-e neighbours are epoch-(e+1) strangers on average."""
        h = RngService(9).position_hash()
        rng = np.random.default_rng(0)
        pairs = rng.integers(0, 10_000, size=(500, 2))
        close_now = []
        for u, v in pairs:
            if u == v:
                continue
            d_now = ring_distance(h.position(int(u), 3), h.position(int(v), 3))
            if d_now < 0.01:
                close_now.append((int(u), int(v)))
        # Not enough natural pairs: manufacture them by scanning.
        if len(close_now) < 20:
            pos = {v: h.position(v, 3) for v in range(5000)}
            ordered = sorted(pos, key=pos.__getitem__)
            close_now = list(zip(ordered, ordered[1:]))[:200]
        d_next = [
            ring_distance(h.position(u, 4), h.position(v, 4)) for u, v in close_now
        ]
        # Mean ring distance of independent uniforms is 1/4.
        assert np.mean(d_next) == pytest.approx(0.25, abs=0.05)


class TestViewIsStructurallyBlind:
    def test_view_exposes_no_state_accessors(self):
        """The AdversaryView API carries topology and population only —
        no positions, no payloads, no node internals."""
        banned = ("position", "payload", "content", "hash", "message_body")
        for name in dir(AdversaryView):
            if name.startswith("__"):
                continue  # dunders (e.g. __hash__) are object plumbing
            lname = name.lower()
            assert not any(b in lname for b in banned), name

    def test_edges_carry_ids_only(self):
        tr = GraphTrace()
        lc = Lifecycle()
        lc.add(0, -1)
        lc.add(1, -1)
        tr.record(0, [(0, 1)], lc.alive)
        tr.record(1, [], lc.alive)
        tr.record(2, [], lc.alive)
        view = AdversaryView(3, tr, lc, topology_lateness=2, state_lateness=100)
        edges = view.edges_at(0)
        assert edges == [(0, 1)]
        assert all(isinstance(x, int) for e in edges for x in e)

    def test_two_late_cannot_see_current_overlay_edges(self):
        """During a protocol run the newest two rounds stay invisible."""
        params = ProtocolParams(n=40, c=1.2, delta=3, tau=8, seed=10)
        sim = MaintenanceSimulation(params)
        sim.run(10)
        view = AdversaryView(
            sim.round,
            sim.engine.trace,
            sim.engine.lifecycle,
            topology_lateness=2,
            state_lateness=100,
        )
        with pytest.raises(LatenessViolation):
            view.edges_at(sim.round - 1)
        assert view.edges_at(sim.round - 2) is not None
