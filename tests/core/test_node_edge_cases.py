"""Edge-case tests for the maintenance node (defensive behaviour)."""

from __future__ import annotations

import pytest

from repro.config import ProtocolParams
from repro.core.messages import CreateBatch, JoinBatch, JoinRecord, TokenGrant
from repro.core.node import MaintenanceNode, Phase
from repro.routing.messages import Hop, make_routed_message
from repro.sim.engine import EngineServices, NodeContext
from repro.sim.network import Network
from repro.util.rngs import RngService


@pytest.fixture
def params() -> ProtocolParams:
    return ProtocolParams(n=48, c=1.2, r=2, delta=3, tau=6, seed=31)


@pytest.fixture
def services(params) -> EngineServices:
    svc = RngService(params.seed)
    return EngineServices(params=params, rng=svc, position_hash=svc.position_hash())


def ctx_for(node, services, t, inbox):
    net = Network()
    return (
        NodeContext(
            node_id=node.id,
            t=t,
            inbox=inbox,
            rng=services.rng.node_stream(node.id),
            params=services.params,
            joined_round=0,
            network=net,
        ),
        net,
    )


def make_hop(services, params, step, payload=None, target=0.5, rank=None):
    msg = make_routed_message(
        msg_id=("probe", "x", 99),
        origin=99,
        origin_position=0.4,
        target=target,
        lam=params.lam,
        start_round=0,
        sample_rank=rank,
        payload=payload if payload is not None else ("probe", "x"),
    )
    return Hop(msg, step)


class TestHopEdgeCases:
    def test_fresh_node_ignores_hops(self, services, params):
        node = MaintenanceNode(1, services)
        node.phase = Phase.FRESH
        hop = make_hop(services, params, step=2)
        ctx, net = ctx_for(node, services, 11, [(2, hop)])
        node.on_round(ctx)
        edges, _ = net.close_send_phase()
        assert edges == []

    def test_duplicate_hops_forwarded_once(self, services, params):
        # A ring-spanning neighbourhood guarantees the next trajectory point
        # has known swarm members, so the forwarding must happen — exactly
        # once (r copies) despite three identical arrivals.
        node = MaintenanceNode(1, services)
        dense = {i: (i - 2) / 60 for i in range(2, 62)}
        node.prime(epoch=5, pos=0.5, neighbors=dense)
        hop = make_hop(services, params, step=2)
        ctx, net = ctx_for(node, services, 10, [(2, hop), (3, hop), (4, hop)])
        node.on_round(ctx)
        _, sent = net.close_send_phase()
        # Launches go out next odd round, so all sends here are hop copies.
        assert sent.get(1, 0) == params.r

    def test_final_hop_at_even_round_is_defensively_dropped(self, services, params):
        node = MaintenanceNode(1, services)
        node.prime(epoch=5, pos=0.5, neighbors={2: 0.51})
        hop = make_hop(services, params, step=params.lam + 1)
        ctx, net = ctx_for(node, services, 10, [(2, hop)])
        node.on_round(ctx)  # must not raise
        assert node.delivered == []

    def test_probe_delivery_recorded_at_odd_round(self, services, params):
        node = MaintenanceNode(1, services)
        node.prime(epoch=5, pos=0.5, neighbors={2: 0.51})
        hop = make_hop(services, params, step=params.lam + 1)
        ctx, _ = ctx_for(node, services, 11, [(2, hop)])
        node.on_round(ctx)
        assert node.delivered and node.delivered[0][0] == ("probe", "x")

    def test_token_with_wrong_rank_ignored(self, services, params):
        node = MaintenanceNode(1, services)
        node.prime(epoch=5, pos=0.5, neighbors={2: 0.51})
        hop = make_hop(
            services, params, step=params.lam + 1, payload=("token", 7),
            target=0.5, rank=10_000,
        )
        ctx, _ = ctx_for(node, services, 11, [(2, hop)])
        node.on_round(ctx)
        assert all(owner != 7 for _, owner in node.tokens)

    def test_unknown_payload_recorded_not_crashed(self, services, params):
        node = MaintenanceNode(1, services)
        node.prime(epoch=5, pos=0.5, neighbors={2: 0.51})
        hop = make_hop(services, params, step=params.lam + 1, payload="mystery")
        ctx, _ = ctx_for(node, services, 11, [(2, hop)])
        node.on_round(ctx)
        assert ("mystery", 11) in node.delivered


class TestRecordEdgeCases:
    def test_empty_create_batch_still_cuts_over(self, services, params):
        """An empty batch signals the cutover even with no neighbours yet."""
        node = MaintenanceNode(1, services)
        node.phase = Phase.FRESH
        e = params.lam + 6
        # CreateBatch with one record of the right epoch for another node
        # plus self-only implies empty neighbourhood for us; send one real
        # record so the batch is non-trivial.
        recs = (JoinRecord(2, 0.3, e),)
        ctx, _ = ctx_for(node, services, 2 * e, [(9, CreateBatch(recs))])
        node.on_round(ctx)
        assert node.phase is Phase.ESTABLISHED
        assert node.epoch == e

    def test_own_record_excluded_from_neighbors(self, services, params):
        node = MaintenanceNode(1, services)
        e = params.lam + 6
        recs = (JoinRecord(1, 0.4, e), JoinRecord(2, 0.3, e))
        ctx, _ = ctx_for(node, services, 2 * e, [(9, CreateBatch(recs))])
        node.on_round(ctx)
        assert 1 not in node.d_nbrs and 2 in node.d_nbrs

    def test_join_batches_ignored_when_not_established(self, services, params):
        node = MaintenanceNode(1, services)
        node.phase = Phase.FRESH
        batch = JoinBatch((JoinRecord(7, 0.2, 6),))
        ctx, net = ctx_for(node, services, 11, [(2, batch)])
        node.on_round(ctx)
        edges, _ = net.close_send_phase()
        assert edges == []  # no matchmaking from outside the overlay

    def test_grant_on_established_node_adds_tokens_only(self, services, params):
        node = MaintenanceNode(1, services)
        node.prime(epoch=5, pos=0.5, neighbors={2: 0.51})
        ctx, _ = ctx_for(node, services, 11, [(2, TokenGrant((8, 9)))])
        node.on_round(ctx)
        assert node.phase is Phase.ESTABLISHED
        assert {o for _, o in node.tokens} >= {8, 9}


class TestPipelineBookkeeping:
    def test_primed_node_never_reconnects(self, services, params):
        """Bootstrap-primed nodes have no pipeline gap to bridge."""
        node = MaintenanceNode(1, services)
        node.prime(epoch=0, pos=0.5, neighbors={2: 0.51})
        node.tokens = [(100, 5), (100, 6), (100, 7)]
        ctx, net = ctx_for(node, services, 2, [])
        node.on_round(ctx)
        from repro.core.messages import ConnectMsg

        _, sent = net.close_send_phase()
        inboxes, _ = net.deliver(frozenset(range(100)))
        connects = [
            m for msgs in inboxes.values() for _, m in msgs if isinstance(m, ConnectMsg)
        ]
        assert connects == []

    def test_newly_established_keeps_connecting(self, services, params):
        """A freshly promoted node bridges its pipeline with CONNECTs."""
        node = MaintenanceNode(1, services)
        node.phase = Phase.FRESH
        node.tokens = [(1000, 5), (1000, 6), (1000, 7)]
        e = params.lam + 6
        ctx, _ = ctx_for(node, services, 2 * e, [(9, CreateBatch((JoinRecord(2, 0.3, e),)))])
        node.on_round(ctx)
        assert node.phase is Phase.ESTABLISHED
        ctx, net = ctx_for(node, services, 2 * e + 2, [])
        node.on_round(ctx)
        from repro.core.messages import ConnectMsg

        net.close_send_phase()
        inboxes, _ = net.deliver(frozenset(range(100)))
        connects = [
            m for msgs in inboxes.values() for _, m in msgs if isinstance(m, ConnectMsg)
        ]
        assert connects  # still bridging the pipeline
