#!/usr/bin/env python3
"""Quickstart: build an LDS, route a message, sample a random peer.

This walks the three layers of the library bottom-up:

1. the Linearized De Bruijn Swarm topology (Definition 5),
2. swarm-to-swarm routing A_ROUTING on a routable series (Section 4),
3. uniform peer sampling A_SAMPLING (Lemma 13).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.config import ProtocolParams
from repro.overlay.lds import LDSGraph
from repro.routing.series import SeriesRouter


def main() -> None:
    params = ProtocolParams(n=128, seed=42)
    print("=== Parameters ===")
    for key, value in params.describe().items():
        print(f"  {key:>22}: {value}")

    # ------------------------------------------------------------------
    # 1. Topology: a random LDS instance.
    # ------------------------------------------------------------------
    rng = np.random.default_rng(42)
    graph = LDSGraph.random(params, rng)
    dmin, dmean, dmax = graph.degree_stats()
    print("\n=== LDS topology ===")
    print(f"  nodes: {len(graph)}, edges: {graph.edge_count()}")
    print(f"  degree min/mean/max: {dmin}/{dmean:.1f}/{dmax}  (Theta(log n))")
    v = int(graph.node_ids[0])
    print(f"  node {v} @ {graph.index.position(v):.4f}")
    print(f"    list neighbours: {len(graph.list_neighbors(v))}")
    print(f"    De Bruijn neighbours: {len(graph.db_neighbors(v))}")
    ok = graph.check_swarm_property(rng.random(10))
    print(f"  swarm property (Lemma 6) holds at 10 random points: {ok}")

    # ------------------------------------------------------------------
    # 2. Routing on a reconfiguring routable series.
    # ------------------------------------------------------------------
    print("\n=== A_ROUTING (Lemma 9) ===")
    router = SeriesRouter(params, seed=42)
    targets = rng.random(10)
    ids = [router.send(int(i * 12), float(t)) for i, t in enumerate(targets)]
    router.run_until_quiet()
    for msg_id in ids:
        out = router.outcomes[msg_id]
        print(
            f"  msg {msg_id} -> {out.msg.target:.4f}: delivered={out.delivered} "
            f"dilation={out.dilation} (expected {params.dilation}) "
            f"receivers={len(out.receivers)}"
        )

    # ------------------------------------------------------------------
    # 3. Uniform peer sampling.
    # ------------------------------------------------------------------
    print("\n=== A_SAMPLING (Lemma 13) ===")
    sampler = SeriesRouter(params, seed=7, reconfigure=False)
    sample_ids = [sampler.send_sample(0) for _ in range(40)]
    sampler.run_until_quiet()
    hits = [
        sampler.outcomes[i].sample_receiver
        for i in sample_ids
        if sampler.outcomes[i].sample_receiver is not None
    ]
    print(f"  40 samples -> {len(hits)} delivered (discard ~1/2 by design)")
    print(f"  sampled peers: {sorted(set(hits))[:12]} ...")


if __name__ == "__main__":
    main()
