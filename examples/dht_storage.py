#!/usr/bin/env python3
"""A DHT that outruns the adversary: store data on a moving target.

The paper's motivation — "search and store information in the network" —
made concrete: key-value pairs are replicated on the swarm responsible for
``h(key)``, and every two rounds, as the whole overlay re-randomises, the
replicas hand the data to the next overlay's responsible swarm.  An
adversary watching the (2-rounds-stale) topology can never tell which nodes
hold which data.

Run:  python examples/dht_storage.py
"""

from __future__ import annotations

from repro.adversary.oblivious import RandomChurnAdversary
from repro.config import ProtocolParams
from repro.core.dht import DHTNode, key_point
from repro.core.runner import MaintenanceSimulation


def replica_count(sim: MaintenanceSimulation, key: str) -> int:
    return sum(1 for v in sim.engine.alive if key in sim.node(v).store)


def main() -> None:
    params = ProtocolParams(
        n=48, c=1.2, r=2, delta=3, tau=8, seed=3, alpha=0.25, kappa=1.25
    )
    adversary = RandomChurnAdversary(params, seed=4)
    sim = MaintenanceSimulation(params, adversary=adversary, node_cls=DHTNode)

    items = {
        "config/root": "v1.0.0",
        "user/alice": {"karma": 42},
        "blob/9f3a": b"\x00\x01\x02".hex(),
    }
    print(f"n={params.n}; storing {len(items)} items, then churning hard...\n")
    sim.run(4)
    for i, (key, value) in enumerate(items.items()):
        sim.node(i).queue_put(key, value)
        print(f"  PUT {key!r} -> swarm at {key_point(key):.4f}")

    sim.run(2 * params.dilation + 6)
    print("\nreplica counts after the PUTs landed:")
    for key in items:
        print(f"  {key!r}: {replica_count(sim, key)} replicas")

    epochs_before = sim.audit_overlay().epoch
    sim.run(60)  # ~30 complete overlay rebuilds under continuous churn
    epochs_after = sim.audit_overlay().epoch
    print(
        f"\n...{epochs_after - epochs_before} complete overlay rebuilds and "
        f"{len(sim.engine.lifecycle.records) - params.n} churn events later:"
    )
    for key in items:
        print(f"  {key!r}: {replica_count(sim, key)} replicas")

    print("\nGET everything back:")
    rids = {key: sim.node(10).queue_get(key) for key in items}
    sim.run(2 * params.dilation + 6)
    ok = True
    for key, rid in rids.items():
        resp = sim.node(10).responses.get(rid)
        good = resp is not None and resp.found and resp.value == items[key]
        ok = ok and good
        print(f"  GET {key!r} -> {resp.value!r} ({'ok' if good else 'MISSING'})")
    assert ok, "data loss!"
    print("\nall items intact — the data moved with the overlay, "
          "always two steps ahead.")


if __name__ == "__main__":
    main()
