#!/usr/bin/env python3
"""The title thesis: why two steps of lateness are exactly enough.

An adversary attacks a routed message using the communication graph it can
see.  We vary (a) the lateness of its topology view and (b) whether the
overlay reconfigures every two rounds, and watch the message live or die:

* lateness 0 — the adversary kills the current holder set: the message dies;
* lateness 2 + reconfiguration — the strike lands on yesterday's overlay:
  the copies have already moved on, the message survives;
* static overlay — a one-shot *region wipe* leaves a permanent hole in the
  ring: messages into that region die forever, while the reconfiguring
  overlay repopulates the region within two rounds.

Run:  python examples/two_steps_ahead.py
"""

from __future__ import annotations

from repro.experiments.e_ablation import holder_strike_delivery, region_wipe_delivery


def main() -> None:
    n, msgs = 256, 10
    print(f"n={n}, {msgs} messages per scenario, one O(log n)-budget strike each\n")

    print("holder strike (kill the holder set the adversary reconstructs):")
    for lateness in (0, 1, 2):
        rate = holder_strike_delivery(lateness, reconfigure=True, n=n, messages=msgs)
        bar = "#" * int(rate * 30)
        print(f"  lateness a={lateness}, reconfiguring overlay : {rate:5.0%} {bar}")

    print("\nregion wipe (kill every node in one arc of the ring):")
    for reconf in (False, True):
        rate = region_wipe_delivery(reconf, n=n, messages=msgs)
        bar = "#" * int(rate * 30)
        label = "reconfiguring" if reconf else "static       "
        print(f"  {label} overlay               : {rate:5.0%} {bar}")

    print(
        "\nconclusion: staleness alone does not save a static overlay, and "
        "reconfiguration alone\ndoes not save you from an up-to-date adversary "
        "— you must always be two steps ahead."
    )


if __name__ == "__main__":
    main()
