#!/usr/bin/env python3
"""The Section 2 impossibility results, live.

Two attacks against a perfectly reasonable gossip overlay:

* **Lemma 3** — an adversary with up-to-date topology knowledge joins a
  victim node and erases everyone who ever communicates with it; the victim
  ends up alone.
* **Lemma 4** — if nodes may join via 1-round-old bootstraps, an adversary
  that never looks at the topology at all partitions the network with a
  chain of joins.  Under the model's 2-round rule, the same attack is
  rejected on its first step.

Run:  python examples/impossibility_attacks.py
"""

from __future__ import annotations

from repro.adversary.budget import ChurnViolation
from repro.adversary.isolate_join import IsolateJoinAdversary
from repro.adversary.join_chain import JoinChainAdversary
from repro.analysis.connectivity import (
    component_of,
    is_connected,
    knowledge_graph_of_gossip,
)
from repro.baselines.gossip import GossipNode
from repro.config import ProtocolParams
from repro.sim.engine import Engine


def gossip_engine(params, adversary, join_min_age=2):
    eng = Engine(
        params,
        lambda v, s: GossipNode(v, s),
        adversary=adversary,
        join_min_age=join_min_age,
    )
    eng.seed_nodes(range(params.n))
    for v in range(params.n):
        eng.protocol_of(v).seed_known({(v + d) % params.n for d in range(1, 4)})
    return eng


def lemma3_demo() -> None:
    print("=== Lemma 3: isolating a fresh node with up-to-date topology ===")
    params = ProtocolParams(
        n=32, alpha=0.5, kappa=1.5, seed=3,
        churn_budget_override=64, churn_window_override=16,
    )
    adv = IsolateJoinAdversary(params, seed=4, topology_lateness=1)
    eng = gossip_engine(params, adv)
    eng.run(8)
    print(f"  helper v = {adv.helper_id} joined, victim w = {adv.victim_id} joined via v")
    eng.run(62)
    knows = knowledge_graph_of_gossip(eng)
    comp = component_of(knows, adv.victim_id)
    print(f"  after {eng.round} rounds: victim's component = {sorted(comp)}")
    print(f"  network connected: {is_connected(knows)}")
    print(f"  every node w ever talked to was churned before it could act.\n")


def lemma4_demo() -> None:
    print("=== Lemma 4: the chain-of-joins attack ===")
    params = ProtocolParams(
        n=24, alpha=0.5, kappa=1.5, seed=5,
        churn_budget_override=200, churn_window_override=10,
    )

    print("  -- weakened model: bootstraps may be 1 round old --")
    adv = JoinChainAdversary(params, seed=6, erosion_batch=2)
    eng = gossip_engine(params, adv, join_min_age=1)
    eng.run(120)
    knows = knowledge_graph_of_gossip(eng)
    head = adv.chain_head
    comp = component_of(knows, head)
    print(f"  chain length {len(adv.chain)}, V_0 eroded: {adv.eroded_all(eng.alive)}")
    print(f"  chain head {head}'s component: {sorted(comp)} (alone with its sponsor)")
    print(f"  network connected: {is_connected(knows)}")

    print("  -- proper model: bootstraps must be >= 2 rounds old --")
    adv2 = JoinChainAdversary(params, seed=6)
    eng2 = gossip_engine(params, adv2, join_min_age=2)
    try:
        eng2.run(120)
        print("  (unexpected: attack was not rejected)")
    except ChurnViolation as exc:
        print(f"  attack rejected by the model: {exc}")


if __name__ == "__main__":
    lemma3_demo()
    lemma4_demo()
