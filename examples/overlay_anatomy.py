#!/usr/bin/env python3
"""Overlay anatomy: see the LDS, the Chord transfer, and a rebuild — in text.

Renders the ring density, one node's Definition-5 arcs (Figure 1 in ASCII),
the Chord-swarm finger arcs of the same node, and how the whole population
scatters between two consecutive overlay epochs (the adversary's problem).

Run:  python examples/overlay_anatomy.py
"""

from __future__ import annotations

import numpy as np

from repro.config import ProtocolParams
from repro.overlay.chordswarm import ChordSwarmGraph, chord_finger_arcs
from repro.overlay.lds import LDSGraph
from repro.util.ringviz import render_arcs, render_density, render_node_anatomy
from repro.util.rngs import RngService


def main() -> None:
    params = ProtocolParams(n=96, seed=11)
    rng = np.random.default_rng(11)
    graph = LDSGraph.random(params, rng)
    v = int(graph.node_ids[len(graph) // 3])

    print("=== Figure 1, in ASCII: one LDS node's neighbourhood arcs ===")
    print(render_node_anatomy(graph, v, width=72))
    print(
        f"\n  degree of node {v}: {graph.degree(v)} "
        f"({len(graph.list_neighbors(v))} list + {len(graph.db_neighbors(v))} De Bruijn)"
    )

    print("\n=== The Chord-swarm transfer: same node, finger arcs ===")
    chord = ChordSwarmGraph(graph.index, params)
    p = graph.index.position(v)
    arcs = {
        f"finger 2^-{i}": arc
        for i, arc in enumerate(chord_finger_arcs(p, params), start=1)
        if i <= 5
    }
    print(render_arcs(arcs, width=72))
    print(f"  chord degree of node {v}: {int(chord.neighbors(v).size)}")

    print("\n=== Reconfiguration: the same nodes, two consecutive epochs ===")
    h = RngService(11).position_hash()
    epoch3 = {w: h.position(w, 3) for w in range(params.n)}
    center = epoch3[v]
    cluster = [
        w
        for w, q in epoch3.items()
        if min(abs(q - center), 1 - abs(q - center)) <= 0.06
    ]
    for epoch in (3, 4):
        positions = {w: h.position(w, epoch) for w in cluster}
        print(f"epoch {epoch}: positions of the {len(cluster)} nodes clustered "
              f"around node {v} in epoch 3")
        print(render_density(positions, width=72))
    print(
        "\nthe cluster the adversary saw in epoch 3 is uniformly scattered in "
        "epoch 4 —\nits 2-rounds-stale knowledge points at nothing."
    )


if __name__ == "__main__":
    main()
