#!/usr/bin/env python3
"""Churn survival: run the full maintenance protocol against an adversary.

The paper's headline scenario (Theorem 14): a (2, O(log n))-late adversary
churns the network at the maximum rate the model allows while the protocol
rebuilds the entire overlay every two rounds.  We watch the overlay's health
live: established fraction, Definition-5 edge coverage, probe delivery.

Run:  python examples/churn_survival.py [--adversary random|contact|degree]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.adversary.oblivious import RandomChurnAdversary
from repro.adversary.swarm_wipe import ContactTraceAdversary, DegreeTargetAdversary
from repro.config import ProtocolParams
from repro.core.runner import MaintenanceSimulation


def make_adversary(name: str, params: ProtocolParams):
    if name == "random":
        return RandomChurnAdversary(params, seed=2)
    if name == "contact":
        return ContactTraceAdversary(params, victim=0, seed=2, topology_lateness=2)
    if name == "degree":
        return DegreeTargetAdversary(params, seed=2, top=6, topology_lateness=2)
    raise SystemExit(f"unknown adversary {name!r}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--adversary", default="random", choices=["random", "contact", "degree"]
    )
    parser.add_argument("--n", type=int, default=48)
    parser.add_argument("--chunks", type=int, default=8)
    args = parser.parse_args()

    params = ProtocolParams(
        n=args.n, c=1.2, r=2, delta=3, tau=8, seed=1, alpha=0.25, kappa=1.25
    )
    adversary = make_adversary(args.adversary, params)
    sim = MaintenanceSimulation(params, adversary=adversary)
    rng = np.random.default_rng(0)

    print(
        f"n={params.n}, lam={params.lam}, adversary={args.adversary} "
        f"(2-late, budget {params.churn_budget}/{params.churn_window} rounds), "
        f"bootstrap {params.bootstrap_rounds} rounds"
    )
    print(
        f"{'round':>6} {'alive':>6} {'established':>12} {'coverage':>9} "
        f"{'probes':>9} {'demotions':>10} {'peak msgs':>10}"
    )
    probe_ids: list = []
    for chunk in range(args.chunks):
        sim.run(12)
        if chunk >= 1:
            probe_ids.extend(sim.send_probes(4, rng))
        health = sim.health_summary()
        audit = sim.audit_overlay()
        probe = sim.probe_report(probe_ids)
        print(
            f"{sim.round:>6} {int(health['alive']):>6} "
            f"{health['established_fraction']:>12.2f} "
            f"{audit.edge_coverage:>9.3f} "
            f"{probe.delivered:>4}/{probe.launched:<4} "
            f"{int(health['total_demotions']):>10} "
            f"{int(health['peak_congestion']):>10}"
        )
    # Let the last probes land and print the verdict.
    sim.run(2 * params.dilation)
    probe = sim.probe_report(probe_ids)
    print(
        f"\nfinal: delivery {probe.delivery_rate:.2%} "
        f"({probe.delivered}/{probe.launched} probes, "
        f"mean {probe.mean_receivers:.1f} receivers each), "
        f"coverage {sim.audit_overlay().edge_coverage:.3f}"
    )
    assert probe.delivery_rate >= 0.95, "routability violated!"
    print("the overlay stayed routable — two steps ahead of the adversary.")


if __name__ == "__main__":
    main()
