#!/usr/bin/env python3
"""A uniform peer-sampling service on the LDS (the King–Saia use case).

Many P2P protocols (aggregation, load balancing, random walks) need a
"give me a uniformly random live peer" primitive.  A_SAMPLING provides it on
the LDS with O(log n) dilation, even while the overlay reconfigures every
two rounds.  This example measures the empirical distribution against the
uniform law and prints a histogram + chi-square verdict.

Run:  python examples/peer_sampling_service.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.estimators import chi_square_uniform, wilson_interval
from repro.config import ProtocolParams
from repro.routing.series import SeriesRouter


def main() -> None:
    params = ProtocolParams(n=96, c=1.5, r=2, seed=5)
    router = SeriesRouter(params, seed=5)  # reconfiguring overlay
    rng = np.random.default_rng(11)

    batches, per_batch = 12, 96
    print(f"requesting {batches * per_batch} uniform peer samples on n={params.n} ...")
    for _ in range(batches):
        for v in range(per_batch):
            router.send_sample(int(rng.integers(0, params.n)))
    router.run_until_quiet()

    outcomes = list(router.outcomes.values())
    counts = np.zeros(params.n)
    for o in outcomes:
        if o.sample_receiver is not None:
            counts[o.sample_receiver] += 1
    hits = int(counts.sum())
    discard = wilson_interval(len(outcomes) - hits, len(outcomes))
    stat, pvalue = chi_square_uniform(counts)

    print(f"delivered: {hits}/{len(outcomes)} "
          f"(discard rate {discard.rate:.2f}, Lemma 13 bound ~1/2)")
    print(f"chi-square vs uniform: stat={stat:.1f}, p={pvalue:.3f} "
          f"({'uniform not rejected' if pvalue > 0.01 else 'REJECTED'})")

    print("\nper-node sample counts (16 buckets of 6 nodes):")
    buckets = counts.reshape(16, -1).sum(axis=1)
    peak = buckets.max()
    for i, b in enumerate(buckets):
        bar = "#" * int(30 * b / peak)
        print(f"  nodes {6*i:>2}-{6*i+5:<2}: {int(b):>4} {bar}")


if __name__ == "__main__":
    main()
