"""The Lemma 3 attack: isolate a freshly joined node with up-to-date topology.

Strategy (Section 2, proof of Lemma 3), against *any* overlay protocol:

1. Join a throwaway node ``v``.
2. Two rounds later, join the victim ``w`` via ``v`` — at that moment only
   ``v`` (and whoever ``v`` talks to) can know ``w``'s id.
3. From then on, watch the topology and churn out every node that
   communicates with ``w`` before it can pass ``w``'s id along, plus ``v``
   itself.  Paired joins keep the population legal.

With up-to-date topology knowledge (``topology_lateness <= 1`` — the newest
complete round's edges), the id of ``w`` can never escape: every courier dies
before acting, and once ``w``'s own contacts are gone it is disconnected.
With the paper's 2-late adversary the couriers get one full round to spread
``w``'s id — enough, for the LDS maintenance algorithm, to win forever.
"""

from __future__ import annotations

import numpy as np

from repro.adversary.base import Adversary, ChurnDecision, JoinRequest
from repro.adversary.view import AdversaryView
from repro.config import ProtocolParams

__all__ = ["IsolateJoinAdversary"]


class IsolateJoinAdversary(Adversary):
    """Scripted Lemma-3 isolation attack."""

    state_lateness = 10**9  # fully oblivious of internal state

    def __init__(
        self,
        params: ProtocolParams,
        seed: int = 0,
        *,
        start_round: int = 4,
        topology_lateness: int = 1,
        erosion_batch: int = 3,
    ) -> None:
        super().__init__(active_from=start_round)
        self.params = params
        self.topology_lateness = topology_lateness
        self.erosion_batch = erosion_batch
        self.rng = np.random.default_rng(seed)
        self.helper_id: int | None = None  # v
        self.victim_id: int | None = None  # w
        self.victim_join_round: int | None = None
        self._hunted_through = -1
        self._pending_victims: set[int] = set()
        self.initial_population: frozenset[int] | None = None
        self._remaining_v0: set[int] = set()

    # ------------------------------------------------------------------

    def _paired_joins(
        self,
        view: AdversaryView,
        count: int,
        forbidden: frozenset[int],
        avoid: frozenset[int] = frozenset(),
    ) -> tuple[JoinRequest, ...]:
        """Replacement joins via old nodes, preferring ones uninvolved with
        the victim (``avoid``); falls back to involved ones, never to
        ``forbidden`` (nodes dying this round or the victim itself)."""
        eligible = view.eligible_bootstraps() - forbidden
        preferred = sorted(eligible - avoid)
        fallback = sorted(eligible & avoid)
        self.rng.shuffle(preferred)
        self.rng.shuffle(fallback)
        pool = preferred + fallback
        cap = self.params.max_joins_per_bootstrap
        picked: list[int] = []
        use_counts: dict[int, int] = {}
        for w in pool * cap:
            if len(picked) == count:
                break
            if use_counts.get(w, 0) < cap:
                use_counts[w] = use_counts.get(w, 0) + 1
                picked.append(w)
        if len(picked) < count:
            return ()
        base = view.fresh_id()
        return tuple(JoinRequest(base + i, int(w)) for i, w in enumerate(picked))

    def eroded_all(self, view_alive: frozenset[int]) -> bool:
        """Whether every original node has been churned out."""
        return self.initial_population is not None and not (
            self._remaining_v0 & set(view_alive)
        )

    def decide(self, view: AdversaryView) -> ChurnDecision:
        t = view.round
        if self.initial_population is None:
            self.initial_population = frozenset(view.alive)
            self._remaining_v0 = set(view.alive)

        # Phase 1: join the helper v.
        if self.helper_id is None:
            boots = sorted(view.eligible_bootstraps())
            if not boots:
                return ChurnDecision.none()
            self.helper_id = view.fresh_id()
            w = int(self.rng.choice(boots))
            return ChurnDecision(joins=(JoinRequest(self.helper_id, w),))

        # Phase 2: two rounds later, join the victim w via v.
        if self.victim_id is None:
            if view.age_of(self.helper_id) < 2:
                return ChurnDecision.none()
            self.victim_id = view.fresh_id()
            self.victim_join_round = t
            return ChurnDecision(joins=(JoinRequest(self.victim_id, self.helper_id),))

        # Phase 3a: hunt every node that communicates with w.  Couriers are
        # killed before they receive (the up-to-date-topology advantage);
        # victims that do not fit this round's budget stay pending.
        newest = view.newest_visible_topology_round()
        for s in range(
            max(self._hunted_through + 1, self.victim_join_round), newest + 1
        ):
            self._pending_victims |= view.contacts_of(s, self.victim_id)
        self._hunted_through = newest
        if self.helper_id in view.alive:
            self._pending_victims.add(self.helper_id)
        self._pending_victims &= set(view.alive)
        self._pending_victims.discard(self.victim_id)

        # Kills must leave enough >=2-round-old bootstraps for the paired
        # replacement joins: with fan-in cap ``c``, k kills need
        # (E - k) * c >= k, i.e. k <= c*E/(c+1).
        budget = view.budget_remaining or 0
        eligible = view.eligible_bootstraps() - {self.victim_id}
        cap = self.params.max_joins_per_bootstrap
        k_max = min(budget // 2, (cap * len(eligible)) // (cap + 1))

        kills: list[int] = sorted(self._pending_victims)[:k_max]

        # Phase 3b: erode V_0 with leftover capacity (the proof's second
        # strategy — w's own references all point into V_0-era nodes), at a
        # modest pace so bootstrap supply never runs dry.
        leftover = min(k_max - len(kills), self.erosion_batch)
        if leftover > 0:
            erodable = sorted(
                (self._remaining_v0 & set(view.alive))
                - set(kills)
                - {self.victim_id}
            )
            self.rng.shuffle(erodable)
            kills.extend(erodable[:leftover])

        if not kills:
            return ChurnDecision.none()
        kill_set = frozenset(kills)
        joins = self._paired_joins(
            view,
            len(kills),
            forbidden=kill_set | {self.victim_id},
            avoid=frozenset(self._pending_victims),
        )
        if len(joins) < len(kills):
            return ChurnDecision.none()
        self._pending_victims -= kill_set
        self._remaining_v0 -= kill_set
        return ChurnDecision(leaves=kill_set, joins=joins)
