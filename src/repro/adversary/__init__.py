"""Adversaries: the (a,b)-late view, churn budget, and attack strategies."""

from repro.adversary.base import Adversary, ChurnDecision, JoinRequest, NullAdversary
from repro.adversary.budget import ChurnLedger, ChurnViolation
from repro.adversary.composed import ComposedAdversary
from repro.adversary.content_late import ContentLateAdversary
from repro.adversary.isolate_join import IsolateJoinAdversary
from repro.adversary.join_chain import JoinChainAdversary
from repro.adversary.oblivious import RandomChurnAdversary, paced_schedule
from repro.adversary.swarm_wipe import ContactTraceAdversary, DegreeTargetAdversary
from repro.adversary.view import AdversaryView, LatenessViolation

__all__ = [
    "Adversary",
    "AdversaryView",
    "ChurnDecision",
    "ChurnLedger",
    "ChurnViolation",
    "ComposedAdversary",
    "ContactTraceAdversary",
    "ContentLateAdversary",
    "DegreeTargetAdversary",
    "IsolateJoinAdversary",
    "JoinChainAdversary",
    "JoinRequest",
    "LatenessViolation",
    "NullAdversary",
    "RandomChurnAdversary",
    "paced_schedule",
]
