"""Churn-budget enforcement — the model's constraints on the adversary.

The engine validates every :class:`ChurnDecision` against:

* **churn rate** ``(C, T)``: at most ``C = alpha*n`` join/leave events inside
  any sliding window of ``T`` rounds (this implies the paper's stability
  requirement ``|V_{t+T} ∩ V_t| >= (1 - alpha) n``);
* **size bounds**: ``|V_t| in [n, kappa*n]`` after the decision is applied;
* **leave validity**: only nodes of ``V_{t-1}`` can leave;
* **join rule**: every bootstrap node must be in ``V_t ∩ V_{t-2}`` — it is
  alive, at least 2 rounds old, and not itself leaving or joining this round
  (Section 2 proves 2 rounds is necessary);
* **join fan-in**: at most a constant number of joins per bootstrap node and
  round;
* **id freshness**: new ids must never have been used.

A violating decision raises :class:`ChurnViolation`; the engine converts it
into a no-op and notifies the adversary, so buggy attack strategies fail loud
in tests but cannot crash long experiment runs.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.adversary.base import ChurnDecision
from repro.config import ProtocolParams

if TYPE_CHECKING:  # pragma: no cover - avoids a sim <-> adversary import cycle
    from repro.sim.identity import Lifecycle

__all__ = ["ChurnViolation", "ChurnLedger"]


class ChurnViolation(ValueError):
    """A churn decision broke one of the model constraints."""


class ChurnLedger:
    """Sliding-window churn accounting plus structural validation."""

    def __init__(self, params: ProtocolParams, join_min_age: int = 2) -> None:
        if join_min_age < 1:
            raise ValueError("join_min_age must be at least 1")
        self.params = params
        #: Minimum age (rounds) of a bootstrap node.  The model requires 2;
        #: the Lemma 4 experiment relaxes it to 1 to show why 2 is necessary.
        self.join_min_age = join_min_age
        self._window: deque[tuple[int, int]] = deque()  # (round, churn_count)
        self._spent_in_window = 0

    # ------------------------------------------------------------------
    # Budget queries
    # ------------------------------------------------------------------

    def _evict(self, t: int) -> None:
        horizon = t - self.params.churn_window + 1
        while self._window and self._window[0][0] < horizon:
            _, count = self._window.popleft()
            self._spent_in_window -= count

    def remaining(self, t: int) -> int:
        """Budget still available in the window ending at round ``t``."""
        self._evict(t)
        return max(0, self.params.churn_budget - self._spent_in_window)

    # ------------------------------------------------------------------
    # Validation + commit
    # ------------------------------------------------------------------

    def validate(
        self, t: int, decision: ChurnDecision, lifecycle: "Lifecycle"
    ) -> None:
        """Raise :class:`ChurnViolation` if the decision is illegal at round ``t``."""
        p = self.params
        if decision.churn_count > self.remaining(t):
            raise ChurnViolation(
                f"round {t}: decision spends {decision.churn_count} churn events "
                f"but only {self.remaining(t)} remain in the {p.churn_window}-round window"
            )

        alive = lifecycle.alive
        for v in decision.leaves:
            if v not in alive:
                raise ChurnViolation(f"round {t}: cannot churn out {v}: not alive")

        new_ids = [j.new_id for j in decision.joins]
        if len(set(new_ids)) != len(new_ids):
            raise ChurnViolation(f"round {t}: duplicate new ids in join set")
        joining = set(new_ids)
        fan_in: dict[int, int] = {}
        for j in decision.joins:
            if j.new_id in lifecycle.records:
                raise ChurnViolation(
                    f"round {t}: id {j.new_id} was already used; ids are immutable"
                )
            w = j.bootstrap_id
            if w in joining:
                raise ChurnViolation(
                    f"round {t}: bootstrap {w} is itself joining this round"
                )
            if w in decision.leaves:
                raise ChurnViolation(
                    f"round {t}: bootstrap {w} is leaving this round"
                )
            if w not in alive:
                raise ChurnViolation(f"round {t}: bootstrap {w} is not alive")
            # V_t ∩ V_{t-2}: the bootstrap joined at round t-2 or earlier
            # (t-1 in the deliberately weakened Lemma-4 configuration).
            if lifecycle.joined_round(w) > t - self.join_min_age:
                raise ChurnViolation(
                    f"round {t}: bootstrap {w} joined at round "
                    f"{lifecycle.joined_round(w)}; must be >= {self.join_min_age} "
                    f"rounds old"
                )
            fan_in[w] = fan_in.get(w, 0) + 1
            if fan_in[w] > p.max_joins_per_bootstrap:
                raise ChurnViolation(
                    f"round {t}: more than {p.max_joins_per_bootstrap} joins via {w}"
                )

        size_after = len(alive) - len(decision.leaves) + len(decision.joins)
        if size_after < p.n:
            raise ChurnViolation(
                f"round {t}: decision would shrink the network to {size_after} < n={p.n}"
            )
        if size_after > p.max_nodes:
            raise ChurnViolation(
                f"round {t}: decision would grow the network to {size_after} "
                f"> kappa*n={p.max_nodes}"
            )

    def commit(self, t: int, decision: ChurnDecision) -> None:
        """Record an applied decision against the sliding window."""
        self._evict(t)
        if decision.churn_count:
            self._window.append((t, decision.churn_count))
            self._spent_in_window += decision.churn_count
