"""The content-lateness attack — why ``b`` must exceed ``2*lam + 4``.

The adversary is ``(a, b)``-late: topology after ``a`` rounds, *everything
else* — including message contents — after ``b`` rounds.  The maintenance
protocol's security argument (Lemma 16) silently needs the content lag to
exceed the join pipeline's depth: a JOIN launched at round ``2s`` carries the
position for epoch ``s + lam + 2``, which only becomes the live overlay at
round ``2s + 2*lam + 4``.  An adversary that can read that message's content
at round ``2s + b`` with ``b < 2*lam + 4`` therefore learns a **future**
overlay — and can kill every member of one of its swarms before it even
exists, leaving a hole no goodness argument can patch.

:class:`ContentLateAdversary` models the decryption capability directly: it
holds the position hash (what reading the JOIN payloads reveals) but may
only evaluate it for epochs whose join contents are at least ``b`` rounds
old, i.e. ``2*(e - lam - 2) + b <= t``.  If that set contains a *future*
epoch (``2e > t``), it wipes one of its swarms.  With the paper's
``b = 2*lam + 7`` the readable epochs are all already expired and the
adversary has nothing to act on.
"""

from __future__ import annotations

import numpy as np

from repro.adversary.base import Adversary, ChurnDecision, JoinRequest
from repro.adversary.view import AdversaryView
from repro.config import ProtocolParams
from repro.util.rngs import PositionHash

__all__ = ["ContentLateAdversary"]


class ContentLateAdversary(Adversary):
    """Wipes a future swarm whenever the content lag ``b`` lets it see one."""

    topology_lateness = 2

    def __init__(
        self,
        params: ProtocolParams,
        position_hash: PositionHash,
        seed: int = 0,
        *,
        state_lateness: int,
        active_from: int | None = None,
        target_point: float = 0.5,
    ) -> None:
        super().__init__(
            active_from=params.bootstrap_rounds if active_from is None else active_from
        )
        self.params = params
        self.state_lateness = state_lateness
        self._hash = position_hash  # what decrypting JOIN payloads reveals
        self.rng = np.random.default_rng(seed)
        self.target_point = target_point
        self.wipes: list[tuple[int, int, int]] = []  # (round, epoch, kills)

    # ------------------------------------------------------------------

    def readable_epochs(self, t: int) -> range:
        """Epochs whose JOIN contents are at least ``b`` rounds old at ``t``.

        The join for epoch ``e`` is launched at round ``2*(e - lam - 2)``,
        so its content becomes readable at ``2*(e - lam - 2) + b``.
        """
        lam = self.params.lam
        e_max = (t - self.state_lateness) // 2 + lam + 2
        return range(0, max(0, e_max + 1))

    def decide(self, view: AdversaryView) -> ChurnDecision:
        t = view.round
        lam = self.params.lam
        # The newest epoch whose contents we can read:
        readable = self.readable_epochs(t)
        if not readable:
            return ChurnDecision.none()
        e = readable[-1]
        if 2 * e + 1 < t:
            # Everything we can read has already expired — the paper's
            # parameterisation.  Nothing useful to do.
            return ChurnDecision.none()
        # We know a CURRENT or FUTURE overlay (D_e lives in rounds 2e and
        # 2e+1).  Wipe the swarm of `target_point` in it: a future swarm is
        # empty at birth; a current one loses every in-flight hop it holds.
        members = [
            v
            for v in view.alive
            if min(
                abs(self._hash.position(v, e) - self.target_point),
                1 - abs(self._hash.position(v, e) - self.target_point),
            )
            <= self.params.swarm_radius
        ]
        budget = view.budget_remaining or 0
        boots = sorted(view.eligible_bootstraps() - set(members))
        kill_count = min(len(members), budget // 2, len(boots))
        if kill_count < max(2, len(members) // 2):
            return ChurnDecision.none()  # not enough budget to matter yet
        kills = frozenset(sorted(members)[:kill_count])
        picked = self.rng.choice(boots, size=kill_count, replace=False)
        base = view.fresh_id()
        joins = tuple(JoinRequest(base + i, int(w)) for i, w in enumerate(picked))
        self.wipes.append((t, e, kill_count))
        return ChurnDecision(leaves=kills, joins=joins)
