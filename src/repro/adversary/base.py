"""Adversary interface.

At the start of every round the engine asks the adversary for a
:class:`ChurnDecision` — which nodes leave (``O_t ⊆ V_{t-1}``) and which join
(each with a bootstrap node from ``V_t ∩ V_{t-2}``).  The adversary only sees
the world through an :class:`~repro.adversary.view.AdversaryView`, which
clamps topology knowledge to ``a`` rounds of lateness, and every decision is
validated against the churn budget before it is applied.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.adversary.view import AdversaryView

__all__ = ["JoinRequest", "ChurnDecision", "Adversary", "NullAdversary"]


@dataclass(frozen=True)
class JoinRequest:
    """One new node joining via a bootstrap node."""

    new_id: int
    bootstrap_id: int


@dataclass(frozen=True)
class ChurnDecision:
    """The adversary's action for one round."""

    leaves: frozenset[int] = frozenset()
    joins: tuple[JoinRequest, ...] = ()

    @property
    def churn_count(self) -> int:
        """Join/leave events this decision spends from the budget."""
        return len(self.leaves) + len(self.joins)

    @staticmethod
    def none() -> "ChurnDecision":
        return ChurnDecision()


class Adversary(abc.ABC):
    """Base class for churn adversaries.

    ``active_from`` implements the bootstrap phase: the engine does not
    consult the adversary before that round.

    ``topology_lateness`` / ``state_lateness`` declare how stale the
    adversary's view is (the paper's ``a`` and ``b``); the engine reads them
    directly when building the :class:`~repro.adversary.view.AdversaryView`.
    The defaults — 2-late on topology, effectively oblivious of internal
    state — are the model the maintenance algorithm is proved against;
    subclasses override them (as class or instance attributes) to study
    other lateness regimes.
    """

    topology_lateness: int = 2
    state_lateness: int = 10**9

    def __init__(self, active_from: int = 0) -> None:
        self.active_from = active_from

    @abc.abstractmethod
    def decide(self, view: "AdversaryView") -> ChurnDecision:
        """Choose this round's churn given the (lateness-clamped) view."""

    def notify_rejected(self, decision: ChurnDecision, reason: str) -> None:
        """Called when a decision violated the budget and was discarded.

        Well-behaved adversaries never trigger this; subclasses may override
        to adapt.  The default is silent (the engine records the rejection).
        """


class NullAdversary(Adversary):
    """No churn at all (useful for routing-only experiments)."""

    def decide(self, view: "AdversaryView") -> ChurnDecision:
        return ChurnDecision.none()
