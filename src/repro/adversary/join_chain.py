"""The Lemma 4 attack: exploit joins via 1-round-old bootstrap nodes.

This attack needs the *weakened* model in which a node that joined in round
``t-1`` may already serve as a bootstrap in round ``t`` (run the engine with
``join_min_age=1``).  The adversary is ``(∞, ∞)``-late — it never looks at
the topology at all:

1. **Chain strategy**: every round, join a new node via the previous chain
   node and churn the previous-but-one chain node out.  Inductively, each
   chain node's knowledge is a subset of ``D_1 ∪ {predecessor}`` where
   ``D_1`` is whatever the very first bootstrap handed over — information
   from the live network can never catch up with the chain's head.
2. **Erosion strategy**: in parallel, churn out the original population
   ``V_0`` batch by batch (with paired replacement joins elsewhere).

Once all of ``V_0`` is gone, the chain head knows only dead nodes and nobody
alive knows the chain head: the network is partitioned.  Under the proper
model (bootstraps ≥ 2 rounds old) the same adversary cannot even take its
first chain step — which is the point of the join rule.
"""

from __future__ import annotations

import numpy as np

from repro.adversary.base import Adversary, ChurnDecision, JoinRequest
from repro.adversary.view import AdversaryView
from repro.config import ProtocolParams

__all__ = ["JoinChainAdversary"]


class JoinChainAdversary(Adversary):
    """Scripted Lemma-4 chain-of-joins attack (oblivious to topology)."""

    topology_lateness = 10**9  # never inspects the topology
    state_lateness = 10**9

    def __init__(
        self,
        params: ProtocolParams,
        seed: int = 0,
        *,
        start_round: int = 4,
        erosion_batch: int = 2,
    ) -> None:
        super().__init__(active_from=start_round)
        self.params = params
        self.rng = np.random.default_rng(seed)
        self.erosion_batch = erosion_batch
        self.chain: list[int] = []
        self.initial_population: frozenset[int] | None = None
        self._remaining_v0: set[int] = set()

    @property
    def chain_head(self) -> int | None:
        return self.chain[-1] if self.chain else None

    def eroded_all(self, alive: frozenset[int] | set[int]) -> bool:
        """Whether every original node has been churned out."""
        return self.initial_population is not None and not (
            self._remaining_v0 & set(alive)
        )

    def decide(self, view: AdversaryView) -> ChurnDecision:
        if self.initial_population is None:
            self.initial_population = frozenset(view.alive)
            self._remaining_v0 = set(view.alive)

        leaves: set[int] = set()
        joins: list[JoinRequest] = []
        next_id = view.fresh_id()
        budget = view.budget_remaining or 0

        # --- Chain strategy -------------------------------------------
        if budget >= 2:
            if not self.chain:
                boots = sorted(set(view.alive) & self._remaining_v0)
                if boots:
                    head = next_id
                    next_id += 1
                    joins.append(JoinRequest(head, int(self.rng.choice(boots))))
                    self.chain.append(head)
                    budget -= 1
            else:
                head = self.chain[-1]
                if head in view.alive:
                    new_head = next_id
                    next_id += 1
                    joins.append(JoinRequest(new_head, head))
                    self.chain.append(new_head)
                    budget -= 1
                    # Kill the predecessor of the old head (the proof's
                    # "churned out immediately after v_{i+1} joined").
                    if len(self.chain) >= 3 and self.chain[-3] in view.alive:
                        leaves.add(self.chain[-3])
                        budget -= 1

        # --- Erosion strategy ------------------------------------------
        erode = sorted(self._remaining_v0 & set(view.alive))
        self.rng.shuffle(erode)
        # Replacement joins may bootstrap via any old node (including V_0 —
        # replacements need not be isolated, only the chain head must be).
        boots_pool = sorted(view.eligible_bootstraps() - set(self.chain))
        for v in erode[: self.erosion_batch]:
            if budget < 2:
                break
            # Each erosion kill is paired with a replacement join via a
            # non-V0, non-chain node (if none exists yet, erosion waits).
            boots_pool = [w for w in boots_pool if w != v and w not in leaves]
            if not boots_pool:
                break
            leaves.add(v)
            joins.append(JoinRequest(next_id, int(self.rng.choice(boots_pool))))
            next_id += 1
            budget -= 2

        for v in leaves:
            self._remaining_v0.discard(v)
        if not leaves and not joins:
            return ChurnDecision.none()
        return ChurnDecision(leaves=frozenset(leaves), joins=tuple(joins))
