"""Oblivious (uniform-random) churn, paced to the model's budget.

The weakest adversary: churns out uniformly random nodes and churns in fresh
replacements, never consulting its view.  Useful as the background-churn
workload for Theorem 14 runs and as the control against targeted attacks.
"""

from __future__ import annotations

import math

import numpy as np

from repro.adversary.base import Adversary, ChurnDecision, JoinRequest
from repro.adversary.view import AdversaryView
from repro.config import ProtocolParams

__all__ = ["RandomChurnAdversary", "paced_schedule"]


def paced_schedule(params: ProtocolParams, intensity: float = 1.0) -> tuple[int, int]:
    """``(pairs, interval)``: churn ``pairs`` leave+join pairs every ``interval`` rounds.

    Sized so the sliding-window budget ``(alpha*n, T)`` is used at the given
    ``intensity`` (1.0 = the maximum the model permits, 0.5 = half, ...)
    without ever tripping the ledger.
    """
    if not 0.0 < intensity <= 1.0:
        raise ValueError(f"intensity must be in (0, 1], got {intensity}")
    budget = max(2, int(params.churn_budget * intensity))
    window = params.churn_window
    # Each firing spends 2*pairs events; the worst case packs
    # floor((window-1)/interval) + 1 firings into one sliding window.
    pairs = max(1, budget // 6)
    allowed_firings = max(1, budget // (2 * pairs))
    if allowed_firings == 1:
        interval = window
    else:
        interval = math.ceil((window - 1) / (allowed_firings - 1))
    return pairs, max(1, interval)


class RandomChurnAdversary(Adversary):
    """Budget-paced uniform random leave+join churn."""

    topology_lateness = 2

    def __init__(
        self,
        params: ProtocolParams,
        seed: int = 0,
        *,
        intensity: float = 1.0,
        active_from: int | None = None,
        protect: frozenset[int] = frozenset(),
    ) -> None:
        super().__init__(
            active_from=params.bootstrap_rounds if active_from is None else active_from
        )
        self.params = params
        self.rng = np.random.default_rng(seed)
        self.pairs, self.interval = paced_schedule(params, intensity)
        self.protect = protect
        self._fired_at: int | None = None

    def decide(self, view: AdversaryView) -> ChurnDecision:
        t = view.round
        if self._fired_at is not None and t - self._fired_at < self.interval:
            return ChurnDecision.none()
        if view.budget_remaining is not None and view.budget_remaining < 2 * self.pairs:
            return ChurnDecision.none()
        eligible_leave = sorted(view.alive - self.protect)
        eligible_boot = sorted(view.eligible_bootstraps() - self.protect)
        if len(eligible_leave) <= self.pairs or not eligible_boot:
            return ChurnDecision.none()
        self._fired_at = t
        victims = self.rng.choice(eligible_leave, size=self.pairs, replace=False)
        leaves = frozenset(int(v) for v in victims)
        joins = []
        next_id = view.fresh_id()
        boots = [w for w in eligible_boot if w not in leaves]
        if len(boots) < self.pairs:
            return ChurnDecision.none()
        # Distinct bootstraps keep the per-node join fan-in at 1.
        picked = self.rng.choice(boots, size=self.pairs, replace=False)
        for i, w in enumerate(picked):
            joins.append(JoinRequest(next_id + i, int(w)))
        return ChurnDecision(leaves=leaves, joins=tuple(joins))
