"""The (a, b)-late adversary view — lateness made mechanical.

An ``(a, b)``-late omniscient adversary at round ``t`` may see:

* the **topology** — graphs ``G_0 .. G_{t-a}`` (who messaged whom);
* **everything else** (internal state, message contents, random choices) only
  up to round ``t-b``.

It also knows, by construction, the current node population and every node's
age — the adversary itself performs all churn, so hiding ``V_t`` from it
would be meaningless.  What stays hidden is what the paper's analysis relies
on: node *positions* and in-flight message *contents* (we simply expose no
state accessor below lateness ``b``; the position hash key never reaches the
adversary).

Requesting a round newer than the lateness bound raises
:class:`LatenessViolation` — attacks that "work" only by peeking fail loudly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - avoids a sim <-> adversary import cycle
    from repro.sim.identity import Lifecycle
    from repro.sim.trace import GraphTrace

__all__ = ["LatenessViolation", "AdversaryView"]


class LatenessViolation(RuntimeError):
    """The adversary asked for information newer than its lateness permits."""


class AdversaryView:
    """What one adversary is allowed to observe at the current round."""

    def __init__(
        self,
        t: int,
        trace: GraphTrace,
        lifecycle: Lifecycle,
        *,
        topology_lateness: int,
        state_lateness: int,
        budget_remaining: int | None = None,
    ) -> None:
        # The lateness bounds are keyword-only on purpose: `repro flow`
        # recognises this constructor as the one sanitizer that may carry
        # live state across the wall, and only when both keywords are
        # spelled out at the call site.
        if topology_lateness < 0 or state_lateness < 0:
            raise ValueError("lateness values must be non-negative")
        self.round = t
        self._trace = trace
        self._lifecycle = lifecycle
        self.topology_lateness = topology_lateness
        self.state_lateness = state_lateness
        #: Churn events still available in the current (C, T) window.  The
        #: adversary knows the rules it plays under; exposing the ledger
        #: balance only saves it from mirroring the bookkeeping.
        self.budget_remaining = budget_remaining

    # ------------------------------------------------------------------
    # Population knowledge (the adversary performs the churn itself)
    # ------------------------------------------------------------------

    @property
    def alive(self) -> frozenset[int]:
        """``V_{t-1}`` — the population before this round's churn."""
        return self._lifecycle.alive

    def age_of(self, v: int) -> int:
        """Rounds since node ``v`` joined."""
        return self._lifecycle.age(v, self.round)

    def eligible_bootstraps(self) -> set[int]:
        """Alive nodes that are at least 2 rounds old (legal join targets)."""
        return self._lifecycle.alive_since(self.round, 2)

    def fresh_id(self) -> int:
        """A never-used node id for churning in a new node."""
        return self._lifecycle.next_id()

    # ------------------------------------------------------------------
    # Topology knowledge (a-late)
    # ------------------------------------------------------------------

    def newest_visible_topology_round(self) -> int:
        return self.round - self.topology_lateness

    def _check_topology(self, s: int) -> None:
        if s > self.newest_visible_topology_round():
            raise LatenessViolation(
                f"adversary is {self.topology_lateness}-late on topology: "
                f"round {s} not visible at round {self.round}"
            )

    def edges_at(self, s: int) -> list[tuple[int, int]]:
        """``E_s`` if visible and still in the trace buffer, else empty."""
        self._check_topology(s)
        return self._trace.edges_at(s) or []

    def contacts_of(self, s: int, v: int) -> set[int]:
        """Everyone who communicated with ``v`` in round ``s`` (if visible)."""
        self._check_topology(s)
        return self._trace.contacts_of(s, v)

    def out_neighbors_of(self, s: int, v: int) -> set[int]:
        self._check_topology(s)
        return self._trace.out_neighbors_at(s, v)

    def degree_table(self, s: int) -> dict[int, int]:
        """Per-node message-degree in round ``s`` (if visible)."""
        self._check_topology(s)
        degrees: dict[int, int] = {}
        for src, dst in self._trace.edges_at(s) or []:
            degrees[src] = degrees.get(src, 0) + 1
            degrees[dst] = degrees.get(dst, 0) + 1
        return degrees
