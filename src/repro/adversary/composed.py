"""Composition of several adversaries into one churn stream.

Scenario runs often pair a background workload (uniform random churn) with
a targeted attack (degree targeting, contact tracing).  The engine accepts
exactly one adversary, so :class:`ComposedAdversary` merges the decisions
of its children each round:

* **leaves** are unioned;
* **joins** are concatenated in child order, with every ``new_id``
  *re-based* onto fresh ids from the live view — children allocate ids
  independently and would otherwise collide — and joins whose bootstrap
  node is being churned out by another child are dropped (a join via a
  leaving node is invalid by construction);
* **lateness** is the most-capable child's: the composed adversary is as
  early as its earliest child on each axis (``min`` of the latenesses),
  matching the model where one adversary orchestrates several strategies;
* **activation** is the earliest child's ``active_from``; children that
  are not yet active simply contribute nothing.

The merged decision can overspend the budget even when every child alone
is paced — scenario runs therefore use ``strict_budget=False``, where an
overspent round is rejected (and :meth:`notify_rejected` fans out to the
children) instead of raising.
"""

from __future__ import annotations

from repro.adversary.base import Adversary, ChurnDecision, JoinRequest
from repro.adversary.view import AdversaryView

__all__ = ["ComposedAdversary"]


class ComposedAdversary(Adversary):
    """Union of several sub-adversaries' churn decisions."""

    def __init__(self, *children: Adversary) -> None:
        if not children:
            raise ValueError("ComposedAdversary needs at least one child")
        super().__init__(active_from=min(c.active_from for c in children))
        self.children = tuple(children)
        self.topology_lateness = min(c.topology_lateness for c in children)
        self.state_lateness = min(c.state_lateness for c in children)

    def decide(self, view: AdversaryView) -> ChurnDecision:
        t = view.round
        decisions = [
            c.decide(view) for c in self.children if t >= c.active_from
        ]
        leaves: set[int] = set()
        for d in decisions:
            leaves.update(d.leaves)
        joins: list[JoinRequest] = []
        next_id = view.fresh_id()
        for d in decisions:
            for j in d.joins:
                if j.bootstrap_id in leaves:
                    continue  # another child churned the bootstrap out
                joins.append(JoinRequest(next_id, j.bootstrap_id))
                next_id += 1
        if not leaves and not joins:
            return ChurnDecision.none()
        return ChurnDecision(leaves=frozenset(leaves), joins=tuple(joins))

    def notify_rejected(self, decision: ChurnDecision, reason: str) -> None:
        for c in self.children:
            c.notify_rejected(decision, reason)
