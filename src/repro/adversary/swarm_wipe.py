"""Targeted (a)-late attacks against the maintained overlay.

Two strategies that use the stale topology view as aggressively as the model
allows — the attacks Theorem 14 claims the maintenance algorithm survives:

* :class:`ContactTraceAdversary` — picks a victim node and churns out, every
  round, everything seen communicating with the victim ``a`` rounds ago.
  Against a static overlay this erases the victim's neighbourhood; against
  the 2-round reconfiguration the information is two overlays stale.
* :class:`DegreeTargetAdversary` — churns out the nodes with the highest
  communication degree in ``G_{t-a}`` (a "kill the hubs" heuristic; in the
  LDS all nodes look alike, which is the point).

Both pace themselves against the ``(C, T)`` budget and pair every kill with
a replacement join.
"""

from __future__ import annotations

import numpy as np

from repro.adversary.base import Adversary, ChurnDecision, JoinRequest
from repro.adversary.view import AdversaryView
from repro.config import ProtocolParams

__all__ = ["ContactTraceAdversary", "DegreeTargetAdversary"]


class _PairedKillAdversary(Adversary):
    """Shared machinery: kill a chosen set, join replacements, stay legal."""

    state_lateness = 10**9

    def __init__(
        self,
        params: ProtocolParams,
        seed: int = 0,
        *,
        topology_lateness: int = 2,
        active_from: int | None = None,
    ) -> None:
        super().__init__(
            active_from=params.bootstrap_rounds if active_from is None else active_from
        )
        self.params = params
        self.topology_lateness = topology_lateness
        self.rng = np.random.default_rng(seed)

    def _choose_victims(self, view: AdversaryView) -> set[int]:  # pragma: no cover
        raise NotImplementedError

    def decide(self, view: AdversaryView) -> ChurnDecision:
        victims = self._choose_victims(view) & set(view.alive)
        if not victims:
            return ChurnDecision.none()
        budget = view.budget_remaining or 0
        kill_count = min(len(victims), budget // 2)
        if kill_count == 0:
            return ChurnDecision.none()
        kills = set(sorted(victims)[:kill_count])
        boots = sorted(view.eligible_bootstraps() - kills)
        if len(boots) < kill_count:
            return ChurnDecision.none()
        picked = self.rng.choice(boots, size=kill_count, replace=False)
        base = view.fresh_id()
        joins = tuple(JoinRequest(base + i, int(w)) for i, w in enumerate(picked))
        return ChurnDecision(leaves=frozenset(kills), joins=joins)


class ContactTraceAdversary(_PairedKillAdversary):
    """Churn out everyone seen talking to the victim ``a`` rounds ago."""

    def __init__(self, params: ProtocolParams, victim: int, seed: int = 0, **kw) -> None:
        super().__init__(params, seed, **kw)
        self.victim = victim

    def _choose_victims(self, view: AdversaryView) -> set[int]:
        if self.victim not in view.alive:
            return set()
        s = view.newest_visible_topology_round()
        if s < 0:
            return set()
        contacts = view.contacts_of(s, self.victim)
        contacts.discard(self.victim)
        return contacts


class DegreeTargetAdversary(_PairedKillAdversary):
    """Churn out the highest-degree nodes of the stale topology view."""

    def __init__(self, params: ProtocolParams, seed: int = 0, top: int = 8, **kw) -> None:
        super().__init__(params, seed, **kw)
        self.top = top

    def _choose_victims(self, view: AdversaryView) -> set[int]:
        s = view.newest_visible_topology_round()
        if s < 0:
            return set()
        degrees = view.degree_table(s)
        ranked = sorted(degrees, key=degrees.__getitem__, reverse=True)
        return set(ranked[: self.top])
