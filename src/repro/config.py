"""Protocol parameters and derived quantities.

One frozen dataclass, :class:`ProtocolParams`, carries every constant of the
paper's model and algorithms:

* model constants: ``n`` (lower bound on network size), ``kappa`` (so that
  ``|V_t| in [n, kappa*n]``), ``alpha`` (churn fraction), ``whp_exponent``
  (the tunable ``k`` in "w.h.p. = 1 - 1/n^k");
* topology constants: the swarm robustness parameter ``c`` (swarm radius is
  ``c * lam / n``), with list radius ``2c*lam/n`` and De Bruijn radius
  ``3c*lam/(2n)`` exactly as in Definition 5;
* algorithm constants: ``r`` (copies per forwarding hop of A_ROUTING),
  ``delta`` (connections each fresh node maintains, Theta(log n)), ``tau``
  (tokens each mature node emits per round, Theta(log n));
* the goodness threshold (the paper uses 3/4 in Definition 8).

Derived quantities (``lam``, radii, maturity age ``lambda_prime``, churn
window, adversary lateness) are exposed as properties so that every module
computes them the same way.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, replace
from typing import Any

from repro.util.bits import num_address_bits

__all__ = ["ProtocolParams", "default_params", "env_flag"]


def env_flag(name: str) -> bool:
    """True when environment variable ``name`` holds a truthy value.

    The single sanctioned entry point for boolean feature flags (the D5
    lint rule confines ``os.environ`` reads to this module): flags read
    here configure *instrumentation* — e.g. ``REPRO_SHARD_SANITIZE`` —
    never anything that feeds a fingerprint.
    """
    return os.environ.get(name, "").strip().lower() in ("1", "true", "yes", "on")


@dataclass(frozen=True)
class ProtocolParams:
    """All constants of the model and algorithms; see module docstring.

    The defaults follow Section 5: ``alpha = 1/16``, ``kappa = 1 + 1/16``.
    ``delta`` and ``tau`` default to ``Theta(log n)`` scalings calibrated by
    the ablation experiment (E-AB in DESIGN.md); pass explicit values to
    override.
    """

    n: int
    kappa: float = 1.0 + 1.0 / 16.0
    alpha: float = 1.0 / 16.0
    c: float = 1.5
    r: int = 2
    delta: int | None = None
    tau: int | None = None
    goodness: float = 0.75
    whp_exponent: int = 1
    seed: int = 0
    # Explicit churn-rate overrides.  The model only demands C = Theta(n) and
    # T = Theta(log n); the Section-2 impossibility proofs pick their own
    # constants, so experiments may override the Section-5 defaults.
    churn_budget_override: int | None = None
    churn_window_override: int | None = None

    def __post_init__(self) -> None:
        if self.n < 8:
            raise ValueError(f"n must be at least 8, got {self.n}")
        if not 1.0 <= self.kappa <= 2.0:
            raise ValueError(f"kappa must lie in [1, 2], got {self.kappa}")
        if not 0.0 < self.alpha < 1.0:
            raise ValueError(f"alpha must lie in (0, 1), got {self.alpha}")
        if self.c <= 0:
            raise ValueError(f"c must be positive, got {self.c}")
        if self.r < 1:
            raise ValueError(f"r must be at least 1, got {self.r}")
        if not 0.0 < self.goodness < 1.0:
            raise ValueError(f"goodness must lie in (0, 1), got {self.goodness}")
        if self.delta is not None and self.delta < 1:
            raise ValueError(f"delta must be at least 1, got {self.delta}")
        if self.tau is not None and self.tau < 1:
            raise ValueError(f"tau must be at least 1, got {self.tau}")

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    @property
    def lam(self) -> int:
        """Address width ``lam = ceil(log2(kappa * n))`` (the paper's lambda)."""
        return num_address_bits(self.n, self.kappa)

    @property
    def swarm_radius(self) -> float:
        """Swarm ``S(p)`` radius ``c * lam / n``."""
        return self.c * self.lam / self.n

    @property
    def list_radius(self) -> float:
        """List-edge radius ``2 * c * lam / n`` (Definition 5, E_L)."""
        return 2.0 * self.swarm_radius

    @property
    def debruijn_radius(self) -> float:
        """Long-distance edge radius ``3/2 * c * lam / n`` (Definition 5, E_DB)."""
        return 1.5 * self.swarm_radius

    @property
    def expected_swarm_size(self) -> float:
        """``E[|S(p)|] = 2 * c * lam`` at density n (lower bound on density)."""
        return 2.0 * self.c * self.lam

    # ------------------------------------------------------------------
    # Algorithms
    # ------------------------------------------------------------------

    @property
    def delta_eff(self) -> int:
        """Fresh-node connection count delta (Theta(log n) default)."""
        return self.delta if self.delta is not None else max(3, self.lam)

    @property
    def tau_eff(self) -> int:
        """Tokens per mature node per cycle (Theta(log n) default).

        Each fresh node consumes ``delta`` tokens per cycle and each join
        consumes ``2 * delta``; tokens are also thinned by the A_SAMPLING
        discard (~1/2) and the keep-or-forward coin (~1/2), so the default
        provides a 4x surplus.
        """
        return self.tau if self.tau is not None else 4 * self.delta_eff

    @property
    def sampling_rank_range(self) -> int:
        """Range of the rank offset Delta in A_SAMPLING.

        Chosen as ``ceil(2 * E[|S|]) = ceil(4 * c * lam)`` so that the swarm
        size exceeds the range only with probability ``1/n^k`` (preserving
        uniformity) while the discard probability stays at most ~1/2 as in
        Lemma 13.
        """
        return math.ceil(2.0 * self.expected_swarm_size)

    @property
    def dilation(self) -> int:
        """Rounds from send to delivery under A_ROUTING: exactly ``2*lam + 2``."""
        return 2 * self.lam + 2

    # ------------------------------------------------------------------
    # Maintenance timing (Section 5)
    # ------------------------------------------------------------------

    @property
    def lambda_prime(self) -> int:
        """Maturity age ``lam' = 2*lam + 4`` rounds (Section 5)."""
        return 2 * self.lam + 4

    @property
    def bootstrap_rounds(self) -> int:
        """Length of the churn-free bootstrap phase, ``2*lam + 7``."""
        return 2 * self.lam + 7

    @property
    def lateness(self) -> tuple[int, int]:
        """The adversary the maintenance algorithm tolerates: ``(2, 2*lam+7)``-late."""
        return (2, 2 * self.lam + 7)

    @property
    def churn_window(self) -> int:
        """Churn window ``T = 4*lam + 14`` rounds (Section 5 default)."""
        if self.churn_window_override is not None:
            return self.churn_window_override
        return 4 * self.lam + 14

    @property
    def churn_budget(self) -> int:
        """Join/leave budget per window: ``alpha * n`` by default."""
        if self.churn_budget_override is not None:
            return self.churn_budget_override
        return max(1, int(self.alpha * self.n))

    @property
    def max_nodes(self) -> int:
        """Upper bound ``kappa * n`` on the live node count."""
        return int(math.floor(self.kappa * self.n))

    @property
    def max_joins_per_bootstrap(self) -> int:
        """How many new nodes may join via the same node per round (constant)."""
        return 2

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def with_updates(self, **kwargs: Any) -> "ProtocolParams":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)

    def describe(self) -> dict[str, Any]:
        """All raw and derived parameters as a flat dict (for reports)."""
        return {
            "n": self.n,
            "kappa": self.kappa,
            "alpha": self.alpha,
            "c": self.c,
            "r": self.r,
            "delta": self.delta_eff,
            "tau": self.tau_eff,
            "goodness": self.goodness,
            "lam": self.lam,
            "swarm_radius": self.swarm_radius,
            "list_radius": self.list_radius,
            "debruijn_radius": self.debruijn_radius,
            "expected_swarm_size": self.expected_swarm_size,
            "dilation": self.dilation,
            "lambda_prime": self.lambda_prime,
            "bootstrap_rounds": self.bootstrap_rounds,
            "lateness": self.lateness,
            "churn_window": self.churn_window,
            "churn_budget": self.churn_budget,
            "max_nodes": self.max_nodes,
            "seed": self.seed,
        }


def default_params(n: int, seed: int = 0, **overrides: Any) -> ProtocolParams:
    """The standard parameterisation used by tests, examples and benchmarks."""
    return ProtocolParams(n=n, seed=seed, **overrides)
