"""Overlay health auditing — structured degradation events, not crashes.

Under fault injection the interesting question is no longer *whether* the
LDS survives but *when and how* it degrades.  :class:`HealthMonitor` audits
three invariants at the end of every engine round and records a
:class:`DegradationEvent` for each violation instead of raising:

* **swarm occupancy** — every sampled point of the ``[0, 1)`` ring has at
  least one established node within the swarm radius (an empty swarm means
  routed messages targeting that region are undeliverable);
* **list-edge symmetry** — for established nodes of the same epoch,
  ``w in v.d_nbrs`` implies ``v in w.d_nbrs`` (Definition 5's edge sets are
  symmetric; asymmetry means a cutover delivered a one-sided view);
* **weak connectivity** — the undirected communication graph over the last
  two rounds (one full overlay cycle) connects all mature alive nodes; a
  second component means part of the network can no longer be reached.

The monitor is duck-typed against the protocol: nodes exposing ``pos``,
``epoch`` and ``d_nbrs`` (i.e. :class:`repro.core.node.MaintenanceNode`)
get the structural audits; any protocol gets the connectivity audit, which
only needs the engine's graph trace.  All audits are pure reads — attaching
a monitor never changes the run it observes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis.connectivity import components
from repro.config import ProtocolParams

if TYPE_CHECKING:
    from repro.sim.engine import Engine

__all__ = ["DegradationEvent", "HealthMonitor"]


@dataclass(frozen=True)
class DegradationEvent:
    """One invariant violation observed at the end of a round."""

    round: int
    kind: str  # "empty-swarm" | "asymmetric-list" | "disconnected"
    severity: str  # "warn" | "critical"
    detail: str


class HealthMonitor:
    """Per-round invariant auditor accumulating a degradation event stream."""

    #: Minimum node age (rounds) for the connectivity audit — newcomers
    #: legitimately receive nothing in their join round and may not have
    #: sent anything yet, so they would be false-positive singletons.
    MATURITY_AGE = 2

    def __init__(
        self,
        params: ProtocolParams,
        *,
        sample_points: int = 16,
        every: int = 1,
    ) -> None:
        if sample_points < 1:
            raise ValueError(f"sample_points must be >= 1, got {sample_points}")
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.params = params
        self.sample_points = sample_points
        self.every = every
        self.events: list[DegradationEvent] = []
        self.rounds_observed = 0
        self.degraded_rounds = 0
        self._last_observed_round: int | None = None

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------

    @property
    def first_degradation_round(self) -> int | None:
        """Round of the first recorded event (``None`` = never degraded)."""
        return self.events[0].round if self.events else None

    @property
    def last_degradation_round(self) -> int | None:
        """Round of the most recent event (``None`` = never degraded)."""
        return self.events[-1].round if self.events else None

    @property
    def degraded_round_fraction(self) -> float:
        """Fraction of audited rounds that recorded at least one event."""
        if not self.rounds_observed:
            return 0.0
        return self.degraded_rounds / self.rounds_observed

    @property
    def time_to_recover(self) -> int | None:
        """Clean rounds between the last event and the end of observation.

        ``None`` when the run never degraded, or when the last audited
        round still recorded an event (the run ended un-recovered).
        """
        last = self.last_degradation_round
        if last is None or self._last_observed_round is None:
            return None
        gap = self._last_observed_round - last
        return gap if gap > 0 else None

    def counts_by_kind(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for ev in self.events:
            out[ev.kind] = out.get(ev.kind, 0) + 1
        return out

    def summary(self) -> dict[str, object]:
        return {
            "events": len(self.events),
            "first_degradation_round": self.first_degradation_round,
            "degraded_round_fraction": self.degraded_round_fraction,
            "time_to_recover": self.time_to_recover,
            **{f"events_{k}": v for k, v in sorted(self.counts_by_kind().items())},
        }

    # ------------------------------------------------------------------
    # The per-round audit (called by the engine after metrics)
    # ------------------------------------------------------------------

    def observe(self, engine: Engine, t: int) -> tuple[DegradationEvent, ...]:
        """Audit round ``t`` and return (and record) any new events."""
        if t % self.every:
            return ()
        if not engine.alive:
            # Nothing to audit: with no alive nodes, every invariant is
            # vacuous and any event would be spurious.  Skip the round
            # without counting it as observed.
            return ()
        self.rounds_observed += 1
        self._last_observed_round = t
        new: list[DegradationEvent] = []
        overlay = self._overlay_snapshot(engine)
        if overlay:
            new.extend(self._audit_swarm_occupancy(t, overlay))
            new.extend(self._audit_list_symmetry(t, overlay))
        new.extend(self._audit_connectivity(engine, t))
        if new:
            self.degraded_rounds += 1
        self.events.extend(new)
        return tuple(new)

    # ------------------------------------------------------------------
    # Individual audits
    # ------------------------------------------------------------------

    def _overlay_snapshot(self, engine: Engine) -> dict[int, tuple[float, int, dict]]:
        """``{id: (pos, epoch, d_nbrs)}`` of current-epoch established nodes."""
        nodes: dict[int, tuple[float, int, dict]] = {}
        for v in engine.alive:
            proto = engine.protocol_of(v)
            pos = getattr(proto, "pos", None)
            epoch = getattr(proto, "epoch", None)
            if pos is None or epoch is None:
                continue
            nodes[v] = (float(pos), int(epoch), getattr(proto, "d_nbrs", {}))
        if not nodes:
            return {}
        # Audit only the newest epoch a plurality of nodes agree on —
        # stragglers mid-cutover are the demotion machinery's business.
        epochs: dict[int, int] = {}
        for _, e, _ in nodes.values():
            epochs[e] = epochs.get(e, 0) + 1
        current = max(epochs, key=lambda e: (epochs[e], e))
        return {v: ne for v, ne in nodes.items() if ne[1] == current}

    def _audit_swarm_occupancy(
        self, t: int, overlay: dict[int, tuple[float, int, dict]]
    ) -> list[DegradationEvent]:
        radius = self.params.swarm_radius
        positions = sorted(pos for pos, _, _ in overlay.values())
        empty: list[float] = []
        for i in range(self.sample_points):
            point = i / self.sample_points
            if not any(
                min(abs(p - point), 1.0 - abs(p - point)) <= radius
                for p in positions
            ):
                empty.append(point)
        if not empty:
            return []
        return [
            DegradationEvent(
                round=t,
                kind="empty-swarm",
                severity="critical",
                detail=(
                    f"{len(empty)}/{self.sample_points} sampled points have an "
                    f"empty swarm (first at {empty[0]:.4f})"
                ),
            )
        ]

    def _audit_list_symmetry(
        self, t: int, overlay: dict[int, tuple[float, int, dict]]
    ) -> list[DegradationEvent]:
        asymmetric = 0
        checked = 0
        for v, (_, _, nbrs) in overlay.items():
            for w in nbrs:
                if w in overlay:
                    checked += 1
                    if v not in overlay[w][2]:
                        asymmetric += 1
        if not asymmetric:
            return []
        return [
            DegradationEvent(
                round=t,
                kind="asymmetric-list",
                severity="warn",
                detail=f"{asymmetric}/{checked} overlay edges lack their reverse",
            )
        ]

    def _audit_connectivity(self, engine: Engine, t: int) -> list[DegradationEvent]:
        mature = {
            v
            for v in engine.alive
            if t - engine.lifecycle.joined_round(v) >= self.MATURITY_AGE
        }
        if len(mature) < 2:
            return []
        knows: dict[int, set[int]] = {v: set() for v in mature}
        any_edges = False
        for rnd in (t - 1, t):
            edges = engine.trace.edges_at(rnd)
            if not edges:
                continue
            for src, dst in edges:
                if src in mature and dst in mature:
                    knows[src].add(dst)
                    any_edges = True
        if not any_edges:
            # A fully silent window is no evidence of a partition (e.g. the
            # very first round, before any protocol message exists).
            return []
        comps = components(knows)
        if len(comps) <= 1:
            return []
        sizes = sorted((len(c) for c in comps), reverse=True)
        return [
            DegradationEvent(
                round=t,
                kind="disconnected",
                severity="critical",
                detail=(
                    f"communication graph split into {len(comps)} components "
                    f"(sizes {sizes[:5]}{'...' if len(sizes) > 5 else ''})"
                ),
            )
        ]
