"""Declarative, seed-reproducible fault plans.

A :class:`FaultPlan` describes *environmental* faults — conditions of the
network and the machines, outside the adversary's churn budget — as a
composition of six rule families:

* :class:`MessageFaults` — per-message omission (drop with probability
  ``drop_p``), latency (delay by ``delay_rounds`` extra rounds with
  probability ``delay_p``) and duplication (``duplicate_p``);
* :class:`NodeStall` — transient compute stalls: an affected node skips its
  compute phase for the rounds where the rule fires (it stays alive and its
  in-flight messages are unaffected, but its inbox for the stalled round is
  lost and it sends nothing);
* :class:`RingPartition` — a position cut on the ``[0, 1)`` ring: while
  active, every message whose endpoints lie on opposite sides of the arc
  ``[lo, hi)`` is blocked;
* :class:`RateCap` — a per-node send budget per round: copies beyond the
  cap are not lost but *deferred* deterministically, spilling over into
  later rounds at ``limit`` copies per round (a congested uplink);
* :class:`LatencyMatrix` — regional delay classes: the ring is divided
  into equal position bands and every message pays the extra latency of
  its ``(source band, destination band)`` entry (geographic distance);
* :class:`AsymmetricPartition` — a one-way cut: messages from inside the
  arc ``[lo, hi)`` to the outside are blocked while the reverse direction
  still flows (a half-broken uplink).

Every rule carries an activity window ``[start, end)`` in rounds (``end``
``None`` = forever).  The plan itself is pure data; all randomness lives in
:class:`repro.faults.injector.FaultInjector`, which derives per-event
decisions from the plan ``seed`` with a keyed PRF — the same seed and plan
always produce the identical fault schedule, independent of any other RNG
stream in the simulation.  ``to_json``/``from_json`` round-trip a plan
through plain JSON data so experiment records can embed the exact plan
they ran under.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any, Mapping

__all__ = [
    "MessageFaults",
    "NodeStall",
    "RingPartition",
    "RateCap",
    "LatencyMatrix",
    "AsymmetricPartition",
    "FaultPlan",
]


def _check_probability(name: str, p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {p}")


def _check_window(start: int, end: int | None) -> None:
    if start < 0:
        raise ValueError(f"window start must be >= 0, got {start}")
    if end is not None and end <= start:
        raise ValueError(f"window end must exceed start, got [{start}, {end})")


def _rule_to_json(rule: Any, kind: str) -> dict[str, Any]:
    """One rule as a JSON-ready dict (frozensets become sorted lists)."""
    doc: dict[str, Any] = {"kind": kind}
    for f in fields(rule):
        value = getattr(rule, f.name)
        if isinstance(value, frozenset):
            value = sorted(value)
        elif isinstance(value, tuple):
            value = [list(row) if isinstance(row, tuple) else row for row in value]
        doc[f.name] = value
    return doc


def _rule_from_json(cls: type, doc: Mapping[str, Any], kind: str) -> Any:
    """Inverse of :func:`_rule_to_json`; validates via the constructor."""
    if doc.get("kind", kind) != kind:
        raise ValueError(f"expected a {kind!r} rule, got kind {doc.get('kind')!r}")
    names = {f.name for f in fields(cls)}
    unknown = set(doc) - names - {"kind"}
    if unknown:
        raise ValueError(f"{kind} rule has unknown fields {sorted(unknown)}")
    kwargs = {}
    for f in fields(cls):
        if f.name not in doc:
            continue
        value = doc[f.name]
        if f.name == "nodes" and value is not None:
            value = frozenset(int(v) for v in value)
        elif f.name == "delays":
            value = tuple(tuple(int(d) for d in row) for row in value)
        kwargs[f.name] = value
    return cls(**kwargs)


def _shifted(rule: Any, offset: int) -> Any:
    """A copy of ``rule`` with its activity window shifted by ``offset``."""
    if offset == 0:
        return rule
    return replace(
        rule,
        start=rule.start + offset,
        end=None if rule.end is None else rule.end + offset,
    )


class _RuleJson:
    """Shared JSON round-trip for the rule dataclasses (see ``_KIND``)."""

    _KIND = ""  # overridden per rule class

    def to_json(self) -> dict[str, Any]:
        return _rule_to_json(self, self._KIND)

    @classmethod
    def from_json(cls, doc: Mapping[str, Any]) -> Any:
        return _rule_from_json(cls, doc, cls._KIND)

    def shifted(self, offset: int) -> Any:
        """A copy with the activity window shifted ``offset`` rounds later."""
        return _shifted(self, offset)


@dataclass(frozen=True)
class MessageFaults(_RuleJson):
    """Message-level faults applied independently to every unicast receiver."""

    _KIND = "message"

    drop_p: float = 0.0
    delay_p: float = 0.0
    delay_rounds: int = 1
    duplicate_p: float = 0.0
    start: int = 0
    end: int | None = None

    def __post_init__(self) -> None:
        _check_probability("drop_p", self.drop_p)
        _check_probability("delay_p", self.delay_p)
        _check_probability("duplicate_p", self.duplicate_p)
        if self.delay_rounds < 1:
            raise ValueError(f"delay_rounds must be >= 1, got {self.delay_rounds}")
        _check_window(self.start, self.end)

    def active(self, t: int) -> bool:
        return t >= self.start and (self.end is None or t < self.end)

    @property
    def is_trivial(self) -> bool:
        return self.drop_p == 0.0 and self.delay_p == 0.0 and self.duplicate_p == 0.0


@dataclass(frozen=True)
class NodeStall(_RuleJson):
    """Transient stalls: each eligible node skips compute w.p. ``stall_p``."""

    _KIND = "stall"

    stall_p: float = 0.0
    nodes: frozenset[int] | None = None  # None = every alive node is eligible
    start: int = 0
    end: int | None = None

    def __post_init__(self) -> None:
        _check_probability("stall_p", self.stall_p)
        _check_window(self.start, self.end)
        if self.nodes is not None:
            object.__setattr__(self, "nodes", frozenset(int(v) for v in self.nodes))

    def active(self, t: int) -> bool:
        return t >= self.start and (self.end is None or t < self.end)

    def eligible(self, v: int) -> bool:
        return self.nodes is None or v in self.nodes

    @property
    def is_trivial(self) -> bool:
        return self.stall_p == 0.0


@dataclass(frozen=True)
class RingPartition(_RuleJson):
    """Block every message crossing the position cut of the arc ``[lo, hi)``.

    Node positions are evaluated with the shared position hash for the
    current epoch (``e = t // 2``), matching the 2-round overlay cadence —
    the partition separates *regions of the ring*, not fixed node ids, just
    as a geographic cut would.
    """

    lo: float
    hi: float
    start: int = 0
    end: int | None = None

    _KIND = "partition"

    def __post_init__(self) -> None:
        if not 0.0 <= self.lo < 1.0 or not 0.0 <= self.hi < 1.0:
            raise ValueError(f"cut endpoints must lie in [0, 1), got [{self.lo}, {self.hi})")
        if self.lo == self.hi:
            raise ValueError("cut arc must be non-empty")
        _check_window(self.start, self.end)

    def active(self, t: int) -> bool:
        return t >= self.start and (self.end is None or t < self.end)

    def inside(self, p: float) -> bool:
        """Whether position ``p`` lies inside the arc (wrap-aware)."""
        if self.lo < self.hi:
            return self.lo <= p < self.hi
        return p >= self.lo or p < self.hi


@dataclass(frozen=True)
class RateCap(_RuleJson):
    """Per-node send budget: copies beyond ``limit`` per round are deferred.

    While active, each eligible node may send at most ``limit`` message
    copies per round.  Overflow copies are **never lost**: the ``i``-th
    copy beyond the cap (1-indexed) is deferred by
    ``ceil(i / limit) * defer_rounds`` extra rounds — the backlog drains
    deterministically at ``limit`` copies per subsequent round, exactly
    like a token-bucket uplink with no burst allowance.  The deferral
    depends only on the (deterministic) send order, so the schedule is
    reproducible bit-for-bit and needs no PRF coins.

    ``limit=None`` means unlimited (the trivial rule); ``nodes=None``
    makes every node eligible.
    """

    _KIND = "ratecap"

    limit: int | None = None
    defer_rounds: int = 1
    nodes: frozenset[int] | None = None
    start: int = 0
    end: int | None = None

    def __post_init__(self) -> None:
        if self.limit is not None and self.limit < 1:
            raise ValueError(f"limit must be >= 1 (or None), got {self.limit}")
        if self.defer_rounds < 1:
            raise ValueError(f"defer_rounds must be >= 1, got {self.defer_rounds}")
        _check_window(self.start, self.end)
        if self.nodes is not None:
            object.__setattr__(self, "nodes", frozenset(int(v) for v in self.nodes))

    def active(self, t: int) -> bool:
        return t >= self.start and (self.end is None or t < self.end)

    def eligible(self, v: int) -> bool:
        return self.nodes is None or v in self.nodes

    @property
    def is_trivial(self) -> bool:
        return self.limit is None


@dataclass(frozen=True)
class LatencyMatrix(_RuleJson):
    """Regional delay classes keyed by ring position bands.

    The ``[0, 1)`` ring is divided into ``len(delays)`` equal arcs
    ("bands"); a message from a node in band ``i`` to a node in band ``j``
    pays ``delays[i][j]`` extra rounds of latency while the rule is active.
    Band membership follows the epoch position hash (``e = t // 2``), so
    the regions are regions *of the ring* — a node changes band when its
    position changes, just as the :class:`RingPartition` cut does.

    Purely deterministic (no PRF coins): the same pair of bands always
    pays the same latency, modelling geographic distance classes rather
    than jitter (compose with :class:`MessageFaults` for jitter).
    """

    _KIND = "latency"

    delays: tuple[tuple[int, ...], ...] = ((0,),)
    start: int = 0
    end: int | None = None

    def __post_init__(self) -> None:
        rows = tuple(tuple(int(d) for d in row) for row in self.delays)
        object.__setattr__(self, "delays", rows)
        if not rows:
            raise ValueError("delays must have at least one band")
        if any(len(row) != len(rows) for row in rows):
            raise ValueError(
                f"delays must be square, got {len(rows)} rows of widths "
                f"{[len(r) for r in rows]}"
            )
        if any(d < 0 for row in rows for d in row):
            raise ValueError("delays must be non-negative")
        _check_window(self.start, self.end)

    @property
    def bands(self) -> int:
        return len(self.delays)

    def active(self, t: int) -> bool:
        return t >= self.start and (self.end is None or t < self.end)

    def band_of(self, p: float) -> int:
        """The band index of ring position ``p`` (wrap-safe clamp)."""
        return min(int(p * self.bands), self.bands - 1)

    def delay_between(self, p_src: float, p_dst: float) -> int:
        return self.delays[self.band_of(p_src)][self.band_of(p_dst)]

    @property
    def is_trivial(self) -> bool:
        return all(d == 0 for row in self.delays for d in row)


@dataclass(frozen=True)
class AsymmetricPartition(_RuleJson):
    """One-way cut: the arc ``[lo, hi)`` can receive but not send out.

    While active, every message whose *source* position lies inside the
    arc and whose *destination* lies outside is blocked; the reverse
    direction (outside → inside) and both same-side directions flow
    normally.  Positions follow the epoch hash exactly like
    :class:`RingPartition`.  Models asymmetric reachability — a region
    whose uplink failed while its downlink still works.
    """

    _KIND = "asymmetric"

    lo: float
    hi: float
    start: int = 0
    end: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.lo < 1.0 or not 0.0 <= self.hi < 1.0:
            raise ValueError(f"cut endpoints must lie in [0, 1), got [{self.lo}, {self.hi})")
        if self.lo == self.hi:
            raise ValueError("cut arc must be non-empty")
        _check_window(self.start, self.end)

    def active(self, t: int) -> bool:
        return t >= self.start and (self.end is None or t < self.end)

    def inside(self, p: float) -> bool:
        """Whether position ``p`` lies inside the arc (wrap-aware)."""
        if self.lo < self.hi:
            return self.lo <= p < self.hi
        return p >= self.lo or p < self.hi

    def blocks(self, p_src: float, p_dst: float) -> bool:
        """Whether a message from ``p_src`` to ``p_dst`` is blocked."""
        return self.inside(p_src) and not self.inside(p_dst)


#: JSON ``kind`` tag -> (rule class, FaultPlan field name), in schema order.
_RULE_FAMILIES: dict[str, tuple[type, str]] = {
    "message": (MessageFaults, "messages"),
    "stall": (NodeStall, "stalls"),
    "partition": (RingPartition, "partitions"),
    "ratecap": (RateCap, "ratecaps"),
    "latency": (LatencyMatrix, "latencies"),
    "asymmetric": (AsymmetricPartition, "asymmetric"),
}


@dataclass(frozen=True)
class FaultPlan:
    """A composition of fault rules plus the seed of their PRF schedule."""

    seed: int = 0
    messages: tuple[MessageFaults, ...] = ()
    stalls: tuple[NodeStall, ...] = ()
    partitions: tuple[RingPartition, ...] = ()
    ratecaps: tuple[RateCap, ...] = ()
    latencies: tuple[LatencyMatrix, ...] = ()
    asymmetric: tuple[AsymmetricPartition, ...] = ()

    def __post_init__(self) -> None:
        for _, field_name in _RULE_FAMILIES.values():
            object.__setattr__(self, field_name, tuple(getattr(self, field_name)))

    @property
    def is_trivial(self) -> bool:
        """True when no rule can ever fire (the plan is a no-op)."""
        return (
            all(r.is_trivial for r in self.messages)
            and all(r.is_trivial for r in self.stalls)
            and not self.partitions
            and all(r.is_trivial for r in self.ratecaps)
            and all(r.is_trivial for r in self.latencies)
            and not self.asymmetric
        )

    @property
    def needs_positions(self) -> bool:
        """Whether any rule evaluates ring positions (partition/latency/asym)."""
        return bool(
            self.partitions
            or self.asymmetric
            or any(not r.is_trivial for r in self.latencies)
        )

    def iter_rules(self):
        """Every rule of the plan, in schema (family, index) order."""
        for _, field_name in _RULE_FAMILIES.values():
            yield from getattr(self, field_name)

    def fault_window(self) -> tuple[int | None, int | None]:
        """``(open, close)`` span over all non-trivial rule windows.

        ``open`` is the earliest ``start`` (``None`` when the plan is
        trivial); ``close`` is the latest ``end``, or ``None`` when the
        plan is trivial *or* some non-trivial rule is open-ended — i.e. a
        ``close`` of ``None`` with a non-``None`` ``open`` means the plan
        never stops firing.  Recovery reports use this to anchor
        time-to-recover at the round the environment went quiet.
        """
        rules = [r for r in self.iter_rules() if not getattr(r, "is_trivial", False)]
        if not rules:
            return None, None
        opens = min(r.start for r in rules)
        ends = [r.end for r in rules]
        return opens, None if any(e is None for e in ends) else max(ends)

    def shifted(self, offset: int) -> "FaultPlan":
        """A copy with every rule window shifted ``offset`` rounds later.

        Scenario templates express windows relative to round 0 = "faults
        may open"; the runner shifts them past the bootstrap phase here.
        """
        if offset == 0:
            return self
        return replace(
            self,
            **{
                field_name: tuple(r.shifted(offset) for r in getattr(self, field_name))
                for _, field_name in _RULE_FAMILIES.values()
            },
        )

    def to_json(self) -> dict[str, Any]:
        """The plan as JSON-ready data (stable field order, lists not tuples)."""
        doc: dict[str, Any] = {"seed": self.seed}
        for kind, (_, field_name) in _RULE_FAMILIES.items():
            rules = getattr(self, field_name)
            if rules:
                doc[field_name] = [_rule_to_json(r, kind) for r in rules]
        return doc

    @staticmethod
    def from_json(doc: Mapping[str, Any]) -> "FaultPlan":
        """Inverse of :meth:`to_json`; every rule re-validates on build."""
        known = {field_name for _, field_name in _RULE_FAMILIES.values()}
        unknown = set(doc) - known - {"seed"}
        if unknown:
            raise ValueError(f"fault plan has unknown fields {sorted(unknown)}")
        kwargs: dict[str, Any] = {"seed": int(doc.get("seed", 0))}
        for kind, (cls, field_name) in _RULE_FAMILIES.items():
            rules = doc.get(field_name, ())
            kwargs[field_name] = tuple(_rule_from_json(cls, r, kind) for r in rules)
        return FaultPlan(**kwargs)

    @staticmethod
    def none(seed: int = 0) -> "FaultPlan":
        """An explicitly empty plan (useful as a zero-fault baseline)."""
        return FaultPlan(seed=seed)

    @staticmethod
    def simple(
        seed: int = 0,
        *,
        drop_p: float = 0.0,
        delay_p: float = 0.0,
        delay_rounds: int = 1,
        duplicate_p: float = 0.0,
        stall_p: float = 0.0,
        start: int = 0,
        end: int | None = None,
    ) -> "FaultPlan":
        """One message rule + one stall rule sharing a window (the common case)."""
        messages: tuple[MessageFaults, ...] = ()
        stalls: tuple[NodeStall, ...] = ()
        if drop_p or delay_p or duplicate_p:
            messages = (
                MessageFaults(
                    drop_p=drop_p,
                    delay_p=delay_p,
                    delay_rounds=delay_rounds,
                    duplicate_p=duplicate_p,
                    start=start,
                    end=end,
                ),
            )
        if stall_p:
            stalls = (NodeStall(stall_p=stall_p, start=start, end=end),)
        return FaultPlan(seed=seed, messages=messages, stalls=stalls)
