"""Declarative, seed-reproducible fault plans.

A :class:`FaultPlan` describes *environmental* faults — conditions of the
network and the machines, outside the adversary's churn budget — as a
composition of three rule families:

* :class:`MessageFaults` — per-message omission (drop with probability
  ``drop_p``), latency (delay by ``delay_rounds`` extra rounds with
  probability ``delay_p``) and duplication (``duplicate_p``);
* :class:`NodeStall` — transient compute stalls: an affected node skips its
  compute phase for the rounds where the rule fires (it stays alive and its
  in-flight messages are unaffected, but its inbox for the stalled round is
  lost and it sends nothing);
* :class:`RingPartition` — a position cut on the ``[0, 1)`` ring: while
  active, every message whose endpoints lie on opposite sides of the arc
  ``[lo, hi)`` is blocked.

Every rule carries an activity window ``[start, end)`` in rounds (``end``
``None`` = forever).  The plan itself is pure data; all randomness lives in
:class:`repro.faults.injector.FaultInjector`, which derives per-event
decisions from the plan ``seed`` with a keyed PRF — the same seed and plan
always produce the identical fault schedule, independent of any other RNG
stream in the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MessageFaults", "NodeStall", "RingPartition", "FaultPlan"]


def _check_probability(name: str, p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {p}")


def _check_window(start: int, end: int | None) -> None:
    if start < 0:
        raise ValueError(f"window start must be >= 0, got {start}")
    if end is not None and end <= start:
        raise ValueError(f"window end must exceed start, got [{start}, {end})")


@dataclass(frozen=True)
class MessageFaults:
    """Message-level faults applied independently to every unicast receiver."""

    drop_p: float = 0.0
    delay_p: float = 0.0
    delay_rounds: int = 1
    duplicate_p: float = 0.0
    start: int = 0
    end: int | None = None

    def __post_init__(self) -> None:
        _check_probability("drop_p", self.drop_p)
        _check_probability("delay_p", self.delay_p)
        _check_probability("duplicate_p", self.duplicate_p)
        if self.delay_rounds < 1:
            raise ValueError(f"delay_rounds must be >= 1, got {self.delay_rounds}")
        _check_window(self.start, self.end)

    def active(self, t: int) -> bool:
        return t >= self.start and (self.end is None or t < self.end)

    @property
    def is_trivial(self) -> bool:
        return self.drop_p == 0.0 and self.delay_p == 0.0 and self.duplicate_p == 0.0


@dataclass(frozen=True)
class NodeStall:
    """Transient stalls: each eligible node skips compute w.p. ``stall_p``."""

    stall_p: float = 0.0
    nodes: frozenset[int] | None = None  # None = every alive node is eligible
    start: int = 0
    end: int | None = None

    def __post_init__(self) -> None:
        _check_probability("stall_p", self.stall_p)
        _check_window(self.start, self.end)
        if self.nodes is not None:
            object.__setattr__(self, "nodes", frozenset(int(v) for v in self.nodes))

    def active(self, t: int) -> bool:
        return t >= self.start and (self.end is None or t < self.end)

    def eligible(self, v: int) -> bool:
        return self.nodes is None or v in self.nodes

    @property
    def is_trivial(self) -> bool:
        return self.stall_p == 0.0


@dataclass(frozen=True)
class RingPartition:
    """Block every message crossing the position cut of the arc ``[lo, hi)``.

    Node positions are evaluated with the shared position hash for the
    current epoch (``e = t // 2``), matching the 2-round overlay cadence —
    the partition separates *regions of the ring*, not fixed node ids, just
    as a geographic cut would.
    """

    lo: float
    hi: float
    start: int = 0
    end: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.lo < 1.0 or not 0.0 <= self.hi < 1.0:
            raise ValueError(f"cut endpoints must lie in [0, 1), got [{self.lo}, {self.hi})")
        if self.lo == self.hi:
            raise ValueError("cut arc must be non-empty")
        _check_window(self.start, self.end)

    def active(self, t: int) -> bool:
        return t >= self.start and (self.end is None or t < self.end)

    def inside(self, p: float) -> bool:
        """Whether position ``p`` lies inside the arc (wrap-aware)."""
        if self.lo < self.hi:
            return self.lo <= p < self.hi
        return p >= self.lo or p < self.hi


@dataclass(frozen=True)
class FaultPlan:
    """A composition of fault rules plus the seed of their PRF schedule."""

    seed: int = 0
    messages: tuple[MessageFaults, ...] = ()
    stalls: tuple[NodeStall, ...] = ()
    partitions: tuple[RingPartition, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "messages", tuple(self.messages))
        object.__setattr__(self, "stalls", tuple(self.stalls))
        object.__setattr__(self, "partitions", tuple(self.partitions))

    @property
    def is_trivial(self) -> bool:
        """True when no rule can ever fire (the plan is a no-op)."""
        return (
            all(r.is_trivial for r in self.messages)
            and all(r.is_trivial for r in self.stalls)
            and not self.partitions
        )

    @staticmethod
    def none(seed: int = 0) -> "FaultPlan":
        """An explicitly empty plan (useful as a zero-fault baseline)."""
        return FaultPlan(seed=seed)

    @staticmethod
    def simple(
        seed: int = 0,
        *,
        drop_p: float = 0.0,
        delay_p: float = 0.0,
        delay_rounds: int = 1,
        duplicate_p: float = 0.0,
        stall_p: float = 0.0,
        start: int = 0,
        end: int | None = None,
    ) -> "FaultPlan":
        """One message rule + one stall rule sharing a window (the common case)."""
        messages: tuple[MessageFaults, ...] = ()
        stalls: tuple[NodeStall, ...] = ()
        if drop_p or delay_p or duplicate_p:
            messages = (
                MessageFaults(
                    drop_p=drop_p,
                    delay_p=delay_p,
                    delay_rounds=delay_rounds,
                    duplicate_p=duplicate_p,
                    start=start,
                    end=end,
                ),
            )
        if stall_p:
            stalls = (NodeStall(stall_p=stall_p, start=start, end=end),)
        return FaultPlan(seed=seed, messages=messages, stalls=stalls)
