"""Deterministic fault oracle — turns a :class:`FaultPlan` into decisions.

The injector sits at the :meth:`Network.close_send_phase` boundary (the
network calls :meth:`message_fates` once per frozen receiver) and answers
the engine's per-node :meth:`stalled` queries during the compute phase.

Every decision is a keyed-BLAKE2b coin over ``(kind, round, sequence, src,
dst, rule index)`` — the same construction as the position hash in
:mod:`repro.util.rngs`.  Because decisions are *hash-derived* rather than
drawn from a shared RNG stream, the schedule depends only on the plan seed
and the (deterministic) order of sends: the same seed and plan always
reproduce the identical fault schedule, and a plan whose rules never fire
consumes no entropy, never alters delivery order, and never perturbs any
protocol RNG — the zero-overhead-when-off property the experiments rely on.

Send-time edges are *not* affected by faults: a dropped or delayed message
still created the edge ``(src, dst)`` in ``E_t`` (the adversary observes the
send attempt; the environment eats the payload afterwards).

Hot path: one 24-byte digest yields the drop/delay/duplicate coins of one
(message, rule) pair, and rounds where no message rule is active skip the
PRF entirely (``message_faults_active`` lets the network keep multicasts
un-exploded on such rounds).
"""

from __future__ import annotations

import hashlib
import struct

from repro.faults.plan import (
    AsymmetricPartition,
    FaultPlan,
    LatencyMatrix,
    MessageFaults,
    NodeStall,
    RateCap,
    RingPartition,
)
from repro.sim.metrics import FaultRoundStats
from repro.util.rngs import PositionHash

__all__ = ["FaultInjector"]

_U64 = float(1 << 64)

#: Fate of an undisturbed message: one copy, one round of latency.
_CLEAN_FATE = (1,)


class FaultInjector:
    """Per-run fault schedule: message fates, node stalls, round accounting."""

    def __init__(
        self, plan: FaultPlan, position_hash: PositionHash | None = None
    ) -> None:
        self.plan = plan
        self._hash = position_hash
        if plan.needs_positions and position_hash is None:
            raise ValueError(
                "partition/latency-matrix/asymmetric rules require a position hash"
            )
        self._key = (plan.seed & ((1 << 128) - 1)).to_bytes(16, "little")
        # Pre-keyed, domain-separated hash states; per-event coins clone
        # these and append the packed scope (much faster than re-keying).
        self._msg_base = hashlib.blake2b(b"msg", key=self._key, digest_size=24)
        self._stall_base = hashlib.blake2b(b"stall", key=self._key, digest_size=24)
        self._round = -1
        self._seq = 0
        self._dropped = 0
        self._delayed = 0
        self._duplicated = 0
        self._stalled = 0
        self._deferred = 0
        # Per-round rule activity (refreshed by begin_round).
        self._msg_rules: list[tuple[int, MessageFaults]] = []
        self._stall_rules: list[tuple[int, NodeStall]] = []
        self._partitions: list[RingPartition] = []
        self._ratecaps: list[tuple[int, RateCap]] = []
        self._latencies: list[LatencyMatrix] = []
        self._asymmetric: list[AsymmetricPartition] = []
        # Copies sent so far this round per (rate-cap rule index, src node).
        self._cap_counts: dict[tuple[int, int], int] = {}
        # Position cache for position-keyed rules, keyed per epoch.
        self._pos_epoch = -1
        self._pos_cache: dict[int, float] = {}

    # ------------------------------------------------------------------
    # PRF coins
    # ------------------------------------------------------------------

    def _coins3(
        self, base: "hashlib.blake2b", a: int, b: int, c: int, d: int, e: int
    ) -> tuple[float, float, float]:
        """Three uniform [0, 1) coins from the seed and the packed scope."""
        h = base.copy()
        h.update(struct.pack("<qqqqq", a, b, c, d, e))
        x, y, z = struct.unpack("<QQQ", h.digest())
        return x / _U64, y / _U64, z / _U64

    # ------------------------------------------------------------------
    # Round lifecycle
    # ------------------------------------------------------------------

    def begin_round(self, t: int) -> None:
        """Reset per-round counters and rule activity (engine, round start)."""
        self._round = t
        self._seq = 0
        self._dropped = 0
        self._delayed = 0
        self._duplicated = 0
        self._stalled = 0
        self._deferred = 0
        self._msg_rules = [
            (i, r)
            for i, r in enumerate(self.plan.messages)
            if not r.is_trivial and r.active(t)
        ]
        self._stall_rules = [
            (i, r)
            for i, r in enumerate(self.plan.stalls)
            if r.stall_p and r.active(t)
        ]
        self._partitions = [r for r in self.plan.partitions if r.active(t)]
        self._ratecaps = [
            (i, r)
            for i, r in enumerate(self.plan.ratecaps)
            if not r.is_trivial and r.active(t)
        ]
        self._latencies = [
            r for r in self.plan.latencies if not r.is_trivial and r.active(t)
        ]
        self._asymmetric = [r for r in self.plan.asymmetric if r.active(t)]
        self._cap_counts = {}
        needs_pos = self._partitions or self._latencies or self._asymmetric
        if needs_pos and t // 2 != self._pos_epoch:
            self._pos_epoch = t // 2
            self._pos_cache = {}

    def round_stats(self) -> FaultRoundStats | None:
        """This round's injected-fault counts, or ``None`` if nothing fired."""
        if not (
            self._dropped
            or self._delayed
            or self._duplicated
            or self._stalled
            or self._deferred
        ):
            return None
        return FaultRoundStats(
            dropped=self._dropped,
            delayed=self._delayed,
            duplicated=self._duplicated,
            stalled=self._stalled,
            deferred=self._deferred,
        )

    # ------------------------------------------------------------------
    # Node-level faults (queried by the engine during the compute phase)
    # ------------------------------------------------------------------

    def stalled(self, t: int, v: int) -> bool:
        """Whether node ``v`` skips its compute phase this round."""
        for i, rule in self._stall_rules:
            if (
                rule.eligible(v)
                and self._coins3(self._stall_base, t, v, i, 0, 0)[0] < rule.stall_p
            ):
                self._stalled += 1
                return True
        return False

    # ------------------------------------------------------------------
    # Message-level faults (the Network hook)
    # ------------------------------------------------------------------

    @property
    def message_faults_active(self) -> bool:
        """Whether any message rule or partition can fire this round.

        The network uses this to keep the fast, un-exploded multicast path
        on rounds where the plan is quiet (e.g. before a fault window opens).
        """
        return bool(
            self._msg_rules
            or self._partitions
            or self._ratecaps
            or self._latencies
            or self._asymmetric
        )

    def _position(self, v: int) -> float:
        p = self._pos_cache.get(v)
        if p is None:
            p = self._hash.position(v, self._pos_epoch)
            self._pos_cache[v] = p
        return p

    def _crosses_partition(self, src: int, dst: int) -> bool:
        p_src = self._position(src)
        p_dst = self._position(dst)
        return any(r.inside(p_src) != r.inside(p_dst) for r in self._partitions)

    def message_fates(self, t: int, src: int, dst: int) -> tuple[int, ...]:
        """Delivery fates for one frozen (src, dst) message of round ``t``.

        Returns a tuple of latencies in rounds — ``(1,)`` for an undisturbed
        message, ``()`` for a dropped one, ``(1 + k,)`` for a delayed one,
        and one extra entry per duplicate.  The network files one pending
        copy per entry.  Rate caps may give each copy its own deferral, so
        entries need not be equal.
        """
        if self._partitions and self._crosses_partition(src, dst):
            self._dropped += 1
            return ()
        if self._asymmetric:
            p_src = self._position(src)
            p_dst = self._position(dst)
            if any(r.blocks(p_src, p_dst) for r in self._asymmetric):
                self._dropped += 1
                return ()
        extra = 0
        duplicates = 0
        if self._msg_rules:
            seq = self._seq
            self._seq += 1
            for i, rule in self._msg_rules:
                drop_u, delay_u, dup_u = self._coins3(
                    self._msg_base, t, seq, src, dst, i
                )
                if drop_u < rule.drop_p:
                    self._dropped += 1
                    return ()
                if delay_u < rule.delay_p:
                    extra += rule.delay_rounds
                if dup_u < rule.duplicate_p:
                    duplicates += 1
        if self._latencies:
            p_src = self._position(src)
            p_dst = self._position(dst)
            extra += sum(r.delay_between(p_src, p_dst) for r in self._latencies)
        if extra:
            self._delayed += 1
        if duplicates:
            self._duplicated += duplicates
        base = 1 + extra
        if not self._ratecaps:
            if extra == 0 and duplicates == 0:
                return _CLEAN_FATE
            return tuple([base] * (1 + duplicates))
        # Rate caps: every copy consumes one unit of the source's budget;
        # the i-th copy over the limit is deferred ceil(i / limit) budget
        # periods of ``defer_rounds`` rounds — deferred, never dropped.
        fates = []
        for _ in range(1 + duplicates):
            defer = 0
            for i, rule in self._ratecaps:
                limit = rule.limit
                if limit is None or not rule.eligible(src):
                    continue
                key = (i, src)
                count = self._cap_counts.get(key, 0) + 1
                self._cap_counts[key] = count
                over = count - limit
                if over > 0:
                    d = ((over - 1) // limit + 1) * rule.defer_rounds
                    defer = max(defer, d)
            if defer:
                self._deferred += 1
            fates.append(base + defer)
        if fates == [1]:
            return _CLEAN_FATE
        return tuple(fates)
