"""Deterministic fault injection and health monitoring.

The paper assumes a perfectly reliable synchronous network; this package
removes that assumption in a controlled, reproducible way:

* :mod:`repro.faults.plan` — declarative :class:`FaultPlan` (message drops /
  delays / duplicates, node stalls, ring partitions) with activity windows;
* :mod:`repro.faults.injector` — :class:`FaultInjector`, the keyed-PRF
  oracle the network and engine consult (same seed + plan = same schedule);
* :mod:`repro.faults.health` — :class:`HealthMonitor`, per-round overlay
  invariant audits emitting structured :class:`DegradationEvent`s.

Wire a plan into a run with ``Engine(..., faults=plan, health=monitor)`` or
``MaintenanceSimulation(..., faults=plan, health=monitor)``.
"""

from repro.faults.health import DegradationEvent, HealthMonitor
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    AsymmetricPartition,
    FaultPlan,
    LatencyMatrix,
    MessageFaults,
    NodeStall,
    RateCap,
    RingPartition,
)

__all__ = [
    "AsymmetricPartition",
    "DegradationEvent",
    "FaultInjector",
    "FaultPlan",
    "HealthMonitor",
    "LatencyMatrix",
    "MessageFaults",
    "NodeStall",
    "RateCap",
    "RingPartition",
]
