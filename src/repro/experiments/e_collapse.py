"""E-X3 (extension) — the routing collapse threshold, theory vs simulation.

Lemma 11's machinery predicts a sharp phase transition: with per-step good
fraction ``g`` and ``r`` copies per hop, the holder fraction evolves as
``h -> g * (1 - e^{-r h})``, whose fixpoint is positive iff ``r * g > 1``.
We sweep the per-round churn fraction, measure end-to-end delivery for
``r ∈ {1, 2, 3}``, and compare the empirical collapse point against the
fixpoint model — the paper's "for a suitable r ∈ Θ(1)" made quantitative.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.balls_bins import survival_fixpoint
from repro.config import ProtocolParams
from repro.experiments.registry import ExperimentResult, register
from repro.routing.series import SeriesRouter

__all__ = ["run_collapse", "delivery_under_sustained_churn"]


def delivery_under_sustained_churn(
    r: int, churn_per_round: float, n: int = 128, seed: int = 0
) -> float:
    """Delivery rate with a fraction of the population killed every round.

    Churn runs for the whole flight of the messages; replacement joins are
    not modelled (the routable-series abstraction), so the sweep range is
    kept small enough that swarms do not empty for trivial reasons.
    """
    params = ProtocolParams(n=n, c=1.5, r=r, seed=seed)
    router = SeriesRouter(params, seed=seed + r)
    rng = np.random.default_rng(seed + 100)  # identical churn across r
    for v in range(n):
        router.send(v, float(rng.random()))
    for _ in range(params.dilation + 4):
        alive = sorted(router.alive)
        kills = max(0, int(churn_per_round * len(alive)))
        if kills and alive:
            victims = rng.choice(alive, size=min(kills, len(alive)), replace=False)
            router.kill(int(v) for v in victims)
        router.step()
    router.run_until_quiet()
    return sum(1 for o in router.outcomes.values() if o.delivered) / n


@register("E-X3")
def run_collapse(quick: bool = True, seed: int = 19) -> ExperimentResult:
    n = 128 if quick else 256
    churn_levels = [0.0, 0.04, 0.08] if quick else [0.0, 0.02, 0.04, 0.06, 0.08, 0.12]
    rs = (1, 2, 3)
    header = ["churn/round", "g per step", "r=1 predicted h*", "r=1 delivery",
              "r=2 predicted h*", "r=2 delivery", "r=3 predicted h*", "r=3 delivery"]
    rows = []
    passed = True
    for f in churn_levels:
        g = (1.0 - f) ** 2  # survival over one 2-round step
        row: list = [f, g]
        deliveries = {}
        for r in rs:
            h_star = survival_fixpoint(r, g)
            rate = delivery_under_sustained_churn(r, f, n=n, seed=seed)
            deliveries[r] = rate
            row.extend([h_star, rate])
        rows.append(row)
        # Shape checks: no churn => everyone delivers; heavy churn separates
        # r=1 (vanishing fixpoint) from r>=2 (bounded-away fixpoint).
        if f == 0.0:
            passed = passed and all(d == 1.0 for d in deliveries.values())
        if f >= 0.08:
            # The separation is the claim: r=1's fixpoint is ~0 while r>=2
            # stays bounded away.  (Absolute rates also sag because the
            # population shrinks without replacement joins, thinning swarms
            # below the goodness premise — hence >= 0.75, not ~1.)
            passed = passed and deliveries[1] <= deliveries[2] - 0.25
            passed = passed and deliveries[2] >= 0.75 and deliveries[3] >= 0.75
    return ExperimentResult(
        experiment_id="E-X3",
        title="Extension — the routing collapse threshold (fixpoint model)",
        claim="Delivery collapses when r*g approaches 1 (the survival "
        "fixpoint vanishes); r >= 2 keeps the fixpoint bounded away from 0 "
        "at the paper's goodness levels.",
        header=header,
        rows=rows,
        passed=passed,
        notes=[
            f"n={n}; churn applied every round for the whole flight; "
            "g = (1-f)^2 per forwarding step."
        ],
    )
