"""E-X2 (extension) — running on estimated network sizes.

Section 3 assumes every node knows ``n`` and ``kappa`` and remarks that all
algorithms work with close estimates of ``lam`` and ``lam/n`` (citing the
estimation techniques of Richa et al. and King & Saia).  This experiment
validates the remark: nodes estimate ``n`` purely from local neighbour
distances, the protocol constants are re-derived from the median estimate,
and (a) the Swarm Property and (b) end-to-end routing still hold with the
estimated radii.
"""

from __future__ import annotations

import numpy as np

from repro.config import ProtocolParams
from repro.experiments.registry import ExperimentResult, register
from repro.overlay.estimation import median_size_estimate, params_from_estimate
from repro.overlay.lds import LDSGraph
from repro.overlay.positions import PositionIndex
from repro.routing.series import SeriesRouter

__all__ = ["run_estimation"]


@register("E-X2")
def run_estimation(quick: bool = True, seed: int = 17) -> ExperimentResult:
    sizes = [128, 256] if quick else [128, 256, 512, 1024]
    rng = np.random.default_rng(seed)
    header = [
        "true n",
        "median estimate",
        "rel. error",
        "lam (true/est)",
        "swarm property (no slack)",
        "swarm property (c x1.2 slack)",
        "routing delivery w/ est. n",
    ]
    rows = []
    passed = True
    for n in sizes:
        base = ProtocolParams(n=n, c=1.5, r=2, seed=seed)
        index = PositionIndex({i: float(p) for i, p in enumerate(rng.random(n))})
        est = median_size_estimate(index)
        rel = abs(est - n) / n
        derived = params_from_estimate(base, est)  # default 1.2x c slack

        # (a) Structure: does the Swarm Property (for true-radius swarms)
        # hold with edges derived purely from the estimate?  Lemma 6's radii
        # are exactly tight, so without slack an overestimate of n can break
        # it — the slack column is the protocol answer.
        def swarm_property(params_used) -> bool:
            graph = LDSGraph(index, params_used)
            for p in rng.random(10 if quick else 25):
                members = index.ids_within(float(p), base.swarm_radius)
                for branch in (0, 1):
                    q = (float(p) + branch) / 2.0
                    target = set(
                        int(w) for w in index.ids_within(q % 1.0, base.swarm_radius)
                    )
                    for v in members:
                        nbrs = set(int(w) for w in graph.neighbors(int(v)))
                        nbrs.add(int(v))
                        if not target <= nbrs:
                            return False
            return True

        no_slack_ok = swarm_property(params_from_estimate(base, est, safety=1.0))
        slack_ok = swarm_property(derived)

        # (b) Behaviour: routing parameterised entirely by the estimate.
        router = SeriesRouter(derived, node_ids=range(n), seed=seed)
        targets = rng.random(32)
        ids = [router.send(int(rng.integers(0, n)), float(t)) for t in targets]
        router.run_until_quiet()
        delivery = sum(1 for i in ids if router.outcomes[i].delivered) / len(ids)

        ok = rel < 0.3 and slack_ok and delivery >= 0.97
        passed = passed and ok
        rows.append(
            [n, est, rel, f"{base.lam}/{derived.lam}", no_slack_ok, slack_ok, delivery]
        )
    return ExperimentResult(
        experiment_id="E-X2",
        title="Extension — protocol constants from estimated n",
        claim="Local density estimation recovers n within ~30%; radii "
        "re-derived with a constant slack factor preserve the Swarm "
        "Property and routing (without slack, Lemma 6's tight radii can "
        "fail under an overestimate — a reproduction finding).",
        header=header,
        rows=rows,
        passed=passed,
    )
