"""E-X5 (extension) — the content-lateness threshold (the second half of
``(a, b)``).

The paper requires the adversary to be ``b = 2*lam + 7``-late on message
*contents*.  This experiment shows the bound is not slack: a JOIN launched at
round ``2s`` carries a position that only goes live at ``2s + 2*lam + 4``,
so an adversary that decrypts contents with lag ``b < 2*lam + 4`` reads a
**future** overlay and can annihilate one of its swarms before it exists —
no amount of reconfiguration or swarm redundancy survives a swarm that is
empty at birth.  At the paper's ``b`` every readable join wave has already
expired and the same adversary never fires.
"""

from __future__ import annotations

import numpy as np

from repro.adversary.content_late import ContentLateAdversary
from repro.config import ProtocolParams
from repro.core.runner import MaintenanceSimulation
from repro.experiments.registry import ExperimentResult, register

__all__ = ["run_content_lateness"]


def _attack_params(seed: int, quick: bool) -> ProtocolParams:
    return ProtocolParams(
        n=48 if quick else 64,
        c=1.2,
        r=2,
        delta=3,
        tau=8,
        seed=seed,
        alpha=0.5,
        kappa=1.5,
        churn_budget_override=60,
        churn_window_override=12,
    )


def _attack_run(b: int, seed: int, quick: bool) -> tuple[int, float, float]:
    params = _attack_params(seed, quick)
    sim = MaintenanceSimulation(params)
    adv = ContentLateAdversary(
        params, sim.services.position_hash, seed=seed + 1, state_lateness=b
    )
    sim.engine.adversary = adv
    rng = np.random.default_rng(seed)
    sim.run(params.bootstrap_rounds + 4)
    ids = []
    for i in range(10):
        origin = int(rng.choice(sorted(sim.established_nodes())))
        pid = ("cx5", b, i)
        sim.node(origin).queue_probe(pid, 0.5)
        sim._probe_targets[pid] = 0.5
        ids.append(pid)
    sim.run(2 * params.dilation + 6)
    report = sim.probe_report(ids)
    health = sim.health_summary()
    return len(adv.wipes), report.delivery_rate, health["established_fraction"]


@register("E-X5")
def run_content_lateness(quick: bool = True, seed: int = 27) -> ExperimentResult:
    lam = _attack_params(seed, quick).lam
    cases = [
        (2 * lam, "future overlays readable", "collapses"),
        (2 * lam + 5, "live overlay readable", "collapses"),
        (2 * lam + 6, "only expired overlays readable", "survives"),
        (2 * lam + 7, "the paper's b (one round of slack)", "survives"),
    ]
    header = ["content lateness b", "regime", "future-swarm wipes", "probe delivery", "established frac", "ok"]
    rows = []
    passed = True
    for b, regime, expect in cases:
        wipes, delivery, established = _attack_run(b, seed, quick)
        if expect == "collapses":
            ok = wipes > 0 and (delivery <= 0.3 or established <= 0.5)
        else:
            ok = wipes == 0 and delivery >= 0.95 and established >= 0.9
        passed = passed and ok
        rows.append([f"{b} (2λ{b - 2 * lam:+d})", regime, wipes, delivery, established, ok])
    return ExperimentResult(
        experiment_id="E-X5",
        title="Extension — the content-lateness threshold",
        claim="Content knowledge with b <= 2*lam+5 reveals a live or future "
        "overlay and lets the adversary empty one of its swarms; "
        "b >= 2*lam+6 leaves only expired information (the paper's "
        "b = 2*lam+7 has one round of slack).",
        header=header,
        rows=rows,
        passed=passed,
        notes=[f"lam={lam}; the attacker holds the decrypted JOIN payloads "
               "with lag b, modelled as delayed access to the position hash"],
    )
