"""E-X4 (extension) — storage durability on the moving overlay.

The DHT layer replicates each item on the swarm responsible for its key and
hands the data over at every 2-round reconfiguration.  This experiment
measures durability: many items stored, then a long budget-maximal churn
phase with dozens of complete overlay rebuilds, then a full readback.
Expected shape: zero lost items, replica counts tracking the swarm size.
"""

from __future__ import annotations

import numpy as np

from repro.adversary.oblivious import RandomChurnAdversary
from repro.config import ProtocolParams
from repro.core.dht import DHTNode
from repro.core.runner import MaintenanceSimulation
from repro.experiments.registry import ExperimentResult, register

__all__ = ["run_dht_durability"]


@register("E-X4")
def run_dht_durability(quick: bool = True, seed: int = 23) -> ExperimentResult:
    n = 48 if quick else 64
    n_items = 8 if quick else 24
    churn_rounds = 40 if quick else 120
    params = ProtocolParams(
        n=n, c=1.2, r=2, delta=3, tau=8, seed=seed, alpha=0.25, kappa=1.25
    )
    adv = RandomChurnAdversary(params, seed=seed + 1)
    sim = MaintenanceSimulation(params, adversary=adv, node_cls=DHTNode)
    rng = np.random.default_rng(seed)

    sim.run(4)
    items = {f"item-{i}": f"payload-{i}" for i in range(n_items)}
    for i, (key, value) in enumerate(items.items()):
        sim.node(int(rng.integers(0, n))).queue_put(key, value)
    sim.run(2 * params.dilation + 6)

    def replicas(key: str) -> int:
        return sum(1 for v in sim.engine.alive if key in sim.node(v).store)

    reps_before = [replicas(k) for k in items]
    epoch_before = sim.audit_overlay().epoch
    sim.run(churn_rounds)
    epoch_after = sim.audit_overlay().epoch
    reps_after = [replicas(k) for k in items]

    reader = int(sorted(sim.established_nodes())[0])
    rids = {k: sim.node(reader).queue_get(k) for k in items}
    sim.run(2 * params.dilation + 6)
    recovered = 0
    for key, rid in rids.items():
        resp = sim.node(reader).responses.get(rid)
        if resp is not None and resp.found and resp.value == items[key]:
            recovered += 1

    header = ["metric", "value", "expectation", "ok"]
    rebuilds = epoch_after - epoch_before
    min_reps_after = min(reps_after)
    rows = [
        ["items stored", n_items, "-", True],
        ["overlay rebuilds survived", rebuilds, f">= {churn_rounds // 2 - 2}", rebuilds >= churn_rounds // 2 - 2],
        ["mean replicas after PUT", float(np.mean(reps_before)), "~ swarm size", min(reps_before) > 0],
        [
            "min replicas after churn",
            min_reps_after,
            f">= {params.expected_swarm_size / 3:.0f}",
            min_reps_after >= params.expected_swarm_size / 3,
        ],
        ["items recovered by GET", f"{recovered}/{n_items}", "all", recovered == n_items],
    ]
    passed = all(bool(r[-1]) for r in rows)
    return ExperimentResult(
        experiment_id="E-X4",
        title="Extension — DHT durability across reconfigurations",
        claim="Data replicated on key-responsible swarms survives arbitrarily "
        "many 2-round overlay rebuilds under budget-maximal churn.",
        header=header,
        rows=rows,
        passed=passed,
        notes=[f"n={n}, {churn_rounds} churn rounds, reader node {reader}"],
    )
