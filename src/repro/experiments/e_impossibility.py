"""E-L3 and E-L4 — the Section 2 impossibility results, run live.

* **E-L3 (Lemma 3)**: an adversary with up-to-date topology knowledge
  isolates a freshly joined node from the naive gossip overlay; the same
  scripted attack with the paper's 2-round topology lag is also reported.
* **E-L4 (Lemma 4)**: the oblivious chain-of-joins attack partitions the
  network when nodes may join via 1-round-old bootstraps, and is rejected by
  the budget checker under the proper 2-round rule.
"""

from __future__ import annotations

from repro.adversary.budget import ChurnViolation
from repro.adversary.isolate_join import IsolateJoinAdversary
from repro.adversary.join_chain import JoinChainAdversary
from repro.analysis.connectivity import (
    is_connected,
    is_isolated,
    knowledge_graph_of_gossip,
)
from repro.baselines.gossip import GossipNode
from repro.config import ProtocolParams
from repro.experiments.registry import ExperimentResult, register
from repro.sim.engine import Engine

__all__ = ["run_lemma3", "run_lemma4"]


def _gossip_engine(params, adversary, join_min_age=2):
    eng = Engine(
        params,
        lambda v, s: GossipNode(v, s),
        adversary=adversary,
        strict_budget=True,
        join_min_age=join_min_age,
    )
    eng.seed_nodes(range(params.n))
    for v in range(params.n):
        eng.protocol_of(v).seed_known({(v + d) % params.n for d in range(1, 4)})
    return eng


def _lemma3_params(n: int, seed: int) -> ProtocolParams:
    return ProtocolParams(
        n=n,
        alpha=0.5,
        kappa=1.5,
        seed=seed,
        churn_budget_override=2 * n,
        churn_window_override=16,
    )


@register("E-L3")
def run_lemma3(quick: bool = True, seed: int = 3) -> ExperimentResult:
    sizes = [32] if quick else [32, 64]
    rounds_factor = 3
    header = ["n", "adversary lateness", "rounds", "victim isolated", "network partitioned"]
    rows = []
    passed = True
    for n in sizes:
        for lateness in (1, 2):
            params = _lemma3_params(n, seed)
            adv = IsolateJoinAdversary(params, seed=seed + 1, topology_lateness=lateness)
            eng = _gossip_engine(params, adv)
            rounds = rounds_factor * n
            eng.run(rounds)
            knows = knowledge_graph_of_gossip(eng)
            victim_ok = adv.victim_id is not None and adv.victim_id in eng.alive
            isolated = victim_ok and is_isolated(knows, adv.victim_id, max_size=1)
            partitioned = not is_connected(knows)
            rows.append([n, lateness, rounds, isolated, partitioned])
            if lateness == 1:
                # The up-to-date attack must succeed (Lemma 3).
                passed = passed and isolated and partitioned
    return ExperimentResult(
        experiment_id="E-L3",
        title="Lemma 3 — a (0,*)-late adversary disconnects any overlay",
        claim="With up-to-date topology knowledge, every courier of the "
        "victim's id is churned before acting; the victim is isolated in "
        "O(log n)-scaled time.  (The 2-late row shows the same script with "
        "stale information — couriers escape.)",
        header=header,
        rows=rows,
        passed=passed,
        notes=[
            "'lateness 1' = the newest complete round's edges, the engine's "
            "causal equivalent of the paper's 0-late adversary."
        ],
    )


@register("E-L4")
def run_lemma4(quick: bool = True, seed: int = 5) -> ExperimentResult:
    n = 24 if quick else 48
    params = ProtocolParams(
        n=n,
        alpha=0.5,
        kappa=1.5,
        seed=seed,
        churn_budget_override=10 * n,
        churn_window_override=10,
    )
    header = ["join rule (min bootstrap age)", "outcome", "V_0 eroded", "head isolated"]
    rows = []

    # Weakened model: join via 1-round-old nodes allowed.
    adv = JoinChainAdversary(params, seed=seed + 1, erosion_batch=2)
    eng = _gossip_engine(params, adv, join_min_age=1)
    eng.run(5 * n)
    knows = knowledge_graph_of_gossip(eng)
    eroded = adv.eroded_all(eng.alive)
    head = adv.chain_head
    isolated = (
        head is not None and head in eng.alive and is_isolated(knows, head, max_size=2)
    )
    rows.append(["1 round (weakened)", "network partitioned", eroded, isolated])
    weak_ok = eroded and isolated and not is_connected(knows)

    # Proper model: the first chain extension violates the join rule.
    adv2 = JoinChainAdversary(params, seed=seed + 1)
    eng2 = _gossip_engine(params, adv2, join_min_age=2)
    try:
        eng2.run(5 * n)
        blocked = False
        detail = "attack ran (unexpected)"
    except ChurnViolation as exc:
        blocked = True
        detail = "attack rejected: " + str(exc)[:60]
    rows.append(["2 rounds (the model)", detail, "-", "-"])

    return ExperimentResult(
        experiment_id="E-L4",
        title="Lemma 4 — joining via 1-round-old nodes is fatal",
        claim="An oblivious chain-of-joins adversary partitions any overlay "
        "if bootstraps may be 1 round old; the model's 2-round rule blocks "
        "the attack outright.",
        header=header,
        rows=rows,
        passed=weak_ok and blocked,
    )
