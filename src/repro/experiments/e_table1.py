"""E-T1 — regenerate Table 1 (model comparison) with behavioural evidence.

The static columns come from :mod:`repro.experiments.models`.  The evidence
column is live: for this paper's model we run the maintenance protocol under
a budget-maximal 2-late random-churn adversary and report the probe delivery
rate; for the "no fast reconfiguration" regime we run the same routing
workload on a static overlay while an up-to-date adversary kills message
holders, showing why lateness and reconfiguration speed trade off.
"""

from __future__ import annotations

import numpy as np

from repro.adversary.oblivious import RandomChurnAdversary
from repro.config import ProtocolParams
from repro.core.runner import MaintenanceSimulation
from repro.experiments.models import TABLE1_MODELS
from repro.experiments.registry import ExperimentResult, register

__all__ = ["run_table1"]


def _this_paper_evidence(quick: bool, seed: int) -> tuple[str, bool]:
    n = 40 if quick else 64
    params = ProtocolParams(
        n=n, c=1.2, r=2, delta=3, tau=8, seed=seed, alpha=0.25, kappa=1.25
    )
    adv = RandomChurnAdversary(params, seed=seed + 1)
    sim = MaintenanceSimulation(params, adversary=adv)
    rng = np.random.default_rng(seed)
    sim.run(params.bootstrap_rounds + 6)
    ids = sim.send_probes(6 if quick else 12, rng)
    sim.run(2 * params.dilation + 4)
    report = sim.probe_report(ids)
    ok = report.delivery_rate >= 0.95
    return f"probe delivery {report.delivery_rate:.2f} under (2,·)-late churn", ok


@register("E-T1")
def run_table1(quick: bool = True, seed: int = 0) -> ExperimentResult:
    header = ["model", "lateness (a,b)", "churn rate (C,T)", "immediate", "evidence"]
    rows = []
    passed = True
    for model in TABLE1_MODELS:
        row = model.row()
        if model.reference == "this":
            evidence, ok = _this_paper_evidence(quick, seed)
            passed = passed and ok
            row[-1] = evidence
        rows.append(row)
    return ExperimentResult(
        experiment_id="E-T1",
        title="Table 1 — adversary models in the literature",
        claim="This paper tolerates a (2, O(log n))-late adversary at churn "
        "rate (alpha*n, O(log n)) with immediate departures.",
        header=header,
        rows=rows,
        passed=passed,
        notes=[
            "Rows [2], [4], [5] are model metadata (their systems are not "
            "reproduced here); the final row is measured on this implementation."
        ],
    )
