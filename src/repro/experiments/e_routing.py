"""E-L9 and E-L13 — routing and sampling on a routable series.

* **E-L9 (Lemma 9 / 10 / 11)**: with ``k`` messages per node to random
  targets, A_ROUTING delivers every message with dilation exactly
  ``2*lam + 2`` and per-node congestion ``O(k log n)`` — we sweep ``n`` and
  ``k`` and compare against the greedy single-copy LDG baseline under the
  same churn.
* **E-L13 (Lemma 13)**: A_SAMPLING delivers to each node with the same
  probability (chi-square uniformity) and discards with probability ≤ ~1/2.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.estimators import chi_square_uniform, wilson_interval
from repro.config import ProtocolParams
from repro.experiments.registry import ExperimentResult, register
from repro.overlay.ldg import LDGGraph
from repro.routing.greedy import GreedyRouter
from repro.routing.series import SeriesRouter

__all__ = ["run_lemma9", "run_lemma13"]


def _routing_run(n: int, k: int, seed: int, churn_frac: float):
    params = ProtocolParams(n=n, c=1.5, r=2, seed=seed)
    router = SeriesRouter(params, seed=seed)
    rng = np.random.default_rng(seed + 1)
    for v in range(n):
        for _ in range(k):
            router.send(v, float(rng.random()))
    router.run(3)
    if churn_frac > 0:
        victims = rng.choice(n, size=int(churn_frac * n), replace=False)
        router.kill(int(v) for v in victims)
    router.run_until_quiet()
    outcomes = list(router.outcomes.values())
    delivered = [o for o in outcomes if o.delivered]
    exact = sum(1 for o in delivered if o.dilation == params.dilation)
    return params, outcomes, delivered, exact, router.metrics.peak_congestion()


def _greedy_run(n: int, k: int, seed: int, churn_frac: float) -> float:
    rng = np.random.default_rng(seed + 2)
    graph = LDGGraph.random(n, rng)
    lam = ProtocolParams(n=n, seed=seed).lam
    router = GreedyRouter(graph, lam)
    for v in graph.node_ids:
        for _ in range(k):
            router.send(int(v), float(rng.random()))
    router.step()
    if churn_frac > 0:
        victims = rng.choice(graph.node_ids, size=int(churn_frac * n), replace=False)
        router.kill(int(v) for v in victims)
    router.run_until_quiet()
    outcomes = router.outcomes
    return sum(1 for o in outcomes if o.delivered) / len(outcomes)


@register("E-L9")
def run_lemma9(quick: bool = True, seed: int = 0) -> ExperimentResult:
    sizes = [64, 128] if quick else [64, 128, 256, 512]
    ks = [1, 2] if quick else [1, 2, 4]
    churn = 0.10
    header = [
        "n",
        "k",
        "lam",
        "LDS delivery",
        "dilation = 2*lam+2",
        "peak congestion",
        "congestion / (k*lam)",
        "greedy LDG delivery",
    ]
    rows = []
    passed = True
    for n in sizes:
        for k in ks:
            params, outcomes, delivered, exact, peak = _routing_run(
                n, k, seed, churn
            )
            rate = len(delivered) / len(outcomes)
            greedy_rate = _greedy_run(n, k, seed, churn)
            rows.append(
                [
                    n,
                    k,
                    params.lam,
                    rate,
                    f"{exact}/{len(delivered)}",
                    peak,
                    peak / (k * params.lam),
                    greedy_rate,
                ]
            )
            passed = passed and rate >= 0.97 and exact == len(delivered)
            passed = passed and greedy_rate < rate
    return ExperimentResult(
        experiment_id="E-L9",
        title="Lemmas 9-11 — A_ROUTING delivery, dilation and congestion",
        claim="All messages delivered w.h.p. with dilation exactly 2*lam+2 "
        "and congestion O(k log n); single-copy greedy routing loses "
        "messages under the same 10% churn.",
        header=header,
        rows=rows,
        passed=passed,
        notes=[
            "congestion/(k*lam) should stay roughly constant across n "
            "(the O(k log n) shape)."
        ],
    )


@register("E-L13")
def run_lemma13(quick: bool = True, seed: int = 0) -> ExperimentResult:
    n = 96 if quick else 192
    rounds_of_samples = 6 if quick else 20
    params = ProtocolParams(n=n, c=1.5, r=2, seed=seed)
    router = SeriesRouter(params, seed=seed, reconfigure=False)
    rng = np.random.default_rng(seed + 3)
    for _ in range(rounds_of_samples):
        for v in range(n):
            router.send_sample(int(v))
    router.run_until_quiet()
    outcomes = list(router.outcomes.values())
    hits = [o for o in outcomes if o.sample_receiver is not None]
    counts = np.zeros(n)
    for o in hits:
        counts[o.sample_receiver] += 1
    stat, pvalue = chi_square_uniform(counts)
    discard = wilson_interval(len(outcomes) - len(hits), len(outcomes))
    expected_hit = params.expected_swarm_size / params.sampling_rank_range
    header = ["metric", "value", "expected", "ok"]
    uniform_ok = pvalue > 0.001
    discard_ok = discard.lo <= (1 - expected_hit) + 0.1 and discard.rate <= 0.65
    rows = [
        ["samples launched", len(outcomes), "-", True],
        ["delivered to a node", len(hits), "-", True],
        ["chi-square p-value", pvalue, "> 0.001 (uniform)", uniform_ok],
        [
            "discard rate",
            discard.rate,
            f"~{1 - expected_hit:.2f} (<= ~1/2)",
            discard_ok,
        ],
        ["max / mean per-node count", f"{counts.max():.0f} / {counts.mean():.2f}", "-", True],
    ]
    passed = uniform_ok and discard_ok
    return ExperimentResult(
        experiment_id="E-L13",
        title="Lemma 13 — A_SAMPLING uniformity and discard probability",
        claim="Every node receives a sample with equal probability; messages "
        "are discarded with probability at most ~1/2.",
        header=header,
        rows=rows,
        passed=passed,
        notes=[f"n={n}, rank range={params.sampling_rank_range}"],
    )
