"""The model registry behind Table 1 (related-work comparison).

Table 1 of the paper compares adversary models, not measurements: lateness
``(a, b)``, churn rate ``(C, T)`` and whether churned-out nodes leave
immediately.  We encode each row as data, and for the models we can exercise
behaviourally (this paper's, plus a static-overlay stand-in for the slower
reconfiguration regimes) the Table-1 experiment attaches live evidence.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AdversaryModel", "TABLE1_MODELS"]


@dataclass(frozen=True)
class AdversaryModel:
    """One row of Table 1."""

    source: str
    reference: str
    lateness: str
    churn_rate: str
    immediate: bool
    note: str = ""

    def row(self) -> list[str]:
        return [
            self.source,
            self.lateness,
            self.churn_rate,
            "yes" if self.immediate else "no",
            self.note,
        ]


TABLE1_MODELS: tuple[AdversaryModel, ...] = (
    AdversaryModel(
        source="[2] SPARTAN (Augustine & Sivasubramaniam, IPDPS'18)",
        reference="spartan",
        lateness="(O(log log n), O(log log n))",
        churn_rate="(alpha*n, O(log log n))",
        immediate=True,
    ),
    AdversaryModel(
        source="[4] Drees, Gmyr & Scheideler (SPAA'16)",
        reference="hd-graph",
        lateness="(O(log log n), O(log log n))",
        churn_rate="(n - n/log n, O(log log n))",
        immediate=False,
        note="churned nodes linger O(log log n) rounds",
    ),
    AdversaryModel(
        source="[5] Augustine et al. (SPAA'13)",
        reference="storage-search",
        lateness="(O(log n), O(log n))",
        churn_rate="(O(n/log n), O(log n))",
        immediate=True,
    ),
    AdversaryModel(
        source="This paper (LDS maintenance)",
        reference="this",
        lateness="(2, O(log n))",
        churn_rate="(alpha*n, O(log n))",
        immediate=True,
        note="reproduced end-to-end in repro.core",
    ),
)
