"""E-AB — ablations of the design choices (the title thesis, r, c).

* **Lateness / reconfiguration matrix** — the paper's namesake experiment.
  Two attacks against routed messages, each at topology lag ``a`` and with
  reconfiguration on or off:

  - *holder strike*: kill the entire holder set of a message as seen
    ``a`` rounds ago (one strike per message, budget O(log n)).  With
    ``a = 0`` the strike catches the live holders and the message dies;
    with ``a = 2`` the information is two steps stale and the strike misses
    — the copies have already moved on.
  - *region wipe*: kill every node currently positioned in one fixed arc of
    the ring (budget O(log n)).  On a **static** overlay the arc stays dead
    forever — every message targeting it is lost and the ring is severed.
    With 2-round reconfiguration the next overlay repopulates the arc and
    deliveries continue.  Staleness alone is not enough: you must actually
    move every two rounds.

* **r sweep** — copies per hop vs delivery under sustained churn (the
  Theta(1) redundancy knob of Lemma 11).
* **c sweep** — swarm robustness parameter vs minimum swarm size (the
  Theta(log n) quorum size that makes the Chernoff bounds bite, Lemma 17).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.chernoff import min_mu_for_whp
from repro.config import ProtocolParams
from repro.experiments.registry import ExperimentResult, register
from repro.overlay.lds import LDSGraph
from repro.overlay.swarm import audit_goodness
from repro.routing.series import SeriesRouter

__all__ = [
    "run_ablation",
    "holder_strike_delivery",
    "region_wipe_delivery",
]


def holder_strike_delivery(
    lateness: int,
    reconfigure: bool,
    n: int = 192,
    messages: int = 8,
    seed: int = 0,
) -> float:
    """Delivery rate under one holder-set strike per message.

    At a fixed mid-flight round the adversary kills, for each tracked
    message, the holder set it reconstructs from ``G_{t - lateness}`` —
    an O(log n)-budget strike per message.
    """
    params = ProtocolParams(n=n, c=1.5, r=2, seed=seed)
    router = SeriesRouter(
        params, seed=seed, reconfigure=reconfigure, record_holders=True
    )
    rng = np.random.default_rng(seed + 1)
    ids = [
        router.send(int(rng.integers(0, n)), float(rng.random()))
        for _ in range(messages)
    ]
    strike_round = 8  # mid-flight (dilation is 2*lam+2 >= 16 here)
    for _ in range(params.dilation + 4):
        t = router.round
        if t == strike_round:
            kills: set[int] = set()
            for msg_id in ids:
                kills |= set(
                    router.holder_history.get(msg_id, {}).get(
                        t - lateness, frozenset()
                    )
                )
            router.kill(kills & router.alive)
        router.step()
    delivered = sum(1 for i in ids if router.outcomes[i].delivered)
    return delivered / len(ids)


def region_wipe_delivery(
    reconfigure: bool,
    n: int = 192,
    messages: int = 8,
    seed: int = 0,
) -> float:
    """Delivery rate after one fixed arc of the ring is wiped out.

    The adversary kills every node currently inside an arc of one swarm
    diameter (an O(log n) budget), then ``messages`` messages targeting the
    arc's centre are sent.  Static overlay: the arc never recovers.
    Reconfiguring overlay: the next epoch repopulates it.
    """
    params = ProtocolParams(n=n, c=1.5, r=2, seed=seed)
    router = SeriesRouter(params, seed=seed, reconfigure=reconfigure)
    rng = np.random.default_rng(seed + 2)
    target = 0.5
    router.run(2)
    victims = router.index(router.epoch_at(router.round)).ids_within(
        target, params.swarm_radius
    )
    router.kill(int(v) for v in victims)
    # Wait two epochs so a reconfiguring overlay has cut over post-wipe.
    router.run(4)
    origins = [v for v in sorted(router.alive)][:messages]
    ids = [router.send(v, target) for v in origins]
    router.run_until_quiet()
    delivered = sum(1 for i in ids if router.outcomes[i].delivered)
    return delivered / len(ids)


@register("E-AB")
def run_ablation(quick: bool = True, seed: int = 12) -> ExperimentResult:
    header = ["ablation", "setting", "metric", "value", "ok"]
    rows: list[list] = []
    passed = True

    # --- 1. Lateness / reconfiguration matrix (the title thesis). ---------
    n = 192 if quick else 384
    msgs = 6 if quick else 16
    strike_cases = [
        (0, True, "dies", lambda d: d <= 0.34),
        (2, True, "survives", lambda d: d >= 0.99),
    ]
    for lateness, reconf, expect, check in strike_cases:
        rate = holder_strike_delivery(lateness, reconf, n=n, messages=msgs, seed=seed)
        ok = check(rate)
        passed = passed and ok
        rows.append(
            [
                "holder strike",
                f"a={lateness}, reconfigure={'on' if reconf else 'off'}",
                f"delivery (expect {expect})",
                rate,
                ok,
            ]
        )
    wipe_cases = [
        (False, "dies", lambda d: d <= 0.34),
        (True, "survives", lambda d: d >= 0.99),
    ]
    for reconf, expect, check in wipe_cases:
        rate = region_wipe_delivery(reconf, n=n, messages=msgs, seed=seed)
        ok = check(rate)
        passed = passed and ok
        rows.append(
            [
                "region wipe",
                f"reconfigure={'on' if reconf else 'off'}",
                f"delivery (expect {expect})",
                rate,
                ok,
            ]
        )

    # --- 2. r sweep: redundancy vs delivery under sustained churn. --------
    n_r = 128
    for r in (1, 2, 3):
        params = ProtocolParams(n=n_r, c=1.5, r=r, seed=seed)
        router = SeriesRouter(params, seed=seed + r)
        rng = np.random.default_rng(seed + 100)  # same churn for every r
        for v in range(n_r):
            router.send(v, float(rng.random()))
        for t in range(params.dilation + 4):
            if 3 <= t <= 13:
                alive = sorted(router.alive)
                kills = rng.choice(alive, size=max(1, int(0.06 * len(alive))), replace=False)
                router.kill(int(v) for v in kills)
            router.step()
        router.run_until_quiet()
        rate = sum(1 for o in router.outcomes.values() if o.delivered) / n_r
        ok = rate >= 0.95 if r >= 2 else True
        passed = passed and ok
        rows.append(["r sweep", f"r={r}, 6%/round churn", "delivery", rate, ok])

    # --- 3. c sweep: swarm size vs the Chernoff threshold. ----------------
    rng = np.random.default_rng(seed + 3)
    n_c = 256
    needed = min_mu_for_whp(n_c, k=1, delta=0.5)
    for c in (0.5, 1.0, 1.5, 2.0):
        params = ProtocolParams(n=n_c, c=c, seed=seed)
        graph = LDSGraph.random(params, rng)
        stats = audit_goodness(graph.index, params)
        enough = params.expected_swarm_size >= needed
        ok = (stats.min_size >= 1) if c >= 1.0 else True
        passed = passed and ok
        rows.append(
            [
                "c sweep",
                f"c={c}",
                f"min/mean swarm (need E>={needed:.0f} for whp)",
                f"{stats.min_size}/{stats.mean_size:.1f}"
                + (" [sufficient]" if enough else " [too small]"),
                ok,
            ]
        )

    return ExperimentResult(
        experiment_id="E-AB",
        title="Ablations — lateness/reconfiguration, r, c",
        claim="2-round reconfiguration is what neutralises a 2-late "
        "adversary; r >= 2 copies and c with E|S| >= 2k ln(n)/delta^2 are "
        "the redundancy budget the proofs require.",
        header=header,
        rows=rows,
        passed=passed,
    )
