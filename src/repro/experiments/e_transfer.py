"""E-X1 (extension) — transferring the construction to Chord.

The paper's abstract claims the approach "can be transferred to a variety of
classical P2P topologies where nodes are mapped into the [0,1)-interval".
This experiment carries the transfer out for Chord (swarms + finger arcs)
and compares the two instantiations head to head: degree cost, delivery
under churn, dilation, and congestion.  Expected shape: identical
resilience and dilation, with Chord paying a Theta(log n) factor in degree
(lam finger arcs instead of two De Bruijn arcs).
"""

from __future__ import annotations

import numpy as np

from repro.config import ProtocolParams
from repro.experiments.registry import ExperimentResult, register
from repro.overlay.chordswarm import ChordSwarmGraph, chord_trajectory
from repro.overlay.lds import LDSGraph
from repro.routing.series import SeriesRouter

__all__ = ["run_transfer"]


def _route_under_churn(params: ProtocolParams, trajectory_fn, seed: int):
    router = SeriesRouter(params, seed=seed, trajectory_fn=trajectory_fn)
    rng = np.random.default_rng(seed + 1)
    n = params.n
    for v in range(n):
        router.send(v, float(rng.random()))
    router.run(3)
    victims = rng.choice(n, size=max(1, n // 10), replace=False)
    router.kill(int(v) for v in victims)
    router.run_until_quiet()
    outcomes = list(router.outcomes.values())
    delivered = [o for o in outcomes if o.delivered]
    exact = sum(1 for o in delivered if o.dilation == params.dilation)
    return (
        len(delivered) / len(outcomes),
        f"{exact}/{len(delivered)}",
        router.metrics.peak_congestion(),
    )


@register("E-X1")
def run_transfer(quick: bool = True, seed: int = 15) -> ExperimentResult:
    n = 128 if quick else 256
    params = ProtocolParams(n=n, c=1.5, r=2, seed=seed)
    rng = np.random.default_rng(seed)

    lds = LDSGraph.random(params, rng)
    chord = ChordSwarmGraph.random(params, rng)
    lds_deg = lds.degree_stats()
    chord_deg = chord.degree_stats()

    lds_rate, lds_exact, lds_peak = _route_under_churn(params, None, seed)
    ch_rate, ch_exact, ch_peak = _route_under_churn(params, chord_trajectory, seed)

    header = ["topology", "mean degree", "delivery @10% churn", "dilation exact", "peak congestion"]
    rows = [
        ["LDS (De Bruijn swarms)", lds_deg[1], lds_rate, lds_exact, lds_peak],
        ["Chord swarms (transfer)", chord_deg[1], ch_rate, ch_exact, ch_peak],
        [
            "ratio (Chord / LDS)",
            chord_deg[1] / lds_deg[1],
            ch_rate / max(lds_rate, 1e-9),
            "-",
            ch_peak / max(lds_peak, 1),
        ],
    ]
    # The degree premium is lam - O(log(c*lam)) *distinct* finger arcs (at
    # small n most short fingers collapse into the list arc), so we assert a
    # strict premium, not the asymptotic factor.
    passed = (
        lds_rate >= 0.97
        and ch_rate >= 0.97
        and chord_deg[1] > 1.05 * lds_deg[1]
    )
    return ExperimentResult(
        experiment_id="E-X1",
        title="Extension — the Chord-swarm transfer",
        claim="The swarm construction transfers to Chord with the same "
        "delivery guarantee and dilation, at a Theta(log n) degree premium.",
        header=header,
        rows=rows,
        passed=passed,
        notes=[
            f"n={n}, lam={params.lam}; both topologies routed with r={params.r}",
            "distinct long fingers ~ lam - log2(4*c*lam): the degree premium "
            "grows with n but is modest at laptop scale",
        ],
    )
