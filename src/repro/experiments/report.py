"""Experiment report generation.

Runs (or loads) experiment results and renders a single markdown report in
the EXPERIMENTS.md style — the regeneratable record of paper-vs-measured.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.experiments.registry import ExperimentResult, all_experiments

__all__ = ["run_all", "render_report", "write_report"]

#: Regeneration order: paper artefact order.
DEFAULT_ORDER = (
    "E-T1",
    "E-F1",
    "E-L3",
    "E-L4",
    "E-L6",
    "E-L9",
    "E-L12",
    "E-L13",
    "E-L17",
    "E-L22",
    "E-T14",
    "E-L24",
    "E-AB",
    "E-CH",
    "E-SC",
    "E-X1",
    "E-X2",
    "E-X3",
    "E-X4",
    "E-X5",
    "E-X6",
    "E-SW",
)


def run_all(
    quick: bool = True,
    only: Iterable[str] | None = None,
    progress: bool = False,
) -> list[ExperimentResult]:
    """Run experiments in artefact order and return their results."""
    registry = all_experiments()
    ids = list(only) if only is not None else list(DEFAULT_ORDER)
    unknown = [i for i in ids if i not in registry]
    if unknown:
        raise KeyError(f"unknown experiment ids: {unknown}")
    results = []
    for eid in ids:
        if progress:
            print(f"running {eid} ...", flush=True)
        results.append(registry[eid](quick=quick))
    return results


def render_report(results: list[ExperimentResult]) -> str:
    """One markdown document: summary table + per-experiment sections."""
    lines = [
        "# Experiment report (regenerated)",
        "",
        "| id | title | verdict |",
        "|----|-------|---------|",
    ]
    for r in results:
        lines.append(
            f"| {r.experiment_id} | {r.title} | "
            f"{'PASS' if r.passed else 'FAIL'} |"
        )
    lines.append("")
    for r in results:
        lines.append(r.to_markdown())
        lines.append("")
    return "\n".join(lines)


def write_report(path: str | Path, results: list[ExperimentResult]) -> Path:
    path = Path(path)
    path.write_text(render_report(results))
    return path
