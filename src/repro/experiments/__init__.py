"""Experiment harness: one experiment per paper artefact (see DESIGN.md).

Importing this package registers every experiment; run them via::

    from repro.experiments import get_experiment
    result = get_experiment("E-L9")(quick=True)
    print(result.to_table())
"""

from repro.experiments import (  # noqa: F401  (imports register experiments)
    e_ablation,
    e_chaos,
    e_collapse,
    e_comparison,
    e_congestion,
    e_content_lateness,
    e_dht,
    e_estimation,
    e_figure1,
    e_impossibility,
    e_maintenance,
    e_routing,
    e_scenarios,
    e_table1,
    e_topology,
    e_transfer,
    sweep,
)
from repro.experiments.models import TABLE1_MODELS, AdversaryModel
from repro.experiments.registry import (
    ExperimentResult,
    all_experiments,
    get_experiment,
    register,
)

__all__ = [
    "AdversaryModel",
    "ExperimentResult",
    "TABLE1_MODELS",
    "all_experiments",
    "get_experiment",
    "register",
]
