"""E-F1 — regenerate Figure 1 (the LDS neighbourhood sketch) as data.

Figure 1 shows a node ``v`` connected to every node in three red arcs: the
list arc around ``v`` and the two De Bruijn arcs around ``v/2`` and
``(v+1)/2``, each strictly larger than the swarms they protect.  This
experiment instantiates an LDS, picks sample nodes, and tabulates exactly
those arcs — centre, radius, members — verifying the containment relations
the figure illustrates (swarm ⊂ list arc; ``S((v+i)/2)`` ⊂ DB arc).
"""

from __future__ import annotations

import numpy as np

from repro.config import ProtocolParams
from repro.overlay.lds import LDSGraph, required_neighbor_arcs
from repro.experiments.registry import ExperimentResult, register
from repro.util.intervals import wrap

__all__ = ["run_figure1"]


@register("E-F1")
def run_figure1(quick: bool = True, seed: int = 0) -> ExperimentResult:
    n = 128 if quick else 256
    params = ProtocolParams(n=n, seed=seed)
    rng = np.random.default_rng(seed)
    graph = LDSGraph.random(params, rng)

    header = [
        "node",
        "arc",
        "center",
        "radius*n",
        "members",
        "covers swarm",
        "all connected",
    ]
    rows: list[list] = []
    passed = True
    sample = [int(v) for v in graph.node_ids[:: max(1, n // 4)]][:4]
    for v in sample:
        p = graph.index.position(v)
        arcs = required_neighbor_arcs(p, params)
        names = ["list @ v", "DB @ v/2", "DB @ (v+1)/2"]
        swarm_points = [p, wrap(p / 2.0), wrap((p + 1.0) / 2.0)]
        nbrs = set(int(w) for w in graph.neighbors(v)) | {v}
        for name, arc, q in zip(names, arcs, swarm_points):
            members = graph.index.ids_in_arc(arc)
            swarm = set(int(w) for w in graph.swarm(q))
            arc_set = set(int(w) for w in members)
            covers = swarm <= arc_set
            connected = set(arc_set) <= nbrs
            passed = passed and covers and connected
            rows.append(
                [
                    v,
                    name,
                    arc.center,
                    arc.radius * n,
                    len(members),
                    covers,
                    connected,
                ]
            )
    return ExperimentResult(
        experiment_id="E-F1",
        title="Figure 1 — LDS neighbourhood arcs of sampled nodes",
        claim="Each node connects to all nodes in the arcs around v (radius "
        "2c*lam/n) and around v/2, (v+1)/2 (radius 3c*lam/2n); the arcs "
        "strictly contain the corresponding swarms.",
        header=header,
        rows=rows,
        passed=passed,
        notes=[f"n={n}, lam={params.lam}, swarm radius*n={params.swarm_radius * n:.2f}"],
    )
