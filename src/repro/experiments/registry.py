"""Experiment registry and shared result schema.

Every paper artefact (Table 1, Figure 1, each numbered lemma/theorem) maps to
one experiment function returning an :class:`ExperimentResult`.  The
``quick`` flag selects CI-sized workloads; benchmarks run the full sizes.
Results render as plain tables so ``EXPERIMENTS.md`` can be regenerated and
diffed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.util.tables import format_markdown_table, format_table

__all__ = ["ExperimentResult", "register", "get_experiment", "all_experiments"]


@dataclass
class ExperimentResult:
    """Outcome of one experiment run."""

    experiment_id: str
    title: str
    claim: str
    header: Sequence[str]
    rows: list[list[Any]]
    passed: bool
    notes: list[str] = field(default_factory=list)

    def to_table(self) -> str:
        body = format_table(self.header, self.rows)
        lines = [
            f"[{self.experiment_id}] {self.title}",
            f"claim: {self.claim}",
            body,
            f"verdict: {'PASS' if self.passed else 'FAIL'}",
        ]
        lines.extend(f"note: {n}" for n in self.notes)
        return "\n".join(lines)

    def to_markdown(self) -> str:
        body = format_markdown_table(self.header, self.rows)
        lines = [
            f"### {self.experiment_id} — {self.title}",
            "",
            f"*Paper claim:* {self.claim}",
            "",
            body,
            "",
            f"*Verdict:* **{'PASS' if self.passed else 'FAIL'}**",
        ]
        lines.extend(f"- {n}" for n in self.notes)
        return "\n".join(lines)


ExperimentFn = Callable[..., ExperimentResult]

_REGISTRY: dict[str, ExperimentFn] = {}


def register(experiment_id: str) -> Callable[[ExperimentFn], ExperimentFn]:
    """Decorator registering an experiment under its id (e.g. ``"E-L9"``)."""

    def deco(fn: ExperimentFn) -> ExperimentFn:
        if experiment_id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {experiment_id}")
        _REGISTRY[experiment_id] = fn
        return fn

    return deco


def get_experiment(experiment_id: str) -> ExperimentFn:
    # Importing the package registers all experiments.
    import repro.experiments  # noqa: F401

    return _REGISTRY[experiment_id]


def all_experiments() -> dict[str, ExperimentFn]:
    import repro.experiments  # noqa: F401

    return dict(_REGISTRY)
