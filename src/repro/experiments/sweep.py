"""Parallel experiment sweeps (E-SW).

Fans an ``(experiment, seed)`` grid over multiprocessing workers and merges
the per-cell outcomes into one :class:`ExperimentResult`.  Worker-count
invariance is by construction:

* the task grid is sorted, so the merge order never depends on scheduling;
* every cell is a pure function of ``(experiment_id, seed, quick)`` — each
  experiment builds its own engine from its seed, so cells share no state;
* ``Pool.map`` returns results in task order regardless of which worker
  finished first.

Hence ``run_sweep(..., workers=4)`` produces a bit-for-bit identical result
table to ``workers=1`` — the property ``repro sweep`` exists to exploit
(wall-clock scales down, output does not change) and that the test suite
pins.
"""

from __future__ import annotations

import multiprocessing
import os

from repro.experiments.registry import ExperimentResult, register

__all__ = ["DEFAULT_GRID", "run_cell", "run_sweep", "run_sweep_experiment"]

#: Default experiment grid: cheap, seed-robust structural checks.
DEFAULT_GRID = ("E-F1", "E-L6", "E-L12")


def run_cell(task: tuple[str, int, bool]) -> tuple[str, int, bool, int, str]:
    """Run one ``(experiment_id, seed, quick)`` cell (worker entry point).

    Returns the compact summary ``(id, seed, passed, rows, first_note)``
    rather than the full result so the parent never deserialises arbitrary
    row payloads from workers.
    """
    eid, seed, quick = task
    from repro.experiments import get_experiment

    result = get_experiment(eid)(quick=quick, seed=seed)
    note = result.notes[0] if result.notes else ""
    return (eid, seed, result.passed, len(result.rows), note)


def _pool_context() -> multiprocessing.context.BaseContext:
    """Fork where available (cheap, inherits the registry); spawn otherwise."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


def run_sweep(
    ids: tuple[str, ...] = DEFAULT_GRID,
    seeds: tuple[int, ...] = (0, 1),
    *,
    workers: int = 1,
    quick: bool = True,
) -> ExperimentResult:
    """Run the ``ids x seeds`` grid, optionally in parallel.

    ``workers <= 1`` runs inline in this process (no pool at all); any
    higher count fans the sorted task list over a process pool.  The merged
    table is identical either way.
    """
    tasks = sorted((eid, int(s), bool(quick)) for eid in ids for s in seeds)
    if not tasks:
        raise ValueError("empty sweep grid")
    if workers <= 1:
        cells = [run_cell(t) for t in tasks]
    else:
        ctx = _pool_context()
        with ctx.Pool(processes=min(workers, len(tasks))) as pool:
            cells = pool.map(run_cell, tasks)
    rows = [
        [eid, seed, rows_n, "PASS" if ok else "FAIL"]
        for eid, seed, ok, rows_n, _ in cells
    ]
    failed = [f"{eid}/seed={seed}" for eid, seed, ok, _, _ in cells if not ok]
    notes = [
        f"{len(tasks)} cells over {len(set(t[0] for t in tasks))} experiments"
        f" x {len(set(t[1] for t in tasks))} seeds"
    ]
    if failed:
        notes.append("failed cells: " + ", ".join(failed))
    return ExperimentResult(
        experiment_id="E-SW",
        title="Parallel experiment sweep",
        claim=(
            "Deterministic (experiment, seed) cells merge into a result that "
            "is invariant under the worker count."
        ),
        header=["experiment", "seed", "rows", "verdict"],
        rows=rows,
        passed=not failed,
        notes=notes,
    )


@register("E-SW")
def run_sweep_experiment(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Parallel (experiment x seed) sweep, worker-count invariant.

    Runs the default grid at ``seed`` and ``seed + 1`` with up to two
    workers, so CI exercises the pool path without oversubscribing small
    runners.
    """
    workers = min(2, os.cpu_count() or 1)
    return run_sweep(
        DEFAULT_GRID, (seed, seed + 1), workers=workers, quick=quick
    )
