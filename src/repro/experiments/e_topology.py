"""E-L6 and E-L12 — topology lemmas.

* **E-L6 (Swarm Property, Lemma 6)**: over many random LDS instances, every
  node of ``S(p)`` is connected to all of ``S(p/2)`` and ``S((p+1)/2)``; the
  property must also *fail* once the De Bruijn radius is shrunk below the
  lemma's 3/2 factor (showing the constant is load-bearing).
* **E-L12 (Trajectory census, Lemma 12)**: the number of trajectories whose
  ``j``-th step falls in an interval ``I`` concentrates around ``k*n*|I|``
  for every middle step ``j``.
"""

from __future__ import annotations

import numpy as np

from repro.config import ProtocolParams
from repro.experiments.registry import ExperimentResult, register
from repro.overlay.lds import LDSGraph
from repro.overlay.trajectory import crossing_counts
from repro.util.intervals import Arc, wrap

__all__ = ["run_lemma6", "run_lemma12"]


def _violations(graph: LDSGraph, points: np.ndarray, db_scale: float) -> int:
    """Count swarm-property violations with the DB radius scaled."""
    params = graph.params
    scaled = params.with_updates(c=params.c * db_scale)
    edges = graph if db_scale == 1.0 else LDSGraph(graph.index, scaled)
    bad = 0
    for p in points:
        members = graph.swarm(float(p))
        for branch in (0, 1):
            target = set(int(w) for w in graph.swarm(wrap((float(p) + branch) / 2.0)))
            for v in members:
                nbrs = set(int(w) for w in edges.neighbors(int(v)))
                nbrs.add(int(v))
                if not target <= nbrs:
                    bad += 1
                    break
    return bad


@register("E-L6")
def run_lemma6(quick: bool = True, seed: int = 0) -> ExperimentResult:
    sizes = [64, 128] if quick else [64, 128, 256, 512]
    instances = 5 if quick else 20
    points_per = 20 if quick else 50
    header = ["n", "instances", "points", "violations (paper radii)", "violations (radii/4)"]
    rows = []
    passed = True
    rng = np.random.default_rng(seed)
    for n in sizes:
        params = ProtocolParams(n=n, seed=seed)
        good_bad = 0
        shrunk_bad = 0
        for i in range(instances):
            graph = LDSGraph.random(params, rng)
            points = rng.random(points_per)
            good_bad += _violations(graph, points, 1.0)
            shrunk_bad += _violations(graph, points, 0.25)
        passed = passed and good_bad == 0 and shrunk_bad > 0
        rows.append([n, instances, instances * points_per, good_bad, shrunk_bad])
    return ExperimentResult(
        experiment_id="E-L6",
        title="Lemma 6 — the Swarm Property",
        claim="Every node of S(p) has edges to all of S(p/2) and S((p+1)/2); "
        "shrinking the edge radii far below Definition 5 breaks this.",
        header=header,
        rows=rows,
        passed=passed,
    )


@register("E-L12")
def run_lemma12(quick: bool = True, seed: int = 0) -> ExperimentResult:
    n = 2000 if quick else 20000
    k = 2
    lam = ProtocolParams(n=max(64, n // 10), seed=seed).lam + 4
    rng = np.random.default_rng(seed)
    sources = rng.random(n * k)
    targets = rng.random(n * k)
    interval = Arc(0.37, 0.04)  # |I| = 0.08
    expected = k * n * interval.length
    header = ["step j", "observed X_I^j", "expected k*n*|I|", "rel. error"]
    rows = []
    passed = True
    steps = [0, 1, lam // 2, lam - 1, lam, lam + 1]
    for j in steps:
        got = crossing_counts(sources, targets, lam, interval, j)
        rel = abs(got - expected) / expected
        # Middle steps concentrate tightly; endpoints are the node/target
        # densities themselves and share the same expectation.
        passed = passed and rel < (0.30 if quick else 0.12)
        rows.append([j, got, expected, rel])
    return ExperimentResult(
        experiment_id="E-L12",
        title="Lemma 12 — trajectory-interval crossing census",
        claim="E[#trajectories with step j in I] = k*n*|I| for every step j.",
        header=header,
        rows=rows,
        passed=passed,
        notes=[f"n={n}, k={k}, lam={lam}, |I|={interval.length:.3f}"],
    )
