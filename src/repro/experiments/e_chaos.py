"""E-CH — chaos sweep: graceful degradation under environmental faults.

The paper proves its guarantees on a perfectly reliable synchronous network.
This experiment measures how far they degrade when the environment itself is
faulty: a drop-rate x delay x stall sweep of deterministic
:class:`~repro.faults.plan.FaultPlan`s (injected *outside* the adversary's
churn budget) against the two operational guarantees —

* **routing success** — end-to-end probe delivery rate (Theorem 14's
  routability criterion), and
* **maintenance survival** — established fraction, demotions, and the
  :class:`~repro.faults.health.HealthMonitor`'s first-degradation round
  (when swarm occupancy, list symmetry, or connectivity first broke).

The expected shape, and the pass criterion's core: the fault-free cell
reproduces the paper's guarantees exactly, moderate fault rates are absorbed
by the protocol's r-fold/swarm redundancy (delivery stays ~1.0 with zero
degradation events), and only harsh combined faults bend the overlay — at
which point the run *reports* the collapse (events, demotions) rather than
crashing.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.config import ProtocolParams
from repro.core.runner import MaintenanceSimulation
from repro.experiments.registry import ExperimentResult, register
from repro.faults.health import HealthMonitor
from repro.faults.plan import FaultPlan

__all__ = ["run_chaos", "chaos_cell", "default_cells"]

#: One sweep cell: (drop probability, delay probability, stall probability).
Cell = tuple[float, float, float]

#: Extra rounds a delayed message waits (the sweep's fixed delay magnitude).
DELAY_ROUNDS = 1


def default_cells(quick: bool) -> list[Cell]:
    """The sweep grid: sparse axes screening (quick) or the full cross."""
    if quick:
        return [
            (0.0, 0.0, 0.0),  # baseline: the paper's reliable network
            (0.15, 0.0, 0.0),  # drop only
            (0.0, 0.3, 0.0),  # delay only
            (0.0, 0.0, 0.1),  # stall only
            (0.3, 0.3, 0.1),  # combined stress
        ]
    drops = (0.0, 0.15, 0.35)
    delays = (0.0, 0.3)
    stalls = (0.0, 0.1)
    return [(d, y, s) for d in drops for y in delays for s in stalls]


def chaos_cell(
    params: ProtocolParams,
    drop_p: float,
    delay_p: float,
    stall_p: float,
    seed: int,
    *,
    probes: int = 6,
    settle: int = 4,
) -> dict[str, object]:
    """Run one fault cell and measure routing success + maintenance survival.

    Faults open after the (churn-free, fault-free) bootstrap phase; probes
    launch two rounds later and are scored after one full dilation plus
    ``settle`` rounds.  Never raises on degradation: a cell whose overlay
    collapses before the probes launch simply reports delivery 0.0.
    """
    plan = FaultPlan.simple(
        seed=seed,
        drop_p=drop_p,
        delay_p=delay_p,
        delay_rounds=DELAY_ROUNDS,
        stall_p=stall_p,
        start=params.bootstrap_rounds,
    )
    monitor = HealthMonitor(params)
    sim = MaintenanceSimulation(params, faults=plan, health=monitor)
    sim.run(params.bootstrap_rounds + 2)
    rng = np.random.default_rng(seed)
    try:
        probe_ids = sim.send_probes(probes, rng)
    except RuntimeError:  # overlay already collapsed: nothing to probe from
        probe_ids = []
    sim.run(params.dilation + settle)
    report = sim.probe_report(probe_ids)
    health = sim.health_summary()
    totals = sim.engine.metrics.fault_totals()
    return {
        "drop_p": drop_p,
        "delay_p": delay_p,
        "stall_p": stall_p,
        "delivery_rate": report.delivery_rate if probe_ids else 0.0,
        "established_fraction": health["established_fraction"],
        "demotions": int(health["total_demotions"]),
        "faults_injected": totals.injected,
        "events": len(monitor.events),
        "first_degradation_round": monitor.first_degradation_round,
        "rounds": sim.round,
    }


@register("E-CH")
def run_chaos(
    quick: bool = True,
    seed: int = 11,
    cells: Sequence[Cell] | None = None,
) -> ExperimentResult:
    """Chaos sweep — routing and maintenance under injected faults."""
    n = 40 if quick else 48
    params = ProtocolParams(
        n=n, c=1.2, r=2, delta=3, tau=8, seed=seed, alpha=0.25, kappa=1.25
    )
    sweep = list(cells) if cells is not None else default_cells(quick)
    header = [
        "drop",
        "delay",
        "stall",
        "probe delivery",
        "established frac",
        "demotions",
        "faults injected",
        "first degradation",
        "ok",
    ]
    rows = []
    passed = True
    for drop_p, delay_p, stall_p in sweep:
        cell = chaos_cell(params, drop_p, delay_p, stall_p, seed)
        faulty = drop_p > 0 or delay_p > 0 or stall_p > 0
        if faulty:
            # A fault cell is "ok" if its schedule actually fired; how the
            # overlay fares is the measurement, not the criterion.
            ok = cell["faults_injected"] > 0
        else:
            # The fault-free cell must reproduce the paper's guarantees.
            ok = (
                cell["delivery_rate"] >= 0.95
                and cell["established_fraction"] >= 0.95
                and cell["events"] == 0
                and cell["faults_injected"] == 0
            )
        first = cell["first_degradation_round"]
        rows.append(
            [
                drop_p,
                delay_p,
                stall_p,
                cell["delivery_rate"],
                cell["established_fraction"],
                cell["demotions"],
                cell["faults_injected"],
                "-" if first is None else first,
                ok,
            ]
        )
        passed = passed and ok
    return ExperimentResult(
        experiment_id="E-CH",
        title="Chaos — graceful degradation under drop x delay x stall faults",
        claim="On a reliable network the guarantees hold exactly; injected "
        "environmental faults degrade routing and maintenance gracefully, "
        "with health monitoring reporting when and how the LDS breaks "
        "instead of crashing.",
        header=header,
        rows=rows,
        passed=passed,
        notes=[
            f"n={n}, faults start after bootstrap (round "
            f"{params.bootstrap_rounds}); delay adds {DELAY_ROUNDS} round(s)",
            "fault cells measure degradation; only the zero cell gates on "
            "the paper's thresholds",
        ],
    )
