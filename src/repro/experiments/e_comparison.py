"""E-X6 (extension) — reconfiguration period vs lateness (Table 1, behaviourally).

Table 1 contrasts this paper's ``(2, ·)``-lateness tolerance with designs
that re-randomise more slowly (SPARTAN-style).  Two measurements make the
trade concrete, with every attacker granted the same 2-rounds-stale
structural knowledge:

1. **Period sweep on the LDS machinery**: positions re-draw every ``P``
   overlay cycles; the adversary wipes, each round, the members of the
   victim point's swarm *as of two rounds ago* (kills paired with joins, so
   only information quality matters).  With ``P = 1`` (the paper: new
   overlay every 2 rounds, period = lateness) the stale knowledge describes
   a dead overlay — delivery is unaffected.  For any ``P >= 2`` the stale
   draw is still live for part of each period and the region is wiped —
   delivery collapses.  The safe/unsafe boundary sits exactly at
   ``period <= lateness``.
2. **A static committee overlay** (SPARTAN-ish: fixed virtual structure,
   joiners refill the thinnest committee): random churn is absorbed, but
   the same 2-late stale-membership wipe causes *persistent* losses — the
   structure can never move out from under the adversary, it can only race
   refills against kills.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.committees import CommitteeOverlay
from repro.config import ProtocolParams
from repro.experiments.registry import ExperimentResult, register
from repro.routing.series import SeriesRouter

__all__ = ["run_comparison", "period_sweep_delivery", "committee_delivery"]


def period_sweep_delivery(
    reposition_every: int, n: int = 256, seed: int = 31, budget: int = 24
) -> float:
    """Delivery to a fixed point under a sustained 2-late region wipe."""
    params = ProtocolParams(n=n, c=1.5, r=2, seed=seed)
    router = SeriesRouter(params, seed=seed, reposition_every=reposition_every)
    rng = np.random.default_rng(seed + 2)
    point = 0.5
    ids: list[int] = []
    horizon = 2 * params.dilation + 8
    for t in range(horizon):
        if t >= 4:
            stale_epoch = router.epoch_at(max(0, t - 2))
            stale = router.index(stale_epoch).ids_within(point, params.swarm_radius)
            kills = sorted(set(int(v) for v in stale) & router.alive)[:budget]
            router.kill(kills)
            router.join(len(kills))
        if t % 4 == 0 and 4 <= t <= params.dilation:
            ids.append(router.send(int(rng.choice(sorted(router.alive))), point))
        router.step()
    router.run_until_quiet()
    return sum(1 for i in ids if router.outcomes[i].delivered) / len(ids)


def committee_delivery(targeted: bool, n: int = 256, seed: int = 31) -> float:
    """Delivery to a victim committee under random churn or a 2-late wipe."""
    overlay = CommitteeOverlay(n=n, committee_size=8, r=2, seed=seed)
    rng = np.random.default_rng(seed + 1)
    victim = 3
    history: dict[int, set[int]] = {}
    ids: list[int] = []
    for t in range(40):
        history[t] = set(overlay.members(victim))
        if t >= 4:
            if targeted:
                kills = sorted(history.get(t - 2, set()) & overlay.alive)
            else:
                kills = [
                    int(v)
                    for v in rng.choice(sorted(overlay.alive), size=8, replace=False)
                ]
            overlay.kill(kills)
            overlay.join(len(kills))
        if t % 2 == 0 and t >= 4:
            origins = [
                v for v in sorted(overlay.alive) if overlay.committee_of(v) != victim
            ]
            ids.append(overlay.send(int(rng.choice(origins)), victim))
        overlay.step()
    overlay.run_until_quiet()
    return sum(1 for i in ids if overlay.outcomes[i].delivered) / len(ids)


@register("E-X6")
def run_comparison(quick: bool = True, seed: int = 31) -> ExperimentResult:
    n = 256 if quick else 512
    header = ["design", "adversary (same 2-late knowledge)", "delivery", "ok"]
    rows: list[list] = []
    passed = True

    periods = [(1, "survives", lambda d: d >= 0.99)] + [
        (p, "collapses", lambda d: d <= 0.15) for p in (2, 4)
    ] + [(10**6, "collapses (static)", lambda d: d <= 0.15)]
    for p, expect, check in periods:
        rate = period_sweep_delivery(p, n=n, seed=seed)
        ok = check(rate)
        passed = passed and ok
        label = "static" if p >= 10**6 else f"reposition every {p} cycle(s)"
        rows.append(
            [f"LDS machinery, {label}", f"stale region wipe (expect {expect})", rate, ok]
        )

    random_rate = committee_delivery(False, n=n, seed=seed)
    wipe_rate = committee_delivery(True, n=n, seed=seed)
    ok_random = random_rate >= 0.9
    # The static structure cannot shake the attacker off: persistent losses,
    # bounded only by the refill-vs-kill race.
    ok_wipe = wipe_rate <= random_rate - 0.1
    passed = passed and ok_random and ok_wipe
    rows.append(["committees (static virtual)", "random churn", random_rate, ok_random])
    rows.append(
        [
            "committees (static virtual)",
            "stale membership wipe (persistent losses)",
            wipe_rate,
            ok_wipe,
        ]
    )

    return ExperimentResult(
        experiment_id="E-X6",
        title="Extension — reconfiguration period vs lateness",
        claim="Re-randomising at least as fast as the adversary's lateness "
        "(period <= 2 rounds) makes stale knowledge worthless; any slower "
        "period — or a static committee structure — leaves a window the "
        "adversary exploits every cycle.",
        header=header,
        rows=rows,
        passed=passed,
        notes=[
            f"n={n}; region-wipe kills paired with joins so only information "
            "quality differs across rows"
        ],
    )
