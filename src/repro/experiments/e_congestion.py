"""E-L24 — congestion scales polylogarithmically (O(log^3 n) per node/round).

We run the full maintenance protocol (no churn — churn only reduces traffic)
across a range of ``n`` with the protocol's Theta(log n) parameter scalings
(``delta ~ lam/2``, ``tau ~ lam``), measure the steady-state peak per-node
message count, and check the *shape*: the measured congestion divided by
``lam^3`` must stay within a constant band, while any polynomial model
``n^eps`` would drift.  A log-power fit reports the exponent.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.estimators import fit_log_power
from repro.config import ProtocolParams
from repro.core.runner import MaintenanceSimulation
from repro.experiments.registry import ExperimentResult, register

__all__ = ["run_congestion"]


def _measure(n: int, seed: int) -> tuple[int, float, float]:
    lam = ProtocolParams(n=n, seed=seed).lam
    params = ProtocolParams(
        n=n,
        c=1.2,
        r=2,
        delta=max(2, lam // 2),
        tau=max(4, lam),
        seed=seed,
    )
    sim = MaintenanceSimulation(params)
    warmup = 2 * (params.lam + 3)
    sim.run(warmup)
    before = len(sim.engine.metrics.history)
    sim.run(10)
    window = sim.engine.metrics.history[before:]
    peak = max(m.max_sent for m in window)
    mean = float(np.mean([m.mean_sent for m in window]))
    return params.lam, peak, mean


@register("E-L24")
def run_congestion(quick: bool = True, seed: int = 10) -> ExperimentResult:
    sizes = [32, 48, 64] if quick else [32, 48, 64, 96, 128]
    header = ["n", "lam", "peak sent/node/round", "mean sent/node/round", "peak / lam^3"]
    rows = []
    lams, peaks, ratios = [], [], []
    for n in sizes:
        lam, peak, mean = _measure(n, seed)
        ratio = peak / lam**3
        rows.append([n, lam, peak, mean, ratio])
        lams.append(lam)
        peaks.append(peak)
        ratios.append(ratio)
    # Shape check 1: the lam^3-normalised constant stays in a narrow band.
    band = max(ratios) / min(ratios)
    # Shape check 2: fitted exponent of peak ~ a * lam^b.
    if len(set(lams)) >= 2:
        _, exponent = fit_log_power(np.array(sizes), np.array(peaks, dtype=float))
    else:  # degenerate sweep (all sizes share lam)
        exponent = float("nan")
    passed = band <= 3.0
    return ExperimentResult(
        experiment_id="E-L24",
        title="Lemma 24 — O(log^3 n) congestion per node and round",
        claim="Peak per-node message counts grow as a constant times lam^3.",
        header=header,
        rows=rows,
        passed=passed,
        notes=[
            f"normalisation band max/min = {band:.2f} (<= 3 accepted)",
            f"fitted exponent of peak ~ (log2 n)^b: b = {exponent:.2f}",
        ],
    )
