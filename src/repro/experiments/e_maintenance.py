"""E-L17, E-L22 and E-T14 — the maintenance algorithm under churn.

* **E-L17 (Lemma 17, good swarms)**: under budget-maximal churn, every swarm
  of the maintained overlay keeps at least a 3/4 fraction of members that
  survive two more rounds (the goodness invariant of Definition 8).
* **E-L22 (Lemma 22, bounded connects)**: no mature node ever receives more
  than ``2*delta`` CONNECTs in a round (slot overflow stays negligible).
* **E-T14 (Theorem 14, the main result)**: the mature nodes form a routable
  series of overlays for the whole run — measured as structural edge
  coverage, end-to-end probe delivery, and zero overlay fallout — under the
  strongest adversaries the model admits.
"""

from __future__ import annotations

import numpy as np

from repro.adversary.oblivious import RandomChurnAdversary
from repro.adversary.swarm_wipe import ContactTraceAdversary, DegreeTargetAdversary
from repro.config import ProtocolParams
from repro.core.runner import MaintenanceSimulation
from repro.experiments.registry import ExperimentResult, register
from repro.overlay.positions import PositionIndex

__all__ = ["run_lemma17", "run_lemma22", "run_theorem14"]


def _params(n: int, seed: int) -> ProtocolParams:
    return ProtocolParams(
        n=n, c=1.2, r=2, delta=3, tau=8, seed=seed, alpha=0.25, kappa=1.25
    )


@register("E-L17")
def run_lemma17(quick: bool = True, seed: int = 7) -> ExperimentResult:
    n = 40 if quick else 64
    params = _params(n, seed)
    adv = RandomChurnAdversary(params, seed=seed + 1)
    sim = MaintenanceSimulation(params, adversary=adv)
    sim.run(params.bootstrap_rounds + 4)

    audits = 6 if quick else 15
    header = ["audit round", "overlay members", "min swarm size", "min good fraction"]
    rows = []
    min_overall = 1.0
    for _ in range(audits):
        # Snapshot the current overlay, run two rounds, measure survivors.
        snapshot_round = sim.round
        members = {
            v: node.pos
            for v, node in sim.established_nodes().items()
            if node.pos is not None
        }
        index = PositionIndex(members)
        sim.run(2)
        survivors = sim.engine.trace.alive_at(sim.round - 1) or frozenset()
        min_frac = 1.0
        min_size = 10**9
        for p in index.sorted_positions:
            swarm = index.ids_within(float(p), params.swarm_radius)
            size = swarm.size
            good = sum(1 for w in swarm if int(w) in survivors)
            min_size = min(min_size, size)
            if size:
                min_frac = min(min_frac, good / size)
        min_overall = min(min_overall, min_frac)
        rows.append([snapshot_round, len(members), min_size, min_frac])
        sim.run(2)
    passed = min_overall >= params.goodness
    return ExperimentResult(
        experiment_id="E-L17",
        title="Lemma 17 — swarms stay good under maximal churn",
        claim="Every swarm of every maintained overlay keeps >= 3/4 of its "
        "members alive two rounds later.",
        header=header,
        rows=rows,
        passed=passed,
        notes=[f"goodness threshold {params.goodness}; worst observed {min_overall:.3f}"],
    )


@register("E-L22")
def run_lemma22(quick: bool = True, seed: int = 8) -> ExperimentResult:
    n = 40 if quick else 64
    params = _params(n, seed)
    adv = RandomChurnAdversary(params, seed=seed + 1)
    sim = MaintenanceSimulation(params, adversary=adv)
    sim.run((6 if quick else 12) * params.lam)
    nodes = sim.alive_nodes()
    max_connects = max(node.max_connects_in_round for node in nodes)
    total_received = sum(node.connects_received for node in nodes)
    total_dropped = sum(node.connects_dropped for node in nodes)
    bound = 2 * params.delta_eff
    header = ["metric", "value", "bound", "ok"]
    rows = [
        ["max CONNECTs at one node in one round", max_connects, f"<= {bound}", max_connects <= bound],
        ["total CONNECTs received", total_received, "-", True],
        ["CONNECTs dropped (slot overflow)", total_dropped, "~0", total_dropped <= 0.02 * max(1, total_received)],
    ]
    passed = all(bool(r[-1]) for r in rows)
    return ExperimentResult(
        experiment_id="E-L22",
        title="Lemma 22 — mature nodes receive at most 2*delta connects",
        claim="Fresh-node CONNECT load spreads so evenly that the 2*delta "
        "slot bound is (essentially) never exceeded.",
        header=header,
        rows=rows,
        passed=passed,
        notes=[f"delta={params.delta_eff}, run length {sim.round} rounds"],
    )


def _theorem14_run(adversary_name: str, n: int, seed: int) -> list:
    params = _params(n, seed)
    if adversary_name == "random":
        adv = RandomChurnAdversary(params, seed=seed + 1)
    elif adversary_name == "contact-trace":
        adv = ContactTraceAdversary(params, victim=0, seed=seed + 1, topology_lateness=2)
    elif adversary_name == "degree-target":
        adv = DegreeTargetAdversary(params, seed=seed + 1, top=6, topology_lateness=2)
    else:  # pragma: no cover - defensive
        raise ValueError(adversary_name)
    sim = MaintenanceSimulation(params, adversary=adv)
    rng = np.random.default_rng(seed)
    sim.run(params.bootstrap_rounds + 6)
    ids = list(sim.send_probes(6, rng))
    sim.run(params.dilation + 2)
    ids += sim.send_probes(6, rng)
    sim.run(2 * params.dilation + 4)
    probe = sim.probe_report(ids)
    audit = sim.audit_overlay()
    health = sim.health_summary()
    ok = (
        probe.delivery_rate >= 0.95
        and audit.edge_coverage >= 0.99
        and health["total_demotions"] <= 1
    )
    return [
        adversary_name,
        n,
        sim.round,
        health["established_fraction"],
        audit.edge_coverage,
        probe.delivery_rate,
        int(health["total_demotions"]),
        int(health["peak_congestion"]),
        ok,
    ]


@register("E-T14")
def run_theorem14(quick: bool = True, seed: int = 9) -> ExperimentResult:
    sizes = [40] if quick else [48, 64]
    adversaries = ["random", "contact-trace", "degree-target"]
    header = [
        "adversary",
        "n",
        "rounds",
        "established frac",
        "edge coverage",
        "probe delivery",
        "demotions",
        "peak congestion",
        "ok",
    ]
    rows = []
    for n in sizes:
        for name in adversaries:
            rows.append(_theorem14_run(name, n, seed))
    passed = all(bool(r[-1]) for r in rows)
    return ExperimentResult(
        experiment_id="E-T14",
        title="Theorem 14 — a routable overlay under a (2, O(log n))-late adversary",
        claim="The mature nodes form a routable series of overlays (full "
        "Definition-5 edge coverage + end-to-end delivery) against every "
        "budget-maximal 2-late strategy.",
        header=header,
        rows=rows,
        passed=passed,
    )
