"""E-SC — scenario matrix: recovery under named composed adversity.

Where E-CH sweeps fault probabilities one axis at a time, this experiment
runs the *named scenarios* of :mod:`repro.scenarios` — compositions of
network conditions (loss, delay regions, rate caps, one-way cuts), churn
schedules and targeted attacks — and reports the recovery profile of each:
probe delivery, routing-stretch percentiles, time to first degradation,
degraded-round fraction and time to recover after the fault windows close.

Pass criterion, mirroring E-CH: the ``calm`` cell must reproduce the
paper's guarantees exactly (full delivery, full establishment, zero
degradation events, zero injected faults); every adverse cell must show
its adversity actually fired (faults injected or churn performed) — how
the overlay fares under it is the measurement, not the criterion.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.registry import ExperimentResult, register
from repro.scenarios.registry import SCENARIOS
from repro.scenarios.runner import run_matrix

__all__ = ["run_scenarios_experiment", "QUICK_NAMES"]

#: The quick subset: the baseline plus one environment-only and one
#: compute-fault scenario (kept cheap for CI).
QUICK_NAMES = ("calm", "loss30-delay50", "stall-storm")


def _cell_ok(cell: dict[str, object]) -> bool:
    adverse = bool(cell["faults_injected"]) or bool(cell["churn_events"])
    if cell["scenario"] == "calm":
        probes = cell["probes"]
        recovery = cell["recovery"]
        return (
            not adverse
            and probes["delivery_rate"] is not None
            and probes["delivery_rate"] >= 0.95
            and cell["established_fraction"] >= 0.95
            and recovery["events"] == 0
        )
    return adverse


@register("E-SC")
def run_scenarios_experiment(
    quick: bool = True,
    seed: int = 0,
    names: Sequence[str] | None = None,
) -> ExperimentResult:
    """Scenario matrix — named conditions x adversary x churn, with recovery metrics."""
    if names is None:
        chosen = QUICK_NAMES if quick else tuple(sorted(SCENARIOS))
    else:
        chosen = tuple(names)
    cells = run_matrix(chosen, (seed,), workers=1, quick=quick)
    header = [
        "scenario",
        "delivery",
        "stretch p95",
        "events",
        "degraded frac",
        "recover",
        "faults",
        "churn",
        "ok",
    ]
    rows = []
    passed = True
    for cell in cells:
        ok = _cell_ok(cell)
        probes = cell["probes"]
        stretch = cell["stretch"]
        recovery = cell["recovery"]
        ttr = recovery["time_to_recover"]
        rows.append(
            [
                cell["scenario"],
                "-" if probes["delivery_rate"] is None else round(probes["delivery_rate"], 2),
                "-" if stretch is None else round(stretch["p95"], 2),
                recovery["events"],
                round(recovery["degraded_round_fraction"], 3),
                "-" if ttr is None else ttr,
                cell["faults_injected"],
                cell["churn_events"],
                ok,
            ]
        )
        passed = passed and ok
    return ExperimentResult(
        experiment_id="E-SC",
        title="Scenario matrix — recovery under named composed adversity",
        claim="The calm scenario reproduces the paper's guarantees exactly; "
        "every named adversity scenario executes its composed faults, churn "
        "and attacks deterministically and reports how the overlay degrades "
        "and recovers rather than crashing.",
        header=header,
        rows=rows,
        passed=passed,
        notes=[
            f"{len(cells)} scenario cells at seed {seed}"
            + (" (quick subset)" if names is None and quick else ""),
            "adverse cells gate on the adversity firing; only calm gates on "
            "the paper's thresholds",
        ],
    )
