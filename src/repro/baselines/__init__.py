"""Baseline overlays the adversaries defeat (contrast for the contribution)."""

from repro.baselines.committees import CommitteeOverlay, CommitteeRoutingOutcome
from repro.baselines.gossip import GossipNode, PeerSample

__all__ = ["CommitteeOverlay", "CommitteeRoutingOutcome", "GossipNode", "PeerSample"]
