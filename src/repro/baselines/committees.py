"""A SPARTAN-style committee overlay — the structured baseline of Table 1.

SPARTAN (Augustine & Sivasubramaniam, row [2] of Table 1) maintains a
*static* virtual topology — a butterfly whose virtual nodes are simulated by
committees of ``Theta(log n)`` real nodes; churned-in nodes refill
committees, but the committee structure itself never moves.  That design
tolerates an ``O(log log n)``-late adversary at high churn; the paper's
pitch is that it cannot survive a *2-late* one, because a static structure
lets stale topology knowledge stay actionable.

We implement the essential mechanism at the paper's level of abstraction: a
virtual De Bruijn ring of ``m`` supernodes, each simulated by a committee;
virtual edges ``i -> 2i mod m`` and ``i -> 2i+1 mod m`` plus ring edges;
committee-to-committee routing with ``r`` copies per hop; joiners assigned
to the currently smallest committee (SPARTAN's rebalancing, idealised in the
baseline's favour).

Two facts are then measurable (experiment E-X6):

* against **random** churn the committee overlay is exactly as robust as the
  LDS — redundancy is redundancy;
* against a **2-late committee-wipe** adversary it dies: committee
  membership changes only via churn, so 2-rounds-stale topology still
  identifies today's committee, and one wiped committee severs every
  virtual route through it *permanently* — there is no next overlay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

__all__ = ["CommitteeRoutingOutcome", "CommitteeOverlay"]


@dataclass
class CommitteeRoutingOutcome:
    """Fate of one committee-routed message."""

    msg_id: int
    origin_committee: int
    target_committee: int
    delivered_round: int | None = None
    failed: bool = False

    @property
    def delivered(self) -> bool:
        return self.delivered_round is not None


class CommitteeOverlay:
    """A static virtual De Bruijn ring simulated by committees."""

    def __init__(
        self,
        n: int,
        committee_size: int,
        *,
        r: int = 2,
        seed: int = 0,
    ) -> None:
        if committee_size < 2:
            raise ValueError("committee_size must be at least 2")
        self.rng = np.random.default_rng(seed)
        self.m = max(2, n // committee_size)
        self.r = r
        self.alive: set[int] = set(range(n))
        self._next_id = n
        # committee index -> set of member node ids (static virtual slots).
        self.committees: list[set[int]] = [set() for _ in range(self.m)]
        self.home: dict[int, int] = {}
        for v in range(n):
            self._assign(v, v % self.m)
        self.round = 0
        # msg_id -> (outcome, virtual path remaining, holder set)
        self._inflight: dict[int, tuple[CommitteeRoutingOutcome, list[int], set[int]]] = {}
        self.outcomes: dict[int, CommitteeRoutingOutcome] = {}
        self._next_msg = 0

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def _assign(self, v: int, committee: int) -> None:
        self.committees[committee].add(v)
        self.home[v] = committee

    def committee_of(self, v: int) -> int:
        return self.home[v]

    def members(self, committee: int) -> set[int]:
        return self.committees[committee] & self.alive

    def smallest_committee(self) -> int:
        sizes = [len(self.members(i)) for i in range(self.m)]
        return int(np.argmin(sizes))

    def kill(self, node_ids: Iterable[int]) -> None:
        self.alive.difference_update(int(v) for v in node_ids)

    def join(self, count: int = 1) -> list[int]:
        """SPARTAN-style rebalancing: newcomers refill the thinnest committee."""
        out = []
        for _ in range(count):
            v = self._next_id
            self._next_id += 1
            self.alive.add(v)
            self._assign(v, self.smallest_committee())
            out.append(v)
        return out

    def committee_sizes(self) -> list[int]:
        return [len(self.members(i)) for i in range(self.m)]

    # ------------------------------------------------------------------
    # Virtual topology
    # ------------------------------------------------------------------

    def virtual_neighbors(self, committee: int) -> tuple[int, ...]:
        m = self.m
        return (
            (committee + 1) % m,
            (committee - 1) % m,
            (2 * committee) % m,
            (2 * committee + 1) % m,
        )

    def virtual_path(self, src: int, dst: int) -> list[int]:
        """BFS over the virtual graph (committees are few; this is cheap)."""
        if src == dst:
            return [src]
        from collections import deque

        prev: dict[int, int] = {src: src}
        queue = deque([src])
        while queue:
            u = queue.popleft()
            for w in self.virtual_neighbors(u):
                if w not in prev:
                    prev[w] = u
                    if w == dst:
                        path = [w]
                        while path[-1] != src:
                            path.append(prev[path[-1]])
                        return list(reversed(path))
                    queue.append(w)
        raise RuntimeError("virtual graph disconnected")  # pragma: no cover

    # ------------------------------------------------------------------
    # Routing (committee-to-committee, r copies per hop)
    # ------------------------------------------------------------------

    def send(self, origin: int, target_committee: int) -> int:
        if origin not in self.alive:
            raise ValueError(f"origin {origin} is not alive")
        msg_id = self._next_msg
        self._next_msg += 1
        src = self.committee_of(origin)
        path = self.virtual_path(src, target_committee)
        outcome = CommitteeRoutingOutcome(msg_id, src, target_committee)
        self.outcomes[msg_id] = outcome
        # The origin hands the message to its whole committee first.
        holders = set(self.members(src))
        if not holders:
            outcome.failed = True
            return msg_id
        self._inflight[msg_id] = (outcome, path[1:], holders)
        return msg_id

    def step(self) -> None:
        done = []
        for msg_id, (outcome, path, holders) in self._inflight.items():
            holders &= self.alive
            if not holders:
                outcome.failed = True
                done.append(msg_id)
                continue
            if not path:
                outcome.delivered_round = self.round
                done.append(msg_id)
                continue
            nxt = path.pop(0)
            members = sorted(self.members(nxt))
            new_holders: set[int] = set()
            if members:
                for _ in holders:
                    picks = self.rng.choice(members, size=self.r)
                    new_holders.update(int(w) for w in picks)
            if not new_holders:
                outcome.failed = True
                done.append(msg_id)
                continue
            self._inflight[msg_id] = (outcome, path, new_holders)
        for msg_id in done:
            self._inflight.pop(msg_id, None)
        self.round += 1

    def run_until_quiet(self, max_rounds: int = 10_000) -> None:
        for _ in range(max_rounds):
            if not self._inflight:
                return
            self.step()
