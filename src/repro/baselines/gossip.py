"""A naive unstructured gossip overlay — the victim of the Section 2 attacks.

Each node keeps a ``known`` set of peer ids.  Every round it sends a sample
of its known set to a few random known peers, who merge it.  A newcomer is
introduced by its bootstrap node: the bootstrap tells the newcomer about a
sample of its own contacts and announces the newcomer to them.

This is a perfectly reasonable overlay against *random* churn, and exactly
the kind of protocol Lemmas 3 and 4 disconnect: its communication pattern
reveals, in the very round it happens, who knows a freshly joined node — so
an adversary with (near) up-to-date topology knowledge can erase every node
that ever learns the newcomer's id.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.engine import EngineServices, JoinNotice, NodeContext, NodeProtocol

__all__ = ["PeerSample", "GossipNode"]


@dataclass(frozen=True)
class PeerSample:
    """A gossip payload: some peer ids the sender knows."""

    peers: tuple[int, ...]


class GossipNode(NodeProtocol):
    """One node of the naive gossip overlay."""

    #: How many peers each gossip message carries.
    SAMPLE_SIZE = 4
    #: How many random known peers are gossiped to per round.
    FANOUT = 2

    def __init__(self, node_id: int, services: EngineServices) -> None:
        self.id = node_id
        self.known: set[int] = set()

    def seed_known(self, peers: set[int]) -> None:
        """Install the initial contact set (bootstrap-phase wiring)."""
        self.known = set(peers) - {self.id}

    def on_round(self, ctx: NodeContext) -> None:
        for src, msg in ctx.inbox:
            if isinstance(msg, PeerSample):
                self.known.update(msg.peers)
                if src >= 0:
                    self.known.add(src)
            elif isinstance(msg, JoinNotice):
                # Introduce the newcomer both ways.
                sample = self._sample(ctx, self.SAMPLE_SIZE)
                ctx.send(msg.new_id, PeerSample(tuple(sample | {self.id})))
                for w in sample:
                    ctx.send(w, PeerSample((msg.new_id,)))
        self.known.discard(self.id)
        # Gossip a sample of the known set to a few random known peers.
        if self.known:
            targets = self._sample(ctx, self.FANOUT)
            payload = PeerSample(tuple(self._sample(ctx, self.SAMPLE_SIZE)))
            for w in targets:
                ctx.send(w, payload)

    def _sample(self, ctx: NodeContext, count: int) -> set[int]:
        peers = sorted(self.known)
        if len(peers) <= count:
            return set(peers)
        picks = ctx.rng.choice(peers, size=count, replace=False)
        return {int(w) for w in picks}
