"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    List every registered experiment with its title.
``run E-ID [E-ID ...] [--full] [--seed S]``
    Run experiments and print their tables; exits non-zero on FAIL.
``report [--full] [--out PATH]``
    Run the whole suite in artefact order and write a markdown report.
``params N [--c C] [--r R] ...``
    Print the derived protocol parameters for a network size.
``chaos [--full] [--seed S] [--drop ...] [--delay ...] [--stall ...]``
    Fault-injection sweep (drop x delay x stall) reporting routing success
    and first-degradation round per cell; axes are comma-separated
    probability lists and default to the E-CH experiment's grid.
    ``--scenario NAME`` runs a registry scenario (see ``scenario --list``)
    through the recovery runner instead of the probability grid.
``scenario --list | run NAME [NAME ...] | matrix``
    Named adversity scenarios (network conditions x churn x adversary).
    ``--list`` prints the registry; ``run`` executes the named scenarios
    and prints their recovery reports (time to first degradation,
    degraded-round fraction, time to recover, routing-stretch p50/p95/p99);
    ``matrix`` runs the whole registry.  ``--seeds S,S`` and ``--workers W``
    fan the grid over a process pool — output is identical for any worker
    count — and ``--out PATH`` writes the schema-validated JSON report.
``profile [--n N] [--rounds R] [--seed S] [--churn P]``
    Run the maintenance protocol with a per-phase wall-time profiler
    attached and print the hot-path table (adversary / receive / compute /
    close seconds per round).
``sweep [E-ID ...] [--seeds S,S,...] [--workers W] [--full]``
    Fan an (experiment x seed) grid over worker processes and print the
    merged table; the output is bit-for-bit identical for any worker count.
``scale [--file PATH]``
    Print the recorded scaling curve (seconds per round and peak RSS per
    network size) from ``benchmarks/results/BENCH_scaling.json``; refresh
    it with ``pytest benchmarks/bench_scaling.py --benchmark-only --full``
    under ``REPRO_BENCH_RECORD=1``.
``lint [--format text|json|sarif] [--rules R,...] [--paths P ...] [--fix]``
    Run the determinism & lateness linter (see ``docs/ANALYSIS.md``) over
    ``src/repro``; exits non-zero on any finding that is neither waived
    inline nor grandfathered in the committed ``lint-baseline.json``.
    ``--list-rules`` prints the rule table, ``--update-baseline`` rewrites
    the baseline from the current findings, ``--fix`` deletes the stale
    waiver comments W2 reports before linting.
``flow [--format text|json|sarif] [--policies F,...] [--max-depth N]``
    Run the interprocedural information-flow analysis (policies F1
    lateness / F2 determinism, see ``docs/ANALYSIS.md``) over
    ``src/repro``; exits non-zero on any finding that is neither waived
    (``# repro: allow(flow-...): why``) nor in ``flow-baseline.json``.
    ``--list-policies`` prints the policy table.
``shard-check [--format text|json|sarif] [--rules S,...]``
    Run the process-role & shared-memory ownership analyzer for the
    sharded engine (rules S1–S5, see ``docs/ANALYSIS.md``) over
    ``src/repro``; exits non-zero on any finding that is neither waived
    (``# repro: allow(shard-...): why``) nor in ``shard-baseline.json``.
    ``--list-rules`` prints the rule table.
``proto-check [--format text|json|sarif] [--rules P,...] [--spec PATH]``
    Run the protocol state-machine & message-contract analyzer (rules
    P1–P6, see ``docs/ANALYSIS.md``) over ``src/repro``, checking the
    extracted protocol against the declarative ``protocol-spec.json``;
    exits non-zero on any finding that is neither waived
    (``# repro: allow(protocol-...): why``) nor in ``proto-baseline.json``.
    ``--list-rules`` prints the rule table.
``check [--format text|json|sarif] [--paths P ...]``
    Umbrella: run lint + flow + shard-check + proto-check off one shared
    parse and one call-graph build, with a combined exit code;
    ``--format sarif`` merges all four tools into one multi-run SARIF
    document.
"""

from __future__ import annotations

import argparse
import sys

from repro.config import ProtocolParams

__all__ = ["main"]


def _cmd_list(_args: argparse.Namespace) -> int:
    from repro.experiments import all_experiments
    from repro.experiments.report import DEFAULT_ORDER

    import importlib

    registry = all_experiments()
    for eid in DEFAULT_ORDER:
        fn = registry[eid]
        doc = fn.__doc__ or importlib.import_module(fn.__module__).__doc__ or ""
        title = doc.strip().splitlines()[0] if doc.strip() else ""
        print(f"{eid:>6}  {title}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments import get_experiment

    failed = False
    for eid in args.ids:
        try:
            fn = get_experiment(eid)
        except KeyError:
            print(f"unknown experiment {eid!r}; try `python -m repro list`")
            return 2
        kwargs = {"quick": not args.full}
        if args.seed is not None:
            kwargs["seed"] = args.seed
        result = fn(**kwargs)
        print(result.to_table())
        print()
        failed = failed or not result.passed
    return 1 if failed else 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import render_report, run_all, write_report

    results = run_all(quick=not args.full, progress=True)
    if args.out:
        path = write_report(args.out, results)
        print(f"wrote {path}")
    else:
        print(render_report(results))
    return 0 if all(r.passed for r in results) else 1


def _parse_axis(value: str | None, name: str) -> list[float] | None:
    """A comma-separated probability list, validated to [0, 1]."""
    if value is None:
        return None
    try:
        probs = [float(v) for v in value.split(",") if v.strip()]
    except ValueError:
        raise SystemExit(f"--{name} expects comma-separated floats, got {value!r}")
    if not probs or any(not 0.0 <= p <= 1.0 for p in probs):
        raise SystemExit(f"--{name} probabilities must lie in [0, 1], got {value!r}")
    return probs


def _print_scenario_cells(cells: list[dict]) -> None:
    header = (
        f"{'scenario':>20}  {'seed':>4}  {'deliv':>5}  {'p95':>5}  "
        f"{'events':>6}  {'degraded':>8}  {'recover':>7}  fingerprint"
    )
    print(header)
    for cell in cells:
        probes = cell["probes"]
        stretch = cell["stretch"]
        recovery = cell["recovery"]
        deliv = probes["delivery_rate"]
        ttr = recovery["time_to_recover"]
        print(
            f"{cell['scenario']:>20}  {cell['seed']:>4}  "
            f"{'-' if deliv is None else format(deliv, '.2f'):>5}  "
            f"{'-' if stretch is None else format(stretch['p95'], '.2f'):>5}  "
            f"{recovery['events']:>6}  "
            f"{recovery['degraded_round_fraction']:>8.3f}  "
            f"{'-' if ttr is None else ttr:>7}  {cell['fingerprint']}"
        )


def _cmd_scenario(args: argparse.Namespace) -> int:
    import json

    from repro.scenarios import (
        SCENARIOS,
        all_scenarios,
        run_matrix,
        scenario_report,
        validate_scenario_report,
    )

    if args.list or args.action is None:
        if args.action is not None:
            raise SystemExit("scenario: --list takes no action argument")
        if not args.list:
            raise SystemExit("scenario: use --list, run NAME [NAME ...], or matrix")
        width = max(len(s.name) for s in all_scenarios())
        for s in all_scenarios():
            print(f"{s.name:>{width}}  {s.description}")
        return 0
    if args.action == "matrix":
        if args.names:
            raise SystemExit("scenario matrix runs the whole registry; drop the names")
        names = tuple(sorted(SCENARIOS))
    else:  # action == "run" (argparse restricts the choices)
        if not args.names:
            raise SystemExit("scenario run: name at least one scenario")
        names = tuple(args.names)
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        print(f"unknown scenarios {unknown}; try `python -m repro scenario --list`")
        return 2
    if args.seed is not None:
        seeds: tuple[int, ...] = (args.seed,)
    else:
        try:
            seeds = tuple(int(s) for s in args.seeds.split(",") if s.strip())
        except ValueError:
            raise SystemExit(f"--seeds expects comma-separated ints, got {args.seeds!r}")
    if not seeds:
        raise SystemExit("--seeds must name at least one seed")
    cells = run_matrix(names, seeds, workers=args.workers, quick=not args.full)
    _print_scenario_cells(cells)
    if args.out:
        report = scenario_report(cells)
        validate_scenario_report(report)
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.experiments.e_chaos import run_chaos

    if args.scenario is not None:
        from repro.scenarios import SCENARIOS, run_matrix

        if args.scenario not in SCENARIOS:
            print(
                f"unknown scenario {args.scenario!r}; "
                "try `python -m repro scenario --list`"
            )
            return 2
        cells = run_matrix(
            (args.scenario,),
            (args.seed if args.seed is not None else 0,),
            quick=not args.full,
        )
        _print_scenario_cells(cells)
        return 0

    drops = _parse_axis(args.drop, "drop")
    delays = _parse_axis(args.delay, "delay")
    stalls = _parse_axis(args.stall, "stall")
    cells = None
    if drops is not None or delays is not None or stalls is not None:
        cells = [
            (d, y, s)
            for d in (drops or [0.0])
            for y in (delays or [0.0])
            for s in (stalls or [0.0])
        ]
    kwargs = {"quick": not args.full}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    result = run_chaos(cells=cells, **kwargs)
    print(result.to_table())
    return 0 if result.passed else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments import all_experiments
    from repro.experiments.sweep import DEFAULT_GRID, run_sweep

    registry = all_experiments()
    ids = tuple(args.ids) if args.ids else DEFAULT_GRID
    unknown = [eid for eid in ids if eid not in registry]
    if unknown:
        print(f"unknown experiments {unknown}; try `python -m repro list`")
        return 2
    try:
        seeds = tuple(int(s) for s in args.seeds.split(",") if s.strip())
    except ValueError:
        raise SystemExit(f"--seeds expects comma-separated ints, got {args.seeds!r}")
    if not seeds:
        raise SystemExit("--seeds must name at least one seed")
    result = run_sweep(
        ids, seeds, workers=args.workers, quick=not args.full
    )
    print(result.to_table())
    return 0 if result.passed else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.adversary.oblivious import RandomChurnAdversary
    from repro.core.runner import MaintenanceSimulation
    from repro.sim.profile import PhaseProfiler

    params = ProtocolParams(n=args.n, seed=args.seed)
    adversary = None
    if args.churn > 0.0:
        adversary = RandomChurnAdversary(params, seed=args.seed, intensity=args.churn)
    profiler = PhaseProfiler()
    with MaintenanceSimulation(
        params, adversary, profiler=profiler, workers=args.workers
    ) as sim:
        sim.run(args.rounds)
    mean_ms = profiler.total_time() / max(1, profiler.rounds) * 1e3
    print(
        f"n={args.n} rounds={args.rounds} seed={args.seed} "
        f"churn={args.churn} workers={args.workers} mean={mean_ms:.2f} ms/round"
    )
    print()
    print(profiler.table())
    shard_rounds = [t for t in profiler.history if t.shards]
    if shard_rounds:
        per_shard = [0.0] * max(len(t.shards) for t in shard_rounds)
        for t in shard_rounds:
            for k, s in enumerate(t.shards):
                per_shard[k] += s
        print()
        print(f"{'shard':<10} {'total s':>10} {'ms/round':>10}")
        for k, seconds in enumerate(per_shard):
            print(
                f"{k:<10} {seconds:>10.3f} "
                f"{seconds / len(shard_rounds) * 1e3:>10.2f}"
            )
    pipe, shm = profiler.exchange_totals()
    if pipe or shm:
        per_round = (pipe + shm) / max(1, profiler.rounds) / 1e6
        share = pipe / (pipe + shm)
        print()
        print(
            f"exchange   pipe {pipe / 1e6:.2f} MB  shm {shm / 1e6:.2f} MB  "
            f"({per_round:.2f} MB/round, pipe share {share:.2%})"
        )
    return 0


def _cmd_scale(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.util.benchrec import validate_bench_file

    path = Path(args.file)
    if not path.exists():
        print(
            f"{path}: no scaling record yet; run\n"
            "  REPRO_BENCH_RECORD=1 PYTHONPATH=src python -m pytest "
            "benchmarks/bench_scaling.py --benchmark-only --full"
        )
        return 2
    data = validate_bench_file(path)
    # Newest entry per (n, workers) wins; records that predate the sharded
    # engine carry no workers field and mean workers=1.
    latest: dict[tuple[int, int], dict] = {}
    for entry in data["entries"]:
        latest[(entry["n"], entry.get("workers", 1))] = entry
    if not latest:
        print(f"{path}: no entries")
        return 2
    print(
        f"{'n':>6}  {'W':>3}  {'s/round':>9}  {'peak RSS':>9}  "
        f"{'speedup':>8}  {'exch MB/rd':>11}  recorded"
    )
    base: float | None = None
    for n, workers in sorted(latest):
        entry = latest[(n, workers)]
        spr = entry["seconds_per_round"]
        if base is None and workers == 1:
            base = spr or None
        # Speedup of this row vs the serial (workers=1) row at the same n;
        # the serial rows anchor at 1.00x.
        serial = latest.get((n, 1))
        if serial is not None and spr:
            speed = f"{serial['seconds_per_round'] / spr:>7.2f}x"
        else:
            speed = f"{'—':>8}"
        # Per-round exchange traffic (pipe + shm), recorded by sharded runs
        # on the zero-copy exchange path; serial rows have no exchange.
        xch_pipe = entry.get("exchange_bytes_pipe")
        xch_shm = entry.get("exchange_bytes_shm")
        if xch_pipe is not None or xch_shm is not None:
            exch = f"{((xch_pipe or 0) + (xch_shm or 0)) / 1e6:>10.2f}M"
        else:
            exch = f"{'—':>11}"
        rel = (
            f"  ({spr / base:.1f}x n={min(k[0] for k in latest)})"
            if base and workers == 1
            else ""
        )
        rss_mb = entry["peak_rss_kb"] / 1024.0
        print(
            f"{n:>6}  {workers:>3}  {spr:>9.4f}  {rss_mb:>7.1f}MB  "
            f"{speed}  {exch}  {entry['created']}{rel}"
        )
    return 0


def _repo_root():
    """The checkout root (parent of ``src/``), or the current directory."""
    from pathlib import Path

    import repro

    pkg = Path(repro.__file__).resolve().parent
    return pkg.parents[1] if pkg.parent.name == "src" else Path.cwd()


def _rule_meta(rules) -> dict:
    """SARIF rule metadata for any rule/policy tuple (shared shape)."""
    return {
        r.id: {
            "description": r.description,
            "help": r.fix_hint,
            "level": getattr(r, "severity", "error"),
        }
        for r in rules
    }


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.common import run_engine_command
    from repro.analysis.lint import (
        DEFAULT_BASELINE_NAME,
        fix_unused_waivers,
        resolve_rules,
        rule_table,
        run_lint,
    )

    def pre(rules, paths):
        if args.fix:
            fixed = fix_unused_waivers(paths, root=_repo_root(), rules=rules)
            for relpath, count in sorted(fixed.items()):
                print(f"fixed {relpath}: removed {count} stale waiver(s)")
            if not fixed:
                print("nothing to fix: no stale waivers")

    return run_engine_command(
        args,
        name="lint",
        tool_name="repro-lint",
        root=_repo_root(),
        default_baseline_name=DEFAULT_BASELINE_NAME,
        resolve=resolve_rules,
        table=rule_table,
        runner=run_lint,
        rule_meta=_rule_meta,
        pre=pre,
    )


def _cmd_flow(args: argparse.Namespace) -> int:
    from repro.analysis.common import run_engine_command
    from repro.analysis.flow import (
        DEFAULT_FLOW_BASELINE_NAME,
        FlowError,
        policy_table,
        resolve_policies,
        run_flow,
    )

    def runner(paths, *, root, rules, baseline):
        return run_flow(
            paths,
            root=root,
            policies=rules,
            baseline=baseline,
            max_depth=args.max_depth,
        )

    return run_engine_command(
        args,
        name="flow",
        tool_name="repro-flow",
        root=_repo_root(),
        default_baseline_name=DEFAULT_FLOW_BASELINE_NAME,
        resolve=resolve_policies,
        table=policy_table,
        runner=runner,
        rule_meta=_rule_meta,
        errors=(FlowError,),
    )


def _cmd_shard_check(args: argparse.Namespace) -> int:
    from repro.analysis.common import run_engine_command
    from repro.analysis.shard import (
        DEFAULT_SHARD_BASELINE_NAME,
        resolve_shard_rules,
        run_shard_check,
        shard_rule_table,
    )

    return run_engine_command(
        args,
        name="shard-check",
        tool_name="repro-shard",
        root=_repo_root(),
        default_baseline_name=DEFAULT_SHARD_BASELINE_NAME,
        resolve=resolve_shard_rules,
        table=shard_rule_table,
        runner=run_shard_check,
        rule_meta=_rule_meta,
    )


def _cmd_proto_check(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis.common import run_engine_command
    from repro.analysis.proto import (
        DEFAULT_PROTO_BASELINE_NAME,
        proto_rule_table,
        resolve_proto_rules,
        run_proto_check,
    )

    def runner(paths, *, root, rules, baseline):
        return run_proto_check(
            paths,
            root=root,
            rules=rules,
            baseline=baseline,
            spec=Path(args.spec) if args.spec else None,
        )

    return run_engine_command(
        args,
        name="proto-check",
        tool_name="repro-proto",
        root=_repo_root(),
        default_baseline_name=DEFAULT_PROTO_BASELINE_NAME,
        resolve=resolve_proto_rules,
        table=proto_rule_table,
        runner=runner,
        rule_meta=_rule_meta,
    )


def _cmd_check(args: argparse.Namespace) -> int:
    """Umbrella: lint + flow + shard-check + proto-check, one parse."""
    import json
    from pathlib import Path

    from repro.analysis.flow import (
        DEFAULT_FLOW_BASELINE_NAME,
        ALL_POLICIES,
        FlowError,
        ProjectIndex,
        run_flow,
    )
    from repro.analysis.lint import ALL_RULES, DEFAULT_BASELINE_NAME, LintError, run_lint
    from repro.analysis.proto import (
        ALL_PROTO_RULES,
        DEFAULT_PROTO_BASELINE_NAME,
        run_proto_check,
    )
    from repro.analysis.shard import (
        ALL_SHARD_RULES,
        DEFAULT_SHARD_BASELINE_NAME,
        run_shard_check,
    )
    from repro.analysis.source_cache import SourceCache, collect_py_files

    root = _repo_root()
    paths = [Path(p) for p in args.paths] if args.paths else None
    targets = paths if paths is not None else [root / "src" / "repro"]
    cache = SourceCache(root)
    try:
        # One parse of the whole target set, one call graph; the four
        # engines then share both instead of re-doing the expensive work.
        files = collect_py_files(targets)
        modules = []
        for path in files:
            mod = cache.try_module(path)
            if mod is not None:
                modules.append(mod)
        index = ProjectIndex(modules)
        lint_report = run_lint(
            paths, root=root, baseline=root / DEFAULT_BASELINE_NAME, cache=cache
        )
        flow_report = run_flow(
            paths,
            root=root,
            baseline=root / DEFAULT_FLOW_BASELINE_NAME,
            cache=cache,
            index=index,
        )
        shard_report = run_shard_check(
            paths,
            root=root,
            baseline=root / DEFAULT_SHARD_BASELINE_NAME,
            cache=cache,
            index=index,
        )
        proto_report = run_proto_check(
            paths,
            root=root,
            baseline=root / DEFAULT_PROTO_BASELINE_NAME,
            cache=cache,
            index=index,
        )
    except (LintError, FlowError, FileNotFoundError) as exc:
        print(f"check: {exc}")
        return 2
    reports = {
        "lint": lint_report,
        "flow": flow_report,
        "shard": shard_report,
        "proto": proto_report,
    }
    ok = all(r.ok for r in reports.values())
    if args.format == "json":
        payload = {"version": 1, "ok": ok}
        payload.update({key: r.to_dict() for key, r in reports.items()})
        print(json.dumps(payload, indent=2))
    elif args.format == "sarif":
        from repro.analysis.sarif import sarif_report

        tools = (
            ("repro-lint", lint_report, ALL_RULES),
            ("repro-flow", flow_report, ALL_POLICIES),
            ("repro-shard", shard_report, ALL_SHARD_RULES),
            ("repro-proto", proto_report, ALL_PROTO_RULES),
        )
        docs = [
            sarif_report(
                report.findings,
                tool_name=tool,
                rule_meta=_rule_meta(rules),
                root=root,
            )
            for tool, report, rules in tools
        ]
        merged = {
            "$schema": docs[0]["$schema"],
            "version": docs[0]["version"],
            "runs": [run for doc in docs for run in doc["runs"]],
        }
        print(json.dumps(merged, indent=2))
    else:
        for title, report in (
            ("lint", lint_report),
            ("flow", flow_report),
            ("shard-check", shard_report),
            ("proto-check", proto_report),
        ):
            print(f"== {title} ==")
            print(report.format_text())
        print(f"check: {'ok' if ok else 'FAIL'} (parsed {cache.parses} file(s) once)")
    return 0 if ok else 1


def _cmd_params(args: argparse.Namespace) -> int:
    kwargs = {}
    if args.c is not None:
        kwargs["c"] = args.c
    if args.r is not None:
        kwargs["r"] = args.r
    if args.alpha is not None:
        kwargs["alpha"] = args.alpha
    params = ProtocolParams(n=args.n, **kwargs)
    width = max(len(k) for k in params.describe())
    for key, value in params.describe().items():
        print(f"{key:>{width}}: {value}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Always be Two Steps Ahead of Your Enemy'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments")

    p_run = sub.add_parser("run", help="run experiments by id")
    p_run.add_argument("ids", nargs="+", metavar="E-ID")
    p_run.add_argument("--full", action="store_true", help="full-size sweeps")
    p_run.add_argument("--seed", type=int, default=None)

    p_rep = sub.add_parser("report", help="run all experiments, emit markdown")
    p_rep.add_argument("--full", action="store_true")
    p_rep.add_argument("--out", default=None)

    p_chaos = sub.add_parser(
        "chaos", help="fault-injection sweep (drop x delay x stall)"
    )
    p_chaos.add_argument("--full", action="store_true", help="full-size sweep")
    p_chaos.add_argument("--seed", type=int, default=None)
    p_chaos.add_argument("--drop", default=None, metavar="P[,P...]")
    p_chaos.add_argument("--delay", default=None, metavar="P[,P...]")
    p_chaos.add_argument("--stall", default=None, metavar="P[,P...]")
    p_chaos.add_argument(
        "--scenario",
        default=None,
        metavar="NAME",
        help="run a registry scenario (see `scenario --list`) instead of the grid",
    )

    p_sc = sub.add_parser(
        "scenario", help="named adversity scenarios with recovery reports"
    )
    p_sc.add_argument(
        "action",
        nargs="?",
        choices=["run", "matrix"],
        default=None,
        help="`run NAME...` for chosen scenarios, `matrix` for the registry",
    )
    p_sc.add_argument("names", nargs="*", metavar="NAME")
    p_sc.add_argument(
        "--list", action="store_true", help="print the scenario registry and exit"
    )
    p_sc.add_argument("--seed", type=int, default=None, help="single seed shorthand")
    p_sc.add_argument("--seeds", default="0", metavar="S[,S...]")
    p_sc.add_argument("--workers", type=int, default=1)
    p_sc.add_argument("--full", action="store_true", help="full-length runs")
    p_sc.add_argument(
        "--out", default=None, metavar="PATH", help="write the JSON recovery report"
    )

    p_sw = sub.add_parser(
        "sweep", help="parallel (experiment x seed) sweep, merged table"
    )
    p_sw.add_argument("ids", nargs="*", metavar="E-ID")
    p_sw.add_argument("--seeds", default="0,1", metavar="S[,S...]")
    p_sw.add_argument("--workers", type=int, default=1)
    p_sw.add_argument("--full", action="store_true", help="full-size sweeps")

    p_prof = sub.add_parser(
        "profile", help="per-phase round profiler (hot-path table)"
    )
    p_prof.add_argument("--n", type=int, default=48, help="network size")
    p_prof.add_argument("--rounds", type=int, default=24)
    p_prof.add_argument("--seed", type=int, default=7)
    p_prof.add_argument(
        "--churn",
        type=float,
        default=0.0,
        metavar="INTENSITY",
        help="attach a RandomChurnAdversary with this intensity (0 = none)",
    )
    p_prof.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard the compute phase across N processes (default: 1)",
    )

    p_scale = sub.add_parser(
        "scale", help="print the recorded scaling curve (s/round, RSS per n)"
    )
    p_scale.add_argument(
        "--file",
        default="benchmarks/results/BENCH_scaling.json",
        help="BENCH_scaling.json path (default: %(default)s)",
    )

    from repro.analysis.common import add_engine_arguments

    p_lint = sub.add_parser(
        "lint", help="determinism & lateness linter (docs/ANALYSIS.md)"
    )
    add_engine_arguments(
        p_lint,
        default_baseline_name="lint-baseline.json",
        rules_help="only run these rules (ids like `wallclock` or codes like D2)",
    )
    p_lint.add_argument(
        "--fix",
        action="store_true",
        help="delete the stale waiver comments W2 reports, then lint",
    )

    p_flow = sub.add_parser(
        "flow", help="interprocedural information-flow analysis (docs/ANALYSIS.md)"
    )
    add_engine_arguments(
        p_flow,
        default_baseline_name="flow-baseline.json",
        rules_flags=("--policies", "--rules"),
        rules_metavar="P[,P...]",
        rules_help="only run these policies (ids like `flow-lateness` or codes like F1)",
        list_flags=("--list-policies", "--list-rules"),
        list_help="print the policy table and exit",
    )
    p_flow.add_argument(
        "--max-depth",
        type=int,
        default=8,
        metavar="N",
        help="summary-propagation passes, i.e. max helper-chain length "
        "taint is tracked through (default: %(default)s)",
    )

    p_shard = sub.add_parser(
        "shard-check",
        help="process-role & shared-memory ownership analyzer (docs/ANALYSIS.md)",
    )
    add_engine_arguments(
        p_shard,
        default_baseline_name="shard-baseline.json",
        rules_metavar="S[,S...]",
        rules_help="only run these rules (ids like `shard-band-ownership` or codes like S1)",
    )

    p_proto = sub.add_parser(
        "proto-check",
        help="protocol state-machine & message-contract analyzer (docs/ANALYSIS.md)",
    )
    add_engine_arguments(
        p_proto,
        default_baseline_name="proto-baseline.json",
        rules_metavar="P[,P...]",
        rules_help="only run these rules (ids like `protocol-phase-violation` "
        "or codes like P2)",
    )
    p_proto.add_argument(
        "--spec",
        default=None,
        metavar="PATH",
        help="protocol spec file (default: protocol-spec.json at the repo root)",
    )

    p_check = sub.add_parser(
        "check",
        help="umbrella: lint + flow + shard-check + proto-check off one shared parse",
    )
    p_check.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="output format (`sarif` merges all four tools into one document)",
    )
    p_check.add_argument(
        "--paths",
        nargs="*",
        default=None,
        metavar="PATH",
        help="files/directories to analyse (default: src/repro)",
    )

    p_par = sub.add_parser("params", help="show derived parameters for n")
    p_par.add_argument("n", type=int)
    p_par.add_argument("--c", type=float, default=None)
    p_par.add_argument("--r", type=int, default=None)
    p_par.add_argument("--alpha", type=float, default=None)

    args = parser.parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "report": _cmd_report,
        "params": _cmd_params,
        "chaos": _cmd_chaos,
        "scenario": _cmd_scenario,
        "profile": _cmd_profile,
        "sweep": _cmd_sweep,
        "scale": _cmd_scale,
        "lint": _cmd_lint,
        "flow": _cmd_flow,
        "shard-check": _cmd_shard_check,
        "proto-check": _cmd_proto_check,
        "check": _cmd_check,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
