"""Routing algorithms: A_ROUTING, A_SAMPLING, and the greedy LDG baseline."""

from repro.routing.greedy import GreedyOutcome, GreedyRouter
from repro.routing.messages import Hop, RoutedMessage, make_routed_message
from repro.routing.sampling import draw_sample_rank, rank_in_swarm, sampling_recipient
from repro.routing.series import RoutingOutcome, SeriesRouter

__all__ = [
    "GreedyOutcome",
    "GreedyRouter",
    "Hop",
    "RoutedMessage",
    "RoutingOutcome",
    "SeriesRouter",
    "draw_sample_rank",
    "make_routed_message",
    "rank_in_swarm",
    "sampling_recipient",
]
