"""The A_SAMPLING delivery rule (Listing 2, after King & Saia).

To send a message to a *uniformly random* node, the sender draws a random
target point ``p`` and a random rank offset ``Delta`` uniform on
``[0, R)`` where ``R = ceil(4*c*lam)`` (twice the expected swarm size), and
routes the message to ``S(p)`` with A_ROUTING.  On delivery, the message is
handed to the unique swarm member whose *rank* — its index in the clockwise
ordering of ``S(p)`` starting at the swarm arc's counter-clockwise endpoint —
equals ``Delta``; if no member has that rank the message is discarded.

Uniformity (Lemma 13): conditioned on any population, each node ``w`` is
delivered the message iff ``w in S(p)`` and ``Delta = rank(w)``; since
``Delta`` is uniform and independent of ``p``, every node receives the
message with the same probability ``E[|arc|]/R / ...`` — identical across
nodes.  The discard probability is ``1 - E[|S(p)|]/R ≈ 1/2``.  (If a swarm
ever exceeds ``R`` members — probability ``1/n^k`` — its tail ranks are
unreachable; this is the usual w.h.p. slack.)
"""

from __future__ import annotations

import numpy as np

from repro.config import ProtocolParams
from repro.overlay.positions import PositionIndex
from repro.util.intervals import Arc

__all__ = ["draw_sample_rank", "rank_in_swarm", "sampling_recipient"]


def draw_sample_rank(rng: np.random.Generator, params: ProtocolParams) -> int:
    """A uniform rank offset ``Delta in [0, sampling_rank_range)``."""
    return int(rng.integers(0, params.sampling_rank_range))


def rank_in_swarm(
    index: PositionIndex,
    p: float,
    node_id: int,
    params: ProtocolParams,
    *,
    radius: float | None = None,
) -> int | None:
    """Rank of ``node_id`` within ``S(p)`` (0-based, clockwise from arc start).

    Returns ``None`` if the node is not in the swarm.  Ranks are computed over
    the overlay's full membership (a node cannot know which neighbours were
    churned this very round), which is exactly what preserves uniformity.
    ``radius`` lets hot callers pass a precomputed swarm radius (the derived
    ``params.swarm_radius`` recomputes ``lam`` on every access).
    """
    rho = params.swarm_radius if radius is None else radius
    ordered = index.ids_within_list(p, rho)
    try:
        return ordered.index(node_id)
    except ValueError:
        return None


def sampling_recipient(
    index: PositionIndex, p: float, delta: int, params: ProtocolParams
) -> int | None:
    """The node of ``S(p)`` at rank ``delta``, or ``None`` (discard)."""
    ordered = index.sorted_ids_in_arc(Arc(p, params.swarm_radius))
    if delta < 0 or delta >= ordered.size:
        return None
    return int(ordered[delta])
