"""Greedy single-copy routing on the classical LDG — the fragile baseline.

Classical Linearized De Bruijn routing (Richa et al.): adapt the target
address bit by bit using the De Bruijn contacts, then walk list (ring) edges
to the destination.  One copy, constant degree — ``O(log n)`` hops, but a
single churned-out node on the path loses the message, and an up-to-date
adversary can simply follow the message.  This is the baseline A_ROUTING's
swarm redundancy is measured against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.overlay.ldg import LDGGraph
from repro.util.bits import address_of
from repro.util.intervals import ring_distance, wrap

__all__ = ["GreedyOutcome", "GreedyRouter"]


@dataclass
class GreedyOutcome:
    """Fate of one greedy-routed message."""

    origin: int
    target: float
    path: list[int] = field(default_factory=list)
    delivered: bool = False
    failed_at: int | None = None

    @property
    def hops(self) -> int:
        return max(0, len(self.path) - 1)


class GreedyRouter:
    """Hop-per-round greedy routing with churn injected between rounds."""

    def __init__(self, graph: LDGGraph, lam: int) -> None:
        self.graph = graph
        self.lam = lam
        self.alive: set[int] = {int(v) for v in graph.node_ids}
        # In-flight: msg_id -> (outcome, current holder, remaining target bits)
        self._inflight: dict[int, tuple[GreedyOutcome, int, list[int]]] = {}
        self.outcomes: list[GreedyOutcome] = []
        self._next_id = 0
        self.round = 0

    def kill(self, node_ids: Iterable[int]) -> None:
        self.alive.difference_update(int(v) for v in node_ids)

    @property
    def pending(self) -> int:
        return len(self._inflight)

    def send(self, origin: int, target: float) -> int:
        """Start routing from ``origin`` to the node closest to ``target``."""
        if origin not in self.alive:
            raise ValueError(f"origin {origin} is not alive")
        outcome = GreedyOutcome(origin=origin, target=target, path=[origin])
        # Bits pushed least-significant-first (Section 4.1).
        addr = address_of(target, self.lam)
        bits = [(addr >> i) & 1 for i in range(self.lam)]
        msg_id = self._next_id
        self._next_id += 1
        self._inflight[msg_id] = (outcome, origin, bits)
        self.outcomes.append(outcome)
        return msg_id

    def _closest_neighbor(self, v: int, point: float) -> int:
        """The neighbour of ``v`` (or ``v`` itself) closest to ``point``."""
        best = v
        best_d = ring_distance(self.graph.index.position(v), point)
        for w in self.graph.neighbors(v):
            d = ring_distance(self.graph.index.position(w), point)
            if d < best_d:
                best, best_d = w, d
        return best

    def step(self) -> None:
        """Advance every in-flight message by one hop."""
        done: list[int] = []
        for msg_id, (outcome, holder, bits) in self._inflight.items():
            if holder not in self.alive:
                outcome.failed_at = self.round
                done.append(msg_id)
                continue
            if bits:
                bit = bits.pop(0)
                point = wrap((self.graph.index.position(holder) + bit) / 2.0)
            else:
                point = outcome.target
            nxt = self._closest_neighbor(holder, point)
            if not bits and nxt == holder:
                # Local minimum on the ring walk: we are at the closest node.
                outcome.delivered = True
                done.append(msg_id)
                continue
            outcome.path.append(nxt)
            self._inflight[msg_id] = (outcome, nxt, bits)
        for msg_id in done:
            del self._inflight[msg_id]
        self.round += 1

    def run_until_quiet(self, max_rounds: int | None = None) -> None:
        limit = max_rounds if max_rounds is not None else 8 * self.lam + 16
        for _ in range(limit):
            if not self._inflight:
                return
            self.step()
        # Anything still in flight after the bound counts as undelivered.
        for outcome, _, _ in self._inflight.values():
            outcome.failed_at = self.round
        self._inflight.clear()
