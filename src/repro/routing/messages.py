"""Message types for A_ROUTING / A_SAMPLING.

A :class:`RoutedMessage` is the immutable description of one routing request:
origin, target point, the full trajectory (computed once at the origin, per
Definition 7 — all forwarding decisions derive from it), an optional sampling
rank ``Delta`` (set by A_SAMPLING, ``None`` for plain swarm delivery) and an
application payload.

A :class:`Hop` is what actually travels: the shared message plus the step
index ``k`` — the hop's recipients are (supposed to be) members of the swarm
``S(x_k)`` of trajectory point ``x_k``.  Hops are tiny and immutable so a
multicast can share one instance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.overlay.trajectory import trajectory

__all__ = ["RoutedMessage", "Hop", "make_routed_message"]


@dataclass(frozen=True, slots=True)
class RoutedMessage:
    """One routing request (shared by all of its in-flight copies).

    ``msg_id`` is any hashable value; the maintenance protocol uses tuples
    like ``("join", node, epoch, origin)`` so that logically identical
    requests deduplicate at receivers.
    """

    msg_id: object
    origin: int
    target: float
    trajectory: tuple[float, ...]
    start_round: int
    sample_rank: int | None = None
    payload: object = None
    #: Index of the last trajectory point (``lam + 1``).  Precomputed in
    #: ``__post_init__`` (not a property): forwarding reads it per hop.
    final_step: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "final_step", len(self.trajectory) - 1)

    @property
    def is_sampling(self) -> bool:
        """Whether this request uses A_SAMPLING's rank-Delta delivery rule."""
        return self.sample_rank is not None


class Hop:
    """One in-flight copy: the message at trajectory step ``k``.

    A hand-written slotted class rather than a frozen dataclass: forwarding
    constructs one ``Hop`` per advanced hop per round, and the frozen
    ``__init__`` (one ``object.__setattr__`` per field) dominated that loop.
    Instances are immutable by convention; value equality and hashing match
    the previous dataclass behaviour.
    """

    __slots__ = ("msg", "step")

    def __init__(self, msg: RoutedMessage, step: int) -> None:
        self.msg = msg
        self.step = step

    def advanced(self) -> "Hop":
        """The hop for the next trajectory step."""
        return Hop(self.msg, self.step + 1)

    @property
    def point(self) -> float:
        """The trajectory point whose swarm currently holds this hop."""
        return self.msg.trajectory[self.step]

    @property
    def at_final_swarm(self) -> bool:
        return self.step >= self.msg.final_step

    def __eq__(self, other: object):
        if other.__class__ is Hop:
            return self.msg == other.msg and self.step == other.step
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.msg, self.step))

    def __repr__(self) -> str:
        return f"Hop(msg={self.msg!r}, step={self.step!r})"


def make_routed_message(
    msg_id: object,
    origin: int,
    origin_position: float,
    target: float,
    lam: int,
    start_round: int,
    sample_rank: int | None = None,
    payload: object = None,
    trajectory_fn: object = None,
) -> RoutedMessage:
    """Build a request with its trajectory precomputed.

    ``trajectory_fn(origin_position, target, lam)`` defaults to the
    Definition-7 De Bruijn trajectory; the Chord-swarm transfer passes
    :func:`repro.overlay.chordswarm.chord_trajectory` instead.  Any function
    producing ``lam + 2`` points whose consecutive swarms are adjacent in
    the underlying topology works.
    """
    fn = trajectory if trajectory_fn is None else trajectory_fn
    return RoutedMessage(
        msg_id=msg_id,
        origin=origin,
        target=target,
        trajectory=fn(origin_position, target, lam),
        start_round=start_round,
        sample_rank=sample_rank,
        payload=payload,
    )
