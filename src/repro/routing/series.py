"""A_ROUTING over a routable series of LDS overlays (Section 4).

This runner simulates the routing algorithm of Listing 1 on a *routable
series* ``D = (D_1, H_1, D_2, H_2, ...)`` (Definition 8): the overlays and
handover graphs are assumed to exist — provided here by a position oracle —
which is exactly Section 4's setting.  (Section 5's maintenance algorithm,
which *constructs* the series message-by-message, lives in
:mod:`repro.core`.)

Round choreography (reconstructed from Listing 1 + Lemma 10, see DESIGN.md):

* **odd rounds** — *handover*: each holder of an in-flight hop forwards it to
  ``r`` nodes chosen uniformly (with replacement) from the *next* overlay's
  swarm of the same trajectory point.  Newly initiated messages perform their
  initial multicast to the whole swarm ``S(x_0)`` of the origin's position.
* **even rounds** — *forwarding*: each holder advances the hop one trajectory
  step, sending ``r`` copies into ``S(x_{k+1})``; the final step
  (``k+1 = lam+1``, where ``x_{lam+1} ≈ x_lam``) is a full-swarm broadcast so
  the entire target swarm receives the message.

A message whose initial multicast is sent in (odd) round ``R`` completes
delivery in round ``R + 2*lam + 2`` — the paper's exact dilation.  Messages
handed to the router during an even round are held one round (the "held
back" rule of Listing 1).

Churn: callers remove nodes between rounds via :meth:`SeriesRouter.kill`;
dead holders do not forward, dead recipients do not receive, and the routing
succeeds as long as swarms stay *good* (Lemma 11).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.config import ProtocolParams
from repro.overlay.positions import PositionIndex
from repro.routing.messages import RoutedMessage, make_routed_message
from repro.routing.sampling import draw_sample_rank, sampling_recipient
from repro.sim.metrics import MetricsCollector
from repro.util.rngs import RngService

__all__ = ["RoutingOutcome", "SeriesRouter"]


@dataclass
class RoutingOutcome:
    """Final fate of one routed message."""

    msg: RoutedMessage
    initial_round: int | None = None
    delivered_round: int | None = None
    receivers: frozenset[int] = frozenset()
    sample_receiver: int | None = None

    @property
    def delivered(self) -> bool:
        return self.delivered_round is not None and bool(self.receivers)

    @property
    def dilation(self) -> int | None:
        """Rounds from initial multicast to completed swarm delivery."""
        if self.delivered_round is None or self.initial_round is None:
            return None
        return self.delivered_round - self.initial_round


class SeriesRouter:
    """Simulates A_ROUTING / A_SAMPLING on an oracle-provided routable series."""

    def __init__(
        self,
        params: ProtocolParams,
        node_ids: Iterable[int] | None = None,
        *,
        reconfigure: bool = True,
        seed: int | None = None,
        record_holders: bool = False,
        trajectory_fn: object = None,
        reposition_every: int = 1,
    ) -> None:
        if reposition_every < 1:
            raise ValueError("reposition_every must be at least 1")
        self.params = params
        self.reconfigure = reconfigure
        #: How many 2-round overlay cycles share one position draw.  1 is
        #: the paper's design (new positions every cycle); larger values
        #: model slower-reconfiguring designs (SPARTAN-style); with
        #: ``reconfigure=False`` positions never move at all.
        self.reposition_every = reposition_every
        #: Trajectory generator — Definition 7 (De Bruijn) by default; pass
        #: ``chord_trajectory`` to route on the Chord-swarm transfer.  The
        #: edge-legality of each hop is the corresponding graph class's
        #: adjacency lemma (Lemma 6 / the finger property), tested separately.
        self.trajectory_fn = trajectory_fn
        self._rng_service = RngService(params.seed if seed is None else seed)
        self.rng = self._rng_service.stream("series-router")
        self._hash = self._rng_service.position_hash()
        ids = list(range(params.n)) if node_ids is None else [int(v) for v in node_ids]
        self.alive: set[int] = set(ids)
        #: Omission-faulty nodes: alive (they occupy swarm slots and receive
        #: copies) but never forward.  A strictly harsher failure mode than
        #: churn — the redundancy budget must absorb them on top of deaths.
        self.muted: set[int] = set()
        self._all_ids = tuple(ids)
        self.round = 0
        self._epoch_indexes: dict[int, PositionIndex] = {}
        self._messages: dict[int, RoutedMessage] = {}
        # msg_id -> (step k, holders receiving the hop at the start of `round`)
        self._inflight: dict[int, tuple[int, set[int]]] = {}
        self._pending_initial: list[RoutedMessage] = []
        self.outcomes: dict[int, RoutingOutcome] = {}
        self.metrics = MetricsCollector()
        self._next_msg_id = 0
        #: Per-round holder sets (what an a-late adversary reconstructs from
        #: the communication graph).  Enabled for the lateness ablation.
        self.record_holders = record_holders
        self.holder_history: dict[int, dict[int, frozenset[int]]] = {}

    # ------------------------------------------------------------------
    # Overlay oracle
    # ------------------------------------------------------------------

    def epoch_at(self, t: int) -> int:
        """The overlay epoch current during round ``t`` (D_e for t in {2e, 2e+1})."""
        return t // 2

    def index(self, epoch: int) -> PositionIndex:
        """Position table of overlay ``D_epoch``.

        Membership freezes to the nodes alive when the epoch is first
        consulted (the series abstraction of "D_t consists of the nodes whose
        join requests landed").  With ``reconfigure=False`` positions are the
        epoch-0 ones throughout, modelling a static overlay.
        """
        cached = self._epoch_indexes.get(epoch)
        if cached is None:
            e = (epoch // self.reposition_every) if self.reconfigure else 0
            cached = PositionIndex(
                {v: self._hash.position(v, e) for v in sorted(self.alive)}
            )
            self._epoch_indexes[epoch] = cached
        return cached

    def position_of(self, v: int, epoch: int) -> float:
        e = (epoch // self.reposition_every) if self.reconfigure else 0
        return self._hash.position(v, e)

    # ------------------------------------------------------------------
    # API: initiating messages and applying churn
    # ------------------------------------------------------------------

    def send(
        self, origin: int, target: float, payload: object = None
    ) -> int:
        """Route ``payload`` from ``origin`` to swarm ``S(target)``.

        Returns the message id; the outcome appears in :attr:`outcomes` once
        the run progresses far enough.
        """
        return self._enqueue(origin, target, sample_rank=None, payload=payload)

    def send_sample(self, origin: int, payload: object = None) -> int:
        """A_SAMPLING: route to a uniformly random node (or discard, p<=1/2)."""
        target = float(self.rng.random())
        delta = draw_sample_rank(self.rng, self.params)
        return self._enqueue(origin, target, sample_rank=delta, payload=payload)

    def _enqueue(
        self, origin: int, target: float, sample_rank: int | None, payload: object
    ) -> int:
        if origin not in self.alive:
            raise ValueError(f"origin {origin} is not alive")
        msg_id = self._next_msg_id
        self._next_msg_id += 1
        # x_0 is the origin's position in the overlay the initial multicast
        # will land in (the next epoch at the upcoming odd round).
        next_odd = self.round if self.round % 2 == 1 else self.round + 1
        epoch = self.epoch_at(next_odd) + 1
        msg = make_routed_message(
            msg_id=msg_id,
            origin=origin,
            origin_position=self.position_of(origin, epoch),
            target=target,
            lam=self.params.lam,
            start_round=self.round,
            sample_rank=sample_rank,
            payload=payload,
            trajectory_fn=self.trajectory_fn,
        )
        self._messages[msg_id] = msg
        self._pending_initial.append(msg)
        self.outcomes[msg_id] = RoutingOutcome(msg=msg)
        return msg_id

    def kill(self, node_ids: Iterable[int]) -> None:
        """Churn out nodes (takes effect immediately: they stop forwarding)."""
        self.alive.difference_update(int(v) for v in node_ids)

    def mute(self, node_ids: Iterable[int]) -> None:
        """Make nodes omission-faulty: they receive but never forward."""
        self.muted.update(int(v) for v in node_ids)

    def join(self, count: int = 1) -> list[int]:
        """Add fresh nodes (replacement churn).

        Newcomers take part from the next overlay epoch that has not been
        materialised yet — the series abstraction of the join pipeline.
        """
        base = (max(self._all_ids) + 1) if self._all_ids else 0
        base = max(base, max(self.alive, default=-1) + 1)
        new_ids = list(range(base, base + count))
        self.alive.update(new_ids)
        self._all_ids = tuple(list(self._all_ids) + new_ids)
        return new_ids

    @property
    def pending(self) -> int:
        """Messages still in flight or awaiting their initial multicast."""
        return len(self._inflight) + len(self._pending_initial)

    # ------------------------------------------------------------------
    # Round execution
    # ------------------------------------------------------------------

    def _pick(self, members: np.ndarray, count: int) -> np.ndarray:
        """``count`` u.i.r. (with replacement) picks from a member array."""
        idx = self.rng.integers(0, members.size, size=count)
        return members[idx]

    def step(self) -> None:
        """Execute one synchronous round."""
        t = self.round
        params = self.params
        sent: defaultdict[int, int] = defaultdict(int)
        received: defaultdict[int, int] = defaultdict(int)
        next_inflight: dict[int, tuple[int, set[int]]] = {}

        if t % 2 == 1:
            # ---- Odd round: handover (+ initial multicasts). -------------
            idx_next = self.index(self.epoch_at(t) + 1)
            for msg_id, (k, holders) in self._inflight.items():
                msg = self._messages[msg_id]
                members = idx_next.ids_within(
                    msg.trajectory[k], params.swarm_radius
                )
                new_holders: set[int] = set()
                for h in holders:
                    if h not in self.alive or h in self.muted or members.size == 0:
                        continue
                    picks = self._pick(members, params.r)
                    sent[h] += params.r
                    for w in picks:
                        w = int(w)
                        received[w] += 1
                        if w in self.alive:
                            new_holders.add(w)
                if new_holders:
                    next_inflight[msg_id] = (k, new_holders)
            for msg in self._pending_initial:
                if msg.origin not in self.alive or msg.origin in self.muted:
                    continue
                members = idx_next.ids_within(
                    msg.trajectory[0], params.swarm_radius
                )
                if members.size == 0:
                    continue
                sent[msg.origin] += int(members.size)
                holders: set[int] = set()
                for w in members:
                    w = int(w)
                    received[w] += 1
                    if w in self.alive:
                        holders.add(w)
                self.outcomes[msg.msg_id].initial_round = t
                if holders:
                    next_inflight[msg.msg_id] = (0, holders)
            self._pending_initial.clear()
        else:
            # ---- Even round: forwarding. ---------------------------------
            idx_cur = self.index(self.epoch_at(t))
            for msg_id, (k, holders) in self._inflight.items():
                msg = self._messages[msg_id]
                next_k = k + 1
                point = msg.trajectory[next_k]
                members = idx_cur.ids_within(point, params.swarm_radius)
                live_holders = [
                    h for h in holders if h in self.alive and h not in self.muted
                ]
                if not live_holders or members.size == 0:
                    continue
                if next_k == msg.final_step:
                    # Full-swarm delivery: every holder broadcasts to S(p).
                    receivers: set[int] = set()
                    for h in live_holders:
                        sent[h] += int(members.size)
                    for w in members:
                        w = int(w)
                        received[w] += len(live_holders)
                        if w in self.alive:
                            receivers.add(w)
                    outcome = self.outcomes[msg_id]
                    outcome.delivered_round = t + 1
                    outcome.receivers = frozenset(receivers)
                    if msg.is_sampling:
                        chosen = sampling_recipient(
                            idx_cur, msg.target, msg.sample_rank, params
                        )
                        if chosen is not None and chosen in receivers:
                            outcome.sample_receiver = chosen
                else:
                    new_holders = set()
                    for h in live_holders:
                        picks = self._pick(members, params.r)
                        sent[h] += params.r
                        for w in picks:
                            w = int(w)
                            received[w] += 1
                            if w in self.alive:
                                new_holders.add(w)
                    if new_holders:
                        next_inflight[msg_id] = (next_k, new_holders)

        self._inflight = next_inflight
        if self.record_holders:
            for msg_id, (_, holders) in next_inflight.items():
                self.holder_history.setdefault(msg_id, {})[t + 1] = frozenset(holders)
        self.metrics.record_round(t, dict(sent), dict(received), len(self.alive))
        self.round += 1

    def run(self, rounds: int) -> None:
        for _ in range(rounds):
            self.step()

    def run_until_quiet(self, max_rounds: int | None = None) -> None:
        """Run until no messages remain in flight (or the bound is hit)."""
        limit = max_rounds if max_rounds is not None else 4 * self.params.dilation
        for _ in range(limit):
            if not self.pending:
                return
            self.step()
