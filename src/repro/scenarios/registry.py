"""The named scenario matrix.

Each entry composes network conditions, churn and a targeted attack into a
:class:`~repro.scenarios.spec.Scenario`.  Windows are relative to round 0 =
end of bootstrap; durations leave a recovery tail after the fault windows
close so time-to-recover is measurable.  The registry is data, not code —
``repro scenario --list`` prints it, the E-SC experiment samples it, and
scenario records embed the exact JSON of the entry they ran.
"""

from __future__ import annotations

from repro.faults.plan import (
    AsymmetricPartition,
    FaultPlan,
    LatencyMatrix,
    MessageFaults,
    NodeStall,
    RateCap,
    RingPartition,
)
from repro.scenarios.spec import AdversarySpec, ChurnSpec, Scenario

__all__ = ["SCENARIOS", "get_scenario", "all_scenarios"]

#: Regional delay classes used by the geography scenarios: three bands,
#: adjacent bands 2 rounds apart, opposite bands 4.
_REGIONS = ((0, 2, 4), (2, 0, 2), (4, 2, 0))

_ENTRIES = (
    Scenario(
        name="calm",
        description="Reliable network, no churn, no attack — the paper's baseline.",
    ),
    Scenario(
        name="loss30-delay50",
        description="30% message loss with 50% of survivors delayed 2 rounds.",
        plan=FaultPlan(
            messages=(
                MessageFaults(drop_p=0.30, delay_p=0.50, delay_rounds=2, start=4, end=20),
            ),
        ),
    ),
    Scenario(
        name="jitter-dup",
        description="Heavy jitter (60% delayed) plus 20% duplication.",
        plan=FaultPlan(
            messages=(
                MessageFaults(delay_p=0.60, delay_rounds=1, duplicate_p=0.20, start=4, end=20),
            ),
        ),
    ),
    Scenario(
        name="stall-storm",
        description="A third of compute phases stall for a 10-round window.",
        plan=FaultPlan(stalls=(NodeStall(stall_p=0.35, start=6, end=16),)),
    ),
    Scenario(
        name="flash-crowd",
        description="Full-budget churn while every uplink is rate-capped.",
        plan=FaultPlan(ratecaps=(RateCap(limit=12, defer_rounds=1, start=4, end=24),)),
        churn=ChurnSpec(kind="random", intensity=1.0),
    ),
    Scenario(
        name="ring-cut-adversary",
        description="A quarter-ring partition while the adversary kills hubs.",
        plan=FaultPlan(partitions=(RingPartition(lo=0.25, hi=0.5, start=6, end=14),)),
        attack=AdversarySpec(kind="degree-target", top=4),
    ),
    Scenario(
        name="rolling-partition",
        description="A quarter-arc cut sweeping around the ring in 3 stages.",
        plan=FaultPlan(
            partitions=(
                RingPartition(lo=0.0, hi=0.25, start=4, end=10),
                RingPartition(lo=0.25, hi=0.5, start=10, end=16),
                RingPartition(lo=0.5, hi=0.75, start=16, end=22),
            ),
        ),
        rounds=40,
    ),
    Scenario(
        name="asym-uplink",
        description="A 30% arc can receive but not send (one-way partition).",
        plan=FaultPlan(asymmetric=(AsymmetricPartition(lo=0.0, hi=0.3, start=6, end=18),)),
    ),
    Scenario(
        name="rate-capped",
        description="Tight per-node send budget; overflow defers, never drops.",
        plan=FaultPlan(ratecaps=(RateCap(limit=6, defer_rounds=1, start=4, end=24),)),
    ),
    Scenario(
        name="lossy-regions",
        description="Three latency regions plus 10% loss (geography + noise).",
        plan=FaultPlan(
            messages=(MessageFaults(drop_p=0.10, start=4, end=24),),
            latencies=(LatencyMatrix(delays=_REGIONS, start=4, end=24),),
        ),
    ),
    Scenario(
        name="churn-loss",
        description="Sustained random churn at 80% budget under 20% loss.",
        plan=FaultPlan(messages=(MessageFaults(drop_p=0.20, start=2, end=26),)),
        churn=ChurnSpec(kind="random", intensity=0.8),
    ),
)

SCENARIOS: dict[str, Scenario] = {s.name: s for s in _ENTRIES}


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r} (known: {known})") from None


def all_scenarios() -> tuple[Scenario, ...]:
    """Every registry entry, in stable name order."""
    return tuple(SCENARIOS[name] for name in sorted(SCENARIOS))
