"""Named adversity scenarios: conditions x churn x adversary, reproducibly.

The scenario subsystem turns "how does the overlay degrade and recover
under loss-30%+delay-50 while the adversary cuts the ring?" into one named,
frozen, JSON-serializable experiment:

* :mod:`repro.scenarios.spec` — the :class:`Scenario` dataclass and its
  builders (params, materialized plan, composed adversary);
* :mod:`repro.scenarios.registry` — the named matrix (``calm`` through
  ``churn-loss``);
* :mod:`repro.scenarios.runner` — pool-parallel, worker-count-invariant
  execution with probe waves and recovery metrics;
* :mod:`repro.scenarios.report` — the versioned recovery-report schema CI
  validates.
"""

from repro.scenarios.registry import SCENARIOS, all_scenarios, get_scenario
from repro.scenarios.report import (
    SCHEMA,
    scenario_report,
    validate_scenario_report,
)
from repro.scenarios.runner import PROBES_PER_WAVE, run_matrix, run_scenario_cell
from repro.scenarios.spec import (
    AdversarySpec,
    ChurnSpec,
    Scenario,
    build_adversary,
    build_params,
    materialize_plan,
)

__all__ = [
    "PROBES_PER_WAVE",
    "SCENARIOS",
    "SCHEMA",
    "AdversarySpec",
    "ChurnSpec",
    "Scenario",
    "all_scenarios",
    "build_adversary",
    "build_params",
    "get_scenario",
    "materialize_plan",
    "run_matrix",
    "run_scenario_cell",
    "scenario_report",
    "validate_scenario_report",
]
