"""Scenario specifications — named adversity, frozen as data.

A :class:`Scenario` composes the three independent stress axes of a run —
an environmental :class:`~repro.faults.plan.FaultPlan`, a background churn
schedule (:class:`ChurnSpec`) and a targeted attack (:class:`AdversarySpec`)
— plus a duration, into one frozen, JSON-serializable record.  Scenarios
are *templates*: their fault windows are expressed relative to round 0 =
"end of bootstrap" (``ProtocolParams.bootstrap_rounds`` depends only on
``n``, so the anchor is known before the run), and :func:`materialize_plan`
shifts them onto the absolute round axis and mixes the run seed into the
plan seed.  The same scenario at the same seed therefore always reproduces
the identical run, bit for bit, on any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping

from repro.adversary.base import Adversary
from repro.adversary.composed import ComposedAdversary
from repro.adversary.oblivious import RandomChurnAdversary
from repro.adversary.swarm_wipe import ContactTraceAdversary, DegreeTargetAdversary
from repro.config import ProtocolParams
from repro.faults.plan import FaultPlan

__all__ = [
    "ChurnSpec",
    "AdversarySpec",
    "Scenario",
    "build_params",
    "materialize_plan",
    "build_adversary",
]

#: Valid background-churn kinds.
CHURN_KINDS = ("none", "random")

#: Valid targeted-attack kinds.
ATTACK_KINDS = ("none", "degree-target", "contact-trace")


@dataclass(frozen=True)
class ChurnSpec:
    """Background churn workload: uniform random leave+join pairs."""

    kind: str = "none"
    intensity: float = 1.0  # fraction of the churn budget to use

    def __post_init__(self) -> None:
        if self.kind not in CHURN_KINDS:
            raise ValueError(f"churn kind must be one of {CHURN_KINDS}, got {self.kind!r}")
        if not 0.0 < self.intensity <= 1.0:
            raise ValueError(f"intensity must be in (0, 1], got {self.intensity}")

    def to_json(self) -> dict[str, Any]:
        return {"kind": self.kind, "intensity": self.intensity}

    @staticmethod
    def from_json(doc: Mapping[str, Any]) -> "ChurnSpec":
        unknown = set(doc) - {"kind", "intensity"}
        if unknown:
            raise ValueError(f"churn spec has unknown fields {sorted(unknown)}")
        return ChurnSpec(**dict(doc))


@dataclass(frozen=True)
class AdversarySpec:
    """Targeted attack choice (the strategies of :mod:`repro.adversary`)."""

    kind: str = "none"
    top: int = 8  # degree-target: how many hubs to chase
    victim: int = 0  # contact-trace: the traced node

    def __post_init__(self) -> None:
        if self.kind not in ATTACK_KINDS:
            raise ValueError(
                f"attack kind must be one of {ATTACK_KINDS}, got {self.kind!r}"
            )
        if self.top < 1:
            raise ValueError(f"top must be >= 1, got {self.top}")
        if self.victim < 0:
            raise ValueError(f"victim must be >= 0, got {self.victim}")

    def to_json(self) -> dict[str, Any]:
        return {"kind": self.kind, "top": self.top, "victim": self.victim}

    @staticmethod
    def from_json(doc: Mapping[str, Any]) -> "AdversarySpec":
        unknown = set(doc) - {"kind", "top", "victim"}
        if unknown:
            raise ValueError(f"adversary spec has unknown fields {sorted(unknown)}")
        return AdversarySpec(**dict(doc))


@dataclass(frozen=True)
class Scenario:
    """One named adversity template: environment x churn x attack x duration.

    ``plan`` windows are relative (round 0 = end of bootstrap); ``rounds``
    counts post-bootstrap rounds.  ``n`` sizes the network — every derived
    protocol parameter follows from it via :func:`build_params`.
    """

    name: str
    description: str
    plan: FaultPlan = FaultPlan.none()
    churn: ChurnSpec = ChurnSpec()
    attack: AdversarySpec = AdversarySpec()
    rounds: int = 36
    n: int = 40

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if self.rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {self.rounds}")
        if self.n < 8:
            raise ValueError(f"n must be >= 8, got {self.n}")

    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "plan": self.plan.to_json(),
            "churn": self.churn.to_json(),
            "attack": self.attack.to_json(),
            "rounds": self.rounds,
            "n": self.n,
        }

    @staticmethod
    def from_json(doc: Mapping[str, Any]) -> "Scenario":
        known = {"name", "description", "plan", "churn", "attack", "rounds", "n"}
        unknown = set(doc) - known
        if unknown:
            raise ValueError(f"scenario has unknown fields {sorted(unknown)}")
        return Scenario(
            name=str(doc["name"]),
            description=str(doc.get("description", "")),
            plan=FaultPlan.from_json(doc.get("plan", {})),
            churn=ChurnSpec.from_json(doc.get("churn", {})),
            attack=AdversarySpec.from_json(doc.get("attack", {})),
            rounds=int(doc.get("rounds", 36)),
            n=int(doc.get("n", 40)),
        )


def build_params(scenario: Scenario, seed: int) -> ProtocolParams:
    """The protocol parameters a scenario run uses (the E-CH convention)."""
    return ProtocolParams(
        n=scenario.n, c=1.2, r=2, delta=3, tau=8, seed=seed, alpha=0.25, kappa=1.25
    )


def materialize_plan(
    scenario: Scenario, params: ProtocolParams, seed: int
) -> FaultPlan:
    """The scenario's plan on the absolute round axis, seeded for this run.

    Windows shift past the bootstrap phase; the run seed is mixed into the
    plan seed so different seeds draw different fault schedules while the
    same ``(scenario, seed)`` pair always reproduces the same plan.
    """
    shifted = scenario.plan.shifted(params.bootstrap_rounds)
    return replace(shifted, seed=shifted.seed ^ (seed * 0x9E3779B9))


def build_adversary(
    scenario: Scenario, params: ProtocolParams, seed: int
) -> Adversary | None:
    """The scenario's churn + attack, composed into one engine adversary."""
    children: list[Adversary] = []
    if scenario.churn.kind == "random":
        children.append(
            RandomChurnAdversary(params, seed=seed + 1, intensity=scenario.churn.intensity)
        )
    if scenario.attack.kind == "degree-target":
        children.append(DegreeTargetAdversary(params, seed=seed + 2, top=scenario.attack.top))
    elif scenario.attack.kind == "contact-trace":
        children.append(
            ContactTraceAdversary(params, victim=scenario.attack.victim, seed=seed + 2)
        )
    if not children:
        return None
    if len(children) == 1:
        return children[0]
    return ComposedAdversary(*children)
