"""Recovery-report schema: the JSON contract of ``repro scenario``.

A report wraps the cell records of :mod:`repro.scenarios.runner` under a
versioned schema tag.  :func:`validate_scenario_report` is the same
validator CI's ``scenario-smoke`` job runs against the emitted file — a
report that passes here is a report every downstream consumer (benchmark
embedding, SLO tooling) can rely on.
"""

from __future__ import annotations

from typing import Any, Mapping

__all__ = ["SCHEMA", "scenario_report", "validate_scenario_report"]

SCHEMA = "repro/scenario-report/v1"

#: Required top-level fields of every cell record.
_CELL_FIELDS = (
    "scenario",
    "seed",
    "n",
    "rounds",
    "fault_window",
    "probes",
    "stretch",
    "recovery",
    "established_fraction",
    "faults_injected",
    "churn_events",
    "fingerprint",
    "plan",
)

_PROBE_FIELDS = ("launched", "delivered", "delivery_rate")
_RECOVERY_FIELDS = (
    "time_to_first_degradation",
    "degraded_round_fraction",
    "time_to_recover",
    "recovery_rounds_after_close",
    "events",
)
_STRETCH_FIELDS = ("p50", "p95", "p99")


def scenario_report(cells: list[dict[str, Any]]) -> dict[str, Any]:
    """Wrap cell records into the versioned report document."""
    return {
        "schema": SCHEMA,
        "cells": list(cells),
        "scenarios": sorted({str(c.get("scenario")) for c in cells}),
    }


def _require(doc: Mapping[str, Any], fields: tuple[str, ...], where: str) -> None:
    missing = [f for f in fields if f not in doc]
    if missing:
        raise ValueError(f"{where} is missing fields {missing}")


def validate_scenario_report(doc: Mapping[str, Any]) -> None:
    """Raise ``ValueError`` unless ``doc`` is a well-formed recovery report."""
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"expected schema {SCHEMA!r}, got {doc.get('schema')!r}")
    cells = doc.get("cells")
    if not isinstance(cells, list) or not cells:
        raise ValueError("report must carry a non-empty 'cells' list")
    for i, cell in enumerate(cells):
        where = f"cell[{i}]"
        if not isinstance(cell, Mapping):
            raise ValueError(f"{where} is not an object")
        _require(cell, _CELL_FIELDS, where)
        _require(cell["probes"], _PROBE_FIELDS, f"{where}.probes")
        _require(cell["recovery"], _RECOVERY_FIELDS, f"{where}.recovery")
        stretch = cell["stretch"]
        if stretch is not None:
            _require(stretch, _STRETCH_FIELDS, f"{where}.stretch")
        window = cell["fault_window"]
        if not isinstance(window, (list, tuple)) or len(window) != 2:
            raise ValueError(f"{where}.fault_window must be a [open, close] pair")
        frac = cell["recovery"]["degraded_round_fraction"]
        if not isinstance(frac, (int, float)) or not 0.0 <= float(frac) <= 1.0:
            raise ValueError(
                f"{where}.recovery.degraded_round_fraction must lie in [0, 1]"
            )
        if not isinstance(cell["fingerprint"], str) or len(cell["fingerprint"]) != 32:
            raise ValueError(f"{where}.fingerprint must be a 32-hex-char digest")
        if not isinstance(cell["plan"], Mapping):
            raise ValueError(f"{where}.plan must be the embedded fault-plan JSON")
