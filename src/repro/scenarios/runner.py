"""Scenario execution — one cell per ``(scenario, seed)``, pool-parallel.

A cell builds the scenario's simulation (plan shifted past bootstrap, churn
and attack composed into one adversary, a :class:`HealthMonitor` attached),
runs it round by round, launches two probe waves — one while the fault
windows are open, one after they close — and condenses the outcome into a
plain-data record: routing stretch percentiles, the recovery metrics of the
issue (time to first degradation, degraded-round fraction, time to recover)
and a fingerprint digest of everything observable.

Worker-count invariance follows the E-SW construction: the task grid is
sorted, every cell is a pure function of ``(scenario name, seed, quick)``,
and ``Pool.map`` returns results in task order — ``run_matrix(...,
workers=4)`` is bit-for-bit ``workers=1``.
"""

from __future__ import annotations

import hashlib
import math
import multiprocessing

import numpy as np

from repro.core.runner import MaintenanceSimulation
from repro.faults.health import HealthMonitor
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import build_adversary, build_params, materialize_plan

__all__ = ["PROBES_PER_WAVE", "run_scenario_cell", "run_matrix"]

#: Probes launched per wave (two waves per run).
PROBES_PER_WAVE = 6


def _percentile(values: list[float], p: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    ordered = sorted(values)
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[rank - 1]


def _fingerprint(sim: MaintenanceSimulation, deliveries: dict) -> str:
    """Digest of everything observable about the run (simfp's contract)."""
    rounds = []
    for report in sim.engine.reports:
        m = report.metrics
        f = m.faults
        rounds.append(
            (
                m.round,
                m.total_sent,
                m.max_sent,
                m.alive,
                None
                if f is None
                else (f.dropped, f.delayed, f.duplicated, f.stalled, f.deferred),
                tuple(sorted(report.decision.leaves)),
                tuple(sorted((j.new_id, j.bootstrap_id) for j in report.decision.joins)),
            )
        )
    audit = sim.audit_overlay()
    events = tuple((e.round, e.kind, e.severity) for e in (sim.health.events if sim.health else ()))
    parts = (
        tuple(rounds),
        events,
        (audit.epoch, audit.members, audit.alive, audit.missing_edges, audit.required_edges),
        tuple(sorted((repr(pid), d) for pid, d in deliveries.items())),
    )
    return hashlib.blake2b(repr(parts).encode(), digest_size=16).hexdigest()


def run_scenario_cell(task: tuple[str, int, bool]) -> dict[str, object]:
    """Run one ``(scenario name, seed, quick)`` cell (worker entry point)."""
    name, seed, quick = task
    scenario = get_scenario(name)
    params = build_params(scenario, seed)
    plan = materialize_plan(scenario, params, seed)
    adversary = build_adversary(scenario, params, seed)
    monitor = HealthMonitor(params)
    sim = MaintenanceSimulation(
        params,
        adversary,
        strict_budget=False,  # composed decisions may overspend; reject, don't raise
        faults=None if plan.is_trivial else plan,
        health=monitor,
    )
    post_rounds = min(scenario.rounds, 24) if quick else scenario.rounds
    total = params.bootstrap_rounds + post_rounds
    window_open, window_close = plan.fault_window()

    # Two probe waves: one inside the fault window, one after it closes
    # (when a close round is known and leaves room for deliveries to land).
    waves = {params.bootstrap_rounds + 2}
    if (
        window_close is not None
        and window_close + params.dilation + 2 <= total
        and window_close + 1 not in waves
    ):
        waves.add(window_close + 1)

    # Close even on mid-cell failure: under a sharded engine the simulation
    # owns worker processes and shared-memory slabs, and a pool worker that
    # leaks them strands /dev/shm segments past the cell.
    with sim:
        rng = np.random.default_rng(seed + 17)
        queued_at: dict[object, int] = {}
        for t in range(total):
            if t in waves:
                try:
                    for pid in sim.send_probes(PROBES_PER_WAVE, rng):
                        queued_at[pid] = t
                except RuntimeError:
                    pass  # overlay collapsed: nothing established to probe from
            sim.engine.run_round()

        # First-delivery round per probe (a probe reaches a whole swarm; the
        # earliest receipt defines its latency).
        deliveries: dict[object, int] = {}
        for node in sim.alive_nodes():
            for payload, t in node.delivered:
                if isinstance(payload, tuple) and payload[0] == "probe":
                    pid = payload[1]
                    if pid in queued_at and (pid not in deliveries or t < deliveries[pid]):
                        deliveries[pid] = t

        stretches = [
            (deliveries[pid] - queued_at[pid]) / params.dilation for pid in deliveries
        ]
        stretch = (
            {
                "p50": _percentile(stretches, 50),
                "p95": _percentile(stretches, 95),
                "p99": _percentile(stretches, 99),
            }
            if stretches
            else None
        )

        first = monitor.first_degradation_round
        last = monitor.last_degradation_round
        if window_close is None or last is None:
            after_close = None
        else:
            # Degradation rounds past the window close = how long the overlay
            # took to shake the damage off once the environment went quiet.
            after_close = max(0, last - window_close + 1)
        recovery = {
            "time_to_first_degradation": None
            if first is None or window_open is None
            else first - window_open,
            "degraded_round_fraction": monitor.degraded_round_fraction,
            "time_to_recover": monitor.time_to_recover,
            "recovery_rounds_after_close": after_close,
            "events": len(monitor.events),
            "events_by_kind": monitor.counts_by_kind(),
        }

        health = sim.health_summary()
        totals = sim.engine.metrics.fault_totals()
        churned = sum(
            len(r.decision.leaves) + len(r.decision.joins)
            for r in sim.engine.reports
        )
        return {
            "scenario": name,
            "seed": seed,
            "n": params.n,
            "rounds": total,
            "bootstrap_rounds": params.bootstrap_rounds,
            "fault_window": [window_open, window_close],
            "probes": {
                "launched": len(queued_at),
                "delivered": len(deliveries),
                "delivery_rate": len(deliveries) / len(queued_at) if queued_at else None,
            },
            "stretch": stretch,
            "recovery": recovery,
            "established_fraction": health["established_fraction"],
            "faults_injected": totals.injected,
            "churn_events": churned,
            "fingerprint": _fingerprint(sim, deliveries),
            "plan": plan.to_json(),
        }


def _pool_context() -> multiprocessing.context.BaseContext:
    """Fork where available (cheap, inherits imports); spawn otherwise."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


def run_matrix(
    names: tuple[str, ...],
    seeds: tuple[int, ...] = (0,),
    *,
    workers: int = 1,
    quick: bool = False,
) -> list[dict[str, object]]:
    """Run the ``names x seeds`` grid; output is worker-count invariant."""
    tasks = sorted((name, int(s), bool(quick)) for name in names for s in seeds)
    if not tasks:
        raise ValueError("empty scenario grid")
    if workers <= 1:
        return [run_scenario_cell(t) for t in tasks]
    ctx = _pool_context()
    with ctx.Pool(processes=min(workers, len(tasks))) as pool:
        return pool.map(run_scenario_cell, tasks)
