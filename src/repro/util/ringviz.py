"""Text rendering of ring overlays — for examples and debugging.

Renders the ``[0, 1)`` ring as a fixed-width ruler with density buckets,
optional highlighted arcs (e.g. a node's Definition-5 neighbourhoods) and
point markers.  Pure text so it works in any terminal and in doctests.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.util.intervals import Arc

__all__ = ["render_density", "render_arcs", "render_node_anatomy"]


def _bucket_of(p: float, width: int) -> int:
    return min(width - 1, int((p % 1.0) * width))


def render_density(
    positions: Mapping[int, float] | Iterable[float], width: int = 72
) -> str:
    """A density strip: each column counts the nodes in its ring bucket."""
    if width < 8:
        raise ValueError("width must be at least 8")
    values = (
        list(positions.values()) if isinstance(positions, Mapping) else list(positions)
    )
    counts = [0] * width
    for p in values:
        counts[_bucket_of(float(p), width)] += 1
    glyphs = " .:-=+*#%@"
    peak = max(counts) if counts else 0
    if peak == 0:
        strip = " " * width
    else:
        strip = "".join(
            glyphs[min(len(glyphs) - 1, (c * (len(glyphs) - 1) + peak - 1) // peak)]
            for c in counts
        )
    ruler = "0" + " " * (width // 2 - 2) + "½" + " " * (width - width // 2 - 2) + "1"
    return f"|{strip}|\n {ruler}"


def render_arcs(
    arcs: Mapping[str, Arc], width: int = 72
) -> str:
    """One labelled row per arc, marking its covered buckets with ``#``."""
    if width < 8:
        raise ValueError("width must be at least 8")
    label_w = max((len(name) for name in arcs), default=0)
    lines = []
    for name, arc in arcs.items():
        row = [" "] * width
        for b in range(width):
            center_of_bucket = (b + 0.5) / width
            if arc.contains(center_of_bucket):
                row[b] = "#"
        # Always mark the arc centre even if narrower than one bucket.
        row[_bucket_of(arc.center, width)] = "#"
        lines.append(f"{name:>{label_w}} |{''.join(row)}|")
    return "\n".join(lines)


def render_node_anatomy(graph, node_id: int, width: int = 72) -> str:
    """Density strip plus the three Definition-5 arcs of one LDS node."""
    from repro.overlay.lds import required_neighbor_arcs

    p = graph.index.position(node_id)
    arcs = required_neighbor_arcs(p, graph.params)
    labelled = {
        f"node {node_id} @ {p:.3f}": Arc(p, 0.0),
        "list arc": arcs[0],
        "DB arc v/2": arcs[1],
        "DB arc (v+1)/2": arcs[2],
    }
    return (
        render_density(graph.index.as_dict(), width)
        + "\n"
        + render_arcs(labelled, width)
    )
