"""Fixed-point address arithmetic for De Bruijn routing.

The linearized De Bruijn routing of the paper (Section 4.1, Definition 7) works
on the ``lam`` most significant bits of a point ``p in [0, 1)``.  We represent a
``lam``-bit address as the integer ``floor(p * 2**lam)`` and provide the bit
push operation that underlies the trajectory:

    step(v', bit) = (v' + bit) / 2

pushed starting from the *least significant* bit of the target, so that after
``lam`` steps the address equals the target's address.  In integer form, one
step maps address ``X`` to ``(X >> 1) | (bit << (lam - 1))``.
"""

from __future__ import annotations

import math

__all__ = [
    "address_of",
    "point_of",
    "bits_of_address",
    "address_from_bits",
    "debruijn_step",
    "debruijn_prefix_address",
    "num_address_bits",
]


def num_address_bits(n: int, kappa: float) -> int:
    """The address width ``lam = ceil(log2(kappa * n))``.

    The paper sets ``lam = log(kappa * n)`` and assumes it is an integer; we
    round up so that distinct points within ``1/(kappa*n)`` of each other can
    still be separated by their addresses.
    """
    if n < 2:
        raise ValueError(f"network size must be at least 2, got {n}")
    if kappa < 1.0:
        raise ValueError(f"kappa must be at least 1, got {kappa}")
    return max(1, math.ceil(math.log2(kappa * n)))


def address_of(p: float, lam: int) -> int:
    """The ``lam`` most significant bits of ``p`` as an integer in ``[0, 2**lam)``."""
    if not 0.0 <= p < 1.0:
        p = p - math.floor(p)
    addr = int(p * (1 << lam))
    # Guard against floating point rounding p*2**lam up to 2**lam.
    return min(addr, (1 << lam) - 1)


def point_of(addr: int, lam: int) -> float:
    """The left endpoint of the address cell: ``addr / 2**lam``."""
    span = 1 << lam
    if not 0 <= addr < span:
        raise ValueError(f"address {addr} out of range for {lam} bits")
    return addr / span


def bits_of_address(addr: int, lam: int) -> tuple[int, ...]:
    """Bits ``(b_1, ..., b_lam)`` most-significant first, as in Definition 7."""
    return tuple((addr >> (lam - 1 - i)) & 1 for i in range(lam))


def address_from_bits(bits: tuple[int, ...]) -> int:
    """Inverse of :func:`bits_of_address`."""
    addr = 0
    for b in bits:
        if b not in (0, 1):
            raise ValueError(f"bits must be 0/1, got {b}")
        addr = (addr << 1) | b
    return addr


def debruijn_step(addr: int, bit: int, lam: int) -> int:
    """One De Bruijn routing step: shift right, push ``bit`` as the new MSB.

    Corresponds to the real-valued map ``x -> (x + bit) / 2`` up to the lost
    least significant bit (an error of at most ``2**-lam``).
    """
    if bit not in (0, 1):
        raise ValueError(f"bit must be 0 or 1, got {bit}")
    return (addr >> 1) | (bit << (lam - 1))


def debruijn_prefix_address(src: int, dst: int, i: int, lam: int) -> int:
    """Address after ``i`` trajectory steps from ``src`` toward ``dst``.

    Pushing the ``i`` least significant bits of ``dst`` (LSB first) onto
    ``src`` yields::

        X_i = (dst's low i bits, in original order) . (src's high lam-i bits)

    which is Definition 7's ``x_i``.  ``i = 0`` returns ``src``; ``i = lam``
    returns ``dst``.
    """
    if not 0 <= i <= lam:
        raise ValueError(f"step index {i} out of range [0, {lam}]")
    if i == 0:
        return src
    low = dst & ((1 << i) - 1)
    return (low << (lam - i)) | (src >> i)
