"""Shared utilities: ring-interval algebra, address bits, RNG services, tables."""

from repro.util.bits import (
    address_from_bits,
    address_of,
    bits_of_address,
    debruijn_prefix_address,
    debruijn_step,
    num_address_bits,
    point_of,
)
from repro.util.intervals import (
    Arc,
    arc_union_length,
    arcs_overlap,
    is_left_of,
    ring_distance,
    ring_distance_array,
    wrap,
)
from repro.util.rngs import PositionHash, RngService
from repro.util.tables import format_markdown_table, format_table, format_value

__all__ = [
    "Arc",
    "PositionHash",
    "RngService",
    "address_from_bits",
    "address_of",
    "arc_union_length",
    "arcs_overlap",
    "bits_of_address",
    "debruijn_prefix_address",
    "debruijn_step",
    "format_markdown_table",
    "format_table",
    "format_value",
    "is_left_of",
    "num_address_bits",
    "point_of",
    "ring_distance",
    "ring_distance_array",
    "wrap",
]
