"""Tracked benchmark records (``BENCH_<id>.json``).

Every benchmark appends one entry per run to a small JSON file committed
under ``benchmarks/results/``, so performance history travels with the repo
and regressions show up in diffs.  One file per benchmark id::

    {
      "schema": 1,
      "id": "micro_protocol_rounds",
      "entries": [
        {"created": "2026-08-06T12:00:00Z", "n": 48, "rounds": 2,
         "seconds_per_round": 0.2662, "peak_rss_kb": 120832,
         "label": "optional free-form tag"},
        ...
      ]
    }

``seconds_per_round`` is wall-time divided by the simulated rounds per
benchmark iteration; ``peak_rss_kb`` is the process peak resident set in
KiB (``ru_maxrss``; measured via :mod:`resource`, so no extra dependency).
Files keep the newest :data:`MAX_ENTRIES` entries — old history rolls off
instead of growing without bound.
"""

from __future__ import annotations

import json
import os
import resource
from datetime import datetime, timezone
from pathlib import Path

__all__ = [
    "SCHEMA_VERSION",
    "MAX_ENTRIES",
    "RECORD_ENV",
    "recording_enabled",
    "bench_path",
    "peak_rss_kb",
    "make_entry",
    "append_entry",
    "load_bench_file",
    "validate_bench_file",
]

SCHEMA_VERSION = 1
MAX_ENTRIES = 50

#: Environment opt-in for persisting benchmark entries.
RECORD_ENV = "REPRO_BENCH_RECORD"


def recording_enabled(label: str | None = None) -> bool:
    """Whether a benchmark run should persist its entry.

    BENCH files are committed history: a casual ``pytest benchmarks/``
    while iterating on a change must not grow them with throwaway noise.
    An entry is persisted only on explicit intent — the caller passed a
    descriptive ``label``, or the run was started with ``REPRO_BENCH_RECORD=1``.
    """
    return label is not None or os.environ.get(RECORD_ENV) == "1"

#: Required per-entry fields and their types (``label``, ``workers`` and
#: the per-round ``exchange_bytes_pipe`` / ``exchange_bytes_shm`` counters
#: are optional; ``workers`` is absent on records that predate the sharded
#: engine and means 1).
_ENTRY_FIELDS: dict[str, type | tuple[type, ...]] = {
    "created": str,
    "n": int,
    "rounds": int,
    "seconds_per_round": (int, float),
    "peak_rss_kb": int,
}


def bench_path(directory: Path | str, bench_id: str) -> Path:
    """The ``BENCH_<id>.json`` path for a benchmark id."""
    return Path(directory) / f"BENCH_{bench_id}.json"


def peak_rss_kb() -> int:
    """Peak resident set size of this process, in KiB.

    Linux reports ``ru_maxrss`` in KiB already; macOS reports bytes — the
    heuristic below normalises (a real process peak is far above 1 GiB when
    expressed in bytes, far below when in KiB).
    """
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if rss > 1 << 30:  # plausibly bytes (macOS)
        rss //= 1024
    return int(rss)


def make_entry(
    *,
    n: int,
    rounds: int,
    seconds_per_round: float,
    created: str | None = None,
    label: str | None = None,
    workers: int | None = None,
    exchange_bytes_pipe: int | None = None,
    exchange_bytes_shm: int | None = None,
) -> dict:
    """One schema-valid benchmark entry (RSS sampled at call time).

    ``exchange_bytes_pipe`` / ``exchange_bytes_shm`` are *per simulated
    round* (like ``seconds_per_round``): the shard exchange's control-plane
    and shared-memory traffic on sharded runs.  Omitted on serial rows.
    """
    entry = {
        "created": created
        # repro: allow(wallclock): the timestamp is benchmark-history metadata
        # recorded after a run; it never enters simulation state or fingerprints.
        or datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "n": int(n),
        "rounds": int(rounds),
        "seconds_per_round": float(seconds_per_round),
        "peak_rss_kb": peak_rss_kb(),
    }
    if label is not None:
        entry["label"] = str(label)
    if workers is not None:
        entry["workers"] = int(workers)
    if exchange_bytes_pipe is not None:
        entry["exchange_bytes_pipe"] = int(exchange_bytes_pipe)
    if exchange_bytes_shm is not None:
        entry["exchange_bytes_shm"] = int(exchange_bytes_shm)
    return entry


def append_entry(directory: Path | str, bench_id: str, entry: dict) -> Path:
    """Append ``entry`` to ``BENCH_<bench_id>.json``, trimming old history.

    Creates the file (and directory) if missing; an existing file must be
    schema-valid, so a corrupted record fails loudly instead of silently
    restarting history.
    """
    path = bench_path(directory, bench_id)
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.exists():
        data = validate_bench_file(path)
        if data["id"] != bench_id:
            raise ValueError(f"{path}: holds id {data['id']!r}, not {bench_id!r}")
    else:
        data = {"schema": SCHEMA_VERSION, "id": bench_id, "entries": []}
    _validate_entry(entry, where=f"new entry for {bench_id}")
    data["entries"] = (data["entries"] + [entry])[-MAX_ENTRIES:]
    path.write_text(json.dumps(data, indent=2) + "\n")
    return path


def load_bench_file(path: Path | str) -> dict:
    """Parse a BENCH file without validation (raises on malformed JSON)."""
    return json.loads(Path(path).read_text())


def validate_bench_file(path: Path | str) -> dict:
    """Parse and schema-check one BENCH file; returns the parsed payload."""
    path = Path(path)
    data = load_bench_file(path)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: top level must be an object")
    if data.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema {data.get('schema')!r} != {SCHEMA_VERSION}"
        )
    if not isinstance(data.get("id"), str) or not data["id"]:
        raise ValueError(f"{path}: missing benchmark id")
    entries = data.get("entries")
    if not isinstance(entries, list):
        raise ValueError(f"{path}: entries must be a list")
    if len(entries) > MAX_ENTRIES:
        raise ValueError(f"{path}: {len(entries)} entries > {MAX_ENTRIES}")
    for i, entry in enumerate(entries):
        _validate_entry(entry, where=f"{path} entry {i}")
    return data


def _validate_entry(entry: object, where: str) -> None:
    if not isinstance(entry, dict):
        raise ValueError(f"{where}: entry must be an object")
    for name, types in _ENTRY_FIELDS.items():
        if name not in entry:
            raise ValueError(f"{where}: missing field {name!r}")
        if not isinstance(entry[name], types) or isinstance(entry[name], bool):
            raise ValueError(f"{where}: field {name!r} has wrong type")
    if entry["seconds_per_round"] < 0 or entry["n"] < 0 or entry["rounds"] < 0:
        raise ValueError(f"{where}: negative measurement")
    if "label" in entry and not isinstance(entry["label"], str):
        raise ValueError(f"{where}: label must be a string")
    if "workers" in entry and (
        not isinstance(entry["workers"], int)
        or isinstance(entry["workers"], bool)
        or entry["workers"] < 1
    ):
        raise ValueError(f"{where}: workers must be a positive int")
    for name in ("exchange_bytes_pipe", "exchange_bytes_shm"):
        if name in entry and (
            not isinstance(entry[name], int)
            or isinstance(entry[name], bool)
            or entry[name] < 0
        ):
            raise ValueError(f"{where}: {name} must be a non-negative int")
