"""Shared-memory byte arenas with length-prefixed object framing.

The sharded round engine (:mod:`repro.sim.shard`) moves its per-round
boundary exchange through ``multiprocessing.shared_memory`` blocks instead
of pickled pipe payloads.  This module supplies the process-agnostic
plumbing that makes that cheap and leak-free:

* **Segment lifecycle** — :func:`create_segment` / :func:`attach_segment` /
  :func:`destroy_segment` wrap :class:`~multiprocessing.shared_memory.SharedMemory`
  with a per-process registry of master-created blocks
  (:func:`live_segments`), so tests and CI can assert that a closed engine
  leaves nothing behind in ``/dev/shm``.  Attaching never unregisters from
  the ``resource_tracker``: its cache is a plain *set*, so the attach-side
  duplicate ``REGISTER`` is an idempotent no-op while a second
  ``UNREGISTER`` would raise inside the tracker process — exactly one
  process (the creating master) unlinks, which also clears the single
  cache entry.
* **Bump allocation** — :class:`ByteArena` hands out aligned extents of one
  flat buffer with O(1) cursor arithmetic and raises :class:`ArenaFull`
  (with the size that would have been needed) instead of growing, so the
  caller owns the regrow-and-retry policy across the process boundary.
* **Framing** — objects are pickled once into length-prefixed frames.
  :class:`FrameEncoder` memoises by object identity: every *distinct*
  object is encoded exactly once per round no matter how many receivers
  reference it, and :class:`FrameDecoder` memoises by frame offset, so the
  decoding process reconstructs the *same sharing structure* — all
  references to one logical message decode to one object.  That mirrors
  what a single ``pickle.dumps`` of a whole payload would have done via its
  internal memo, which is what the receiver-side identity-dedup semantics
  of the protocol layer rely on.
"""

from __future__ import annotations

import pickle
import struct
from multiprocessing import shared_memory

import numpy as np

__all__ = [
    "ArenaFull",
    "ByteArena",
    "FrameEncoder",
    "FrameDecoder",
    "create_segment",
    "attach_segment",
    "close_segment",
    "destroy_segment",
    "live_segments",
    "read_frame",
    "read_array",
]

_LEN = struct.Struct("<Q")  # frame length prefix (8 bytes keeps payloads aligned)

#: Shared-memory blocks created (not merely attached) by this process, by
#: name -> role.  ``destroy_segment`` removes entries; anything left at
#: interpreter exit is a leak (asserted by the shard-smoke CI job).
_LIVE: dict[str, str] = {}


class ArenaFull(RuntimeError):
    """An allocation did not fit the arena; ``needed`` is the minimum
    arena size (bytes) that would have satisfied it."""

    def __init__(self, needed: int) -> None:
        super().__init__(f"arena full: would need {needed} bytes")
        self.needed = needed


# ----------------------------------------------------------------------
# Segment lifecycle
# ----------------------------------------------------------------------


def create_segment(nbytes: int, role: str) -> shared_memory.SharedMemory:
    """Create a shared-memory block and track it in the live registry."""
    shm = shared_memory.SharedMemory(create=True, size=nbytes)
    _LIVE[shm.name] = role
    return shm


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Map an existing block by name (see the module docstring on why the
    attach side leaves the resource tracker alone)."""
    return shared_memory.SharedMemory(name=name)


def close_segment(shm: shared_memory.SharedMemory) -> None:
    """Unmap an attachment without unlinking (the non-owning side)."""
    try:
        shm.close()
    except BufferError:  # pragma: no cover - stray views; exit unmaps anyway
        pass


def destroy_segment(shm: shared_memory.SharedMemory) -> None:
    """Unmap *and* unlink an owned block, dropping it from the registry.

    Unlinking is attempted even when live buffer exports make ``close()``
    fail — the name disappears from ``/dev/shm`` either way, so a teardown
    interrupted by a broken pipe can no longer leak the segment.
    """
    name = shm.name
    try:
        shm.close()
    except BufferError:
        pass
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already unlinked
        pass
    _LIVE.pop(name, None)


def live_segments() -> tuple[tuple[str, str], ...]:
    """``(name, role)`` of every still-live block created by this process."""
    return tuple(sorted(_LIVE.items()))


# ----------------------------------------------------------------------
# Bump allocator
# ----------------------------------------------------------------------


class ByteArena:
    """Bump allocator over a slice of one flat buffer.

    Offsets handed out (and expected back by the read helpers) are
    *absolute* positions in ``buf``, so descriptors cross the process
    boundary as plain integers and the far side reads through its own
    mapping of the same block.
    """

    __slots__ = ("buf", "base", "size", "_cursor")

    def __init__(self, buf: memoryview, base: int = 0, size: int | None = None):
        self.buf = buf
        self.base = base
        self.size = len(buf) - base if size is None else size
        self._cursor = base

    @property
    def used(self) -> int:
        """Bytes consumed since the last :meth:`reset`."""
        return self._cursor - self.base

    def reset(self) -> None:
        self._cursor = self.base

    def alloc(self, nbytes: int, align: int = 8) -> int:
        """Reserve ``nbytes`` (aligned); returns the absolute offset."""
        start = -(-self._cursor // align) * align
        end = start + nbytes
        if end > self.base + self.size:
            raise ArenaFull(self.used + (end - self._cursor))
        self._cursor = end
        return start

    def put_bytes(self, payload: bytes) -> int:
        """Write one length-prefixed frame; returns its offset."""
        off = self.alloc(_LEN.size + len(payload))
        _LEN.pack_into(self.buf, off, len(payload))
        self.buf[off + _LEN.size : off + _LEN.size + len(payload)] = payload
        return off

    def put_array(self, arr: np.ndarray) -> int:
        """Copy a 1-D array into the arena; returns its offset.

        The element count is *not* stored — descriptors carry it, and
        :func:`read_array` maps a view back over the bytes.
        """
        nbytes = arr.nbytes
        off = self.alloc(nbytes, align=max(8, arr.dtype.itemsize))
        np.frombuffer(self.buf, dtype=arr.dtype, count=arr.size, offset=off)[
            :
        ] = arr
        return off


def read_frame(buf: memoryview, offset: int) -> memoryview:
    """The payload bytes of the frame written at ``offset``."""
    (length,) = _LEN.unpack_from(buf, offset)
    return buf[offset + _LEN.size : offset + _LEN.size + length]


def read_array(
    buf: memoryview, offset: int, dtype: np.dtype, count: int
) -> np.ndarray:
    """A zero-copy view over an array written by :meth:`ByteArena.put_array`."""
    return np.frombuffer(buf, dtype=dtype, count=count, offset=offset)


# ----------------------------------------------------------------------
# Object framing
# ----------------------------------------------------------------------


class FrameEncoder:
    """Encode each distinct object into its arena exactly once per cycle.

    The memo keys on object identity and pins a reference to every encoded
    object (so an id cannot be recycled mid-cycle).  Reset it together with
    the arena: offsets in the memo are only meaningful for the extent the
    arena handed out since its own last reset.
    """

    __slots__ = ("arena", "_memo", "_keep")

    def __init__(self, arena: ByteArena) -> None:
        self.arena = arena
        self._memo: dict[int, int] = {}
        self._keep: list[object] = []

    def reset(self) -> None:
        self._memo.clear()
        self._keep.clear()

    def encode(self, obj: object) -> int:
        """The frame offset for ``obj`` (written on first sight)."""
        # repro: allow(id-ordering): identity-interning memo — the id is a
        # dict key (never ordered, never serialised) and `_keep` pins every
        # memoised object alive, so an address cannot be recycled mid-frame
        key = id(obj)
        off = self._memo.get(key)
        if off is None:
            off = self.arena.put_bytes(
                pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
            )
            self._memo[key] = off
            self._keep.append(obj)
        return off


class FrameDecoder:
    """Decode frames with per-offset memoisation (identity reconstruction).

    Two references that were encoded as the same frame decode to the *same*
    object — the cross-process analogue of pickle's payload-internal memo.
    """

    __slots__ = ("buf", "_memo")

    def __init__(self, buf: memoryview) -> None:
        self.buf = buf
        self._memo: dict[int, object] = {}

    def reset(self) -> None:
        self._memo.clear()

    def decode(self, offset: int) -> object:
        if offset in self._memo:
            return self._memo[offset]
        obj = pickle.loads(read_frame(self.buf, offset))
        self._memo[offset] = obj
        return obj
