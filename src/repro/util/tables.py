"""Plain-text table rendering for the experiment harness.

Every experiment in :mod:`repro.experiments` reports its result as rows of
(possibly mixed-type) cells; this module renders them as aligned ASCII or
GitHub-flavoured markdown so benchmark output can be diffed against
``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "format_markdown_table", "format_value"]


def format_value(value: Any) -> str:
    """Human-friendly cell formatting: floats to 4 significant digits."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def _stringify(header: Sequence[str], rows: Sequence[Sequence[Any]]) -> list[list[str]]:
    table = [list(map(str, header))]
    for row in rows:
        if len(row) != len(header):
            raise ValueError(
                f"row has {len(row)} cells but header has {len(header)}: {row!r}"
            )
        table.append([format_value(cell) for cell in row])
    return table


def format_table(
    header: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    table = _stringify(header, rows)
    widths = [max(len(row[i]) for row in table) for i in range(len(header))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(cell.ljust(w) for cell, w in zip(table[0], widths)))
    lines.append(sep)
    for row in table[1:]:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_markdown_table(
    header: Sequence[str],
    rows: Sequence[Sequence[Any]],
) -> str:
    """Render a GitHub-flavoured markdown table."""
    table = _stringify(header, rows)
    lines = ["| " + " | ".join(table[0]) + " |"]
    lines.append("|" + "|".join("---" for _ in header) + "|")
    for row in table[1:]:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
