"""Structured per-round event logging (JSONL).

Long adversarial runs are easier to debug from a replayable event stream
than from print statements.  :class:`EventLog` records typed events with the
round number, offers simple filtering, and serialises to JSON-lines.  The
engine does not depend on it; attach one from run scripts via the runner or
record manually in experiments.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator

__all__ = ["Event", "EventLog"]


@dataclass(frozen=True)
class Event:
    """One structured event."""

    round: int
    kind: str
    fields: dict[str, Any]

    def to_json(self) -> str:
        return json.dumps(
            {"round": self.round, "kind": self.kind, **self.fields},
            sort_keys=True,
            default=str,
        )

    @staticmethod
    def from_json(line: str) -> "Event":
        data = json.loads(line)
        t = data.pop("round")
        kind = data.pop("kind")
        return Event(round=t, kind=kind, fields=data)


@dataclass
class EventLog:
    """An append-only event recorder with simple queries."""

    events: list[Event] = field(default_factory=list)

    def log(self, round: int, kind: str, **fields: Any) -> Event:
        if round < 0:
            raise ValueError("round must be non-negative")
        if not kind:
            raise ValueError("kind must be non-empty")
        event = Event(round=round, kind=kind, fields=fields)
        self.events.append(event)
        return event

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: str) -> list[Event]:
        return [e for e in self.events if e.kind == kind]

    def in_rounds(self, lo: int, hi: int) -> list[Event]:
        """Events with ``lo <= round <= hi``."""
        return [e for e in self.events if lo <= e.round <= hi]

    def where(self, predicate: Callable[[Event], bool]) -> list[Event]:
        return [e for e in self.events if predicate(e)]

    def kinds(self) -> set[str]:
        return {e.kind for e in self.events}

    # -- persistence ------------------------------------------------------

    def dump(self, path: str | Path) -> Path:
        path = Path(path)
        with path.open("w") as fh:
            for e in self.events:
                fh.write(e.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "EventLog":
        log = cls()
        with Path(path).open() as fh:
            for line in fh:
                line = line.strip()
                if line:
                    log.events.append(Event.from_json(line))
        return log

    def iter_jsonl(self) -> Iterator[str]:
        for e in self.events:
            yield e.to_json()
