"""Scoped garbage-collector deferral for allocation-heavy simulation loops.

A maintenance round at n=512 allocates on the order of a million tracked
containers (record tuples, batches, index scratch).  With CPython's default
thresholds ``(700, 10, 10)`` that rate forces a *full-heap* (generation 2)
collection every ~70k container allocations — a dozen walks of the whole
multi-million-object heap per round, measured at ~30% of round wall time —
while freeing almost nothing: the protocol's object graph is acyclic
(messages and records are immutable and never point back at their holders),
so reference counting already reclaims everything promptly.

:func:`deferred_gc` widens the thresholds for the duration of a ``with``
block and restores the previous settings (and enabled state) on exit.  It
defers collections rather than disabling them: truly cyclic garbage is still
collected, just ~3 orders of magnitude less often.
"""

from __future__ import annotations

import gc
from contextlib import contextmanager
from typing import Iterator

__all__ = ["deferred_gc"]


@contextmanager
def deferred_gc(
    threshold0: int = 50_000, threshold1: int = 25, threshold2: int = 25
) -> Iterator[None]:
    """Raise GC thresholds inside the block; restore them on exit.

    The defaults keep young-generation sweeps cheap (50k young objects per
    walk) and push full-heap collections out to one per ~31M container
    allocations.  Nesting is safe — each level restores what it saw.  The
    thresholds are only ever *raised* relative to CPython's defaults; if the
    ambient threshold0 is already higher, it is left alone.
    """
    prev = gc.get_threshold()
    if not gc.isenabled() or prev[0] >= threshold0:
        # GC already off (or tuned harder than us): nothing to defer.
        yield
        return
    gc.set_threshold(threshold0, threshold1, threshold2)
    try:
        yield
    finally:
        gc.set_threshold(*prev)
