"""Seeded randomness services.

Two distinct sources of randomness appear in the paper:

1. **Protocol randomness** — coin flips, the ``r`` random forwarding targets,
   token destinations, ... .  The adversary learns these only after ``b``
   rounds (it is ``b``-late with respect to internal state).
2. **The position hash** ``h : V x N -> [0, 1)`` — a uniform hash known to all
   *nodes* which determines node ``v``'s position in overlay epoch ``e``.
   Lemma 16 requires the adversary to be oblivious of these positions, so ``h``
   is modelled as a keyed pseudo-random function whose key the adversary does
   not hold (a random oracle in the paper's analysis).

This module provides both: deterministic per-node RNG streams derived from a
master seed, and :class:`PositionHash`, the keyed hash.  Everything is
reproducible from a single integer seed.
"""

from __future__ import annotations

import hashlib
import struct

import numpy as np

__all__ = ["RngService", "PositionHash"]

_U64 = float(1 << 64)


class PositionHash:
    """The paper's uniform hash ``h(v, e) -> [0, 1)`` as a keyed BLAKE2b PRF.

    All nodes share the key (they can all evaluate ``h``); the adversary does
    not (cf. Lemma 16 — positions stay hidden until the overlay is used).
    """

    def __init__(self, key: int) -> None:
        self._key = key.to_bytes(16, "little", signed=False)

    def position(self, node_id: int, epoch: int) -> float:
        """Position of ``node_id`` in overlay epoch ``epoch``; uniform in [0, 1)."""
        digest = hashlib.blake2b(
            struct.pack("<qq", node_id, epoch), key=self._key, digest_size=8
        ).digest()
        return struct.unpack("<Q", digest)[0] / _U64

    def positions(self, node_ids, epoch: int) -> np.ndarray:
        """Vectorised :meth:`position` over an iterable of node ids."""
        return np.fromiter(
            (self.position(v, epoch) for v in node_ids),
            dtype=np.float64,
            count=len(node_ids),
        )


class RngService:
    """Hands out independent, reproducible RNG streams.

    Each logical actor (a node, the adversary, a workload generator) gets its
    own ``numpy`` generator seeded via ``SeedSequence`` spawning, so adding an
    actor never perturbs the streams of the others.
    """

    def __init__(self, seed: int) -> None:
        self._seed = seed
        self._root = np.random.SeedSequence(seed)

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, *scope: int | str) -> np.random.Generator:
        """A generator keyed by an arbitrary scope tuple (stable across runs)."""
        material = ":".join(str(s) for s in scope).encode()
        digest = hashlib.blake2b(material, digest_size=8).digest()
        entropy = struct.unpack("<Q", digest)[0]
        return np.random.default_rng(np.random.SeedSequence([self._seed, entropy]))

    def node_stream(self, node_id: int) -> np.random.Generator:
        """The protocol RNG of one node."""
        return self.stream("node", node_id)

    def adversary_stream(self) -> np.random.Generator:
        """The adversary's own RNG (independent of all node streams)."""
        return self.stream("adversary")

    def position_hash(self) -> PositionHash:
        """The keyed position hash shared by all nodes (hidden from adversary)."""
        key = int(self.stream("position-hash-key").integers(0, 1 << 63))
        return PositionHash(key)
