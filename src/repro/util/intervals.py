"""Interval (arc) algebra on the unit ring ``[0, 1)``.

The paper places every node at a position in the ring ``[0, 1)`` and reasons
about *arcs* around points: swarms ``S(p)`` are arcs of radius ``c*lam/n``, list
edges cover an arc of radius ``2*c*lam/n`` and so on.  This module provides a
small, well-tested arc type plus vectorised membership queries used throughout
the overlay construction code.

All positions are ``float`` values in ``[0, 1)``.  Arcs are represented by a
``center`` and a ``radius``; an arc with ``radius >= 0.5`` covers the whole
ring.  Arithmetic is wrap-aware: the arc ``Arc(0.99, 0.05)`` contains ``0.02``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np

__all__ = [
    "ring_distance",
    "ring_distance_array",
    "is_left_of",
    "wrap",
    "Arc",
    "arcs_overlap",
    "arc_union_length",
]


def wrap(x: float) -> float:
    """Map ``x`` into ``[0, 1)`` (ring coordinates).

    Robust to the float edge case where ``x - floor(x)`` rounds up to 1.0
    (e.g. ``x = -1e-18``).
    """
    w = x - math.floor(x)
    return 0.0 if w >= 1.0 else w


def ring_distance(u: float, v: float) -> float:
    """The paper's distance ``d(u, v)``: shortest arc length between two points.

    ``d(u, v) = |u - v|`` if that is at most 1/2, else ``1 - |u - v|``.
    """
    diff = abs(wrap(u) - wrap(v))
    return diff if diff <= 0.5 else 1.0 - diff


def ring_distance_array(u, v):
    """Vectorised :func:`ring_distance` for NumPy arrays (broadcasting)."""
    diff = np.abs(np.mod(u, 1.0) - np.mod(v, 1.0))
    return np.minimum(diff, 1.0 - diff)


def is_left_of(u: float, v: float) -> bool:
    """``True`` iff ``u`` is *left of* ``v`` per the paper's convention.

    For ``|u - v| <= 1/2``, ``u`` is left of ``v`` when ``u < v``; when the
    naive gap exceeds 1/2 the relation is reversed (the short way around the
    ring crosses 0).  A point is not left of itself.
    """
    u, v = wrap(u), wrap(v)
    if u == v:
        return False
    if abs(u - v) <= 0.5:
        return u < v
    return u > v


@dataclass(frozen=True)
class Arc:
    """A closed arc ``[center - radius, center + radius]`` on the unit ring."""

    center: float
    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise ValueError(f"arc radius must be non-negative, got {self.radius}")
        object.__setattr__(self, "center", wrap(self.center))

    @property
    def length(self) -> float:
        """Total arc length, capped at the full ring."""
        return min(1.0, 2.0 * self.radius)

    @property
    def is_full(self) -> bool:
        """Whether the arc covers the whole ring."""
        return self.radius >= 0.5

    @property
    def lo(self) -> float:
        """Counter-clockwise endpoint (wrapped into ``[0, 1)``)."""
        return wrap(self.center - self.radius)

    @property
    def hi(self) -> float:
        """Clockwise endpoint (wrapped into ``[0, 1)``)."""
        return wrap(self.center + self.radius)

    def contains(self, p: float) -> bool:
        """Membership test, wrap-aware, endpoints inclusive."""
        if self.is_full:
            return True
        return ring_distance(p, self.center) <= self.radius

    def contains_array(self, points: np.ndarray) -> np.ndarray:
        """Vectorised membership test returning a boolean mask."""
        if self.is_full:
            return np.ones(np.shape(points), dtype=bool)
        return ring_distance_array(points, self.center) <= self.radius

    def scaled_half(self, branch: int) -> "Arc":
        """The image of this arc under the De Bruijn map ``p -> (p + branch)/2``.

        ``branch`` must be 0 or 1.  The image arc has half the radius, centred
        at ``(center + branch) / 2``.  This is the geometric heart of the
        swarm property (Lemma 6).
        """
        if branch not in (0, 1):
            raise ValueError(f"branch must be 0 or 1, got {branch}")
        return Arc(wrap((self.center + branch) / 2.0), self.radius / 2.0)

    def expanded(self, extra: float) -> "Arc":
        """A concentric arc with radius increased by ``extra``."""
        return Arc(self.center, self.radius + extra)


def arcs_overlap(a: Arc, b: Arc) -> bool:
    """``True`` iff the two arcs share at least one point."""
    if a.is_full or b.is_full:
        return True
    return ring_distance(a.center, b.center) <= a.radius + b.radius


def arc_union_length(arcs: Iterable[Arc]) -> float:
    """Total length of the union of arcs (used in congestion accounting).

    Computed by unrolling each arc into at most two linear segments on
    ``[0, 1]`` and sweeping.
    """
    segments: list[tuple[float, float]] = []
    for arc in arcs:
        if arc.is_full:
            return 1.0
        lo = arc.center - arc.radius
        hi = arc.center + arc.radius
        if lo < 0.0:
            segments.append((1.0 + lo, 1.0))
            segments.append((0.0, hi))
        elif hi > 1.0:
            segments.append((lo, 1.0))
            segments.append((0.0, hi - 1.0))
        else:
            segments.append((lo, hi))
    if not segments:
        return 0.0
    segments.sort()
    total = 0.0
    cur_lo, cur_hi = segments[0]
    for lo, hi in segments[1:]:
        if lo > cur_hi:
            total += cur_hi - cur_lo
            cur_lo, cur_hi = lo, hi
        else:
            cur_hi = max(cur_hi, hi)
    total += cur_hi - cur_lo
    return min(total, 1.0)
