"""A churn-resistant DHT on top of the maintenance protocol.

The paper's introduction motivates overlays with "search and store
information in the network"; Fiat et al.'s robust DHT (whose swarm idea
Section 3 reuses) is the blueprint.  This module supplies that application
layer: keys hash to points in ``[0, 1)``, each key-value pair is replicated
across the swarm responsible for its point, and — the interesting part —
the stored data *migrates with the overlay*: every two rounds, when the
whole network re-randomises, the current replica swarm hands its items to
the members of the next overlay's swarm (known from the same handover
records ``H`` the router uses).

Message flow (all through A_ROUTING / direct edges the holders already own):

* ``put(key, value)`` — routed payload ``("put", key, value)`` to
  ``S(h_key)``; every delivery replica stores the item.
* ``get(key, requester)`` — routed payload ``("get", key, rid, requester)``;
  each replica that holds the item answers the requester directly with a
  :class:`DhtResponse` (it learned the requester's id from the payload).
* **stash handover** — at every odd round, each replica sends its items for
  point ``p`` to the nodes of ``S_{e+1}(p)`` it knows from ``H``
  (:class:`StashTransfer`); after the cutover, replicas drop items whose
  point no longer falls inside their own swarm range.

Durability is exactly the goodness argument: as long as ≥ 3/4 of each swarm
survives two rounds, some replica always carries the item across.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.node import MaintenanceNode, Phase
from repro.sim.engine import EngineServices, NodeContext

__all__ = ["StashTransfer", "DhtResponse", "key_point", "DHTNode"]


@dataclass(frozen=True)
class StashTransfer:
    """Replica items handed to the next overlay's responsible swarm."""

    items: tuple[tuple[str, object], ...]  # (key, value) pairs


@dataclass(frozen=True)
class DhtResponse:
    """A replica's answer to a GET."""

    request_id: object
    key: str
    value: object
    found: bool


def key_point(key: str) -> float:
    """Deterministic point of a key (public, like the paper's hash h).

    Uses a fixed-key BLAKE2b so every node maps keys identically.  The
    adversary may know key placements — durability rests on the *node*
    positions being hidden, not the data positions.
    """
    import hashlib
    import struct

    digest = hashlib.blake2b(key.encode(), digest_size=8).digest()
    return struct.unpack("<Q", digest)[0] / float(1 << 64)


class DHTNode(MaintenanceNode):
    """A maintenance node that additionally replicates key-value data."""

    def __init__(self, node_id: int, services: EngineServices) -> None:
        super().__init__(node_id, services)
        #: Local replicas: key -> (point, value).
        self.store: dict[str, tuple[float, object]] = {}
        #: GET responses received (for requesters): request_id -> response.
        self.responses: dict[object, DhtResponse] = {}
        self._op_counter = 0
        self._pending_ops: list[tuple[str, str, object]] = []  # (op, key, extra)

    # ------------------------------------------------------------------
    # Client API (called by the runner between rounds)
    # ------------------------------------------------------------------

    def queue_put(self, key: str, value: object) -> None:
        """Replicate ``value`` under ``key`` (launches next even round)."""
        self._pending_ops.append(("put", key, value))

    def queue_get(self, key: str) -> object:
        """Look ``key`` up; returns a request id to match the response."""
        rid = (self.id, self._op_counter)
        self._op_counter += 1
        self._pending_ops.append(("get", key, rid))
        return rid

    # ------------------------------------------------------------------
    # Protocol extension points
    # ------------------------------------------------------------------

    def on_round(self, ctx: NodeContext) -> None:
        # Split off DHT-specific direct messages before the base protocol
        # processes the rest.
        remainder = []
        for src, msg in ctx.inbox:
            if isinstance(msg, StashTransfer):
                for key, value in msg.items:
                    self._maybe_store(key, value)
            elif isinstance(msg, DhtResponse):
                existing = self.responses.get(msg.request_id)
                if existing is None or (not existing.found and msg.found):
                    self.responses[msg.request_id] = msg
            else:
                remainder.append((src, msg))
        ctx.inbox = remainder
        super().on_round(ctx)

        if ctx.round % 2 == 0:
            self._launch_ops(ctx)
            self._evict(ctx)
        else:
            self._handover_stash(ctx)

    # ------------------------------------------------------------------
    # Storage mechanics
    # ------------------------------------------------------------------

    def _maybe_store(self, key: str, value: object) -> None:
        self.store[key] = (key_point(key), value)

    def _in_my_range(self, point: float) -> bool:
        if self.pos is None:
            return False
        gap = abs(self.pos - point)
        return min(gap, 1.0 - gap) <= self._swarm_radius

    def _launch_ops(self, ctx: NodeContext) -> None:
        if self.phase is not Phase.ESTABLISHED:
            return  # retry next round; ops stay queued
        for op, key, extra in self._pending_ops:
            p = key_point(key)
            payload = (
                ("put", key, extra)
                if op == "put"
                else ("get", key, extra, self.id)
            )
            self._pending_launch.append(
                self._make_routed(ctx, ("dht", op, key, self._op_counter), p, payload)
            )
            self._op_counter += 1
        self._pending_ops.clear()

    def _make_routed(self, ctx: NodeContext, msg_id, target, payload):
        from repro.routing.messages import make_routed_message

        return make_routed_message(
            msg_id=msg_id,
            origin=self.id,
            origin_position=self.pos,
            target=target,
            lam=self._lam,
            start_round=ctx.round,
            payload=payload,
        )

    def _handover_stash(self, ctx: NodeContext) -> None:
        """Odd round: hand every stored item to the next swarm."""
        if self.phase is not Phase.ESTABLISHED or not self.store:
            return
        if not self.h_records:
            return  # bootstrap period: the overlay is not moving
        index = self._h_index_for_stash()
        if index is None:
            return
        by_target: dict[int, list[tuple[str, object]]] = {}
        for key, (point, value) in self.store.items():
            members = self._swarm_from(index, point)
            for w in members:
                w = int(w)
                if w != self.id:
                    by_target.setdefault(w, []).append((key, value))
        for w, items in by_target.items():
            ctx.send(w, StashTransfer(tuple(items)))

    def _h_index_for_stash(self):
        from repro.overlay.positions import PositionIndex

        if not self.h_records:
            return None
        return PositionIndex({v: r.pos for v, r in self.h_records.items()})

    def _evict(self, ctx: NodeContext) -> None:
        """After a cutover, keep only items whose point is in my new range."""
        if self.phase is not Phase.ESTABLISHED:
            return
        self.store = {
            key: (point, value)
            for key, (point, value) in self.store.items()
            if self._in_my_range(point)
        }

    # ------------------------------------------------------------------
    # Delivery handling (PUT arrivals, GET arrivals)
    # ------------------------------------------------------------------

    def _deliver(self, ctx: NodeContext, msg) -> None:
        payload = msg.payload
        tag = payload[0] if isinstance(payload, tuple) else None
        if tag == "put":
            _, key, value = payload
            self._maybe_store(key, value)
            return
        if tag == "get":
            _, key, rid, requester = payload
            stored = self.store.get(key)
            response = DhtResponse(
                request_id=rid,
                key=key,
                value=stored[1] if stored else None,
                found=stored is not None,
            )
            if requester == self.id:
                existing = self.responses.get(rid)
                if existing is None or (not existing.found and response.found):
                    self.responses[rid] = response
            else:
                ctx.send(requester, response)
            return
        super()._deliver(ctx, msg)
