"""The full maintenance protocol node: A_LDS ∥ A_RANDOM ∥ A_ROUTING.

Every node runs this state machine on the synchronous engine.  The protocol
rebuilds the entire overlay every two rounds (Section 5); the choreography —
reconstructed from Listings 1, 3 and 4 plus the analysis, with the paper's
indexing slips normalised (see DESIGN.md §5) — is:

**Epochs.**  Overlay ``D_e`` is current during rounds ``2e`` and ``2e+1``.
A node's position in ``D_e`` is ``h(v, e)`` for the shared keyed hash ``h``
the adversary cannot evaluate.

**Join pipeline.**  At every even round ``2s`` each established node launches
(for itself and, as a sponsor, for each fresh node registered in its slots) a
routed ``JOIN`` carrying the position for epoch ``s + lam + 2``:

    launch (even 2s) → initial multicast (odd) → lam+1 forwarding steps
    interleaved with handovers → arrival at the target region at even round
    ``2s + 2lam + 2`` → **rebroadcast** of the record to the current holders
    of the three Definition-5 arcs (JoinBatch, arrives odd) → **matchmaking**
    (CreateBatch introductions, sent odd, arrive even) → **cutover**: at round
    ``2(s + lam + 2)`` every node of ``D_{s+lam+2}`` knows its neighbourhood.

**Round parities.**
* *Even rounds*: cutover (CreateBatch → new ``D`` neighbourhood); forwarding
  of in-flight hops (handover outputs received this round) one trajectory
  step; ``k = lam`` join hops are rebroadcast, other ``k = lam`` hops become
  the full-target-swarm delivery multicast; launch of joins and tokens;
  fresh nodes spend tokens on ``CONNECT``s; slots are then reset.
* *Odd rounds*: JoinBatches are stored as handover records ``H``; in-flight
  hops (forwarding outputs) are handed over to the next overlay's swarms
  using ``H``; initial multicasts of newly launched messages; matchmaking
  CreateBatches; final deliveries (hops at step ``lam+1``) are consumed —
  probes are recorded, tokens pass the A_SAMPLING rank test and are then
  kept or forwarded to a random slot-registered fresh node.

**Bootstrap.**  Before the first join wave lands (epochs ``< lam+2``) there
are no handover records; nodes stay in the primed ``D_0`` and hand hops over
within it.  This matches the paper's "nodes perform nothing in the odd
rounds" bootstrap behaviour while keeping the copy-refresh redundancy.

**Failure recovery** (beyond the paper): an established node whose cutover
records fail to arrive demotes itself to FRESH and re-joins through the
token machinery instead of silently falling out of the overlay.
"""

from __future__ import annotations

import enum
from collections import defaultdict

import numpy as np

from repro.config import ProtocolParams
from repro.core.messages import (
    ConnectMsg,
    CreateBatch,
    JoinBatch,
    JoinRecord,
    TokenGrant,
    TokenMsg,
)
from repro.overlay.positions import PositionIndex
from repro.routing.messages import Hop, RoutedMessage, make_routed_message
from repro.sim.engine import EngineServices, JoinNotice, NodeContext, NodeProtocol
from repro.sim.hopplane import HopDelivery
from repro.util.intervals import wrap

__all__ = ["Phase", "MaintenanceNode"]


class Phase(enum.Enum):
    """Lifecycle phase of a protocol node."""

    NEW = "new"  # just joined; waiting for the bootstrap token grant
    FRESH = "fresh"  # connects to mature sponsors every cycle
    ESTABLISHED = "established"  # member of the current overlay


# ----------------------------------------------------------------------
# Shared per-round hop classification (columnar plane receive path)
#
# With the columnar hop plane each *logical* hop is one row shared by every
# receiver, so its classification — next step, final test, swarm lookup
# point, join-record extraction — runs ONCE per round for the whole network
# (memoised on ``HopDelivery.cache``) instead of once per copy per receiver.
# Values are exactly what the legacy per-copy inbox loop computes.
# ----------------------------------------------------------------------


def _even_hop_cols(delivery: HopDelivery):
    """Row kinds for even rounds: 0 skip, 1 arrived join, 2 final, 3 mid."""
    msgs = delivery.msgs
    steps = delivery.steps.tolist()
    count = len(msgs)
    kind = np.zeros(count, dtype=np.int8)
    point = np.zeros(count, dtype=np.float64)
    next_ks = [0] * count
    recs: list[JoinRecord | None] = [None] * count
    for i, m in enumerate(msgs):
        k = steps[i]
        fs = m.final_step
        if k >= fs:
            continue  # defensive: deliveries happen at odd rounds
        nk = k + 1
        next_ks[i] = nk
        if nk == fs:
            payload = m.payload
            if isinstance(payload, tuple) and payload[0] == "join":
                kind[i] = 1
                recs[i] = payload[1]
            else:
                kind[i] = 2
                point[i] = m.target
        else:
            kind[i] = 3
            point[i] = m.trajectory[nk]
    return kind, point, next_ks, recs


def _odd_hop_cols(delivery: HopDelivery):
    """Per-row final flag and handover lookup point for odd rounds."""
    msgs = delivery.msgs
    steps = delivery.steps.tolist()
    count = len(msgs)
    final = np.zeros(count, dtype=bool)
    point = np.zeros(count, dtype=np.float64)
    for i, m in enumerate(msgs):
        k = steps[i]
        if k >= m.final_step:
            final[i] = True
        else:
            point[i] = m.trajectory[k]
    return final, point


def _dedup_rows(rows: np.ndarray) -> np.ndarray:
    """First occurrence of each row id, in arrival order (C-level dedup).

    Matches the legacy per-copy ``(message identity, step)`` seen-set: the
    plane interned exactly those pairs into rows, and arrival order is
    global send order either way.
    """
    uniq, first = np.unique(rows, return_index=True)
    if uniq.size == rows.size:
        return rows
    first.sort()
    return rows[first]


# How many rounds a token stays usable.  The paper discards unused tokens
# every round; we keep them for two 2-round cycles so the pipeline tolerates
# parity offsets (a constant-factor relaxation, see DESIGN.md §5).
TOKEN_TTL = 4


class MaintenanceNode(NodeProtocol):
    """Per-node state machine of the maintenance protocol."""

    def __init__(self, node_id: int, services: EngineServices) -> None:
        self.id = node_id
        self.params: ProtocolParams = services.params
        self.hash = services.position_hash
        # Engine-shared epoch cache (None = compute everything per node).
        # ``_pos_of`` is the hash with per-epoch memoisation when available —
        # identical values either way, the cache is pure memoisation.
        self._epoch_cache = services.epoch_cache
        self._pos_of = (
            self._epoch_cache.position
            if self._epoch_cache is not None
            else services.position_hash.position
        )
        # Hot-path caches (property lookups dominate otherwise: the derived
        # radii recompute ``lam`` on every access).
        self._swarm_radius = services.params.swarm_radius
        self._list_radius = services.params.list_radius
        self._db_radius = services.params.debruijn_radius
        self._r = services.params.r
        self._lam = services.params.lam
        self.phase = Phase.NEW
        # --- A_LDS state -------------------------------------------------
        self.epoch: int | None = None
        self.pos: float | None = None
        self.d_nbrs: dict[int, float] = {}
        self._d_index: PositionIndex | None = None
        self.h_records: dict[int, JoinRecord] = {}
        self._pending_launch: list[RoutedMessage] = []
        # --- A_RANDOM state ----------------------------------------------
        self.tokens: list[tuple[int, int]] = []  # (expiry round, owner id)
        self.slots: list[int | None] = [None] * (2 * self.params.delta_eff)
        # --- Application-level deliveries and diagnostics -----------------
        self.delivered: list[tuple[object, int]] = []  # (payload, round)
        self.sampled_tokens_seen = 0
        self.connects_received = 0
        self.connects_dropped = 0
        self.max_connects_in_round = 0
        self.demotions = 0
        self.joins_launched = 0
        self._queued_probes: list[tuple[object, float]] = []
        # Epoch at which this node (re-)entered the overlay; sponsors must
        # keep launching joins for it until its own pipeline fills (lam+2
        # epochs later), so it keeps CONNECTing until then.
        self._first_epoch: int | None = None
        # Newcomers whose token grant is still owed (token pool was dry).
        self._pending_grants: dict[int, int] = {}  # node id -> expiry round

    # ------------------------------------------------------------------
    # Priming (bootstrap phase, Section 5: D_0 built churn-free via [14])
    # ------------------------------------------------------------------

    def prime(self, epoch: int, pos: float, neighbors: dict[int, float]) -> None:
        """Install the bootstrap overlay neighbourhood directly."""
        self.phase = Phase.ESTABLISHED
        self.epoch = epoch
        self.pos = pos
        self.d_nbrs = dict(neighbors)
        self._d_index = None
        # Primed nodes have no pipeline gap (the bootstrap phase is
        # churn-free, so the missing early epochs never cut over).
        self._first_epoch = -(10**6)

    # ------------------------------------------------------------------
    # Public API used by the runner
    # ------------------------------------------------------------------

    def queue_probe(self, probe_id: object, target: float) -> None:
        """Ask this node to route a probe to ``S(target)`` (audit traffic)."""
        self._queued_probes.append((probe_id, target))

    @property
    def is_established(self) -> bool:
        return self.phase is Phase.ESTABLISHED

    # ------------------------------------------------------------------
    # Lazy neighbourhood indexes
    # ------------------------------------------------------------------

    def _d_members(self) -> PositionIndex:
        """Current-overlay neighbourhood (self included) as a position index.

        With the engine's epoch cache the index is an interned copy-on-write
        view over the shared epoch-sorted slab — element-identical to the
        fresh build (record positions are hash-derived by construction), and
        *object*-identical across nodes with equal neighbourhoods.
        """
        if self._d_index is None:
            table = dict(self.d_nbrs)
            if self.pos is not None:
                table[self.id] = self.pos
            cache = self._epoch_cache
            if cache is not None and self.epoch is not None and self.pos is not None:
                self._d_index = cache.index_for(self.epoch, frozenset(table), table)
            else:
                self._d_index = PositionIndex(table)
        return self._d_index

    def _swarm_from(self, index: PositionIndex, point: float):
        """Member ids of ``S(point)`` in the given index (ndarray view)."""
        return index.ids_within(point, self._swarm_radius)

    @staticmethod
    def _window_bounds(
        index: PositionIndex, points: list[float], radius: float
    ) -> tuple[list[int] | None, list[int] | None, list[bool] | None, list[int], int]:
        """Batched window bounds without materializing the member lists.

        Returns ``(a, b, wrapped, ids_list, n)``; window ``i`` covers
        ``ids_list[a[i]:b[i]]`` (or ``ids_list[a[i]:] + ids_list[:b[i]]``
        when wrapped).  ``a is None`` signals the full-ring case (radius
        >= 0.5): every window is all of ``ids_list``.  Random-pick loops
        index straight into ``ids_list`` with these bounds, skipping the
        per-window list allocation of :meth:`_windows`.
        """
        ids_list = index.ids_list
        n = len(ids_list)
        if radius >= 0.5:
            return None, None, None, ids_list, n
        a, b, wrapped = index.bounds_many(
            np.fromiter(points, dtype=np.float64, count=len(points)), radius
        )
        return a.tolist(), b.tolist(), wrapped.tolist(), ids_list, n

    @staticmethod
    def _windows(
        index: PositionIndex, points: list[float], radius: float
    ) -> list[list[int]]:
        """Batched ``ids_within`` over many points: one sorted-array sweep.

        Returns one member list per point (byte-identical content and order
        to the scalar path).  Lists may be shared; callers must not mutate.
        """
        ids_list = index.ids_list
        count = len(points)
        if radius >= 0.5:
            return [ids_list] * count
        a, b, wrapped = index.bounds_many(
            np.fromiter(points, dtype=np.float64, count=count), radius
        )
        a = a.tolist()
        b = b.tolist()
        wrapped = wrapped.tolist()
        return [
            ids_list[a[i]:] + ids_list[:b[i]] if wrapped[i] else ids_list[a[i]:b[i]]
            for i in range(count)
        ]

    # ------------------------------------------------------------------
    # Round dispatch
    # ------------------------------------------------------------------

    def on_round(self, ctx: NodeContext) -> None:
        creates: list[CreateBatch] = []
        join_batches: list[JoinBatch] = []
        token_msgs: list[TokenMsg] = []
        connects: list[ConnectMsg] = []
        grants: list[TokenGrant] = []
        notices: list[JoinNotice] = []
        # Exact-type dispatch: one dict probe per message instead of an
        # isinstance chain (all message classes are final).  Hops — the bulk
        # of every inbox — dedup right here by (message identity, step):
        # each logical request is one shared RoutedMessage instance (msg_ids
        # are constructed exactly once, with per-origin counters), so object
        # identity equals the documented msg_id dedup without hashing the
        # nested msg_id tuple per copy.  Even rounds classify surviving hops
        # straight into forwarding actions; odd rounds keep the deduped hop
        # list plus the handover lookup points — either way the inbox is
        # walked exactly once.
        buckets: dict[type, list] = {
            CreateBatch: creates,
            JoinBatch: join_batches,
            TokenMsg: token_msgs,
            ConnectMsg: connects,
            TokenGrant: grants,
            JoinNotice: notices,
        }
        even = ctx.round % 2 == 0
        seen_hops: set[tuple[int, int]] = set()
        # Each action is (is_final, msg, next_k); finals become the full
        # target-swarm delivery multicast, the rest mid-route forwards.
        actions: list[tuple[bool, RoutedMessage, int]] = []
        points: list[float] = []
        join_recs: list[JoinRecord] = []
        hops: list[Hop] = []
        handover_points: list[float] = []
        for _, msg in ctx.inbox:
            if msg.__class__ is Hop:
                m = msg.msg
                k = msg.step
                # repro: allow(id-ordering): identity dedup only — the id value
                # is a set-membership key, never ordered or emitted; duplicate
                # detection is by object identity by design (same Hop object
                # fanned out to several receivers).
                key = (id(m), k)
                if key in seen_hops:
                    continue
                seen_hops.add(key)
                if even:
                    if k >= m.final_step:
                        continue  # defensive: deliveries happen at odd rounds
                    next_k = k + 1
                    payload = m.payload
                    if next_k == m.final_step:
                        if isinstance(payload, tuple) and payload[0] == "join":
                            join_recs.append(payload[1])
                        else:
                            actions.append((True, m, next_k))
                            points.append(m.target)
                    else:
                        actions.append((False, m, next_k))
                        points.append(m.trajectory[next_k])
                else:
                    hops.append(msg)
                    if k < m.final_step:
                        handover_points.append(m.trajectory[k])
                continue
            bucket = buckets.get(msg.__class__)
            if bucket is not None:
                bucket.append(msg)

        self._absorb_tokens(ctx, token_msgs, grants)
        self._fill_slots(ctx, connects)

        if even:
            self._even_round(ctx, creates, actions, points, join_recs)
        else:
            self._odd_round(ctx, join_batches, hops, handover_points)

        # Bootstrap duties are parity-independent: the notice arrives in the
        # join round and must be answered as soon as tokens allow (the
        # newcomer knows nobody until the grant lands).
        for notice in notices:
            self._handle_join_notice(ctx, notice)
        if not notices:
            self._serve_pending_grants(ctx)

        self._expire_tokens(ctx.round)

    # ------------------------------------------------------------------
    # A_RANDOM plumbing shared by both parities
    # ------------------------------------------------------------------

    def _absorb_tokens(
        self, ctx: NodeContext, token_msgs: list[TokenMsg], grants: list[TokenGrant]
    ) -> None:
        expiry = ctx.round + TOKEN_TTL
        for tm in token_msgs:
            self.tokens.append((expiry, tm.owner))
        for grant in grants:
            for owner in grant.tokens:
                self.tokens.append((expiry, owner))
            if self.phase is Phase.NEW:
                self.phase = Phase.FRESH

    def _fill_slots(self, ctx: NodeContext, connects: list[ConnectMsg]) -> None:
        if len(connects) > self.max_connects_in_round:
            self.max_connects_in_round = len(connects)
        for cm in connects:
            self.connects_received += 1
            if cm.node in self.slots:
                continue  # already registered this cycle
            empty = [i for i, s in enumerate(self.slots) if s is None]
            if not empty:
                self.connects_dropped += 1
                continue
            i = int(ctx.rng.choice(empty))
            self.slots[i] = cm.node

    def _expire_tokens(self, t: int) -> None:
        self.tokens = [(exp, owner) for exp, owner in self.tokens if exp > t]
        cap = 6 * self.params.delta_eff
        if len(self.tokens) > cap:
            self.tokens = self.tokens[-cap:]

    def _take_tokens(self, ctx: NodeContext, count: int) -> list[int]:
        """Up to ``count`` distinct token owners, u.a.r.

        Tokens are sampled, not consumed — they expire via their TTL instead.
        (The paper discards tokens after one round but also assumes a
        Theta(log n) token flow with generous constants; reuse inside the
        short TTL window keeps small-n runs supplied without changing what
        the adversary can learn.)
        """
        # repro: allow(unordered-iteration): int-only set — CPython int hashing
        # is not randomized, so the materialised order is a deterministic
        # function of the token list; sorting here would reorder the shuffle
        # input and change the committed golden fingerprints.
        owners = list({owner for _, owner in self.tokens if owner != self.id})
        if not owners:
            return []
        ctx.rng.shuffle(owners)
        return owners[:count]

    def _handle_join_notice(self, ctx: NodeContext, notice: JoinNotice) -> None:
        """Bootstrap duty (Listing 4, "Upon v joining")."""
        self._pending_grants[notice.new_id] = ctx.round + 4 * self.params.lam
        self._serve_pending_grants(ctx)

    def _serve_pending_grants(self, ctx: NodeContext) -> None:
        """Supply owed newcomers with tokens + CONNECTs (retry while dry)."""
        if not self._pending_grants:
            return
        delta = self.params.delta_eff
        served: list[int] = []
        for v, expiry in self._pending_grants.items():
            if ctx.round > expiry:
                served.append(v)  # newcomer churned or hopeless; give up
                continue
            connect_targets = self._take_tokens(ctx, delta)
            grant_tokens = self._take_tokens(ctx, delta)
            if len(grant_tokens) < delta:
                # Fall back to current-overlay neighbours (mature by
                # construction).  Documented deviation — keeps joins during
                # token droughts alive.
                backup = [w for w in self.d_nbrs if w != v]
                ctx.rng.shuffle(backup)
                while len(connect_targets) < delta and backup:
                    connect_targets.append(backup.pop())
                while len(grant_tokens) < delta and backup:
                    grant_tokens.append(backup.pop())
            if not grant_tokens:
                continue  # still dry; retry next round
            for w in connect_targets:
                ctx.send(w, ConnectMsg(v))
            ctx.send(v, TokenGrant(tuple(grant_tokens)))
            served.append(v)
        for v in served:
            self._pending_grants.pop(v, None)

    # ------------------------------------------------------------------
    # Even rounds
    # ------------------------------------------------------------------

    def _even_round(
        self,
        ctx: NodeContext,
        creates: list[CreateBatch],
        actions: list[tuple[bool, RoutedMessage, int]],
        points: list[float],
        join_recs: list[JoinRecord],
    ) -> None:
        e = ctx.round // 2
        self._cutover(ctx, e, creates)
        if self.phase is Phase.ESTABLISHED:
            if ctx.hops is not None:
                plane_recs = self._even_hops_plane(ctx, ctx.hop_delivery, ctx.hops)
                if plane_recs:
                    self._rebroadcast_joins(ctx, self._d_members(), plane_recs)
            if actions or join_recs:
                self._forward_hops(ctx, actions, points, join_recs)
            self._launch_joins(ctx, e)
            self._emit_tokens(ctx)
            self._launch_queued_probes(ctx)
        if self.phase is Phase.FRESH or (
            self.phase is Phase.ESTABLISHED
            and self._first_epoch is not None
            and e < self._first_epoch + self.params.lam + 2
        ):
            self._fresh_connect(ctx)
        # Slots served this cycle's join launches and token forwards; reset.
        self.slots = [None] * (2 * self.params.delta_eff)

    def _cutover(self, ctx: NodeContext, e: int, creates: list[CreateBatch]) -> None:
        records: dict[int, float] = {}
        for batch in creates:
            for rec in batch.records:
                if rec.epoch == e and rec.node != self.id:
                    records[rec.node] = rec.pos
        if records:
            if self.phase is not Phase.ESTABLISHED or self.epoch is None:
                self._first_epoch = e
                self.phase = Phase.ESTABLISHED
            self.epoch = e
            self.pos = self._pos_of(self.id, e)
            self.d_nbrs = records
            self._d_index = None
        elif (
            self.phase is Phase.ESTABLISHED
            and e >= self.params.lam + 2
            and (self.epoch is None or self.epoch < e)
        ):
            # Expected cutover records never arrived: we fell out of the
            # overlay.  Demote and recover through the token machinery.
            self.phase = Phase.FRESH
            self.epoch = None
            self.pos = None
            self.d_nbrs = {}
            self._d_index = None
            self.demotions += 1

    def _forward_hops(
        self,
        ctx: NodeContext,
        actions: list[tuple[bool, RoutedMessage, int]],
        points: list[float],
        join_recs: list[JoinRecord],
    ) -> None:
        """Even-round forwarding: advance each held hop one trajectory step.

        :meth:`on_round` already deduplicated and classified the held hops
        into ``actions`` (mid-route forwards and full-delivery finals, with
        their swarm lookup ``points``) and ``join_recs`` (arrived JOINs to
        rebroadcast).  The swarm lookups batch into one vectorised sweep
        while every send — and therefore the edge set, inbox order, and rng
        draw sequence — happens in exactly the order the one-pass loop
        produced.
        """
        index = self._d_members()
        # Sends, in original hop order (one batched multicast call).
        # Mid-route picks index straight into the shared id list via the
        # batched bounds; only finals materialize their member window.
        if actions:
            a, b, wr, ids_list, n = self._window_bounds(
                index, points, self._swarm_radius
            )
            my_id = self.id
            r = self._r
            rnd = ctx.rng.random
            batch: list[tuple[tuple[int, ...], object]] = []
            for i, (is_final, msg, next_k) in enumerate(actions):
                if a is None:
                    ai = 0
                    size = n
                else:
                    ai = a[i]
                    bi = b[i]
                    size = n - ai + bi if wr[i] else bi - ai
                if is_final:
                    if a is None:
                        members = ids_list
                    elif wr[i]:
                        members = ids_list[ai:] + ids_list[:bi]
                    else:
                        members = ids_list[ai:bi]
                    out = Hop(msg, next_k)
                    batch.append((tuple(w for w in members if w != my_id), out))
                    # A holder inside the target swarm delivers to itself too.
                    if self._in_swarm(msg.target):
                        self._deliver(ctx, msg)
                elif size:
                    picks = []
                    for _ in range(r):
                        j = ai + int(rnd() * size)
                        picks.append(ids_list[j - n] if j >= n else ids_list[j])
                    batch.append((tuple(picks), Hop(msg, next_k)))
            ctx.send_many_batch(batch)
        self._rebroadcast_joins(ctx, index, join_recs)

    def _rebroadcast_joins(
        self, ctx: NodeContext, index: PositionIndex, join_recs: list[JoinRecord]
    ) -> None:
        """Rebroadcast each arrived join record to the current holders of the
        three Definition-5 arcs (Listing 3 line 10); arc lookups batch per
        radius (list arc at rec.pos, two De Bruijn arcs at rec.pos/2 and
        (rec.pos+1)/2 — the order required_neighbor_arcs produced)."""
        if join_recs:
            rebroadcast: dict[int, list[JoinRecord]] = defaultdict(list)
            list_wins = self._windows(
                index, [rec.pos for rec in join_recs], self._list_radius
            )
            db_points: list[float] = []
            for rec in join_recs:
                db_points.append(wrap(rec.pos / 2.0))
                db_points.append(wrap((rec.pos + 1.0) / 2.0))
            db_wins = self._windows(index, db_points, self._db_radius)
            my_id = self.id
            for i, rec in enumerate(join_recs):
                for members in (list_wins[i], db_wins[2 * i], db_wins[2 * i + 1]):
                    for w in members:
                        if w != my_id:
                            rebroadcast[w].append(rec)
            for w, recs in rebroadcast.items():
                # Deduplicate records per receiver, keep deterministic order.
                # Keyed on (node, epoch): ``pos`` is the hash of exactly that
                # pair, so this equals whole-record equality dedup without
                # paying the frozen-dataclass hash per record.
                seen: set[tuple[int, int]] = set()
                uniq: list[JoinRecord] = []
                for rec in recs:
                    k = (rec.node, rec.epoch)
                    if k not in seen:
                        seen.add(k)
                        uniq.append(rec)
                ctx.send(w, JoinBatch(tuple(uniq)))

    def _even_hops_plane(
        self, ctx: NodeContext, delivery: HopDelivery, rows: np.ndarray
    ) -> list[JoinRecord]:
        """Even-round forwarding over shared hop columns (plane receive path).

        Behaviour-identical to classifying per-copy ``Hop`` objects and
        running :meth:`_forward_hops`: rows arrive in legacy inbox order,
        dedup keeps first occurrences, and the per-action loop below draws
        rng and files sends in exactly the legacy sequence.  Returns the
        arrived join records for rebroadcast (in arrival order).
        """
        cols = delivery.cache.get("even")
        if cols is None:
            cols = delivery.cache["even"] = _even_hop_cols(delivery)
        kind, point, next_ks, recs = cols
        rows_u = _dedup_rows(rows)
        kr = kind[rows_u]
        join_recs = [recs[row] for row in rows_u[kr == 1].tolist()]
        act_rows = rows_u[kr >= 2]
        if act_rows.size:
            index = self._d_members()
            ids_list = index.ids_list
            n = len(ids_list)
            rho = self._swarm_radius
            if rho >= 0.5:
                a = b = wr = None
            else:
                a_arr, b_arr, wr_arr = index.bounds_many(point[act_rows], rho)
                a = a_arr.tolist()
                b = b_arr.tolist()
                wr = wr_arr.tolist()
            finals = (kind[act_rows] == 2).tolist()
            msgs = delivery.msgs
            my_id = self.id
            r = self._r
            two = r == 2
            rnd = ctx.rng.random
            # Fused send path: intern/append straight into the plane columns
            # (one call per hop would dominate this innermost loop).  Sends
            # interleave with self-deliveries exactly as before — deliveries
            # only touch the singles lane and draw no rng.
            reg, pmsgs, psteps, psrcs, prows, plens, pflat = ctx.hop_columns()
            reg_get = reg.get
            total = 0
            for i, row in enumerate(act_rows.tolist()):
                msg = msgs[row]
                if a is None:
                    ai = 0
                    size = n
                else:
                    ai = a[i]
                    bi = b[i]
                    size = n - ai + bi if wr[i] else bi - ai
                if finals[i]:
                    if a is None:
                        members = ids_list
                    elif wr[i]:
                        members = ids_list[ai:] + ids_list[:bi]
                    else:
                        members = ids_list[ai:bi]
                    dsts = [w for w in members if w != my_id]
                    # A holder inside the target swarm delivers to itself too.
                    if self._in_swarm(msg.target):
                        self._deliver(ctx, msg)
                elif size:
                    if two:
                        j0 = ai + int(rnd() * size)
                        j1 = ai + int(rnd() * size)
                        dsts = [
                            ids_list[j0 - n] if j0 >= n else ids_list[j0],
                            ids_list[j1 - n] if j1 >= n else ids_list[j1],
                        ]
                    else:
                        dsts = []
                        for _ in range(r):
                            j = ai + int(rnd() * size)
                            dsts.append(ids_list[j - n] if j >= n else ids_list[j])
                else:
                    continue
                nd = len(dsts)
                if nd:
                    # repro: allow(id-ordering): identity interning only — rows
                    # are numbered by first-append order; the id value never
                    # orders anything (mirrors HopPlane.send semantics).
                    key = (id(msg) << 7) | next_ks[row]
                    rw = reg_get(key)
                    if rw is None:
                        rw = len(pmsgs)
                        reg[key] = rw
                        pmsgs.append(msg)
                        psteps.append(next_ks[row])
                    psrcs.append(my_id)
                    prows.append(rw)
                    plens.append(nd)
                    pflat.extend(dsts)
                    total += nd
            ctx.count_hop_sends(total)
        return join_recs

    def _in_swarm(self, point: float) -> bool:
        if self.pos is None:
            return False
        gap = abs(self.pos - point)
        return min(gap, 1.0 - gap) <= self._swarm_radius

    def _launch_joins(self, ctx: NodeContext, e: int) -> None:
        """Launch this cycle's JOIN requests (self + sponsored fresh nodes)."""
        target_epoch = e + self.params.lam + 2
        candidates = [self.id] + [v for v in self.slots if v is not None]
        for v in dict.fromkeys(candidates):
            pos = self._pos_of(v, target_epoch)
            rec = JoinRecord(v, pos, target_epoch)
            self._pending_launch.append(
                make_routed_message(
                    msg_id=("join", v, target_epoch, self.id),
                    origin=self.id,
                    origin_position=self.pos,
                    target=pos,
                    lam=self.params.lam,
                    start_round=ctx.round,
                    payload=("join", rec),
                )
            )
            self.joins_launched += 1

    def _emit_tokens(self, ctx: NodeContext) -> None:
        """A_RANDOM step 1: send tau tokens to random nodes via A_SAMPLING."""
        params = self.params
        for i in range(params.tau_eff):
            target = float(ctx.rng.random())
            delta = int(ctx.rng.integers(0, params.sampling_rank_range))
            self._pending_launch.append(
                make_routed_message(
                    msg_id=("token", self.id, ctx.round, i),
                    origin=self.id,
                    origin_position=self.pos,
                    target=target,
                    lam=params.lam,
                    start_round=ctx.round,
                    sample_rank=delta,
                    payload=("token", self.id),
                )
            )

    def _launch_queued_probes(self, ctx: NodeContext) -> None:
        for probe_id, target in self._queued_probes:
            self._pending_launch.append(
                make_routed_message(
                    msg_id=("probe", probe_id, self.id),
                    origin=self.id,
                    origin_position=self.pos,
                    target=target,
                    lam=self.params.lam,
                    start_round=ctx.round,
                    payload=("probe", probe_id),
                )
            )
        self._queued_probes.clear()

    def _fresh_connect(self, ctx: NodeContext) -> None:
        """Fresh-node duty: register with delta random mature nodes."""
        for owner in self._take_tokens(ctx, self.params.delta_eff):
            ctx.send(owner, ConnectMsg(self.id))

    # ------------------------------------------------------------------
    # Odd rounds
    # ------------------------------------------------------------------

    def _odd_round(
        self,
        ctx: NodeContext,
        join_batches: list[JoinBatch],
        hops: list[Hop],
        handover_points: list[float],
    ) -> None:
        e_next = ctx.round // 2 + 1
        # 1. Store handover records for the next overlay.
        self.h_records = {}
        for batch in join_batches:
            for rec in batch.records:
                if rec.epoch == e_next:
                    self.h_records[rec.node] = rec
        if self.phase is not Phase.ESTABLISHED:
            return
        if self.h_records:
            table = {v: r.pos for v, r in self.h_records.items()}
            cache = self._epoch_cache
            h_index = (
                cache.index_for(e_next, frozenset(table), table)
                if cache is not None
                else PositionIndex(table)
            )
        else:
            h_index = None

        # 2. Handover in-flight hops + deliver finals.  ``hops`` arrives
        # deduplicated with its handover lookup points pre-collected by
        # :meth:`on_round`; batch the lookups, then execute in original hop
        # order (final deliveries may send and draw rng, so their
        # interleaving with handovers must not change).  With the columnar
        # plane the same work runs over shared row columns instead.
        hop_index = h_index if h_index is not None else self._d_members()
        if ctx.hops is not None:
            self._odd_hops_plane(ctx, ctx.hop_delivery, ctx.hops, hop_index)
        if hops:
            a, b, wr, ids_list, n = self._window_bounds(
                hop_index, handover_points, self._swarm_radius
            )
            r = self._r
            rnd = ctx.rng.random
            batch: list[tuple[tuple[int, ...], object]] = []
            wi = 0
            for hop in hops:
                if hop.step >= hop.msg.final_step:
                    self._deliver(ctx, hop.msg)
                    continue
                if a is None:
                    ai = 0
                    size = n
                else:
                    ai = a[wi]
                    size = n - ai + b[wi] if wr[wi] else b[wi] - ai
                wi += 1
                if size:
                    picks = []
                    for _ in range(r):
                        j = ai + int(rnd() * size)
                        picks.append(ids_list[j - n] if j >= n else ids_list[j])
                    batch.append((tuple(picks), hop))
            ctx.send_many_batch(batch)

        # 3. Initial multicasts of this cycle's launches.
        launches = self._pending_launch
        if launches:
            my_id = self.id
            lwins = self._windows(
                hop_index, [m.trajectory[0] for m in launches], self._swarm_radius
            )
            if ctx.has_hop_plane:
                ctx.send_hops_batch(
                    [
                        (msg, 0, [w for w in lwins[i] if w != my_id])
                        for i, msg in enumerate(launches)
                    ]
                )
            else:
                ctx.send_many_batch(
                    [
                        (tuple(w for w in lwins[i] if w != my_id), Hop(msg, 0))
                        for i, msg in enumerate(launches)
                    ]
                )
            launches.clear()

        # 4. Matchmaking: introduce next-overlay neighbours to each other.
        if h_index is not None:
            self._matchmake(ctx, h_index)

    def _odd_hops_plane(
        self,
        ctx: NodeContext,
        delivery: HopDelivery,
        rows: np.ndarray,
        hop_index: PositionIndex,
    ) -> None:
        """Odd-round handover/delivery over shared hop columns.

        Mirrors the legacy odd-round hop loop exactly: dedup to first
        occurrences in arrival order, batch the handover window bounds over
        the non-final rows, then walk all rows in order so final deliveries
        (which may send and draw rng) interleave with handovers unchanged.
        """
        cols = delivery.cache.get("odd")
        if cols is None:
            cols = delivery.cache["odd"] = _odd_hop_cols(delivery)
        final, point = cols
        rows_u = _dedup_rows(rows)
        fl = final[rows_u]
        h_rows = rows_u[~fl]
        ids_list = hop_index.ids_list
        n = len(ids_list)
        rho = self._swarm_radius
        if h_rows.size and rho < 0.5:
            a_arr, b_arr, wr_arr = hop_index.bounds_many(point[h_rows], rho)
            a = a_arr.tolist()
            b = b_arr.tolist()
            wr = wr_arr.tolist()
        else:
            a = b = wr = None
        msgs = delivery.msgs
        steps = delivery.steps[rows_u].tolist()
        finals_l = fl.tolist()
        r = self._r
        two = r == 2
        rnd = ctx.rng.random
        # Fused send path — see _even_hops_plane for the invariants.
        reg, pmsgs, psteps, psrcs, prows, plens, pflat = ctx.hop_columns()
        reg_get = reg.get
        my_id = self.id
        total = 0
        wi = 0
        for i, row in enumerate(rows_u.tolist()):
            msg = msgs[row]
            if finals_l[i]:
                self._deliver(ctx, msg)
                continue
            if a is None:
                ai = 0
                size = n
            else:
                ai = a[wi]
                size = n - ai + b[wi] if wr[wi] else b[wi] - ai
            wi += 1
            if size:
                if two:
                    j0 = ai + int(rnd() * size)
                    j1 = ai + int(rnd() * size)
                    picks = [
                        ids_list[j0 - n] if j0 >= n else ids_list[j0],
                        ids_list[j1 - n] if j1 >= n else ids_list[j1],
                    ]
                else:
                    picks = []
                    for _ in range(r):
                        j = ai + int(rnd() * size)
                        picks.append(ids_list[j - n] if j >= n else ids_list[j])
                # repro: allow(id-ordering): identity interning only — rows are
                # numbered by first-append order; the id value never orders
                # anything (mirrors HopPlane.send semantics).
                key = (id(msg) << 7) | steps[i]
                rw = reg_get(key)
                if rw is None:
                    rw = len(pmsgs)
                    reg[key] = rw
                    pmsgs.append(msg)
                    psteps.append(steps[i])
                psrcs.append(my_id)
                prows.append(rw)
                plens.append(len(picks))
                pflat.extend(picks)
                total += len(picks)
        ctx.count_hop_sends(total)

    def _matchmake(self, ctx: NodeContext, h_index: PositionIndex) -> None:
        """Send each next-overlay node its Definition-5 neighbours (CREATE).

        The three ``required_neighbor_arcs`` lookups per record batch into
        one :meth:`_windows` sweep per radius; records deduplicate on node
        ids (id -> record is injective) to spare dataclass hashing.
        """
        items = list(self.h_records.items())
        list_wins = self._windows(
            h_index, [rec.pos for _, rec in items], self._list_radius
        )
        db_points: list[float] = []
        for _, rec in items:
            db_points.append(wrap(rec.pos / 2.0))
            db_points.append(wrap((rec.pos + 1.0) / 2.0))
        db_wins = self._windows(h_index, db_points, self._db_radius)
        h_records = self.h_records
        for i, (v, rec) in enumerate(items):
            neighbor_ids = list_wins[i] + db_wins[2 * i] + db_wins[2 * i + 1]
            records = tuple(
                h_records[w] for w in dict.fromkeys(neighbor_ids) if w != v
            )
            # An empty batch still signals the cutover to v.
            ctx.send(v, CreateBatch(records))

    # ------------------------------------------------------------------
    # Final deliveries
    # ------------------------------------------------------------------

    def _deliver(self, ctx: NodeContext, msg: RoutedMessage) -> None:
        payload = msg.payload
        tag = payload[0] if isinstance(payload, tuple) else None
        if tag == "probe":
            self.delivered.append((payload, ctx.round))
            return
        if tag == "token":
            # A_SAMPLING rank rule: only the node at rank Delta accepts.
            if msg.sample_rank is None:
                return
            rank = self._my_rank(msg.target)
            if rank is None or rank != msg.sample_rank:
                return
            self.sampled_tokens_seen += 1
            owner = payload[1]
            # Step 3 of token distribution: keep or forward to a random slot.
            if ctx.rng.random() < 0.5:
                self.tokens.append((ctx.round + TOKEN_TTL, owner))
            else:
                filled = [s for s in self.slots if s is not None]
                if filled:
                    target = filled[int(ctx.rng.random() * len(filled))]
                    ctx.send(target, TokenMsg(owner))
                else:
                    self.tokens.append((ctx.round + TOKEN_TTL, owner))
            return
        # Unknown payloads are recorded for diagnosis.
        self.delivered.append((payload, ctx.round))

    def _my_rank(self, point: float) -> int | None:
        # O(1) via the index's lazy slot map — same value as the documented
        # ``ids_within_list(point, rho).index(self.id)`` rank rule.
        return self._d_members().rank_within(point, self._swarm_radius, self.id)
