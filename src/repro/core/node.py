"""The full maintenance protocol node: A_LDS ∥ A_RANDOM ∥ A_ROUTING.

Every node runs this state machine on the synchronous engine.  The protocol
rebuilds the entire overlay every two rounds (Section 5); the choreography —
reconstructed from Listings 1, 3 and 4 plus the analysis, with the paper's
indexing slips normalised (see DESIGN.md §5) — is:

**Epochs.**  Overlay ``D_e`` is current during rounds ``2e`` and ``2e+1``.
A node's position in ``D_e`` is ``h(v, e)`` for the shared keyed hash ``h``
the adversary cannot evaluate.

**Join pipeline.**  At every even round ``2s`` each established node launches
(for itself and, as a sponsor, for each fresh node registered in its slots) a
routed ``JOIN`` carrying the position for epoch ``s + lam + 2``:

    launch (even 2s) → initial multicast (odd) → lam+1 forwarding steps
    interleaved with handovers → arrival at the target region at even round
    ``2s + 2lam + 2`` → **rebroadcast** of the record to the current holders
    of the three Definition-5 arcs (JoinBatch, arrives odd) → **matchmaking**
    (CreateBatch introductions, sent odd, arrive even) → **cutover**: at round
    ``2(s + lam + 2)`` every node of ``D_{s+lam+2}`` knows its neighbourhood.

**Round parities.**
* *Even rounds*: cutover (CreateBatch → new ``D`` neighbourhood); forwarding
  of in-flight hops (handover outputs received this round) one trajectory
  step; ``k = lam`` join hops are rebroadcast, other ``k = lam`` hops become
  the full-target-swarm delivery multicast; launch of joins and tokens;
  fresh nodes spend tokens on ``CONNECT``s; slots are then reset.
* *Odd rounds*: JoinBatches are stored as handover records ``H``; in-flight
  hops (forwarding outputs) are handed over to the next overlay's swarms
  using ``H``; initial multicasts of newly launched messages; matchmaking
  CreateBatches; final deliveries (hops at step ``lam+1``) are consumed —
  probes are recorded, tokens pass the A_SAMPLING rank test and are then
  kept or forwarded to a random slot-registered fresh node.

**Bootstrap.**  Before the first join wave lands (epochs ``< lam+2``) there
are no handover records; nodes stay in the primed ``D_0`` and hand hops over
within it.  This matches the paper's "nodes perform nothing in the odd
rounds" bootstrap behaviour while keeping the copy-refresh redundancy.

**Failure recovery** (beyond the paper): an established node whose cutover
records fail to arrive demotes itself to FRESH and re-joins through the
token machinery instead of silently falling out of the overlay.
"""

from __future__ import annotations

import enum
from collections import defaultdict

from repro.config import ProtocolParams
from repro.core.messages import (
    ConnectMsg,
    CreateBatch,
    JoinBatch,
    JoinRecord,
    TokenGrant,
    TokenMsg,
)
from repro.overlay.lds import required_neighbor_arcs
from repro.overlay.positions import PositionIndex
from repro.routing.messages import Hop, RoutedMessage, make_routed_message
from repro.sim.engine import EngineServices, JoinNotice, NodeContext, NodeProtocol

__all__ = ["Phase", "MaintenanceNode"]


class Phase(enum.Enum):
    """Lifecycle phase of a protocol node."""

    NEW = "new"  # just joined; waiting for the bootstrap token grant
    FRESH = "fresh"  # connects to mature sponsors every cycle
    ESTABLISHED = "established"  # member of the current overlay


# How many rounds a token stays usable.  The paper discards unused tokens
# every round; we keep them for two 2-round cycles so the pipeline tolerates
# parity offsets (a constant-factor relaxation, see DESIGN.md §5).
TOKEN_TTL = 4


class MaintenanceNode(NodeProtocol):
    """Per-node state machine of the maintenance protocol."""

    def __init__(self, node_id: int, services: EngineServices) -> None:
        self.id = node_id
        self.params: ProtocolParams = services.params
        self.hash = services.position_hash
        # Hot-path caches (property lookups dominate otherwise).
        self._swarm_radius = services.params.swarm_radius
        self._r = services.params.r
        self._lam = services.params.lam
        self.phase = Phase.NEW
        # --- A_LDS state -------------------------------------------------
        self.epoch: int | None = None
        self.pos: float | None = None
        self.d_nbrs: dict[int, float] = {}
        self._d_index: PositionIndex | None = None
        self.h_records: dict[int, JoinRecord] = {}
        self._pending_launch: list[RoutedMessage] = []
        # --- A_RANDOM state ----------------------------------------------
        self.tokens: list[tuple[int, int]] = []  # (expiry round, owner id)
        self.slots: list[int | None] = [None] * (2 * self.params.delta_eff)
        # --- Application-level deliveries and diagnostics -----------------
        self.delivered: list[tuple[object, int]] = []  # (payload, round)
        self.sampled_tokens_seen = 0
        self.connects_received = 0
        self.connects_dropped = 0
        self.max_connects_in_round = 0
        self.demotions = 0
        self.joins_launched = 0
        self._queued_probes: list[tuple[object, float]] = []
        # Epoch at which this node (re-)entered the overlay; sponsors must
        # keep launching joins for it until its own pipeline fills (lam+2
        # epochs later), so it keeps CONNECTing until then.
        self._first_epoch: int | None = None
        # Newcomers whose token grant is still owed (token pool was dry).
        self._pending_grants: dict[int, int] = {}  # node id -> expiry round

    # ------------------------------------------------------------------
    # Priming (bootstrap phase, Section 5: D_0 built churn-free via [14])
    # ------------------------------------------------------------------

    def prime(self, epoch: int, pos: float, neighbors: dict[int, float]) -> None:
        """Install the bootstrap overlay neighbourhood directly."""
        self.phase = Phase.ESTABLISHED
        self.epoch = epoch
        self.pos = pos
        self.d_nbrs = dict(neighbors)
        self._d_index = None
        # Primed nodes have no pipeline gap (the bootstrap phase is
        # churn-free, so the missing early epochs never cut over).
        self._first_epoch = -(10**6)

    # ------------------------------------------------------------------
    # Public API used by the runner
    # ------------------------------------------------------------------

    def queue_probe(self, probe_id: object, target: float) -> None:
        """Ask this node to route a probe to ``S(target)`` (audit traffic)."""
        self._queued_probes.append((probe_id, target))

    @property
    def is_established(self) -> bool:
        return self.phase is Phase.ESTABLISHED

    # ------------------------------------------------------------------
    # Lazy neighbourhood indexes
    # ------------------------------------------------------------------

    def _d_members(self) -> PositionIndex:
        """Current-overlay neighbourhood (self included) as a position index."""
        if self._d_index is None:
            table = dict(self.d_nbrs)
            if self.pos is not None:
                table[self.id] = self.pos
            self._d_index = PositionIndex(table)
        return self._d_index

    def _swarm_from(self, index: PositionIndex, point: float):
        """Member ids of ``S(point)`` in the given index (ndarray view)."""
        return index.ids_within(point, self._swarm_radius)

    # ------------------------------------------------------------------
    # Round dispatch
    # ------------------------------------------------------------------

    def on_round(self, ctx: NodeContext) -> None:
        creates: list[CreateBatch] = []
        join_batches: list[JoinBatch] = []
        hops: list[Hop] = []
        token_msgs: list[TokenMsg] = []
        connects: list[ConnectMsg] = []
        grants: list[TokenGrant] = []
        notices: list[JoinNotice] = []
        for _, msg in ctx.inbox:
            if isinstance(msg, Hop):
                hops.append(msg)
            elif isinstance(msg, CreateBatch):
                creates.append(msg)
            elif isinstance(msg, JoinBatch):
                join_batches.append(msg)
            elif isinstance(msg, TokenMsg):
                token_msgs.append(msg)
            elif isinstance(msg, ConnectMsg):
                connects.append(msg)
            elif isinstance(msg, TokenGrant):
                grants.append(msg)
            elif isinstance(msg, JoinNotice):
                notices.append(msg)

        self._absorb_tokens(ctx, token_msgs, grants)
        self._fill_slots(ctx, connects)

        if ctx.round % 2 == 0:
            self._even_round(ctx, creates, hops)
        else:
            self._odd_round(ctx, join_batches, hops)

        # Bootstrap duties are parity-independent: the notice arrives in the
        # join round and must be answered as soon as tokens allow (the
        # newcomer knows nobody until the grant lands).
        for notice in notices:
            self._handle_join_notice(ctx, notice)
        if not notices:
            self._serve_pending_grants(ctx)

        self._expire_tokens(ctx.round)

    # ------------------------------------------------------------------
    # A_RANDOM plumbing shared by both parities
    # ------------------------------------------------------------------

    def _absorb_tokens(
        self, ctx: NodeContext, token_msgs: list[TokenMsg], grants: list[TokenGrant]
    ) -> None:
        expiry = ctx.round + TOKEN_TTL
        for tm in token_msgs:
            self.tokens.append((expiry, tm.owner))
        for grant in grants:
            for owner in grant.tokens:
                self.tokens.append((expiry, owner))
            if self.phase is Phase.NEW:
                self.phase = Phase.FRESH

    def _fill_slots(self, ctx: NodeContext, connects: list[ConnectMsg]) -> None:
        if len(connects) > self.max_connects_in_round:
            self.max_connects_in_round = len(connects)
        for cm in connects:
            self.connects_received += 1
            if cm.node in self.slots:
                continue  # already registered this cycle
            empty = [i for i, s in enumerate(self.slots) if s is None]
            if not empty:
                self.connects_dropped += 1
                continue
            i = int(ctx.rng.choice(empty))
            self.slots[i] = cm.node

    def _expire_tokens(self, t: int) -> None:
        self.tokens = [(exp, owner) for exp, owner in self.tokens if exp > t]
        cap = 6 * self.params.delta_eff
        if len(self.tokens) > cap:
            self.tokens = self.tokens[-cap:]

    def _take_tokens(self, ctx: NodeContext, count: int) -> list[int]:
        """Up to ``count`` distinct token owners, u.a.r.

        Tokens are sampled, not consumed — they expire via their TTL instead.
        (The paper discards tokens after one round but also assumes a
        Theta(log n) token flow with generous constants; reuse inside the
        short TTL window keeps small-n runs supplied without changing what
        the adversary can learn.)
        """
        owners = list({owner for _, owner in self.tokens if owner != self.id})
        if not owners:
            return []
        ctx.rng.shuffle(owners)
        return owners[:count]

    def _handle_join_notice(self, ctx: NodeContext, notice: JoinNotice) -> None:
        """Bootstrap duty (Listing 4, "Upon v joining")."""
        self._pending_grants[notice.new_id] = ctx.round + 4 * self.params.lam
        self._serve_pending_grants(ctx)

    def _serve_pending_grants(self, ctx: NodeContext) -> None:
        """Supply owed newcomers with tokens + CONNECTs (retry while dry)."""
        if not self._pending_grants:
            return
        delta = self.params.delta_eff
        served: list[int] = []
        for v, expiry in self._pending_grants.items():
            if ctx.round > expiry:
                served.append(v)  # newcomer churned or hopeless; give up
                continue
            connect_targets = self._take_tokens(ctx, delta)
            grant_tokens = self._take_tokens(ctx, delta)
            if len(grant_tokens) < delta:
                # Fall back to current-overlay neighbours (mature by
                # construction).  Documented deviation — keeps joins during
                # token droughts alive.
                backup = [w for w in self.d_nbrs if w != v]
                ctx.rng.shuffle(backup)
                while len(connect_targets) < delta and backup:
                    connect_targets.append(backup.pop())
                while len(grant_tokens) < delta and backup:
                    grant_tokens.append(backup.pop())
            if not grant_tokens:
                continue  # still dry; retry next round
            for w in connect_targets:
                ctx.send(w, ConnectMsg(v))
            ctx.send(v, TokenGrant(tuple(grant_tokens)))
            served.append(v)
        for v in served:
            self._pending_grants.pop(v, None)

    # ------------------------------------------------------------------
    # Even rounds
    # ------------------------------------------------------------------

    def _even_round(
        self, ctx: NodeContext, creates: list[CreateBatch], hops: list[Hop]
    ) -> None:
        e = ctx.round // 2
        self._cutover(ctx, e, creates)
        if self.phase is Phase.ESTABLISHED:
            self._forward_hops(ctx, hops)
            self._launch_joins(ctx, e)
            self._emit_tokens(ctx)
            self._launch_queued_probes(ctx)
        if self.phase is Phase.FRESH or (
            self.phase is Phase.ESTABLISHED
            and self._first_epoch is not None
            and e < self._first_epoch + self.params.lam + 2
        ):
            self._fresh_connect(ctx)
        # Slots served this cycle's join launches and token forwards; reset.
        self.slots = [None] * (2 * self.params.delta_eff)

    def _cutover(self, ctx: NodeContext, e: int, creates: list[CreateBatch]) -> None:
        records: dict[int, float] = {}
        for batch in creates:
            for rec in batch.records:
                if rec.epoch == e and rec.node != self.id:
                    records[rec.node] = rec.pos
        if records:
            if self.phase is not Phase.ESTABLISHED or self.epoch is None:
                self._first_epoch = e
                self.phase = Phase.ESTABLISHED
            self.epoch = e
            self.pos = self.hash.position(self.id, e)
            self.d_nbrs = records
            self._d_index = None
        elif (
            self.phase is Phase.ESTABLISHED
            and e >= self.params.lam + 2
            and (self.epoch is None or self.epoch < e)
        ):
            # Expected cutover records never arrived: we fell out of the
            # overlay.  Demote and recover through the token machinery.
            self.phase = Phase.FRESH
            self.epoch = None
            self.pos = None
            self.d_nbrs = {}
            self._d_index = None
            self.demotions += 1

    def _forward_hops(self, ctx: NodeContext, hops: list[Hop]) -> None:
        """Even-round forwarding: advance each held hop one trajectory step."""
        params = self.params
        index = self._d_members()
        seen: set[tuple[object, int]] = set()
        rebroadcast: dict[int, list[JoinRecord]] = defaultdict(list)
        for hop in hops:
            key = (hop.msg.msg_id, hop.step)
            if key in seen:
                continue
            seen.add(key)
            msg = hop.msg
            k = hop.step
            if k >= msg.final_step:
                continue  # defensive: deliveries happen at odd rounds
            next_k = k + 1
            payload = msg.payload
            is_join = isinstance(payload, tuple) and payload[0] == "join"
            if next_k == msg.final_step:
                if is_join:
                    # Rebroadcast the record to the current holders of the
                    # three Definition-5 arcs (Listing 3 line 10).
                    rec: JoinRecord = payload[1]
                    for arc in required_neighbor_arcs(rec.pos, params):
                        for w in index.ids_in_arc(arc):
                            w = int(w)
                            if w != self.id:
                                rebroadcast[w].append(rec)
                else:
                    # Full delivery: the entire target swarm gets the hop.
                    members = self._swarm_from(index, msg.target)
                    out = Hop(msg, next_k)
                    ctx.send_many(members[members != self.id], out)
                    # A holder inside the target swarm delivers to itself too.
                    if self._in_swarm(msg.target):
                        self._deliver(ctx, out)
            else:
                members = self._swarm_from(index, msg.trajectory[next_k])
                size = members.size
                if size:
                    rnd = ctx.rng.random
                    picks = [members[int(rnd() * size)] for _ in range(self._r)]
                    ctx.send_many(picks, Hop(msg, next_k))
        for w, recs in rebroadcast.items():
            # Deduplicate records per receiver, keep deterministic order.
            uniq = tuple(dict.fromkeys(recs))
            ctx.send(w, JoinBatch(uniq))

    def _in_swarm(self, point: float) -> bool:
        if self.pos is None:
            return False
        gap = abs(self.pos - point)
        return min(gap, 1.0 - gap) <= self._swarm_radius

    def _launch_joins(self, ctx: NodeContext, e: int) -> None:
        """Launch this cycle's JOIN requests (self + sponsored fresh nodes)."""
        target_epoch = e + self.params.lam + 2
        candidates = [self.id] + [v for v in self.slots if v is not None]
        for v in dict.fromkeys(candidates):
            pos = self.hash.position(v, target_epoch)
            rec = JoinRecord(v, pos, target_epoch)
            self._pending_launch.append(
                make_routed_message(
                    msg_id=("join", v, target_epoch, self.id),
                    origin=self.id,
                    origin_position=self.pos,
                    target=pos,
                    lam=self.params.lam,
                    start_round=ctx.round,
                    payload=("join", rec),
                )
            )
            self.joins_launched += 1

    def _emit_tokens(self, ctx: NodeContext) -> None:
        """A_RANDOM step 1: send tau tokens to random nodes via A_SAMPLING."""
        params = self.params
        for i in range(params.tau_eff):
            target = float(ctx.rng.random())
            delta = int(ctx.rng.integers(0, params.sampling_rank_range))
            self._pending_launch.append(
                make_routed_message(
                    msg_id=("token", self.id, ctx.round, i),
                    origin=self.id,
                    origin_position=self.pos,
                    target=target,
                    lam=params.lam,
                    start_round=ctx.round,
                    sample_rank=delta,
                    payload=("token", self.id),
                )
            )

    def _launch_queued_probes(self, ctx: NodeContext) -> None:
        for probe_id, target in self._queued_probes:
            self._pending_launch.append(
                make_routed_message(
                    msg_id=("probe", probe_id, self.id),
                    origin=self.id,
                    origin_position=self.pos,
                    target=target,
                    lam=self.params.lam,
                    start_round=ctx.round,
                    payload=("probe", probe_id),
                )
            )
        self._queued_probes.clear()

    def _fresh_connect(self, ctx: NodeContext) -> None:
        """Fresh-node duty: register with delta random mature nodes."""
        for owner in self._take_tokens(ctx, self.params.delta_eff):
            ctx.send(owner, ConnectMsg(self.id))

    # ------------------------------------------------------------------
    # Odd rounds
    # ------------------------------------------------------------------

    def _odd_round(
        self, ctx: NodeContext, join_batches: list[JoinBatch], hops: list[Hop]
    ) -> None:
        e_next = ctx.round // 2 + 1
        # 1. Store handover records for the next overlay.
        self.h_records = {}
        for batch in join_batches:
            for rec in batch.records:
                if rec.epoch == e_next:
                    self.h_records[rec.node] = rec
        if self.phase is not Phase.ESTABLISHED:
            return
        h_index = (
            PositionIndex({v: r.pos for v, r in self.h_records.items()})
            if self.h_records
            else None
        )

        # 2. Handover in-flight hops + deliver finals.
        params = self.params
        seen: set[tuple[object, int]] = set()
        for hop in hops:
            key = (hop.msg.msg_id, hop.step)
            if key in seen:
                continue
            seen.add(key)
            if hop.step >= hop.msg.final_step:
                self._deliver(ctx, hop)
                continue
            self._handover_one(ctx, hop, h_index)

        # 3. Initial multicasts of this cycle's launches.
        for msg in self._pending_launch:
            index = h_index if h_index is not None else self._d_members()
            members = self._swarm_from(index, msg.trajectory[0])
            out = Hop(msg, 0)
            ctx.send_many(members[members != self.id], out)
        self._pending_launch.clear()

        # 4. Matchmaking: introduce next-overlay neighbours to each other.
        if h_index is not None:
            self._matchmake(ctx, h_index)

    def _handover_one(
        self, ctx: NodeContext, hop: Hop, h_index: PositionIndex | None
    ) -> None:
        """Forward a hop to r nodes of the next overlay's same-point swarm."""
        point = hop.msg.trajectory[hop.step]
        index = h_index if h_index is not None else self._d_members()
        members = self._swarm_from(index, point)
        size = members.size
        if not size:
            return
        rnd = ctx.rng.random
        picks = [members[int(rnd() * size)] for _ in range(self._r)]
        ctx.send_many(picks, hop)

    def _matchmake(self, ctx: NodeContext, h_index: PositionIndex) -> None:
        """Send each next-overlay node its Definition-5 neighbours (CREATE)."""
        for v, rec in self.h_records.items():
            neighbor_ids: list[int] = []
            for arc in required_neighbor_arcs(rec.pos, self.params):
                neighbor_ids.extend(int(w) for w in h_index.ids_in_arc(arc))
            records = tuple(
                dict.fromkeys(
                    self.h_records[w] for w in neighbor_ids if w != v
                )
            )
            # An empty batch still signals the cutover to v.
            ctx.send(v, CreateBatch(records))

    # ------------------------------------------------------------------
    # Final deliveries
    # ------------------------------------------------------------------

    def _deliver(self, ctx: NodeContext, hop: Hop) -> None:
        msg = hop.msg
        payload = msg.payload
        tag = payload[0] if isinstance(payload, tuple) else None
        if tag == "probe":
            self.delivered.append((payload, ctx.round))
            return
        if tag == "token":
            # A_SAMPLING rank rule: only the node at rank Delta accepts.
            if msg.sample_rank is None:
                return
            rank = self._my_rank(msg.target)
            if rank is None or rank != msg.sample_rank:
                return
            self.sampled_tokens_seen += 1
            owner = payload[1]
            # Step 3 of token distribution: keep or forward to a random slot.
            if ctx.rng.random() < 0.5:
                self.tokens.append((ctx.round + TOKEN_TTL, owner))
            else:
                filled = [s for s in self.slots if s is not None]
                if filled:
                    target = filled[int(ctx.rng.random() * len(filled))]
                    ctx.send(target, TokenMsg(owner))
                else:
                    self.tokens.append((ctx.round + TOKEN_TTL, owner))
            return
        # Unknown payloads are recorded for diagnosis.
        self.delivered.append((payload, ctx.round))

    def _my_rank(self, point: float) -> int | None:
        from repro.routing.sampling import rank_in_swarm

        return rank_in_swarm(self._d_members(), point, self.id, self.params)
