"""The full maintenance protocol node: A_LDS ∥ A_RANDOM ∥ A_ROUTING.

Every node runs this state machine on the synchronous engine.  The protocol
rebuilds the entire overlay every two rounds (Section 5); the choreography —
reconstructed from Listings 1, 3 and 4 plus the analysis, with the paper's
indexing slips normalised (see DESIGN.md §5) — is:

**Epochs.**  Overlay ``D_e`` is current during rounds ``2e`` and ``2e+1``.
A node's position in ``D_e`` is ``h(v, e)`` for the shared keyed hash ``h``
the adversary cannot evaluate.

**Join pipeline.**  At every even round ``2s`` each established node launches
(for itself and, as a sponsor, for each fresh node registered in its slots) a
routed ``JOIN`` carrying the position for epoch ``s + lam + 2``:

    launch (even 2s) → initial multicast (odd) → lam+1 forwarding steps
    interleaved with handovers → arrival at the target region at even round
    ``2s + 2lam + 2`` → **rebroadcast** of the record to the current holders
    of the three Definition-5 arcs (JoinBatch, arrives odd) → **matchmaking**
    (CreateBatch introductions, sent odd, arrive even) → **cutover**: at round
    ``2(s + lam + 2)`` every node of ``D_{s+lam+2}`` knows its neighbourhood.

**Round parities.**
* *Even rounds*: cutover (CreateBatch → new ``D`` neighbourhood); forwarding
  of in-flight hops (handover outputs received this round) one trajectory
  step; ``k = lam`` join hops are rebroadcast, other ``k = lam`` hops become
  the full-target-swarm delivery multicast; launch of joins and tokens;
  fresh nodes spend tokens on ``CONNECT``s; slots are then reset.
* *Odd rounds*: JoinBatches are stored as handover records ``H``; in-flight
  hops (forwarding outputs) are handed over to the next overlay's swarms
  using ``H``; initial multicasts of newly launched messages; matchmaking
  CreateBatches; final deliveries (hops at step ``lam+1``) are consumed —
  probes are recorded, tokens pass the A_SAMPLING rank test and are then
  kept or forwarded to a random slot-registered fresh node.

**Bootstrap.**  Before the first join wave lands (epochs ``< lam+2``) there
are no handover records; nodes stay in the primed ``D_0`` and hand hops over
within it.  This matches the paper's "nodes perform nothing in the odd
rounds" bootstrap behaviour while keeping the copy-refresh redundancy.

**Failure recovery** (beyond the paper): an established node whose cutover
records fail to arrive demotes itself to FRESH and re-joins through the
token machinery instead of silently falling out of the overlay.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.config import ProtocolParams
from repro.core import nodestore
from repro.core.messages import (
    ConnectMsg,
    CreateBatch,
    JoinBatch,
    JoinRecord,
    TokenGrant,
    TokenMsg,
)
from repro.overlay.positions import PositionIndex
from repro.routing.messages import Hop, RoutedMessage, make_routed_message
from repro.sim.engine import EngineServices, JoinNotice, NodeContext, NodeProtocol
from repro.sim.hopplane import HopDelivery
from repro.util.intervals import wrap

__all__ = ["Phase", "MaintenanceNode"]


class Phase(enum.Enum):
    """Lifecycle phase of a protocol node."""

    NEW = "new"  # just joined; waiting for the bootstrap token grant
    FRESH = "fresh"  # connects to mature sponsors every cycle
    ESTABLISHED = "established"  # member of the current overlay


#: Phase enum -> columnar store code (:mod:`repro.core.nodestore`).
_PHASE_CODES = {
    Phase.NEW: nodestore.PHASE_NEW,
    Phase.FRESH: nodestore.PHASE_FRESH,
    Phase.ESTABLISHED: nodestore.PHASE_ESTABLISHED,
}


# ----------------------------------------------------------------------
# Shared per-round hop classification (columnar plane receive path)
#
# With the columnar hop plane each *logical* hop is one row shared by every
# receiver, so its classification — next step, final test, swarm lookup
# point, join-record extraction — runs ONCE per round for the whole network
# (memoised on ``HopDelivery.cache``) instead of once per copy per receiver.
# Values are exactly what the legacy per-copy inbox loop computes.
# ----------------------------------------------------------------------


def _final_class(m) -> tuple[int, int]:
    """Delivery class of a final-step row: ``(class, sample_rank)``.

    Class 0 — recorded on arrival (probes, unknown payloads): ``_deliver``
    appends to ``delivered`` and never draws rng.  Class 1 — rank-tested
    token: state changes (and rng draws) happen only at the node whose rank
    in the target swarm equals ``sample_rank``.  Class 2 — complete no-op
    (a token without a sample rank returns immediately).
    """
    payload = m.payload
    if isinstance(payload, tuple) and payload[0] == "token":
        if m.sample_rank is None:
            return 2, -1
        return 1, m.sample_rank
    return 0, -1


def _even_hop_cols(delivery: HopDelivery):
    """Row kinds for even rounds: 0 skip, 1 arrived join, 2 final, 3 mid.

    Alongside the forwarding columns this precomputes, per final row, the
    delivery class and sample rank (see :func:`_final_class`) so receivers
    can decide *without calling* ``_deliver`` whether a row can touch their
    state — the vast majority of final copies are rank-test misses.
    """
    msgs = delivery.msgs
    steps = delivery.steps.tolist()
    count = len(msgs)
    kind = np.zeros(count, dtype=np.int8)
    point = np.zeros(count, dtype=np.float64)
    fincls = np.zeros(count, dtype=np.int8)
    srank = np.full(count, -1, dtype=np.int64)
    next_ks = [0] * count
    recs: list[JoinRecord | None] = [None] * count
    for i, m in enumerate(msgs):
        k = steps[i]
        fs = m.final_step
        if k >= fs:
            continue  # defensive: deliveries happen at odd rounds
        nk = k + 1
        next_ks[i] = nk
        if nk == fs:
            payload = m.payload
            if isinstance(payload, tuple) and payload[0] == "join":
                kind[i] = 1
                recs[i] = payload[1]
            else:
                kind[i] = 2
                point[i] = m.target
                fincls[i], srank[i] = _final_class(m)
        else:
            kind[i] = 3
            point[i] = m.trajectory[nk]
    return kind, point, next_ks, recs, fincls, srank


def _odd_hop_cols(delivery: HopDelivery):
    """Per-row final flag, handover point, and delivery class for odd rounds."""
    msgs = delivery.msgs
    steps = delivery.steps.tolist()
    count = len(msgs)
    final = np.zeros(count, dtype=bool)
    point = np.zeros(count, dtype=np.float64)
    fincls = np.zeros(count, dtype=np.int8)
    srank = np.full(count, -1, dtype=np.int64)
    tgt = np.zeros(count, dtype=np.float64)
    for i, m in enumerate(msgs):
        k = steps[i]
        if k >= m.final_step:
            final[i] = True
            tgt[i] = m.target
            fincls[i], srank[i] = _final_class(m)
        else:
            point[i] = m.trajectory[k]
    return final, point, steps, fincls, srank, tgt


def _intern_out_rows(
    ctx: NodeContext,
    msgs: list,
    rows_to_intern: list[int],
    steps_out: list[int],
) -> np.ndarray:
    """Assign outgoing plane rows to every forwardable hop, once per round.

    The plane numbers rows by first-append order, and nothing observable
    depends on the numbering — rows are opaque labels into the ``msgs`` /
    ``steps`` columns, receiver arrival order comes from the send sequence,
    and dedup is by row *value*.  Interning all of a round's forward keys
    eagerly (in row order) therefore changes no behaviour, but lets every
    node's forwarding loop file batches with C-level ``list.extend`` instead
    of paying a dict probe per action.  Rows that end up with zero copies
    (e.g. every holder's window was empty) simply never reach a receiver.
    """
    reg, pmsgs, psteps, _, _, _, _ = ctx.hop_columns()
    reg_get = reg.get
    out = np.full(len(msgs), -1, dtype=np.int64)
    for row in rows_to_intern:
        m = msgs[row]
        k = steps_out[row]
        # repro: allow(id-ordering): identity interning only — rows are
        # numbered by first-append order; the id value never orders anything
        # (mirrors HopPlane.send semantics).
        key = (id(m) << 7) | k
        rw = reg_get(key)
        if rw is None:
            rw = len(pmsgs)
            reg[key] = rw
            pmsgs.append(m)
            psteps.append(k)
        out[row] = rw
    return out


# How many rounds a token stays usable.  The paper discards unused tokens
# every round; we keep them for two 2-round cycles so the pipeline tolerates
# parity offsets (a constant-factor relaxation, see DESIGN.md §5).
TOKEN_TTL = 4


class MaintenanceNode(NodeProtocol):
    """Per-node state machine of the maintenance protocol."""

    def __init__(self, node_id: int, services: EngineServices) -> None:
        self.id = node_id
        self.params: ProtocolParams = services.params
        self.hash = services.position_hash
        # Engine-shared epoch cache (None = compute everything per node).
        # ``_pos_of`` is the hash with per-epoch memoisation when available —
        # identical values either way, the cache is pure memoisation.
        self._epoch_cache = services.epoch_cache
        self._pos_of = (
            self._epoch_cache.position
            if self._epoch_cache is not None
            else services.position_hash.position
        )
        # Hot-path caches (property lookups dominate otherwise: the derived
        # radii recompute ``lam`` on every access).
        self._swarm_radius = services.params.swarm_radius
        self._list_radius = services.params.list_radius
        self._db_radius = services.params.debruijn_radius
        self._r = services.params.r
        self._lam = services.params.lam
        self.phase = Phase.NEW
        # --- A_LDS state -------------------------------------------------
        self.epoch: int | None = None
        self.pos: float | None = None
        self.d_nbrs: dict[int, float] = {}
        self._d_index: PositionIndex | None = None
        self.h_records: dict[int, JoinRecord] = {}
        self._pending_launch: list[RoutedMessage] = []
        # --- A_RANDOM state ----------------------------------------------
        self.tokens: list[tuple[int, int]] = []  # (expiry round, owner id)
        self.slots: list[int | None] = [None] * (2 * self.params.delta_eff)
        # --- Application-level deliveries and diagnostics -----------------
        self.delivered: list[tuple[object, int]] = []  # (payload, round)
        self.sampled_tokens_seen = 0
        self.connects_received = 0
        self.connects_dropped = 0
        self.max_connects_in_round = 0
        self.demotions = 0
        self.joins_launched = 0
        self._queued_probes: list[tuple[object, float]] = []
        # Epoch at which this node (re-)entered the overlay; sponsors must
        # keep launching joins for it until its own pipeline fills (lam+2
        # epochs later), so it keeps CONNECTing until then.
        self._first_epoch: int | None = None
        # Newcomers whose token grant is still owed (token pool was dry).
        self._pending_grants: dict[int, int] = {}  # node id -> expiry round

    # ------------------------------------------------------------------
    # Priming (bootstrap phase, Section 5: D_0 built churn-free via [14])
    # ------------------------------------------------------------------

    def prime(self, epoch: int, pos: float, neighbors: dict[int, float]) -> None:
        """Install the bootstrap overlay neighbourhood directly."""
        self.phase = Phase.ESTABLISHED
        self.epoch = epoch
        self.pos = pos
        self.d_nbrs = dict(neighbors)
        self._d_index = None
        # Primed nodes have no pipeline gap (the bootstrap phase is
        # churn-free, so the missing early epochs never cut over).
        self._first_epoch = -(10**6)

    # ------------------------------------------------------------------
    # Public API used by the runner
    # ------------------------------------------------------------------

    def queue_probe(self, probe_id: object, target: float) -> None:
        """Ask this node to route a probe to ``S(target)`` (audit traffic)."""
        self._queued_probes.append((probe_id, target))

    def publish_state(self, store, slot: int) -> None:
        """Mirror phase/epoch/position into the engine's columnar store."""
        store.publish(slot, _PHASE_CODES[self.phase], self.epoch, self.pos)

    @property
    def is_established(self) -> bool:
        return self.phase is Phase.ESTABLISHED

    # ------------------------------------------------------------------
    # Lazy neighbourhood indexes
    # ------------------------------------------------------------------

    def _d_members(self) -> PositionIndex:
        """Current-overlay neighbourhood (self included) as a position index.

        With the engine's epoch cache the index is an interned copy-on-write
        view over the shared epoch-sorted slab — element-identical to the
        fresh build (record positions are hash-derived by construction), and
        *object*-identical across nodes with equal neighbourhoods.
        """
        if self._d_index is None:
            table = dict(self.d_nbrs)
            if self.pos is not None:
                table[self.id] = self.pos
            cache = self._epoch_cache
            if cache is not None and self.epoch is not None and self.pos is not None:
                self._d_index = cache.index_for(self.epoch, frozenset(table), table)
            else:
                self._d_index = PositionIndex(table)
        return self._d_index

    def _swarm_from(self, index: PositionIndex, point: float):
        """Member ids of ``S(point)`` in the given index (ndarray view)."""
        return index.ids_within(point, self._swarm_radius)

    @staticmethod
    def _window_bounds(
        index: PositionIndex, points: list[float], radius: float
    ) -> tuple[list[int] | None, list[int] | None, list[bool] | None, list[int], int]:
        """Batched window bounds without materializing the member lists.

        Returns ``(a, b, wrapped, ids_list, n)``; window ``i`` covers
        ``ids_list[a[i]:b[i]]`` (or ``ids_list[a[i]:] + ids_list[:b[i]]``
        when wrapped).  ``a is None`` signals the full-ring case (radius
        >= 0.5): every window is all of ``ids_list``.  Random-pick loops
        index straight into ``ids_list`` with these bounds, skipping the
        per-window list allocation of :meth:`_windows`.
        """
        ids_list = index.ids_list
        n = len(ids_list)
        if radius >= 0.5:
            return None, None, None, ids_list, n
        a, b, wrapped = index.bounds_many(
            np.fromiter(points, dtype=np.float64, count=len(points)), radius
        )
        return a.tolist(), b.tolist(), wrapped.tolist(), ids_list, n

    @staticmethod
    def _windows(
        index: PositionIndex, points: list[float], radius: float
    ) -> list[list[int]]:
        """Batched ``ids_within`` over many points: one sorted-array sweep.

        Returns one member list per point (byte-identical content and order
        to the scalar path).  Lists may be shared; callers must not mutate.
        """
        ids_list = index.ids_list
        count = len(points)
        if radius >= 0.5:
            return [ids_list] * count
        a, b, wrapped = index.bounds_many(
            np.fromiter(points, dtype=np.float64, count=count), radius
        )
        a = a.tolist()
        b = b.tolist()
        wrapped = wrapped.tolist()
        return [
            ids_list[a[i]:] + ids_list[:b[i]] if wrapped[i] else ids_list[a[i]:b[i]]
            for i in range(count)
        ]

    # ------------------------------------------------------------------
    # Round dispatch
    # ------------------------------------------------------------------

    def on_round(self, ctx: NodeContext) -> None:
        creates: list[CreateBatch] = []
        join_batches: list[JoinBatch] = []
        token_msgs: list[TokenMsg] = []
        connects: list[ConnectMsg] = []
        grants: list[TokenGrant] = []
        notices: list[JoinNotice] = []
        # Exact-type dispatch: one dict probe per message instead of an
        # isinstance chain (all message classes are final).  Hops — the bulk
        # of every inbox — dedup right here by (message identity, step):
        # each logical request is one shared RoutedMessage instance (msg_ids
        # are constructed exactly once, with per-origin counters), so object
        # identity equals the documented msg_id dedup without hashing the
        # nested msg_id tuple per copy.  Even rounds classify surviving hops
        # straight into forwarding actions; odd rounds keep the deduped hop
        # list plus the handover lookup points — either way the inbox is
        # walked exactly once.
        buckets: dict[type, list] = {
            CreateBatch: creates,
            JoinBatch: join_batches,
            TokenMsg: token_msgs,
            ConnectMsg: connects,
            TokenGrant: grants,
            JoinNotice: notices,
        }
        even = ctx.round % 2 == 0
        seen_hops: set[tuple[int, int]] = set()
        # Each action is (is_final, msg, next_k); finals become the full
        # target-swarm delivery multicast, the rest mid-route forwards.
        actions: list[tuple[bool, RoutedMessage, int]] = []
        points: list[float] = []
        join_recs: list[JoinRecord] = []
        hops: list[Hop] = []
        handover_points: list[float] = []
        for _, msg in ctx.inbox:
            if msg.__class__ is Hop:
                m = msg.msg
                k = msg.step
                # repro: allow(id-ordering): identity dedup only — the id value
                # is a set-membership key, never ordered or emitted; duplicate
                # detection is by object identity by design (same Hop object
                # fanned out to several receivers).
                key = (id(m), k)
                if key in seen_hops:
                    continue
                seen_hops.add(key)
                if even:
                    if k >= m.final_step:
                        continue  # defensive: deliveries happen at odd rounds
                    next_k = k + 1
                    payload = m.payload
                    if next_k == m.final_step:
                        if isinstance(payload, tuple) and payload[0] == "join":
                            join_recs.append(payload[1])
                        else:
                            actions.append((True, m, next_k))
                            points.append(m.target)
                    else:
                        actions.append((False, m, next_k))
                        points.append(m.trajectory[next_k])
                else:
                    hops.append(msg)
                    if k < m.final_step:
                        handover_points.append(m.trajectory[k])
                continue
            bucket = buckets.get(msg.__class__)
            if bucket is not None:
                bucket.append(msg)

        self._absorb_tokens(ctx, token_msgs, grants)
        self._fill_slots(ctx, connects)

        if even:
            self._even_round(ctx, creates, actions, points, join_recs)
        else:
            self._odd_round(ctx, join_batches, hops, handover_points)

        # Bootstrap duties are parity-independent: the notice arrives in the
        # join round and must be answered as soon as tokens allow (the
        # newcomer knows nobody until the grant lands).
        for notice in notices:
            self._handle_join_notice(ctx, notice)
        if not notices:
            self._serve_pending_grants(ctx)

        self._expire_tokens(ctx.round)

    # ------------------------------------------------------------------
    # A_RANDOM plumbing shared by both parities
    # ------------------------------------------------------------------

    def _absorb_tokens(
        self, ctx: NodeContext, token_msgs: list[TokenMsg], grants: list[TokenGrant]
    ) -> None:
        expiry = ctx.round + TOKEN_TTL
        for tm in token_msgs:
            self.tokens.append((expiry, tm.owner))
        for grant in grants:
            for owner in grant.tokens:
                self.tokens.append((expiry, owner))
            if self.phase is Phase.NEW:
                self.phase = Phase.FRESH

    def _fill_slots(self, ctx: NodeContext, connects: list[ConnectMsg]) -> None:
        if len(connects) > self.max_connects_in_round:
            self.max_connects_in_round = len(connects)
        for cm in connects:
            self.connects_received += 1
            if cm.node in self.slots:
                continue  # already registered this cycle
            empty = [i for i, s in enumerate(self.slots) if s is None]
            if not empty:
                self.connects_dropped += 1
                continue
            i = int(ctx.rng.choice(empty))
            self.slots[i] = cm.node

    def _expire_tokens(self, t: int) -> None:
        self.tokens = [(exp, owner) for exp, owner in self.tokens if exp > t]
        cap = 6 * self.params.delta_eff
        if len(self.tokens) > cap:
            self.tokens = self.tokens[-cap:]

    def _take_tokens(self, ctx: NodeContext, count: int) -> list[int]:
        """Up to ``count`` distinct token owners, u.a.r.

        Tokens are sampled, not consumed — they expire via their TTL instead.
        (The paper discards tokens after one round but also assumes a
        Theta(log n) token flow with generous constants; reuse inside the
        short TTL window keeps small-n runs supplied without changing what
        the adversary can learn.)
        """
        # repro: allow(unordered-iteration): int-only set — CPython int hashing
        # is not randomized, so the materialised order is a deterministic
        # function of the token list; sorting here would reorder the shuffle
        # input and change the committed golden fingerprints.
        owners = list({owner for _, owner in self.tokens if owner != self.id})
        if not owners:
            return []
        ctx.rng.shuffle(owners)
        return owners[:count]

    def _handle_join_notice(self, ctx: NodeContext, notice: JoinNotice) -> None:
        """Bootstrap duty (Listing 4, "Upon v joining")."""
        self._pending_grants[notice.new_id] = ctx.round + 4 * self.params.lam
        self._serve_pending_grants(ctx)

    def _serve_pending_grants(self, ctx: NodeContext) -> None:
        """Supply owed newcomers with tokens + CONNECTs (retry while dry)."""
        if not self._pending_grants:
            return
        delta = self.params.delta_eff
        served: list[int] = []
        for v, expiry in self._pending_grants.items():
            if ctx.round > expiry:
                served.append(v)  # newcomer churned or hopeless; give up
                continue
            connect_targets = self._take_tokens(ctx, delta)
            grant_tokens = self._take_tokens(ctx, delta)
            if len(grant_tokens) < delta:
                # Fall back to current-overlay neighbours (mature by
                # construction).  Documented deviation — keeps joins during
                # token droughts alive.
                backup = [w for w in self.d_nbrs if w != v]
                ctx.rng.shuffle(backup)
                while len(connect_targets) < delta and backup:
                    connect_targets.append(backup.pop())
                while len(grant_tokens) < delta and backup:
                    grant_tokens.append(backup.pop())
            if not grant_tokens:
                continue  # still dry; retry next round
            for w in connect_targets:
                ctx.send(w, ConnectMsg(v))
            ctx.send(v, TokenGrant(tuple(grant_tokens)))
            served.append(v)
        for v in served:
            self._pending_grants.pop(v, None)

    # ------------------------------------------------------------------
    # Even rounds
    # ------------------------------------------------------------------

    def _even_round(
        self,
        ctx: NodeContext,
        creates: list[CreateBatch],
        actions: list[tuple[bool, RoutedMessage, int]],
        points: list[float],
        join_recs: list[JoinRecord],
    ) -> None:
        e = ctx.round // 2
        self._cutover(ctx, e, creates)
        if self.phase is Phase.ESTABLISHED:
            if ctx.hops is not None:
                plane_recs = self._even_hops_plane(ctx, ctx.hop_delivery, ctx.hops)
                if plane_recs:
                    self._rebroadcast_joins(ctx, self._d_members(), plane_recs)
            if actions or join_recs:
                self._forward_hops(ctx, actions, points, join_recs)
            self._launch_joins(ctx, e)
            self._emit_tokens(ctx)
            self._launch_queued_probes(ctx)
        if self.phase is Phase.FRESH or (
            self.phase is Phase.ESTABLISHED
            and self._first_epoch is not None
            and e < self._first_epoch + self.params.lam + 2
        ):
            self._fresh_connect(ctx)
        # Slots served this cycle's join launches and token forwards; reset.
        self.slots = [None] * (2 * self.params.delta_eff)

    def _cutover(self, ctx: NodeContext, e: int, creates: list[CreateBatch]) -> None:
        # CREATE batches are memoised per interned h_index, so senders that
        # share an index send the *same object* — identity-dedup them (a
        # repeat adds no new keys, and duplicate keys across batches carry
        # the identical hash-derived position).  Our own id never appears:
        # the single producer pops the target id from its batch.
        records: dict[int, float] = {}
        seen: set[int] = set()
        for batch in creates:
            # repro: allow(id-ordering): identity dedup only — the id value
            # never orders anything.
            bid = id(batch)
            if bid in seen:
                continue
            seen.add(bid)
            if batch.nodes is not None and batch.epoch == e:
                # Producer-side columns: one C-level update per batch.  The
                # zip pairs are exactly the (rec.node, rec.pos) loop below —
                # same first-occurrence key order, same last-write values.
                records.update(zip(batch.nodes, batch.poses))
            elif batch.epoch is None:
                for rec in batch.records:
                    if rec.epoch == e:
                        records[rec.node] = rec.pos
            # A columnised batch with a different (uniform) epoch adds no
            # keys — exactly what the per-record filter would do.
        records.pop(self.id, None)  # defensive: equals the legacy filter
        if records:
            if self.phase is not Phase.ESTABLISHED or self.epoch is None:
                self._first_epoch = e
                self.phase = Phase.ESTABLISHED
            self.epoch = e
            self.pos = self._pos_of(self.id, e)
            self.d_nbrs = records
            self._d_index = None
        elif (
            self.phase is Phase.ESTABLISHED
            and e >= self.params.lam + 2
            and (self.epoch is None or self.epoch < e)
        ):
            # Expected cutover records never arrived: we fell out of the
            # overlay.  Demote and recover through the token machinery.
            self.phase = Phase.FRESH
            self.epoch = None
            self.pos = None
            self.d_nbrs = {}
            self._d_index = None
            self.demotions += 1

    def _forward_hops(
        self,
        ctx: NodeContext,
        actions: list[tuple[bool, RoutedMessage, int]],
        points: list[float],
        join_recs: list[JoinRecord],
    ) -> None:
        """Even-round forwarding: advance each held hop one trajectory step.

        :meth:`on_round` already deduplicated and classified the held hops
        into ``actions`` (mid-route forwards and full-delivery finals, with
        their swarm lookup ``points``) and ``join_recs`` (arrived JOINs to
        rebroadcast).  The swarm lookups batch into one vectorised sweep
        while every send — and therefore the edge set, inbox order, and rng
        draw sequence — happens in exactly the order the one-pass loop
        produced.
        """
        index = self._d_members()
        # Sends, in original hop order (one batched multicast call).
        # Mid-route picks index straight into the shared id list via the
        # batched bounds; only finals materialize their member window.
        if actions:
            a, b, wr, ids_list, n = self._window_bounds(
                index, points, self._swarm_radius
            )
            my_id = self.id
            r = self._r
            rnd = ctx.rng.random
            batch: list[tuple[tuple[int, ...], object]] = []
            for i, (is_final, msg, next_k) in enumerate(actions):
                if a is None:
                    ai = 0
                    size = n
                else:
                    ai = a[i]
                    bi = b[i]
                    size = n - ai + bi if wr[i] else bi - ai
                if is_final:
                    if a is None:
                        members = ids_list
                    elif wr[i]:
                        members = ids_list[ai:] + ids_list[:bi]
                    else:
                        members = ids_list[ai:bi]
                    out = Hop(msg, next_k)
                    batch.append((tuple(w for w in members if w != my_id), out))
                    # A holder inside the target swarm delivers to itself too.
                    if self._in_swarm(msg.target):
                        self._deliver(ctx, msg)
                elif size:
                    picks = []
                    for _ in range(r):
                        j = ai + int(rnd() * size)
                        picks.append(ids_list[j - n] if j >= n else ids_list[j])
                    batch.append((tuple(picks), Hop(msg, next_k)))
            ctx.send_many_batch(batch)
        self._rebroadcast_joins(ctx, index, join_recs)

    def _rebroadcast_joins(
        self, ctx: NodeContext, index: PositionIndex, join_recs: list[JoinRecord]
    ) -> None:
        """Rebroadcast each arrived join record to the current holders of the
        three Definition-5 arcs (Listing 3 line 10); arc lookups batch per
        radius (list arc at rec.pos, two De Bruijn arcs at rec.pos/2 and
        (rec.pos+1)/2 — the order required_neighbor_arcs produced).

        Observation-equivalent restatement of the legacy receiver-keyed
        append loop: receivers get a :class:`JoinBatch` of their records in
        record-arrival order, and the sends go out in the order receivers
        were *first touched* by the record-major arc sweep — i.e. the
        ``defaultdict`` insertion order the per-receiver loop produced.
        """
        if not join_recs:
            return
        # Keep-first dedup by (node, epoch) up front: ``pos`` is the hash of
        # exactly that pair, so duplicates of a key are value-equal records
        # with identical arc windows — the legacy per-receiver dedup kept
        # only the first, so later duplicates contribute nothing anywhere.
        recs = join_recs
        if len(recs) > 1:
            by_key: dict[tuple[int, int], JoinRecord] = {}
            for rec in recs:
                k = (rec.node, rec.epoch)
                if k not in by_key:
                    by_key[k] = rec
            if len(by_key) < len(recs):
                recs = list(by_key.values())
        # A record's receiver set is a pure function of the (interned) index
        # and the key — memoise the deduped, first-occurrence-ordered target
        # ids on the index itself, unfiltered (my_id differs per node).
        tcache: dict[tuple[int, int], np.ndarray] = index.scratch.setdefault(
            "join_targets", {}
        )  # type: ignore[assignment]
        missing = [rec for rec in recs if (rec.node, rec.epoch) not in tcache]
        if missing:
            list_wins = self._windows(
                index, [rec.pos for rec in missing], self._list_radius
            )
            db_points: list[float] = []
            for rec in missing:
                db_points.append(wrap(rec.pos / 2.0))
                db_points.append(wrap((rec.pos + 1.0) / 2.0))
            db_wins = self._windows(index, db_points, self._db_radius)
            for i, rec in enumerate(missing):
                tids = dict.fromkeys(
                    list_wins[i] + db_wins[2 * i] + db_wins[2 * i + 1]
                )
                tcache[(rec.node, rec.epoch)] = np.fromiter(
                    tids, dtype=np.int32, count=len(tids)
                )
        # Record-major target stream (receivers, parallel record indices);
        # masking my_id first cannot reorder anyone else's first touch.
        arrs = [tcache[(rec.node, rec.epoch)] for rec in recs]
        if len(arrs) == 1:
            wtargets = arrs[0]
            ridx = np.zeros(wtargets.size, dtype=np.int32)
        else:
            wtargets = np.concatenate(arrs)
            ridx = np.repeat(
                np.arange(len(arrs), dtype=np.int32), [a.size for a in arrs]
            )
        keep = wtargets != self.id
        wtargets = wtargets[keep]
        ridx = ridx[keep]
        if not wtargets.size:
            return
        # Stable sort groups each receiver's record indices in stream order
        # (ascending record index — each receiver occurs at most once per
        # record), and puts each receiver's *first* stream occurrence at its
        # segment start — sorting segment starts by that occurrence recovers
        # the legacy first-touch send order.
        order = np.argsort(wtargets, kind="stable")
        ws = wtargets[order]
        ridx_sorted = ridx[order].tolist()
        starts = np.flatnonzero(np.r_[True, ws[1:] != ws[:-1]])
        receivers = ws[starts].tolist()
        starts_l = starts.tolist()
        ends_l = starts_l[1:] + [ws.size]
        out: list[tuple[int, object]] = []
        for k in np.argsort(order[starts]).tolist():
            batch = JoinBatch(
                tuple([recs[j] for j in ridx_sorted[starts_l[k]:ends_l[k]]])
            )
            out.append((receivers[k], batch))
        ctx.send_singles_batch(out)

    def _even_hops_plane(
        self, ctx: NodeContext, delivery: HopDelivery, rows: np.ndarray
    ) -> list[JoinRecord]:
        """Even-round forwarding over shared hop columns (plane receive path).

        Behaviour-identical to classifying per-copy ``Hop`` objects and
        running :meth:`_forward_hops`: rows arrive in legacy inbox order
        already deduplicated to first occurrences (the plane's delivery pass
        reproduces the legacy per-receiver seen-set), and the per-action
        loop below draws rng and files sends in exactly the legacy
        sequence.  Returns the arrived join records for rebroadcast (in
        arrival order).
        """
        cache = delivery.cache
        cols = cache.get("even")
        if cols is None:
            cols = cache["even"] = _even_hop_cols(delivery)
        kind, point, next_ks, recs, fincls, srank = cols
        rows_u = rows
        kr = kind[rows_u]
        join_recs = [recs[row] for row in rows_u[kr == 1].tolist()]
        act_rows = rows_u[kr >= 2]
        if act_rows.size:
            out_row = cache.get("out_even")
            if out_row is None:
                fwd = np.flatnonzero(kind >= 2).tolist()
                out_row = cache["out_even"] = _intern_out_rows(
                    ctx, delivery.msgs, fwd, next_ks
                )
            index = self._d_members()
            sc = index.scratch
            ids32 = sc.get("ids32")
            if ids32 is None:
                ids32 = sc["ids32"] = index.ids.astype(np.int32)
            ids_list = index.ids_list
            n = len(ids_list)
            rho = self._swarm_radius
            finals_mask = kind[act_rows] == 2
            full_ring = rho >= 0.5
            if full_ring:
                ai_arr = np.zeros(act_rows.size, dtype=np.int64)
                size_arr = np.full(act_rows.size, n, dtype=np.int64)
                b_arr = wr_arr = None
            else:
                ai_arr, b_arr, wr_arr = index.bounds_many(point[act_rows], rho)
                size_arr = np.where(wr_arr, n - ai_arr + b_arr, b_arr - ai_arr)
            mid_list = np.flatnonzero(~finals_mask & (size_arr > 0))
            fin_idx = np.flatnonzero(finals_mask)
            msgs = delivery.msgs
            my_id = self.id
            r = self._r
            rng = ctx.rng
            pos = self.pos

            # Pass 1 — rng and node state, in row order.  ``_deliver`` runs
            # only where the vectorised predicates say it can matter: a final
            # row touches this node iff it is inside the target swarm, and a
            # rank-tested token additionally iff this node's rank matches —
            # both predicates are rng-free and bit-identical to the scalar
            # checks inside ``_deliver``.  Mid-route picks between state
            # finals draw in one batched ``random(r*k)`` call (the Generator
            # stream is identical to k*r scalar draws).
            events: list[int] = []
            ranks_l: list[int] = []
            if fin_idx.size:
                fin_act = act_rows[fin_idx]
                tgtf = point[fin_act]
                # Window rank of this node per final (also pass 2's slice
                # position: dropping rank ``rk`` from the member window is
                # the ``w != my_id`` filter, ids being unique).
                ranks_fin = index.ranks_within_many(tgtf, rho, my_id)
                ranks_l = ranks_fin.tolist()
                if pos is not None:
                    gap = np.abs(pos - tgtf)
                    inswarm = np.minimum(gap, 1.0 - gap) <= rho
                    fc = fincls[fin_act]
                    touch = inswarm & (fc == 0)
                    ranked = inswarm & (fc == 1)
                    if ranked.any():
                        touch |= ranked & (ranks_fin == srank[fin_act])
                    events = fin_idx[touch].tolist()
            pick_chunks: list[np.ndarray] = []
            cursor = 0
            for p in events:
                if fincls[act_rows[p]] == 1:
                    # This delivery will draw — flush the batched mid picks
                    # that precede it in row order first.
                    hi = int(np.searchsorted(mid_list, p, side="left"))
                    if hi > cursor:
                        seg = mid_list[cursor:hi]
                        u = rng.random(r * seg.size)
                        ai2 = np.repeat(ai_arr[seg], r)
                        sz2 = np.repeat(size_arr[seg], r)
                        j = ai2 + (u * sz2).astype(np.int64)
                        j[j >= n] -= n
                        pick_chunks.append(ids32[j])
                        cursor = hi
                self._deliver(ctx, msgs[act_rows[p]])
            if cursor < mid_list.size:
                seg = mid_list[cursor:]
                u = rng.random(r * seg.size)
                ai2 = np.repeat(ai_arr[seg], r)
                sz2 = np.repeat(size_arr[seg], r)
                j = ai2 + (u * sz2).astype(np.int64)
                j[j >= n] -= n
                pick_chunks.append(ids32[j])

            # Pass 2 — filing, in row order (no rng, no node state): mid runs
            # between finals splice into the plane columns as list slices;
            # finals multicast their member window (cached per row on
            # the delivery — the window is index-determined, only the slice
            # position of self differs per holder) minus self.
            _, _, _, psrcs, prows, plens, pflat = ctx.hop_columns()
            picks_l = (
                np.concatenate(pick_chunks).tolist() if pick_chunks else []
            )
            orow_act = out_row[act_rows]
            orow_mid_l = orow_act[mid_list].tolist()
            fm = cache.get(("fin_members", index))
            if fm is None:
                fm = cache[("fin_members", index)] = {}
            total = 0
            mc = 0  # mids filed so far
            ri = 0  # finals seen so far (ranks_l cursor)
            fin_l = fin_idx.tolist()
            act_l = act_rows.tolist()
            bounds = np.searchsorted(mid_list, fin_idx, side="left").tolist()
            bounds.append(int(mid_list.size))
            for fpos, hi in zip(fin_l + [-1], bounds):
                if hi > mc:
                    k = hi - mc
                    psrcs.extend([my_id] * k)
                    prows.extend(orow_mid_l[mc:hi])
                    plens.extend([r] * k)
                    pflat.extend(picks_l[r * mc:r * hi])
                    total += r * k
                    mc = hi
                if fpos >= 0:
                    row = act_l[fpos]
                    mem = fm.get(row)
                    if mem is None:
                        if full_ring:
                            mem = ids_list
                        elif wr_arr[fpos]:
                            mem = (
                                ids_list[int(ai_arr[fpos]):]
                                + ids_list[: int(b_arr[fpos])]
                            )
                        else:
                            mem = ids_list[int(ai_arr[fpos]):int(b_arr[fpos])]
                        fm[row] = mem
                    rk = ranks_l[ri]
                    ri += 1
                    dsts = mem if rk < 0 else mem[:rk] + mem[rk + 1:]
                    nd = len(dsts)
                    if nd:
                        psrcs.append(my_id)
                        prows.append(int(orow_act[fpos]))
                        plens.append(nd)
                        pflat.extend(dsts)
                        total += nd
            ctx.count_hop_sends(total)
        return join_recs

    def _in_swarm(self, point: float) -> bool:
        if self.pos is None:
            return False
        gap = abs(self.pos - point)
        return min(gap, 1.0 - gap) <= self._swarm_radius

    def _launch_joins(self, ctx: NodeContext, e: int) -> None:
        """Launch this cycle's JOIN requests (self + sponsored fresh nodes)."""
        target_epoch = e + self.params.lam + 2
        candidates = [self.id] + [v for v in self.slots if v is not None]
        for v in dict.fromkeys(candidates):
            pos = self._pos_of(v, target_epoch)
            rec = JoinRecord(v, pos, target_epoch)
            self._pending_launch.append(
                make_routed_message(
                    msg_id=("join", v, target_epoch, self.id),
                    origin=self.id,
                    origin_position=self.pos,
                    target=pos,
                    lam=self.params.lam,
                    start_round=ctx.round,
                    payload=("join", rec),
                )
            )
            self.joins_launched += 1

    def _emit_tokens(self, ctx: NodeContext) -> None:
        """A_RANDOM step 1: send tau tokens to random nodes via A_SAMPLING."""
        params = self.params
        for i in range(params.tau_eff):
            target = float(ctx.rng.random())
            delta = int(ctx.rng.integers(0, params.sampling_rank_range))
            self._pending_launch.append(
                make_routed_message(
                    msg_id=("token", self.id, ctx.round, i),
                    origin=self.id,
                    origin_position=self.pos,
                    target=target,
                    lam=params.lam,
                    start_round=ctx.round,
                    sample_rank=delta,
                    payload=("token", self.id),
                )
            )

    def _launch_queued_probes(self, ctx: NodeContext) -> None:
        for probe_id, target in self._queued_probes:
            self._pending_launch.append(
                make_routed_message(
                    msg_id=("probe", probe_id, self.id),
                    origin=self.id,
                    origin_position=self.pos,
                    target=target,
                    lam=self.params.lam,
                    start_round=ctx.round,
                    payload=("probe", probe_id),
                )
            )
        self._queued_probes.clear()

    def _fresh_connect(self, ctx: NodeContext) -> None:
        """Fresh-node duty: register with delta random mature nodes."""
        for owner in self._take_tokens(ctx, self.params.delta_eff):
            ctx.send(owner, ConnectMsg(self.id))

    # ------------------------------------------------------------------
    # Odd rounds
    # ------------------------------------------------------------------

    def _odd_round(
        self,
        ctx: NodeContext,
        join_batches: list[JoinBatch],
        hops: list[Hop],
        handover_points: list[float],
    ) -> None:
        e_next = ctx.round // 2 + 1
        # 1. Store handover records for the next overlay.
        self.h_records = {}
        for batch in join_batches:
            for rec in batch.records:
                if rec.epoch == e_next:
                    self.h_records[rec.node] = rec
        if self.phase is not Phase.ESTABLISHED:
            return
        if self.h_records:
            table = {v: r.pos for v, r in self.h_records.items()}
            cache = self._epoch_cache
            h_index = (
                cache.index_for(e_next, frozenset(table), table)
                if cache is not None
                else PositionIndex(table)
            )
        else:
            h_index = None

        # 2. Handover in-flight hops + deliver finals.  ``hops`` arrives
        # deduplicated with its handover lookup points pre-collected by
        # :meth:`on_round`; batch the lookups, then execute in original hop
        # order (final deliveries may send and draw rng, so their
        # interleaving with handovers must not change).  With the columnar
        # plane the same work runs over shared row columns instead.
        hop_index = h_index if h_index is not None else self._d_members()
        if ctx.hops is not None:
            self._odd_hops_plane(ctx, ctx.hop_delivery, ctx.hops, hop_index)
        if hops:
            a, b, wr, ids_list, n = self._window_bounds(
                hop_index, handover_points, self._swarm_radius
            )
            r = self._r
            rnd = ctx.rng.random
            batch: list[tuple[tuple[int, ...], object]] = []
            wi = 0
            for hop in hops:
                if hop.step >= hop.msg.final_step:
                    self._deliver(ctx, hop.msg)
                    continue
                if a is None:
                    ai = 0
                    size = n
                else:
                    ai = a[wi]
                    size = n - ai + b[wi] if wr[wi] else b[wi] - ai
                wi += 1
                if size:
                    picks = []
                    for _ in range(r):
                        j = ai + int(rnd() * size)
                        picks.append(ids_list[j - n] if j >= n else ids_list[j])
                    batch.append((tuple(picks), hop))
            ctx.send_many_batch(batch)

        # 3. Initial multicasts of this cycle's launches.
        launches = self._pending_launch
        if launches:
            my_id = self.id
            lwins = self._windows(
                hop_index, [m.trajectory[0] for m in launches], self._swarm_radius
            )
            if ctx.has_hop_plane:
                ctx.send_hops_batch(
                    [
                        (msg, 0, [w for w in lwins[i] if w != my_id])
                        for i, msg in enumerate(launches)
                    ]
                )
            else:
                ctx.send_many_batch(
                    [
                        (tuple(w for w in lwins[i] if w != my_id), Hop(msg, 0))
                        for i, msg in enumerate(launches)
                    ]
                )
            launches.clear()

        # 4. Matchmaking: introduce next-overlay neighbours to each other.
        if h_index is not None:
            self._matchmake(ctx, h_index)

    def _odd_hops_plane(
        self,
        ctx: NodeContext,
        delivery: HopDelivery,
        rows: np.ndarray,
        hop_index: PositionIndex,
    ) -> None:
        """Odd-round handover/delivery over shared hop columns.

        Mirrors the legacy odd-round hop loop exactly: rows arrive already
        deduplicated to first occurrences in arrival order (the plane's
        delivery pass), batch the handover window bounds over the non-final
        rows, then walk all rows in order so final deliveries (which may
        send and draw rng) interleave with handovers unchanged.
        """
        cache = delivery.cache
        cols = cache.get("odd")
        if cols is None:
            cols = cache["odd"] = _odd_hop_cols(delivery)
        final, point, steps, fincls, srank, tgt = cols
        rows_u = rows
        fl = final[rows_u]
        h_pos = np.flatnonzero(~fl)
        fin_pos = np.flatnonzero(fl)
        out_row = cache.get("out_odd")
        if out_row is None:
            out_row = cache["out_odd"] = _intern_out_rows(
                ctx, delivery.msgs, np.flatnonzero(~final).tolist(), steps
            )
        sc = hop_index.scratch
        ids32 = sc.get("ids32")
        if ids32 is None:
            ids32 = sc["ids32"] = hop_index.ids.astype(np.int32)
        n = ids32.size
        rho = self._swarm_radius
        if h_pos.size:
            if rho >= 0.5:
                ai_arr = np.zeros(h_pos.size, dtype=np.int64)
                size_arr = np.full(h_pos.size, n, dtype=np.int64)
            else:
                ai_arr, b_arr, wr_arr = hop_index.bounds_many(
                    point[rows_u[h_pos]], rho
                )
                size_arr = np.where(wr_arr, n - ai_arr + b_arr, b_arr - ai_arr)
            mid_sel = size_arr > 0
            mid_list = h_pos[mid_sel]
            ai_m = ai_arr[mid_sel]
            size_m = size_arr[mid_sel]
        else:
            mid_list = h_pos
            ai_m = size_m = np.empty(0, dtype=np.int64)
        msgs = delivery.msgs
        my_id = self.id
        r = self._r
        rng = ctx.rng

        # Pass 1 — rng and node state, in row order (see _even_hops_plane).
        # Odd finals always reach ``_deliver`` in the legacy loop, but only
        # record-class rows and rank-matching tokens do anything — both
        # predicted here without rng (the rank test uses the *current*
        # overlay members, not ``hop_index``).
        events: list[int] = []
        if fin_pos.size:
            fr = rows_u[fin_pos]
            fc = fincls[fr]
            touch = fc == 0
            ranked = fc == 1
            if ranked.any():
                ranks = self._d_members().ranks_within_many(
                    tgt[fr], rho, my_id
                )
                touch |= ranked & (ranks == srank[fr])
            events = fin_pos[touch].tolist()
        pick_chunks: list[np.ndarray] = []
        cursor = 0
        for p in events:
            if fincls[rows_u[p]] == 1:
                hi = int(np.searchsorted(mid_list, p, side="left"))
                if hi > cursor:
                    u = rng.random(r * (hi - cursor))
                    ai2 = np.repeat(ai_m[cursor:hi], r)
                    sz2 = np.repeat(size_m[cursor:hi], r)
                    j = ai2 + (u * sz2).astype(np.int64)
                    j[j >= n] -= n
                    pick_chunks.append(ids32[j])
                    cursor = hi
            self._deliver(ctx, msgs[rows_u[p]])
        if cursor < mid_list.size:
            u = rng.random(r * (mid_list.size - cursor))
            ai2 = np.repeat(ai_m[cursor:], r)
            sz2 = np.repeat(size_m[cursor:], r)
            j = ai2 + (u * sz2).astype(np.int64)
            j[j >= n] -= n
            pick_chunks.append(ids32[j])

        # Pass 2 — filing.  Odd finals file nothing, so the handover copies
        # go out in one batched extend (mid row order is preserved).
        k = int(mid_list.size)
        if k:
            _, _, _, psrcs, prows, plens, pflat = ctx.hop_columns()
            psrcs.extend([my_id] * k)
            prows.extend(out_row[rows_u[mid_list]].tolist())
            plens.extend([r] * k)
            pflat.extend(np.concatenate(pick_chunks).tolist())
            ctx.count_hop_sends(r * k)

    def _matchmake(self, ctx: NodeContext, h_index: PositionIndex) -> None:
        """Send each next-overlay node its Definition-5 neighbours (CREATE).

        The batch for a target ``v`` is a pure function of the (epoch-
        interned) ``h_index``: the arc members come from the index, and the
        records they resolve to are ``JoinRecord(w, h_index position, e)``
        for every member ``w`` — identical at every node sharing the index.
        The batches are therefore memoised on the index itself and computed
        once network-wide; each node still *sends* them in its own
        ``h_records`` arrival order, exactly as before.  The three
        ``required_neighbor_arcs`` lookups per record batch into one
        :meth:`_windows` sweep per radius; records deduplicate on node ids
        (id -> record is injective) to spare dataclass hashing.
        """
        items = list(self.h_records.items())
        sc = h_index.scratch
        batches: dict[int, CreateBatch] = sc.setdefault(
            "create_batches", {}
        )  # type: ignore[assignment]
        missing = [(v, rec) for v, rec in items if v not in batches]
        if missing:
            # Index ids resolve to the same record values at every node
            # (h_index is built exactly from h_records), so the slot-aligned
            # record list is itself a pure function of the index.
            rl: list[JoinRecord] | None = sc.get("h_rec_list")  # type: ignore[assignment]
            if rl is None:
                h_records = self.h_records
                rl = sc["h_rec_list"] = [h_records[w] for w in h_index.ids_list]
            pl: list[float] | None = sc.get("h_pos_list")  # type: ignore[assignment]
            if pl is None:
                pl = sc["h_pos_list"] = [r.pos for r in rl]
            la, lb, lw, ids_l, _n = self._window_bounds(
                h_index, [rec.pos for _, rec in missing], self._list_radius
            )
            db_points: list[float] = []
            for _, rec in missing:
                db_points.append(wrap(rec.pos / 2.0))
                db_points.append(wrap((rec.pos + 1.0) / 2.0))
            da, db_b, dw = self._window_bounds(h_index, db_points, self._db_radius)[:3]

            def _arc(a, b, wr, j):
                # One arc as parallel (ids, poses, records) ring slices.
                if a is None:
                    return ids_l, pl, rl
                a0, b0 = a[j], b[j]
                if wr[j]:
                    return (
                        ids_l[a0:] + ids_l[:b0],
                        pl[a0:] + pl[:b0],
                        rl[a0:] + rl[:b0],
                    )
                return ids_l[a0:b0], pl[a0:b0], rl[a0:b0]

            # Disjoint-arc fast path: the arc centers are pos, pos/2 and
            # (pos+1)/2 — the De Bruijn pair sits exactly antipodal, and the
            # list arc clears both whenever pos keeps a circle distance of
            # more than (list+db radius) from each, i.e. for
            # 2*(r_l + r_d) < pos < 1 - 2*(r_l + r_d).  Disjoint position
            # intervals share no members, and v itself sits at the list-arc
            # center, so first-occurrence dedup is the identity and the
            # batch is plain slices with v's own slot excised.
            def _exc(seq, a0, b0, w, p):
                # The list arc with slot ``p`` (the target's own) excised.
                if w:
                    if p >= a0:
                        return seq[a0:p] + seq[p + 1:] + seq[:b0]
                    return seq[a0:] + seq[:p] + seq[p + 1:b0]
                return seq[a0:p] + seq[p + 1:b0]

            slots = h_index.slot_map
            margin = 2.0 * (self._list_radius + self._db_radius)
            fast_ok = la is not None and da is not None and self._db_radius < 0.25
            # Cross-index batch memo, keyed on the arc ids themselves: two
            # producers with different H sets (hence different interned
            # indexes) still build the identical batch for ``v`` whenever
            # their arcs around ``v`` agree — record values are
            # ``JoinRecord(w, h(w, e), e)`` by construction, so the id
            # column determines the whole batch.  Scoped to the round: the
            # target epoch is round-constant.
            rs = (
                self._epoch_cache.round_scratch(ctx.round)
                if self._epoch_cache is not None
                else None
            )
            for i, (v, rec) in enumerate(missing):
                j = 2 * i
                if fast_ok and margin < rec.pos < 1.0 - margin:
                    p = slots[v]
                    a0, b0, w0 = la[i], lb[i], lw[i]
                    i1, p1, r1 = _arc(da, db_b, dw, j)
                    i2, p2, r2 = _arc(da, db_b, dw, j + 1)
                    nodes = tuple(_exc(ids_l, a0, b0, w0, p) + i1 + i2)
                    if rs is not None:
                        gkey = (v, nodes)
                        shared = rs.get(gkey)
                        if shared is not None:
                            batches[v] = shared
                            continue
                    batch = CreateBatch(
                        tuple(_exc(rl, a0, b0, w0, p) + r1 + r2),
                        nodes,
                        tuple(_exc(pl, a0, b0, w0, p) + p1 + p2),
                        rec.epoch,
                    )
                    batches[v] = batch
                    if rs is not None:
                        rs[gkey] = batch
                    continue
                i0, p0, r0 = _arc(la, lb, lw, i)
                i1, p1, r1 = _arc(da, db_b, dw, j)
                i2, p2, r2 = _arc(da, db_b, dw, j + 1)
                # dict(zip(...)) keeps first-occurrence key order; duplicate
                # keys overwrite with the identical slot record, so values()
                # equals the first-occurrence id dedup resolved to records.
                ids = i0 + i1 + i2
                d = dict(zip(ids, r0 + r1 + r2))
                dp = dict(zip(ids, p0 + p1 + p2))
                d.pop(v, None)
                dp.pop(v, None)
                batches[v] = CreateBatch(
                    tuple(d.values()), tuple(d), tuple(dp.values()), rec.epoch
                )
        # An empty batch still signals the cutover to v.
        ctx.send_singles_batch([(v, batches[v]) for v, _rec in items])

    # ------------------------------------------------------------------
    # Final deliveries
    # ------------------------------------------------------------------

    def _deliver(self, ctx: NodeContext, msg: RoutedMessage) -> None:
        payload = msg.payload
        tag = payload[0] if isinstance(payload, tuple) else None
        if tag == "probe":
            self.delivered.append((payload, ctx.round))
            return
        if tag == "token":
            # A_SAMPLING rank rule: only the node at rank Delta accepts.
            if msg.sample_rank is None:
                return
            rank = self._my_rank(msg.target)
            if rank is None or rank != msg.sample_rank:
                return
            self.sampled_tokens_seen += 1
            owner = payload[1]
            # Step 3 of token distribution: keep or forward to a random slot.
            if ctx.rng.random() < 0.5:
                self.tokens.append((ctx.round + TOKEN_TTL, owner))
            else:
                filled = [s for s in self.slots if s is not None]
                if filled:
                    target = filled[int(ctx.rng.random() * len(filled))]
                    ctx.send(target, TokenMsg(owner))
                else:
                    self.tokens.append((ctx.round + TOKEN_TTL, owner))
            return
        # Unknown payloads are recorded for diagnosis.
        self.delivered.append((payload, ctx.round))

    def _my_rank(self, point: float) -> int | None:
        # O(1) via the index's lazy slot map — same value as the documented
        # ``ids_within_list(point, rho).index(self.id)`` rank rule.
        return self._d_members().rank_within(point, self._swarm_radius, self.id)
