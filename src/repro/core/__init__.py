"""The paper's main contribution: the 2-round overlay maintenance protocol."""

from repro.core.bootstrap import prime_initial_overlay
from repro.core.construction import (
    AnchorReply,
    AnchorRequest,
    ConstructionNode,
    Find,
    FoundReply,
    RangeReply,
    RangeRequest,
    SelfAnnounce,
    build_initial_overlay_distributed,
    construction_schedule,
)
from repro.core.dht import DhtResponse, DHTNode, StashTransfer, key_point
from repro.core.messages import (
    ConnectMsg,
    CreateBatch,
    JoinBatch,
    JoinRecord,
    TokenGrant,
    TokenMsg,
)
from repro.core.node import MaintenanceNode, Phase
from repro.core.runner import MaintenanceSimulation, OverlayAudit, ProbeReport

__all__ = [
    "AnchorReply",
    "AnchorRequest",
    "ConnectMsg",
    "ConstructionNode",
    "DHTNode",
    "DhtResponse",
    "StashTransfer",
    "CreateBatch",
    "Find",
    "FoundReply",
    "JoinBatch",
    "JoinRecord",
    "MaintenanceNode",
    "MaintenanceSimulation",
    "OverlayAudit",
    "Phase",
    "ProbeReport",
    "RangeReply",
    "RangeRequest",
    "SelfAnnounce",
    "TokenGrant",
    "TokenMsg",
    "build_initial_overlay_distributed",
    "construction_schedule",
    "key_point",
    "prime_initial_overlay",
]
