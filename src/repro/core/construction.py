"""Distributed construction of the initial overlay ``D_0`` (bootstrap phase).

The paper builds ``D_0`` in the churn-free bootstrap phase with the
deterministic overlay-construction machinery of Gmyr et al. [14]
(``O(log^2 n)`` rounds) and omits the details.  We implement a concrete
construction appropriate to our setting: starting from a **sorted ring**
(every node knows its clockwise successor by position — the canonical
starting point of the self-stabilizing De Bruijn literature [9, 10]), the
Definition-5 neighbourhoods are built in ``O(log n)`` synchronous rounds
with polylogarithmic congestion:

1. **Pointer doubling** (``2L`` rounds, ``L = ceil(log2(kappa n))``): node
   ``u`` learns its ``2^k``-th clockwise successor for every level ``k`` by
   repeatedly asking its ``2^k``-th successor for *its* ``2^k``-th successor.
2. **Range doubling** (``2K`` rounds, ``K = ceil(log2(4 c lam)) + 1``): the
   same trick on successor *lists* gives every node its first ``2^K >=
   4*c*lam`` successors with positions — covering the clockwise half of its
   list arc.  One **push** round then mirrors the knowledge: ``u`` announces
   itself to every collected successor inside the list radius, giving them
   their counter-clockwise halves.
3. **Anchor-greedy FINDs** (``<= L + 2`` rounds): ``u`` issues ``FIND(q)``
   for ``q ∈ {u/2, (u+1)/2}``.  Each holder forwards the request to its
   farthest level-anchor that does not overshoot ``q`` clockwise; the node
   closest below ``q`` answers with every neighbour it knows inside the
   De Bruijn radius of ``q``.

The schedule is round-number driven (all nodes know ``kappa*n``), so the
phase boundaries are deterministic.  The result is audited against the
ground-truth :class:`LDSGraph` — see ``build_initial_overlay_distributed``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config import ProtocolParams
from repro.sim.engine import Engine, EngineServices, NodeContext, NodeProtocol
from repro.util.intervals import wrap

__all__ = [
    "AnchorRequest",
    "AnchorReply",
    "RangeRequest",
    "RangeReply",
    "SelfAnnounce",
    "Find",
    "FoundReply",
    "ConstructionNode",
    "construction_schedule",
    "build_initial_overlay_distributed",
]


# ----------------------------------------------------------------------
# Messages
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AnchorRequest:
    """"Send me your level-``k`` anchor" (pointer doubling)."""

    level: int


@dataclass(frozen=True)
class AnchorReply:
    level: int
    anchor_id: int
    anchor_pos: float


@dataclass(frozen=True)
class RangeRequest:
    """"Send me your level-``j`` successor range" (range doubling)."""

    level: int


@dataclass(frozen=True)
class RangeReply:
    level: int
    entries: tuple[tuple[int, float], ...]


@dataclass(frozen=True)
class SelfAnnounce:
    """"I am at ``pos`` and you are within my list radius" (the push round)."""

    node: int
    pos: float


@dataclass(frozen=True)
class Find:
    """Locate the region around point ``q`` on behalf of ``origin``."""

    q: float
    origin: int
    kind: int  # 0 for u/2, 1 for (u+1)/2


@dataclass(frozen=True)
class FoundReply:
    kind: int
    entries: tuple[tuple[int, float], ...]


# ----------------------------------------------------------------------
# Round schedule
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ConstructionSchedule:
    """Deterministic phase boundaries derived from the public parameters."""

    levels: int  # L: pointer-doubling levels
    range_levels: int  # K: range-doubling levels
    find_hops: int  # bound on FIND relay hops

    @property
    def doubling_end(self) -> int:
        return 2 * self.levels

    @property
    def range_end(self) -> int:
        return self.doubling_end + 2 * self.range_levels

    @property
    def push_round(self) -> int:
        return self.range_end

    @property
    def find_start(self) -> int:
        return self.push_round + 1

    @property
    def total_rounds(self) -> int:
        # FINDs relay for <= find_hops rounds, plus the reply round and the
        # round the reply is consumed.
        return self.find_start + self.find_hops + 2


def construction_schedule(params: ProtocolParams) -> ConstructionSchedule:
    levels = max(1, math.ceil(math.log2(params.max_nodes)))
    needed = max(2.0, 4.0 * params.c * params.lam)
    range_levels = max(1, math.ceil(math.log2(needed)))
    return ConstructionSchedule(
        levels=levels, range_levels=range_levels, find_hops=levels + 2
    )


# ----------------------------------------------------------------------
# The protocol
# ----------------------------------------------------------------------


class ConstructionNode(NodeProtocol):
    """One node of the bootstrap construction."""

    def __init__(self, node_id: int, services: EngineServices) -> None:
        self.id = node_id
        self.params = services.params
        self.schedule = construction_schedule(services.params)
        self.pos = services.position_hash.position(node_id, 0)
        # anchors[k] = (id, pos) of the 2^k-th clockwise successor.
        self.anchors: list[tuple[int, float] | None] = [None] * (
            self.schedule.levels + 1
        )
        # Collected successor ranges (id -> pos), grows by doubling.
        self.range_entries: dict[int, float] = {}
        # Final neighbourhood knowledge (id -> pos).
        self.known: dict[int, float] = {}
        self.find_results: dict[int, dict[int, float]] = {0: {}, 1: {}}
        self.done = False

    # -- setup ----------------------------------------------------------

    def seed_successor(self, succ_id: int, succ_pos: float) -> None:
        """Install the initial ring pointer (the construction's only input)."""
        self.anchors[0] = (succ_id, succ_pos)
        self.range_entries[succ_id] = succ_pos

    # -- helpers --------------------------------------------------------

    def _clockwise(self, frm: float, to: float) -> float:
        return wrap(to - frm)

    def _best_anchor_towards(self, q: float) -> tuple[int, float] | None:
        """The farthest known anchor that does not overshoot ``q`` clockwise."""
        gap = self._clockwise(self.pos, q)
        best: tuple[int, float] | None = None
        best_adv = 0.0
        for anchor in self.anchors:
            if anchor is None:
                continue
            adv = self._clockwise(self.pos, anchor[1])
            if adv < gap - 1e-15 and adv > best_adv:
                best_adv = adv
                best = anchor
        return best

    def _i_am_closest_below(self, q: float) -> bool:
        """No known successor lies strictly between me and ``q``."""
        succ = self.anchors[0]
        if succ is None:
            return True
        return self._clockwise(self.pos, succ[1]) >= self._clockwise(self.pos, q)

    # -- round handler ---------------------------------------------------

    def on_round(self, ctx: NodeContext) -> None:
        t = ctx.round
        sched = self.schedule
        params = self.params

        # Serve incoming traffic regardless of the phase (replies may lag).
        for src, msg in ctx.inbox:
            if isinstance(msg, AnchorRequest):
                anchor = self.anchors[msg.level]
                if anchor is not None:
                    ctx.send(src, AnchorReply(msg.level, anchor[0], anchor[1]))
            elif isinstance(msg, AnchorReply):
                if msg.anchor_id != self.id:
                    self.anchors[msg.level + 1] = (msg.anchor_id, msg.anchor_pos)
            elif isinstance(msg, RangeRequest):
                entries = tuple(self.range_entries.items())
                ctx.send(src, RangeReply(msg.level, entries))
            elif isinstance(msg, RangeReply):
                for node, pos in msg.entries:
                    if node != self.id:
                        self.range_entries[node] = pos
            elif isinstance(msg, SelfAnnounce):
                self.known[msg.node] = msg.pos
            elif isinstance(msg, Find):
                self._handle_find(ctx, msg)
            elif isinstance(msg, FoundReply):
                self.find_results[msg.kind].update(
                    {node: pos for node, pos in msg.entries}
                )

        # Phase-scheduled actions.
        if t < sched.doubling_end and t % 2 == 0:
            level = t // 2
            anchor = self.anchors[level]
            if anchor is not None and level + 1 <= sched.levels:
                ctx.send(anchor[0], AnchorRequest(level))
        elif sched.doubling_end <= t < sched.range_end and (t - sched.doubling_end) % 2 == 0:
            level = (t - sched.doubling_end) // 2
            anchor = self.anchors[level]
            if anchor is not None:
                ctx.send(anchor[0], RangeRequest(level))
        elif t == sched.push_round:
            # Mirror knowledge: announce myself to successors in my list arc.
            for node, pos in self.range_entries.items():
                if self._clockwise(self.pos, pos) <= params.list_radius:
                    ctx.send(node, SelfAnnounce(self.id, self.pos))
            # My clockwise range inside the list radius is also mine to keep.
            for node, pos in self.range_entries.items():
                if self._clockwise(self.pos, pos) <= params.list_radius:
                    self.known[node] = pos
        elif t == sched.find_start:
            for kind in (0, 1):
                q = wrap((self.pos + kind) / 2.0)
                self._route_find(ctx, Find(q, self.id, kind))
        elif t == sched.total_rounds - 1:
            self._finalize()

    # -- FIND machinery ---------------------------------------------------

    def _route_find(self, ctx: NodeContext, find: Find) -> None:
        if self._i_am_closest_below(find.q):
            self._answer_find(ctx, find)
            return
        anchor = self._best_anchor_towards(find.q)
        if anchor is None:
            self._answer_find(ctx, find)  # best effort
            return
        ctx.send(anchor[0], find)

    def _handle_find(self, ctx: NodeContext, find: Find) -> None:
        self._route_find(ctx, find)

    def _answer_find(self, ctx: NodeContext, find: Find) -> None:
        radius = self.params.debruijn_radius
        entries = [
            (node, pos)
            for node, pos in {**self.known, **self.range_entries, self.id: self.pos}.items()
            if min(abs(pos - find.q), 1.0 - abs(pos - find.q)) <= radius
        ]
        if find.origin == self.id:
            self.find_results[find.kind].update({n: p for n, p in entries})
        else:
            ctx.send(find.origin, FoundReply(find.kind, tuple(entries)))

    def _finalize(self) -> None:
        radius_list = self.params.list_radius
        neighborhood: dict[int, float] = {}
        for node, pos in self.known.items():
            gap = abs(pos - self.pos)
            if min(gap, 1.0 - gap) <= radius_list:
                neighborhood[node] = pos
        for kind in (0, 1):
            neighborhood.update(self.find_results[kind])
        neighborhood.pop(self.id, None)
        self.known = neighborhood
        self.done = True


def build_initial_overlay_distributed(
    params: ProtocolParams, *, verify: bool = True
) -> tuple[dict[int, dict[int, float]], int]:
    """Run the construction end to end; returns ``(neighbourhoods, rounds)``.

    With ``verify=True`` the result is audited against the ground-truth
    :class:`LDSGraph`: every Definition-5 edge must be present (supersets are
    fine — extra knowledge never hurts).  Raises ``RuntimeError`` on gaps.
    """
    engine = Engine(params, lambda v, s: ConstructionNode(v, s))
    engine.seed_nodes(range(params.n))
    # Input: the sorted ring.
    positions = {
        v: engine.services.position_hash.position(v, 0) for v in range(params.n)
    }
    order = sorted(positions, key=positions.__getitem__)
    for i, v in enumerate(order):
        succ = order[(i + 1) % len(order)]
        node = engine.protocol_of(v)
        assert isinstance(node, ConstructionNode)
        node.seed_successor(succ, positions[succ])

    schedule = construction_schedule(params)
    engine.run(schedule.total_rounds)

    neighborhoods = {}
    for v in range(params.n):
        node = engine.protocol_of(v)
        assert isinstance(node, ConstructionNode)
        if not node.done:
            raise RuntimeError(f"node {v} did not finalize")
        neighborhoods[v] = dict(node.known)

    if verify:
        from repro.overlay.lds import LDSGraph
        from repro.overlay.positions import PositionIndex

        truth = LDSGraph(PositionIndex(positions), params)
        missing = truth.audit_claimed_adjacency(neighborhoods)
        if missing:
            raise RuntimeError(
                f"construction left {sum(len(m) for m in missing.values())} "
                f"Definition-5 edges missing at {len(missing)} nodes "
                f"(e.g. {next(iter(missing.items()))})"
            )
    return neighborhoods, schedule.total_rounds
