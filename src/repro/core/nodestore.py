"""Columnar (struct-of-arrays) store for per-node scalar protocol state.

The protocol objects in :mod:`repro.core.node` keep their *working* state as
plain attributes — dicts, lists, message references — but the scalar core of
that state (lifecycle phase, overlay epoch, ring position) is mirrored here
as dense NumPy columns indexed by a stable per-node **slot**.  The store is
the engine-side published snapshot of every node, in the same spirit as the
columnar hop plane (:mod:`repro.sim.hopplane`): one array per field, one row
per node, no per-node object walks to answer population-level questions.

Why it exists:

* **Sharding** — the multi-process round engine (:mod:`repro.sim.shard`)
  maps these columns into ``multiprocessing.shared_memory``; each worker
  publishes the scalars of its band directly into its slice of the slab, so
  the master can read population state (phase counts, established ids)
  without gathering any Python objects.
* **Cheap aggregate reads** — established fraction / phase histograms are
  vectorised column reductions instead of per-protocol attribute probes.

The object-held state that remains attribute-based (``d_nbrs``,
``h_records``, token and slot lists, in-flight messages) is the documented
array-of-structs tail: it is irregular per node and crosses the process
boundary only at explicit gather points.

Slots are assigned once per node id and never reused while the node is
alive; a retired node's row is marked ``PHASE_EMPTY``.  Rows are assigned in
first-``ensure`` order, so a population seeded band-by-band keeps each
band's rows contiguous — a shard's state is then literally an array slice.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "PHASE_EMPTY",
    "PHASE_NEW",
    "PHASE_FRESH",
    "PHASE_ESTABLISHED",
    "NodeStore",
]

# Phase codes (int8).  Defined here, mapped from the protocol's Phase enum by
# the protocol itself, so this module stays import-free of the node layer.
PHASE_EMPTY = -1
PHASE_NEW = 0
PHASE_FRESH = 1
PHASE_ESTABLISHED = 2


class NodeStore:
    """Dense per-node scalar columns: ``phase``, ``epoch``, ``pos``.

    ``capacity`` fixes the row count when external buffers are used (shared
    memory cannot grow in place); the private-memory default grows
    geometrically on demand.
    """

    __slots__ = ("phase", "epoch", "pos", "_slot_of", "_ids", "_fixed")

    def __init__(
        self,
        capacity: int = 64,
        buffers: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
    ) -> None:
        if buffers is not None:
            self.phase, self.epoch, self.pos = buffers
            self._fixed = True
        else:
            self.phase = np.full(capacity, PHASE_EMPTY, dtype=np.int8)
            self.epoch = np.full(capacity, -1, dtype=np.int64)
            self.pos = np.full(capacity, np.nan, dtype=np.float64)
            self._fixed = False
        self._slot_of: dict[int, int] = {}
        self._ids: list[int] = []  # slot -> node id, in assignment order

    # ------------------------------------------------------------------
    # Slot management
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ids)

    @property
    def capacity(self) -> int:
        return int(self.phase.shape[0])

    def slot_of(self, node_id: int) -> int:
        """The assigned slot of ``node_id`` (KeyError if never ensured)."""
        return self._slot_of[node_id]

    def ensure(self, node_id: int) -> int:
        """Assign (or look up) the slot for ``node_id``."""
        slot = self._slot_of.get(node_id)
        if slot is not None:
            return slot
        slot = len(self._ids)
        if slot >= self.capacity:
            if self._fixed:
                raise RuntimeError(
                    f"NodeStore over capacity ({self.capacity}): shared slabs "
                    "cannot grow; allocate more headroom at share time"
                )
            self._grow(max(2 * self.capacity, slot + 1))
        self._slot_of[node_id] = slot
        self._ids.append(node_id)
        self.phase[slot] = PHASE_NEW
        return slot

    def _grow(self, capacity: int) -> None:
        for name in ("phase", "epoch", "pos"):
            old = getattr(self, name)
            new = np.full(capacity, PHASE_EMPTY, dtype=old.dtype)
            if name == "pos":
                new = np.full(capacity, np.nan, dtype=old.dtype)
            new[: old.shape[0]] = old
            setattr(self, name, new)

    def adopt(self, node_id: int, slot: int) -> None:
        """Record an externally assigned slot for ``node_id``.

        Shard workers mirror the master's slot assignment for joins (the
        master is the single allocator; see :mod:`repro.sim.shard`), so the
        shared columns are never written at conflicting rows.
        """
        self._slot_of[node_id] = slot
        if slot >= len(self._ids):
            self._ids.extend([-1] * (slot + 1 - len(self._ids)))
        self._ids[slot] = node_id

    def retire(self, node_id: int) -> None:
        """Mark a departed node's row empty (the slot is not reused)."""
        slot = self._slot_of.get(node_id)
        if slot is not None:
            self.phase[slot] = PHASE_EMPTY
            self.epoch[slot] = -1
            self.pos[slot] = np.nan

    # ------------------------------------------------------------------
    # Publishing and aggregate reads
    # ------------------------------------------------------------------

    def publish(
        self, slot: int, phase: int, epoch: int | None, pos: float | None
    ) -> None:
        """Write one node's scalar snapshot (``None`` maps to -1 / NaN)."""
        self.phase[slot] = phase
        self.epoch[slot] = -1 if epoch is None else epoch
        self.pos[slot] = np.nan if pos is None else pos

    def ids_in_phase(self, phase: int) -> list[int]:
        """Node ids currently published in ``phase``, in id order."""
        slots = np.flatnonzero(self.phase[: len(self._ids)] == phase)
        return sorted(self._ids[s] for s in slots.tolist())

    def phase_counts(self) -> dict[int, int]:
        """Histogram of published phase codes over live rows."""
        live = self.phase[: len(self._ids)]
        codes, counts = np.unique(live[live != PHASE_EMPTY], return_counts=True)
        return dict(zip(codes.tolist(), counts.tolist()))

    # ------------------------------------------------------------------
    # Shared-memory plumbing
    # ------------------------------------------------------------------

    @staticmethod
    def nbytes_for(capacity: int) -> int:
        """Slab size (bytes) needed to back ``capacity`` rows."""
        return capacity * (8 + 8 + 1)

    @staticmethod
    def views_over(buf: memoryview, capacity: int) -> tuple[
        np.ndarray, np.ndarray, np.ndarray
    ]:
        """Carve (phase, epoch, pos) column views out of one flat buffer.

        The 8-byte columns lead and the int8 phase column trails, so the
        wide views are element-aligned for any ``capacity`` (an epoch view
        at byte offset ``capacity`` would be misaligned whenever the
        capacity is not a multiple of 8 — legal for NumPy on x86, but a
        penalty or a trap depending on the ISA).
        """
        o_pos = 8 * capacity
        o_phase = 16 * capacity
        epoch = np.frombuffer(buf, dtype=np.int64, count=capacity, offset=0)
        pos = np.frombuffer(buf, dtype=np.float64, count=capacity, offset=o_pos)
        phase = np.frombuffer(buf, dtype=np.int8, count=capacity, offset=o_phase)
        return phase, epoch, pos

    def init_fixed_views(self) -> None:
        """Initialise freshly mapped shared views to the empty pattern."""
        self.phase.fill(PHASE_EMPTY)
        self.epoch.fill(-1)
        self.pos.fill(np.nan)
