"""End-to-end maintenance simulation with invariant audits (Theorem 14).

:class:`MaintenanceSimulation` wires the :class:`MaintenanceNode` protocol
into the synchronous engine, primes the bootstrap overlay, runs rounds under
an adversary, and provides the audits the evaluation needs:

* **overlay audit** — compares every established node's claimed neighbourhood
  against the ground-truth Definition-5 edges over the true epoch positions
  (edge coverage, membership, swarm goodness);
* **probe traffic** — end-to-end routed probes whose delivery rate is the
  operational definition of "routable" (Definition 8);
* **health summary** — established fraction, demotions, congestion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.adversary.base import Adversary
from repro.config import ProtocolParams
from repro.core.bootstrap import prime_initial_overlay
from repro.faults.health import HealthMonitor
from repro.faults.plan import FaultPlan
from repro.core.node import MaintenanceNode, Phase
from repro.overlay.lds import LDSGraph
from repro.overlay.positions import PositionIndex
from repro.sim.engine import Engine, EngineServices
from repro.sim.profile import PhaseProfiler

__all__ = ["OverlayAudit", "ProbeReport", "MaintenanceSimulation"]


@dataclass(frozen=True)
class OverlayAudit:
    """Structural health of the current overlay epoch."""

    epoch: int
    members: int
    alive: int
    established_fraction: float
    missing_edges: int
    required_edges: int
    min_swarm_size: int
    mean_swarm_size: float

    @property
    def edge_coverage(self) -> float:
        """Fraction of required Definition-5 edges the nodes actually hold."""
        if self.required_edges == 0:
            return 1.0
        return 1.0 - self.missing_edges / self.required_edges


@dataclass(frozen=True)
class ProbeReport:
    """Delivery statistics of audit probes."""

    launched: int
    delivered: int
    mean_receivers: float

    @property
    def delivery_rate(self) -> float:
        return self.delivered / self.launched if self.launched else 1.0


class MaintenanceSimulation:
    """Run the full protocol of Section 5 and audit its invariants."""

    def __init__(
        self,
        params: ProtocolParams,
        adversary: Adversary | None = None,
        *,
        strict_budget: bool = True,
        trace_depth: int = 8,
        distributed_bootstrap: bool = False,
        node_cls: type[MaintenanceNode] = MaintenanceNode,
        faults: FaultPlan | None = None,
        health: HealthMonitor | None = None,
        profiler: PhaseProfiler | None = None,
        epoch_cache: bool = True,
        hop_plane: bool = True,
        workers: int = 1,
    ) -> None:
        self.params = params
        self.health = health
        self.profiler = profiler
        self.engine = Engine(
            params,
            lambda v, services: node_cls(v, services),
            adversary=adversary,
            strict_budget=strict_budget,
            trace_depth=trace_depth,
            faults=faults,
            health=health,
            profiler=profiler,
            epoch_cache=epoch_cache,
            hop_plane=hop_plane,
            workers=workers,
        )
        self.engine.seed_nodes(range(params.n))
        if distributed_bootstrap:
            # Build D_0 with the message-level construction of
            # repro.core.construction instead of the oracle priming; the
            # construction verifies itself against Definition 5 and its
            # (position-hash-seeded) result is installed on the nodes.
            self.initial_graph = prime_initial_overlay(
                self.engine, constructed=True
            )
        else:
            self.initial_graph = prime_initial_overlay(self.engine)
        self._probe_counter = 0
        self._probe_targets: dict[object, float] = {}

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, rounds: int) -> None:
        self.engine.run(rounds)

    def close(self) -> None:
        """Release engine resources (shard workers / shared slabs)."""
        self.engine.close()

    def exchange_stats(self):
        """Shard-exchange byte counters (``None`` on single-process runs).

        See :meth:`repro.sim.engine.Engine.exchange_stats`; usable both
        mid-run and after :meth:`close`.
        """
        return self.engine.exchange_stats()

    def __enter__(self) -> "MaintenanceSimulation":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def round(self) -> int:
        return self.engine.round

    @property
    def services(self) -> EngineServices:
        return self.engine.services

    def node(self, v: int) -> MaintenanceNode:
        proto = self.engine.protocol_of(v)
        assert isinstance(proto, MaintenanceNode)
        return proto

    def alive_nodes(self) -> list[MaintenanceNode]:
        return [self.node(v) for v in sorted(self.engine.alive)]

    def established_nodes(self) -> dict[int, MaintenanceNode]:
        return {
            v: self.node(v)
            for v in sorted(self.engine.alive)
            if self.node(v).phase is Phase.ESTABLISHED
        }

    # ------------------------------------------------------------------
    # Probe traffic (the operational routability check)
    # ------------------------------------------------------------------

    def send_probes(self, count: int, rng: np.random.Generator) -> list[object]:
        """Queue ``count`` probes at random established nodes.

        Probes launch at the origin's next even round and are delivered to
        their target swarm ``2*lam + 2`` rounds after entering the network.
        """
        established = sorted(self.established_nodes())
        if not established:
            raise RuntimeError("no established nodes to probe from")
        ids: list[object] = []
        for _ in range(count):
            origin = int(rng.choice(established))
            target = float(rng.random())
            probe_id = ("p", self._probe_counter)
            self._probe_counter += 1
            self.node(origin).queue_probe(probe_id, target)
            # Under sharding the live instance is worker-owned; replay the
            # mutation there before the next compute phase.
            self.engine.forward_node_call(
                origin, "queue_probe", (probe_id, target)
            )
            self._probe_targets[probe_id] = target
            ids.append(probe_id)
        return ids

    def probe_report(self, probe_ids: list[object] | None = None) -> ProbeReport:
        """Delivery statistics for the given probes (default: all ever sent)."""
        wanted = set(probe_ids) if probe_ids is not None else set(self._probe_targets)
        receivers: dict[object, int] = {p: 0 for p in wanted}
        for node in self.alive_nodes():
            for payload, _round in node.delivered:
                if isinstance(payload, tuple) and payload[0] == "probe":
                    pid = payload[1]
                    if pid in receivers:
                        receivers[pid] += 1
        delivered = sum(1 for c in receivers.values() if c > 0)
        counts = [c for c in receivers.values() if c > 0]
        return ProbeReport(
            launched=len(wanted),
            delivered=delivered,
            mean_receivers=float(np.mean(counts)) if counts else 0.0,
        )

    # ------------------------------------------------------------------
    # Structural audit
    # ------------------------------------------------------------------

    def audit_overlay(self) -> OverlayAudit:
        """Check the current overlay against ground-truth Definition-5 edges."""
        alive = sorted(self.engine.alive)
        established = self.established_nodes()
        if not established:
            return OverlayAudit(
                epoch=-1,
                members=0,
                alive=len(alive),
                established_fraction=0.0,
                missing_edges=0,
                required_edges=0,
                min_swarm_size=0,
                mean_swarm_size=0.0,
            )
        # The current epoch is the newest one a majority of nodes are in.
        epochs = [n.epoch for n in established.values() if n.epoch is not None]
        epoch = int(np.bincount(np.array(epochs)).argmax())
        members = {
            v: n for v, n in established.items() if n.epoch == epoch
        }
        positions = {v: n.pos for v, n in members.items()}
        # Share the epoch cache's interned index when available (same
        # elements — node positions are hash-derived — without a re-sort).
        cache = self.engine.services.epoch_cache
        if cache is not None:
            index = cache.index_for(epoch, frozenset(positions), positions)
        else:
            index = PositionIndex(positions)
        truth = LDSGraph(index, self.params)
        missing = 0
        required = 0
        for v, node in members.items():
            req = {int(w) for w in truth.neighbors(v)}
            have = set(node.d_nbrs)
            required += len(req)
            missing += len(req - have)
        # Swarm statistics over the true member positions.
        sizes = [
            truth.index.count_within(p, self.params.swarm_radius)
            for p in list(positions.values())
        ]
        return OverlayAudit(
            epoch=epoch,
            members=len(members),
            alive=len(alive),
            established_fraction=len(established) / max(1, len(alive)),
            missing_edges=missing,
            required_edges=required,
            min_swarm_size=int(min(sizes)) if sizes else 0,
            mean_swarm_size=float(np.mean(sizes)) if sizes else 0.0,
        )

    def health_summary(self) -> dict[str, float]:
        """One-line health metrics for long-run monitoring."""
        alive = self.alive_nodes()
        established = sum(1 for n in alive if n.phase is Phase.ESTABLISHED)
        summary = {
            "round": float(self.round),
            "alive": float(len(alive)),
            "established_fraction": established / max(1, len(alive)),
            "total_demotions": float(sum(n.demotions for n in alive)),
            "peak_congestion": float(self.engine.metrics.peak_congestion()),
            "mean_congestion": float(self.engine.metrics.mean_congestion()),
        }
        if self.engine.faults is not None:
            totals = self.engine.metrics.fault_totals()
            summary["faults_injected"] = float(totals.injected)
        if self.health is not None:
            summary["degradation_events"] = float(len(self.health.events))
        return summary
