"""Bootstrap: construct the initial overlay ``D_0`` churn-free.

The paper assumes the network starts from a valid LDS built during a
churn-free bootstrap phase using the deterministic overlay-construction
algorithms of Gmyr et al. [14] (``O(log^2 n)`` rounds, polylog congestion) and
explicitly omits the details.  We do the same: :func:`prime_initial_overlay`
computes the epoch-0 positions ``h(v, 0)`` and installs each node's
Definition-5 neighbourhood directly.  Everything after round 0 — including
the first ``lam+2`` epochs of the join pipeline filling up — runs through the
real message-level protocol.
"""

from __future__ import annotations

from repro.core.node import MaintenanceNode
from repro.overlay.lds import LDSGraph
from repro.overlay.positions import PositionIndex
from repro.sim.engine import Engine

__all__ = ["prime_initial_overlay"]


def prime_initial_overlay(engine: Engine, constructed: bool = False) -> LDSGraph:
    """Install ``D_0`` on all seeded nodes; returns the ground-truth graph.

    With ``constructed=True`` the neighbourhoods come from the message-level
    bootstrap construction (:mod:`repro.core.construction`, run on a sibling
    engine sharing this engine's parameters and position hash semantics)
    rather than from the oracle — removing the reproduction's one shortcut.
    """
    if engine.round != 0:
        raise RuntimeError("the initial overlay must be primed before round 0")
    cache = engine.services.epoch_cache
    # Evaluating through the epoch cache (when mounted) pre-warms the shared
    # epoch-0 table, so the first cutover-free rounds intern their indexes
    # against an already-populated slab.
    position = cache.position if cache is not None else engine.services.position_hash.position
    positions = {v: position(v, 0) for v in sorted(engine.alive)}
    graph = LDSGraph(PositionIndex(positions), engine.params)
    if constructed:
        from repro.core.construction import build_initial_overlay_distributed

        built, _rounds = build_initial_overlay_distributed(engine.params)
        for v, pos in positions.items():
            node = engine.protocol_of(v)
            if not isinstance(node, MaintenanceNode):
                raise TypeError(f"node {v} is not a MaintenanceNode")
            node.prime(epoch=0, pos=pos, neighbors=dict(built[v]))
        return graph
    for v, pos in positions.items():
        node = engine.protocol_of(v)
        if not isinstance(node, MaintenanceNode):
            raise TypeError(f"node {v} is not a MaintenanceNode")
        neighbors = {int(w): positions[int(w)] for w in graph.neighbors(v)}
        node.prime(epoch=0, pos=pos, neighbors=neighbors)
    return graph
