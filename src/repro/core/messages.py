"""Message types of the maintenance protocol (Listings 3 and 4).

All payloads are immutable so multicasts can share one instance.

* :class:`JoinRecord` — "node ``v`` will sit at position ``pos`` in overlay
  epoch ``epoch``"; the content of a ``JOIN`` message.
* :class:`JoinBatch` — the even-round rebroadcast of freshly delivered join
  records to the current holders of the three Definition-5 neighbourhoods
  (Listing 3, line 10).  Receivers store them as handover records ``H``.
* :class:`CreateBatch` — odd-round matchmaking introductions: "these nodes
  are your neighbours in the next overlay" (Listing 3, ``CREATE``).
* :class:`TokenMsg` — a token travelling *directly* (step 3 of A_RANDOM's
  distribution: mature node forwards a sampled token to a connected fresh
  node).  Tokens inside A_ROUTING travel as routed payloads instead.
* :class:`ConnectMsg` — ``CONNECT(v)``: request to register fresh node ``v``
  in one of the receiver's ``2*delta`` slots.
* :class:`TokenGrant` — the bootstrap handshake: a node supplies a newcomer
  with its first tokens (Listing 4, "Upon v joining").

Routed payloads (carried inside :class:`repro.routing.messages.RoutedMessage`)
are tagged tuples: ``("join", JoinRecord)``, ``("token", owner_id)`` and
``("probe", probe_id)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "JoinRecord",
    "JoinBatch",
    "CreateBatch",
    "TokenMsg",
    "ConnectMsg",
    "TokenGrant",
]


@dataclass(frozen=True, slots=True)
class JoinRecord:
    """A node's position in an upcoming overlay epoch."""

    __protocol__ = True

    node: int
    pos: float
    epoch: int


@dataclass(frozen=True, slots=True)
class JoinBatch:
    """Rebroadcast of join records to a current-overlay neighbour."""

    __protocol__ = True

    records: tuple[JoinRecord, ...]


@dataclass(frozen=True, slots=True)
class CreateBatch:
    """Introductions: the receiver's neighbours in the records' epoch.

    ``nodes``/``poses``/``epoch`` are optional producer-side projections of
    ``records`` (column views plus the records' shared epoch).  They carry no
    information of their own — equality and hashing stay on ``records`` — and
    let the receiver ingest a batch with one C-level ``zip`` update instead
    of touching every record object.  Producers that set them MUST keep them
    exact projections; consumers MUST fall back to ``records`` when absent.
    """

    __protocol__ = True

    records: tuple[JoinRecord, ...]
    nodes: tuple[int, ...] | None = field(
        default=None, compare=False, repr=False
    )
    poses: tuple[float, ...] | None = field(
        default=None, compare=False, repr=False
    )
    epoch: int | None = field(default=None, compare=False, repr=False)


@dataclass(frozen=True, slots=True)
class TokenMsg:
    """A token (= the id of a mature node willing to be contacted)."""

    __protocol__ = True

    owner: int


@dataclass(frozen=True, slots=True)
class ConnectMsg:
    """Register fresh node ``node`` with the receiver (fills a slot)."""

    __protocol__ = True

    node: int


@dataclass(frozen=True, slots=True)
class TokenGrant:
    """Initial token supply handed to a newly joined node."""

    __protocol__ = True

    tokens: tuple[int, ...]
