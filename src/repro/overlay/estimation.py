"""Local network-size estimation — running the protocol without knowing n.

The paper assumes every node knows ``n`` and ``kappa`` "due to space
constraints" and notes that all algorithms can work with close estimates of
``lam`` and ``lam/n``, citing the estimation techniques of Richa et al. /
King & Saia.  This module supplies that piece:

* a node estimates the density of the ring from the distance to its ``j``-th
  closest known neighbour — the arc ``(v - d_j, v + d_j)`` of length
  ``2*d_j`` contains exactly ``j`` uniform points, so ``n ≈ j / (2*d_j)``;
* estimates are aggregated by median (over a swarm, or over all nodes),
  which concentrates sharply for ``j = Theta(log n)``;
* :func:`params_from_estimate` re-derives the protocol constants from the
  estimate, and experiment E-X2 verifies the resulting radii still satisfy
  the Swarm Property.
"""

from __future__ import annotations

import math

import numpy as np

from repro.config import ProtocolParams
from repro.overlay.positions import PositionIndex
from repro.util.intervals import ring_distance

__all__ = [
    "local_size_estimate",
    "all_node_estimates",
    "median_size_estimate",
    "estimate_lambda",
    "params_from_estimate",
]


def local_size_estimate(index: PositionIndex, v: int, j: int) -> float:
    """Node ``v``'s estimate of ``n`` from its ``j``-th closest neighbour.

    With positions i.i.d. uniform, the arc of half-width ``d_(j)`` around
    ``v`` contains ``j`` of the other ``n-1`` points, giving the density
    estimator ``n_hat = j / (2 * d_(j))``.  Larger ``j`` concentrates better
    (relative error ``O(1/sqrt(j))``).
    """
    if j < 1:
        raise ValueError("j must be at least 1")
    if len(index) <= j:
        raise ValueError(f"need more than j={j} nodes, have {len(index)}")
    p = index.position(v)
    distances = np.sort(
        [
            ring_distance(p, index.position(int(w)))
            for w in index.ids
            if int(w) != v
        ]
    )
    d_j = float(distances[j - 1])
    if d_j <= 0.0:
        # Colliding positions (measure-zero); fall back to the next gap.
        positive = distances[distances > 0]
        if positive.size == 0:
            raise ValueError("all known positions identical")
        d_j = float(positive[0])
    return j / (2.0 * d_j)


def all_node_estimates(index: PositionIndex, j: int) -> np.ndarray:
    """Every node's local estimate (vectorised over the sorted table).

    Equivalent to calling :func:`local_size_estimate` per node but computed
    from rank offsets on the sorted position array: the ``j``-th closest
    neighbour is within the ``j`` predecessors/successors on the ring.
    """
    pos = index.sorted_positions
    n = pos.size
    if n <= j:
        raise ValueError(f"need more than j={j} nodes, have {n}")
    # Candidate distances: offsets 1..j clockwise and counter-clockwise.
    out = np.empty(n)
    for i in range(n):
        cand = []
        for off in range(1, j + 1):
            cand.append(ring_distance(pos[i], pos[(i + off) % n]))
            cand.append(ring_distance(pos[i], pos[(i - off) % n]))
        cand.sort()
        d_j = cand[j - 1]
        out[i] = j / (2.0 * d_j) if d_j > 0 else float("inf")
    return out


def median_size_estimate(index: PositionIndex, j: int | None = None) -> float:
    """Median of all nodes' local estimates (robust aggregate).

    ``j`` defaults to ``ceil(2 * log2(#known))`` — a Theta(log n) choice a
    node can make from its own neighbourhood size.
    """
    if j is None:
        j = max(2, math.ceil(2 * math.log2(max(2, len(index)))))
    return float(np.median(all_node_estimates(index, j)))


def estimate_lambda(n_hat: float, kappa: float = 1.0) -> int:
    """The address width implied by an estimate of ``n``."""
    return max(1, math.ceil(math.log2(max(2.0, kappa * n_hat))))


def params_from_estimate(
    base: ProtocolParams, n_hat: float, safety: float = 1.2
) -> ProtocolParams:
    """Protocol parameters re-derived from an estimated network size.

    Keeps all tunables of ``base`` but swaps in the estimated ``n`` and
    inflates ``c`` by ``safety``.  The slack is necessary, not cosmetic:
    Lemma 6's radii are exactly tight, so an overestimate of ``n`` shrinks
    the edge radii below what true-size swarms require — the safety factor
    must dominate the estimator's relative error (experiment E-X2 shows the
    failure without it).
    """
    if safety < 1.0:
        raise ValueError("safety factor must be >= 1")
    return base.with_updates(n=max(8, round(n_hat)), c=base.c * safety)
