"""Overlay topologies: position tables, swarms, the LDS and the LDG baseline."""

from repro.overlay.chordswarm import ChordSwarmGraph, chord_finger_arcs, chord_trajectory
from repro.overlay.estimation import (
    all_node_estimates,
    estimate_lambda,
    local_size_estimate,
    median_size_estimate,
    params_from_estimate,
)
from repro.overlay.lds import LDSGraph, build_lds, required_neighbor_arcs
from repro.overlay.ldg import LDGGraph
from repro.overlay.positions import PositionIndex
from repro.overlay.swarm import SwarmStats, audit_goodness, swarm_arc, swarm_members
from repro.overlay.trajectory import (
    crossing_counts,
    max_step_error,
    trajectory,
    trajectory_bits,
)

__all__ = [
    "ChordSwarmGraph",
    "LDGGraph",
    "LDSGraph",
    "PositionIndex",
    "SwarmStats",
    "all_node_estimates",
    "audit_goodness",
    "build_lds",
    "chord_finger_arcs",
    "chord_trajectory",
    "crossing_counts",
    "estimate_lambda",
    "local_size_estimate",
    "median_size_estimate",
    "params_from_estimate",
    "max_step_error",
    "required_neighbor_arcs",
    "swarm_arc",
    "swarm_members",
    "trajectory",
    "trajectory_bits",
]
